"""Channel controller: bus occupancy, queueing, accounting."""

import pytest

from repro.common.types import TrafficClass
from repro.config.dram import DDR4_3200
from repro.dram.controller import ChannelController
from repro.dram.timing import ResolvedTiming

T = ResolvedTiming.from_config(DDR4_3200, 3.6)


def make(sim):
    return ChannelController(sim, "ch0", T, num_banks=4)


def test_single_burst_latency(sim):
    ch = make(sim)
    end = ch.enqueue(0, 0, False, TrafficClass.DEMAND)
    assert end == T.trcd + T.tcas + T.tburst


def test_callback_fires_at_completion(sim):
    ch = make(sim)
    fired = []
    end = ch.enqueue(0, 0, False, TrafficClass.DEMAND, callback=lambda: fired.append(sim.now))
    sim.run()
    assert fired == [end]


def test_bus_serializes_bursts(sim):
    ch = make(sim)
    # Different banks, same row number: bank-side overlaps, bus serializes.
    e1 = ch.enqueue(0, 0, False, TrafficClass.DEMAND)
    e2 = ch.enqueue(1, 0, False, TrafficClass.DEMAND)
    assert e2 >= e1 + T.tburst


def test_row_hit_accounting(sim):
    ch = make(sim)
    ch.enqueue(0, 7, False, TrafficClass.DEMAND)
    ch.enqueue(0, 7, False, TrafficClass.DEMAND)
    ch.enqueue(0, 8, False, TrafficClass.DEMAND)
    assert ch.stats.get("row_hits").value == 1
    assert ch.stats.get("row_closed").value == 1
    assert ch.stats.get("row_conflicts").value == 1
    assert ch.row_hit_rate == pytest.approx(1 / 3)


def test_read_write_counters(sim):
    ch = make(sim)
    ch.enqueue(0, 0, False, TrafficClass.DEMAND)
    ch.enqueue(0, 0, True, TrafficClass.FILL)
    assert ch.stats.get("reads").value == 1
    assert ch.stats.get("writes").value == 1


def test_bytes_by_traffic_class(sim):
    ch = make(sim)
    ch.enqueue(0, 0, False, TrafficClass.METADATA)
    ch.enqueue(0, 0, False, TrafficClass.METADATA)
    ch.enqueue(0, 0, True, TrafficClass.WRITEBACK)
    bw = ch.stats.get("bytes")
    assert bw.bytes_by_class[TrafficClass.METADATA] == 128
    assert bw.bytes_by_class[TrafficClass.WRITEBACK] == 64


def test_saturation_grows_latency(sim):
    ch = make(sim)
    ends = [ch.enqueue(0, 0, False, TrafficClass.DEMAND) for _ in range(100)]
    # All enqueued at t=0: the 100th burst waits ~100 bus slots.
    assert ends[-1] >= 100 * T.tburst


def test_latency_stat_tracks_queueing(sim):
    ch = make(sim)
    for _ in range(10):
        ch.enqueue(0, 0, False, TrafficClass.DEMAND)
    lat = ch.stats.get("burst_latency")
    assert lat.count == 10
    assert lat.max > lat.min
