"""Whole-device behaviour: range transfers, aggregate stats."""

import pytest

from repro.common.types import TrafficClass
from repro.config.dram import DDR4_3200, HBM2, scaled_dram
from repro.dram.device import DRAMDevice


def make(sim, cfg=HBM2):
    return DRAMDevice(sim, "dev", cfg, 3.6)


def test_access_routes_to_decoded_channel(sim):
    dev = make(sim)
    dev.access(64, False, TrafficClass.DEMAND)  # burst 1 -> channel 1
    assert dev.channels[1].stats.get("reads").value == 1
    assert dev.channels[0].stats.get("reads").value == 0


def test_access_range_issues_one_burst_per_64b(sim):
    dev = make(sim)
    dev.access_range(0, 4096, False, TrafficClass.FILL)
    total = sum(ch.stats.get("reads").value for ch in dev.channels)
    assert total == 64


def test_access_range_per_burst_callbacks(sim):
    dev = make(sim)
    seen = []
    dev.access_range(0, 1024, False, TrafficClass.FILL, per_burst=seen.append)
    sim.run()
    assert sorted(seen) == list(range(16))


def test_access_range_on_complete(sim):
    dev = make(sim)
    done = []
    last = dev.access_range(0, 512, True, TrafficClass.WRITEBACK,
                            on_complete=lambda t: done.append((t, sim.now)))
    sim.run()
    assert done and done[0][0] == last
    assert done[0][1] == last


def test_page_copy_parallelism_across_channels(sim):
    """A 4 KB page spread over 8 channels finishes ~8x faster than serial."""
    dev = make(sim)
    last = dev.access_range(0, 4096, False, TrafficClass.FILL)
    serial_estimate = 64 * dev.timing.tburst
    assert last < serial_estimate


def test_row_hit_rate_aggregates(sim):
    dev = make(sim, scaled_dram(DDR4_3200, 1 << 24))
    dev.access_range(0, 4096, False, TrafficClass.FILL)
    # Sequential page fill on one channel: mostly row hits.
    assert dev.row_hit_rate > 0.9


def test_bytes_by_class_and_total(sim):
    dev = make(sim)
    dev.access(0, False, TrafficClass.DEMAND)
    dev.access(64, True, TrafficClass.FILL)
    by = dev.bytes_by_class()
    assert by[TrafficClass.DEMAND] == 64
    assert by[TrafficClass.FILL] == 64
    assert dev.total_bytes() == 128


def test_bandwidth_gbps(sim):
    dev = make(sim)
    dev.access(0, False, TrafficClass.DEMAND)
    gbps = dev.bandwidth_gbps(elapsed_cycles=3_600_000_000, cycles_per_second=3.6e9)
    assert gbps == pytest.approx(64 / 1e9)


def test_accesses_counter(sim):
    dev = make(sim)
    dev.access_range(0, 256, False, TrafficClass.DEMAND)
    assert dev.stats.get("accesses").value == 4
