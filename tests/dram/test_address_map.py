"""Address decomposition: channel/bank/row interleaving."""

import pytest

from repro.config.dram import DDR4_3200, HBM2, DRAMTimingConfig
from repro.dram.address_map import AddressMap


def test_channels_interleave_at_burst():
    am = AddressMap(HBM2)
    assert am.decode(0).channel == 0
    assert am.decode(64).channel == 1
    assert am.decode(64 * HBM2.num_channels).channel == 0


def test_page_spreads_over_all_channels():
    am = AddressMap(HBM2)
    channels = {am.decode(i * 64).channel for i in range(64)}
    assert channels == set(range(HBM2.num_channels))


def test_same_row_for_consecutive_bursts_on_channel():
    am = AddressMap(DDR4_3200)
    d0 = am.decode(0)
    d1 = am.decode(64 * DDR4_3200.num_channels)  # next burst, same channel
    assert (d0.bank, d0.row) == (d1.bank, d1.row)


def test_rows_advance_through_banks():
    am = AddressMap(DDR4_3200)
    row_bytes = DDR4_3200.row_size_bytes * DDR4_3200.num_channels
    d0 = am.decode(0)
    d1 = am.decode(row_bytes)
    assert d1.bank == (d0.bank + 1) % DDR4_3200.banks_per_channel


def test_channel_of_matches_decode():
    am = AddressMap(HBM2)
    for addr in (0, 64, 4096, 123456):
        assert am.channel_of(addr) == am.decode(addr).channel


def test_row_smaller_than_burst_rejected():
    bad = DRAMTimingConfig("bad", 1 << 20, 1, 1, 32, 1, 1, 1, 1, 1)
    with pytest.raises(ValueError):
        AddressMap(bad)
