"""Bank state machine: row-buffer outcomes and timing."""

from repro.config.dram import HBM2
from repro.dram.bank import Bank
from repro.dram.timing import ResolvedTiming

T = ResolvedTiming.from_config(HBM2, 3.6)


def test_first_access_is_closed():
    b = Bank()
    ready, outcome = b.access(5, now=0, timing=T)
    assert outcome == "closed"
    assert ready == T.trcd + T.tcas


def test_same_row_hits():
    b = Bank()
    b.access(5, 0, T)
    ready, outcome = b.access(5, 1000, T)
    assert outcome == "hit"
    assert ready == 1000 + T.tcas


def test_different_row_conflicts():
    b = Bank()
    b.access(5, 0, T)
    _, outcome = b.access(6, 10_000, T)
    assert outcome == "conflict"


def test_conflict_pays_precharge_and_activate():
    b = Bank()
    b.access(5, 0, T)
    ready, _ = b.access(6, 10_000, T)
    assert ready == 10_000 + T.trp + T.trcd + T.tcas


def test_conflict_respects_tras():
    b = Bank()
    b.access(5, 0, T)  # activated at 0
    # Immediately conflicting: precharge must wait for tRAS.
    ready, outcome = b.access(6, T.tburst, T)
    assert outcome == "conflict"
    assert ready >= T.tras + T.trp + T.trcd + T.tcas


def test_open_row_pipelines_at_burst_rate():
    """Streaming an open row must go at tCCD (~tburst), not tCAS."""
    b = Bank()
    b.access(1, 0, T)
    r1, _ = b.access(1, 0, T)
    r2, _ = b.access(1, 0, T)
    assert r2 - r1 == T.tburst


def test_row_stays_open():
    b = Bank()
    b.access(9, 0, T)
    assert b.open_row == 9
    b.access(4, 10_000, T)
    assert b.open_row == 4
