"""Resolved DRAM timing."""

import pytest

from repro.config.dram import DDR4_3200, HBM2
from repro.dram.timing import ResolvedTiming


def test_resolution_at_3_6_ghz():
    t = ResolvedTiming.from_config(DDR4_3200, 3.6)
    assert t.trcd == 50  # ceil(13.75ns * 3.6GHz)
    assert t.tburst == 9  # ceil(2.5ns * 3.6GHz)


def test_latency_compositions():
    t = ResolvedTiming.from_config(HBM2, 3.6)
    assert t.row_hit_latency == t.tcas + t.tburst
    assert t.row_closed_latency == t.trcd + t.tcas + t.tburst
    assert t.row_conflict_latency == t.trp + t.trcd + t.tcas + t.tburst
    assert t.row_hit_latency < t.row_closed_latency < t.row_conflict_latency


def test_minimum_one_cycle():
    t = ResolvedTiming.from_config(DDR4_3200, 0.001)  # absurdly slow CPU
    assert t.tburst >= 1
