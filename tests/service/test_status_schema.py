"""Schema-pinning for the broker /status payload.

The dashboard, the coordinator's drain loop, `repro obs scrape`
runbooks, and external pollers all consume this JSON; a renamed or
dropped key is a silent API break.  These tests pin the exact key sets
so any drift fails loudly -- extending the payload is fine, but it must
be done here too, deliberately.
"""

import json
import urllib.request

import pytest

from repro.harness.runner import RunConfig
from repro.service.broker import Broker, BrokerServer
from repro.service.protocol import batch_id_for

CFG = RunConfig(scheme="baseline", workload="sop", num_mem_ops=300,
                num_cores=2, dc_megabytes=8)

TOP_LEVEL_KEYS = {
    "campaigns", "runners", "requeues", "uptime_s", "store", "index",
    "journal", "replayed_campaigns", "lease_s",
}
CAMPAIGN_KEYS = {
    "batches", "queued", "leased", "done", "runs_done",
    "records_by_status", "duplicate_completes", "cache_counts",
    "overlap_trend", "age_s",
}
RUNNER_KEYS = {
    "last_seen_s", "batches_done", "runs_done", "runs_per_sec", "stats",
}


@pytest.fixture
def broker(tmp_path):
    broker = Broker(tmp_path / "store", lease_s=30.0)
    yield broker
    broker.journal.close()


def _populate(broker):
    payloads = [CFG.to_dict()]
    broker.enqueue("c1", [{
        "batch_id": batch_id_for("c1", payloads),
        "indices": [0],
        "configs": payloads,
    }], {}, manifest=payloads)
    broker.claim("r1")
    broker.heartbeat("r1", {"runs_per_sec": 1.0})


def test_status_payload_keys_are_pinned(broker):
    _populate(broker)
    status = broker.status()
    assert set(status) == TOP_LEVEL_KEYS
    assert set(status["campaigns"]["c1"]) == CAMPAIGN_KEYS
    assert set(status["runners"]["r1"]) == RUNNER_KEYS


def test_status_value_types_are_stable(broker):
    _populate(broker)
    status = broker.status()
    campaign = status["campaigns"]["c1"]
    assert all(isinstance(campaign[k], int) for k in
               ("batches", "queued", "leased", "done", "runs_done",
                "duplicate_completes"))
    assert isinstance(campaign["records_by_status"], dict)
    assert isinstance(campaign["overlap_trend"], list)
    runner = status["runners"]["r1"]
    assert isinstance(runner["stats"], dict)
    assert isinstance(runner["runs_per_sec"], float)
    for key in ("store", "index", "journal"):
        assert isinstance(status[key], dict)
    assert isinstance(status["uptime_s"], float)
    assert isinstance(status["lease_s"], float)


def test_status_over_http_serializes_identically(broker):
    _populate(broker)
    server = BrokerServer(broker).start()
    try:
        with urllib.request.urlopen(f"{server.url}/status",
                                    timeout=10) as resp:
            payload = json.load(resp)
    finally:
        server.shutdown()
    # The HTTP envelope adds the wire-protocol version to every reply.
    assert set(payload) == TOP_LEVEL_KEYS | {"protocol"}
    assert set(payload["campaigns"]["c1"]) == CAMPAIGN_KEYS
    assert set(payload["runners"]["r1"]) == RUNNER_KEYS


def test_campaign_id_filter_limits_campaign_map(broker):
    _populate(broker)
    assert broker.status("nope")["campaigns"] == {}
    assert set(broker.status("c1")["campaigns"]) == {"c1"}
