"""The broker's Prometheus endpoint: `GET /metrics` must expose a parseable
exposition whose counters move with traffic and never go backwards --
without any observability configuration (metrics are always on)."""

import json
import urllib.error
import urllib.request

import pytest

from repro.harness.runner import RunConfig
from repro.obs.metrics import CONTENT_TYPE, counter_samples, parse_exposition
from repro.service.broker import Broker, BrokerServer
from repro.service.protocol import batch_id_for

CFG = RunConfig(scheme="baseline", workload="sop", num_mem_ops=300,
                num_cores=2, dc_megabytes=8)


@pytest.fixture
def server(tmp_path):
    broker = Broker(tmp_path / "store", lease_s=30.0)
    server = BrokerServer(broker).start()
    yield server
    server.shutdown()
    broker.journal.close()


def _scrape(server):
    with urllib.request.urlopen(f"{server.url}/metrics", timeout=10) as resp:
        assert resp.headers["Content-Type"] == CONTENT_TYPE
        assert resp.headers["X-Repro-Correlation"]
        return resp.read().decode()


def _enqueue_one(broker, cid="c1"):
    payloads = [CFG.to_dict()]
    broker.enqueue(cid, [{
        "batch_id": batch_id_for(cid, payloads),
        "indices": [0],
        "configs": payloads,
    }], {}, manifest=payloads)


def test_metrics_scrape_parses_and_counts_itself(server):
    first, types = parse_exposition(_scrape(server))
    assert types["repro_broker_requests_total"] == "counter"
    assert types["repro_broker_request_seconds"] == "histogram"
    assert types["repro_broker_queue_depth"] == "gauge"

    second, _ = parse_exposition(_scrape(server))
    key = ("repro_broker_requests_total",
           frozenset({("endpoint", "/metrics"), ("code", "200")}))
    # The second scrape has observed the first (and possibly itself).
    assert second[key] >= first.get(key, 0) + 1


def test_counters_are_monotone_across_traffic(server):
    before, types = parse_exposition(_scrape(server))
    _enqueue_one(server.broker)
    urllib.request.urlopen(f"{server.url}/status", timeout=10).read()
    after, _ = parse_exposition(_scrape(server))
    cumulative = counter_samples(before, types)
    for key, value in cumulative.items():
        assert after.get(key, 0) >= value, f"counter went backwards: {key}"


def test_queue_depth_and_enqueue_counters_reflect_state(server):
    _enqueue_one(server.broker)
    samples, _ = parse_exposition(_scrape(server))
    assert samples[("repro_broker_queue_depth",
                    frozenset({("state", "queued")}))] == 1
    assert samples[("repro_broker_batches_enqueued_total",
                    frozenset())] == 1
    assert samples[("repro_broker_campaigns", frozenset())] == 1


def test_runner_counters_reexported_from_heartbeats(server):
    server.broker.heartbeat("r7", {
        "runs_per_sec": 2.5,
        "obs": {"backoff_retries": 3, "batch_seconds_total": 1.25,
                "batches_done": 2},
    })
    samples, _ = parse_exposition(_scrape(server))
    runner = frozenset({("runner", "r7")})
    assert samples[("repro_runner_runs_per_sec", runner)] == 2.5
    assert samples[("repro_runner_backoff_retries_total", runner)] == 3
    assert samples[("repro_runner_batch_seconds_total", runner)] == 1.25


def test_not_found_and_bad_json_are_counted_and_correlated(server):
    with pytest.raises(urllib.error.HTTPError) as err:
        urllib.request.urlopen(f"{server.url}/nope", timeout=10)
    assert err.value.code == 404
    assert err.value.headers["X-Repro-Correlation"]

    req = urllib.request.Request(
        f"{server.url}/claim", data=b"{not json",
        headers={"Content-Type": "application/json"},
    )
    with pytest.raises(urllib.error.HTTPError) as err:
        urllib.request.urlopen(req, timeout=10)
    assert err.value.code == 400

    samples, _ = parse_exposition(_scrape(server))
    assert samples[("repro_broker_rejects_total",
                    frozenset({("reason", "not_found")}))] == 1
    assert samples[("repro_broker_rejects_total",
                    frozenset({("reason", "bad_json")}))] == 1
    assert samples[("repro_broker_requests_total",
                    frozenset({("endpoint", "other"),
                               ("code", "404")}))] == 1


def test_unauthorized_post_is_counted(tmp_path):
    broker = Broker(tmp_path / "store", lease_s=30.0)
    server = BrokerServer(broker, token="sekret").start()
    try:
        req = urllib.request.Request(
            f"{server.url}/claim",
            data=json.dumps({"runner_id": "r1"}).encode(),
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(req, timeout=10)
        assert err.value.code == 401
        text = urllib.request.urlopen(
            f"{server.url}/metrics", timeout=10).read().decode()
        samples, _ = parse_exposition(text)
        assert samples[("repro_broker_rejects_total",
                        frozenset({("reason", "unauthorized")}))] == 1
    finally:
        server.shutdown()
        broker.journal.close()
