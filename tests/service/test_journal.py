"""Journal append/replay semantics + broker crash recovery from disk.

The journal is the broker's crash-consistency story: every batch state
transition is fsynced to an append-only JSONL before the broker commits
it in memory, and a restarted broker rebuilds queue position, leases,
and done-counts from the journal alone -- no coordinator prescan.
"""

import json

from repro.harness.runner import RunConfig
from repro.service.broker import Broker
from repro.service.journal import Journal, _crc, slim_item
from repro.service.protocol import batch_id_for

BASE = RunConfig(scheme="baseline", workload="sop", num_mem_ops=300,
                 num_cores=2, dc_megabytes=8)
GRID = [BASE.with_(seed=s) for s in (1, 2, 3, 4)]


def _payloads(configs):
    return [c.to_dict() for c in configs]


def _enqueue(broker, cid, configs, start_index=0):
    payloads = _payloads(configs)
    bid = batch_id_for(cid, payloads)
    broker.enqueue(cid, [{
        "batch_id": bid,
        "indices": list(range(start_index, start_index + len(payloads))),
        "configs": payloads,
    }], {}, manifest=payloads)
    return bid


def test_append_and_replay_round_trip(tmp_path):
    j = Journal(tmp_path)
    j.append("c1", "enqueue", batch_id="b1", indices=[0], configs=[{}])
    j.append("c1", "lease", batch_id="b1", runner_id="r1", attempt=1)
    j.append("c2", "enqueue", batch_id="b9", indices=[3], configs=[{}])
    j.close()

    fresh = Journal(tmp_path)
    replayed = fresh.replay()
    assert set(replayed) == {"c1", "c2"}
    assert [e["op"] for e in replayed["c1"]] == ["enqueue", "lease"]
    assert replayed["c1"][1]["runner_id"] == "r1"
    assert fresh.corrupt_lines == 0


def test_replay_skips_torn_tail_line(tmp_path):
    j = Journal(tmp_path)
    j.append("c1", "enqueue", batch_id="b1", indices=[0], configs=[{}])
    j.append("c1", "complete", batch_id="b1", runner_id="r", items=[])
    j.close()
    # The classic crash shape: power died mid-append, leaving a torn
    # final line.  Everything before it must replay intact.
    path = j.path_for("c1")
    with open(path, "ab") as fh:
        fh.write(b'{"op": "requeue", "batch_id": "b1", "cr')

    fresh = Journal(tmp_path)
    replayed = fresh.replay("c1")
    assert [e["op"] for e in replayed["c1"]] == ["enqueue", "complete"]
    assert fresh.corrupt_lines == 1


def test_replay_rejects_crc_mismatch(tmp_path):
    j = Journal(tmp_path)
    j.append("c1", "enqueue", batch_id="b1", indices=[0], configs=[{}])
    j.append("c1", "lease", batch_id="b1", runner_id="r1", attempt=1)
    j.close()
    path = j.path_for("c1")
    lines = path.read_bytes().splitlines()
    # Flip a byte inside the second entry's payload: it still parses as
    # JSON but the CRC no longer matches -- a silent bit flip.
    doctored = json.loads(lines[1])
    doctored["runner_id"] = "rX"  # content changed, crc stale
    lines[1] = json.dumps(doctored, sort_keys=True,
                          separators=(",", ":")).encode()
    path.write_bytes(b"\n".join(lines) + b"\n")

    fresh = Journal(tmp_path)
    replayed = fresh.replay("c1")
    assert [e["op"] for e in replayed["c1"]] == ["enqueue"]
    assert fresh.corrupt_lines == 1


def test_crc_covers_everything_but_itself(tmp_path):
    entry = {"op": "lease", "batch_id": "b", "crc": 0}
    base = _crc(entry)
    assert _crc({**entry, "crc": 12345}) == base  # crc field excluded
    assert _crc({**entry, "batch_id": "c"}) != base


def test_slim_item_drops_bulky_fields():
    item = {"index": 3, "status": "completed", "config": {"seed": 1},
            "result": {"big": [1] * 100}, "telemetry": {"x": 1},
            "traceback": "...", "error": ""}
    slim = slim_item(item)
    assert slim == {"index": 3, "status": "completed",
                    "config": {"seed": 1}, "error": ""}


def test_broker_journals_full_lifecycle(tmp_path):
    cid = "life"
    broker = Broker(tmp_path, lease_s=30.0)
    bid = _enqueue(broker, cid, GRID[:2])
    grant = broker.claim("r1")
    assert [b["batch_id"] for b in grant["batches"]] == [bid]
    items, _ = _run_batch(grant["batches"][0])
    broker.complete("r1", cid, bid, items)
    broker.journal.close()

    ops = [e["op"] for e in Journal(tmp_path).replay(cid)[cid]]
    assert ops == ["enqueue", "lease", "complete"]


def test_restarted_broker_resumes_from_journal_alone(tmp_path):
    """Completed batches stay done, queued ones keep their place --
    and the records endpoint rehydrates results from the store."""
    cid = "restart"
    broker = Broker(tmp_path, lease_s=30.0)
    done_bid = _enqueue(broker, cid, GRID[:2])
    pending_bid = _enqueue(broker, cid, GRID[2:], start_index=2)
    grant = broker.claim("r1")
    assert grant["batches"][0]["batch_id"] == done_bid
    items, _ = _run_batch(grant["batches"][0])
    broker.complete("r1", cid, done_bid, items)
    broker.journal.close()

    # SIGKILL-equivalent: the broker object is discarded; the successor
    # sees only the disk.
    broker2 = Broker(tmp_path, lease_s=30.0)
    assert broker2.replayed_campaigns == 1
    status = broker2.status(cid)["campaigns"][cid]
    assert status["batches"] == 2
    assert status["done"] == 1
    # The leased-then-never-granted batch is back in the queue...
    grant2 = broker2.claim("r2")
    assert [b["batch_id"] for b in grant2["batches"]] == [pending_bid]
    # ...and the done batch is NOT re-executable (no re-grant).
    assert broker2.claim("r3")["batches"] == []
    # Slim journal records rehydrate from the content-addressed store.
    records = broker2.records(cid)
    done_items = [r for r in records if r.get("result")]
    assert sorted(r["index"] for r in done_items) == [0, 1]
    broker2.journal.close()


def test_restart_reissues_fresh_lease_for_leased_batch(tmp_path):
    cid = "lease-restart"
    broker = Broker(tmp_path, lease_s=5.0)
    bid = _enqueue(broker, cid, GRID[:1])
    broker.claim("r1")
    broker.journal.close()

    # Restart while the batch is leased: the runner may still be alive,
    # so the successor must honor the lease (fresh expiry) rather than
    # hand the batch to someone else immediately.
    broker2 = Broker(tmp_path, lease_s=5.0)
    status = broker2.status(cid)["campaigns"][cid]
    assert status["leased"] == 1
    assert broker2.claim("r2")["batches"] == []
    # The original runner's late complete still lands.
    items, _ = _run_batch({
        "indices": [0], "configs": _payloads(GRID[:1]),
    })
    answer = broker2.complete("r1", cid, bid, items)
    assert answer["accepted"] is True
    broker2.journal.close()


def test_reenqueue_after_lost_store_backing_reruns(tmp_path):
    """A DONE batch whose store files vanished must run again when the
    coordinator resubmits it -- the journal must not pin the loss."""
    cid = "lost-backing"
    broker = Broker(tmp_path, lease_s=30.0)
    bid = _enqueue(broker, cid, GRID[:2])
    grant = broker.claim("r1")
    items, _ = _run_batch(grant["batches"][0])
    broker.complete("r1", cid, bid, items)
    broker.store.path_for(GRID[0]).unlink()  # partial store copy
    broker.journal.close()

    broker2 = Broker(tmp_path, lease_s=30.0)
    resubmit = broker2.enqueue(cid, [{
        "batch_id": bid,
        "indices": [0, 1],
        "configs": _payloads(GRID[:2]),
    }], {})
    assert resubmit["accepted"] == 1
    grant2 = broker2.claim("r2")
    assert [b["batch_id"] for b in grant2["batches"]] == [bid]
    broker2.journal.close()
    # And the reenqueue itself is journaled: a crash right here still
    # replays to a runnable batch.
    broker3 = Broker(tmp_path, lease_s=30.0)
    status = broker3.status(cid)["campaigns"][cid]
    assert status["done"] == 0 and status["leased"] == 1
    broker3.journal.close()


def test_backed_done_batch_resubmission_is_deduped(tmp_path):
    cid = "dedupe"
    broker = Broker(tmp_path, lease_s=30.0)
    bid = _enqueue(broker, cid, GRID[:2])
    grant = broker.claim("r1")
    items, _ = _run_batch(grant["batches"][0])
    broker.complete("r1", cid, bid, items)
    resubmit = broker.enqueue(cid, [{
        "batch_id": bid, "indices": [0, 1],
        "configs": _payloads(GRID[:2]),
    }], {})
    assert resubmit == {"accepted": 0, "skipped": 1, "batches": 1}
    broker.journal.close()


def test_journal_stats_reported_in_status(tmp_path):
    broker = Broker(tmp_path)
    _enqueue(broker, "s", GRID[:1])
    stats = broker.status()["journal"]
    assert stats["campaigns"] == 1
    assert stats["appends"] == 1
    assert stats["bytes"] > 0
    broker.journal.close()


def _run_batch(batch):
    from repro.service.runner import execute_batch

    return execute_batch({
        "batch_id": batch.get("batch_id", "b"),
        "campaign_id": batch.get("campaign_id", "c"),
        "indices": batch["indices"],
        "configs": batch["configs"],
        "meta": batch.get("meta", {}),
    })
