"""Process-level graceful degradation: SIGTERM drain, unreachable exits.

These tests use real subprocesses (the ``repro runner`` CLI) for the
signal semantics, and in-process ``main()`` calls for the one-line
unreachable-broker errors.
"""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.campaign import ResultStore
from repro.campaign.pool import Backoff
from repro.cli import main
from repro.harness.runner import RunConfig
from repro.service.broker import Broker, BrokerServer
from repro.service.protocol import BrokerClient, batch_id_for

#: Long enough (~1.5s of simulation) that SIGTERM reliably lands while
#: the batch is executing.
SLOW = [
    RunConfig(scheme="baseline", workload="sop", num_mem_ops=30_000,
              num_cores=2, dc_megabytes=8, seed=s)
    for s in (1, 2)
]


def _runner_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [p for p in sys.path if p]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    return env


def test_sigterm_mid_batch_drains_and_exits_zero(tmp_path):
    store = ResultStore(tmp_path / "store")
    broker = Broker(store.root, lease_s=30.0)
    cid = "drain"
    payloads = [c.to_dict() for c in SLOW]
    with BrokerServer(broker) as server:
        client = BrokerClient(server.url)
        client.enqueue(cid, [{
            "batch_id": batch_id_for(cid, payloads),
            "indices": [0, 1],
            "configs": payloads,
        }], {}, manifest=payloads)

        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "runner",
             "--broker", server.url, "--poll", "0.1", "--verbose"],
            env=_runner_env(), stdout=subprocess.PIPE,
            stderr=subprocess.PIPE, text=True,
        )
        try:
            # Wait until the batch is actually leased (claimed), then
            # SIGTERM mid-execution.
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if client.status(cid)["campaigns"][cid]["leased"] == 1:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("runner never claimed the batch")
            time.sleep(0.3)  # well inside the ~1.5s batch execution
            proc.send_signal(signal.SIGTERM)
            out, err = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()

        # Drained: exit 0, the in-flight batch was completed and
        # reported, nothing is left to re-execute elsewhere.
        assert proc.returncode == 0, (out, err)
        assert "draining" in out
        status = client.status(cid)["campaigns"][cid]
    assert status["done"] == 1 and status["runs_done"] == 2
    assert len(store) == 2
    broker.journal.close()


@pytest.fixture
def _fast_retries(monkeypatch):
    # The unreachable path normally backs off ~6s; keep the tests quick.
    import repro.service.protocol as protocol

    monkeypatch.setattr(
        protocol, "CLIENT_BACKOFF", Backoff(base=0.01, cap=0.02)
    )


def test_cli_runner_unreachable_broker_exits_2(_fast_retries, capsys):
    rc = main(["runner", "--broker", "127.0.0.1:9"])
    assert rc == 2
    err = capsys.readouterr().err.strip()
    assert err.startswith("error: broker unreachable at 127.0.0.1:9")
    assert len(err.splitlines()) == 1  # one line, no traceback


def test_cli_sweep_distributed_unreachable_broker_exits_2(
        _fast_retries, tmp_path, capsys):
    rc = main([
        "sweep", "--distributed", "--broker", "127.0.0.1:9",
        "--schemes", "baseline", "--workloads", "sop", "--seeds", "1",
        "--store", str(tmp_path / "store"), "--no-progress",
    ])
    assert rc == 2
    err = capsys.readouterr().err.strip()
    assert "broker unreachable at 127.0.0.1:9" in err
    assert "Traceback" not in err


def test_runner_gives_up_after_continuous_unreachable(_fast_retries):
    from repro.service.protocol import BrokerUnreachable
    from repro.service.runner import runner_loop

    client = BrokerClient("127.0.0.1:9", max_tries=2,
                          backoff=Backoff(base=0.01, cap=0.02))
    with pytest.raises(BrokerUnreachable):
        runner_loop("127.0.0.1:9", client=client, give_up_after_s=0.2,
                    install_signal_handlers=False)
