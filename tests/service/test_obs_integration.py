"""Acceptance: a distributed 12-config sweep with observability fully on
produces (a) a store byte-identical to a serial run, and (b) a merged,
schema-valid Perfetto service trace whose campaign -> enqueue -> claim ->
batch-run -> ingest spans share one trace id across processes."""

import threading

import pytest

from repro import obs
from repro.campaign import ResultStore, run_campaign
from repro.harness.runner import RunConfig, clear_cache
from repro.service.broker import Broker, BrokerServer
from repro.service.coordinator import run_distributed_campaign
from repro.service.runner import runner_loop
from repro.telemetry.timeline import describe_summary, summarize_trace
from repro.telemetry.trace_schema import validate_trace

BASE = RunConfig(scheme="baseline", workload="sop", num_mem_ops=300,
                 num_cores=2, dc_megabytes=8)
GRID = [BASE.with_(scheme=scheme, seed=seed)
        for scheme in ("baseline", "tdc", "nomad")
        for seed in (1, 2, 3, 4)]


@pytest.fixture(autouse=True)
def _fresh_memo():
    from repro.workloads.synthetic import (
        configure_trace_cache,
        trace_cache_stats,
    )

    disk_dir = trace_cache_stats()["disk_dir"] or None
    clear_cache()
    yield
    clear_cache()
    configure_trace_cache(disk_dir=disk_dir)


@pytest.fixture
def obs_dir(tmp_path):
    previous = obs.current_config()
    obs.configure(obs.ObsConfig(component="test", obs_dir=str(tmp_path / "obs")))
    yield tmp_path / "obs"
    obs.configure(previous)


def _run_distributed(tmp_path, configs):
    broker = Broker(tmp_path / "dist", lease_s=30.0)
    server = BrokerServer(broker).start()
    stop = threading.Event()
    threads = [
        threading.Thread(
            target=runner_loop, args=(server.url,),
            kwargs=dict(runner_id=f"obs-r{i}", poll_s=0.05, stop=stop,
                        give_up_after_s=None,
                        install_signal_handlers=False),
            daemon=True,
        )
        for i in range(2)
    ]
    for t in threads:
        t.start()
    try:
        campaign = run_distributed_campaign(
            configs, server.url, store=ResultStore(tmp_path / "dist"),
            poll_s=0.05, max_wait_s=120.0, progress=None,
        )
    finally:
        stop.set()
        for t in threads:
            t.join(timeout=10)
        server.shutdown()
        broker.journal.close()
    return campaign


def test_observed_sweep_is_bit_identical_and_traces_merge(tmp_path, obs_dir):
    campaign = _run_distributed(tmp_path, GRID)
    assert campaign.ok
    assert all(r.status in ("completed", "cached") for r in campaign.records)

    # -- byte-identity: obs stays fully on for the serial reference too.
    clear_cache()
    serial_store = ResultStore(tmp_path / "serial")
    serial = run_campaign(GRID, jobs=1, store=serial_store, progress=False)
    assert serial.ok
    dist_store = ResultStore(tmp_path / "dist")
    for cfg in GRID:
        assert dist_store.get(cfg) == serial_store.get(cfg), cfg

    # -- the merged cross-process trace is schema-valid and complete.
    doc = obs.merge_service_traces(obs_dir, out_path=obs_dir / "merged.json")
    assert validate_trace(doc) == []
    assert doc["otherData"]["spans_truncated"] == 0

    spans = [e for e in doc["traceEvents"] if e.get("ph") == "b"]
    by_name = {}
    for event in spans:
        by_name.setdefault(event["name"], []).append(event)
    for need in ("campaign", "enqueue", "claim", "batch-run", "ingest"):
        assert need in by_name, f"missing {need!r} in {sorted(by_name)}"

    # One campaign -> one trace id, shared by every span in every process.
    trace_ids = {e["args"]["trace_id"] for e in spans}
    assert trace_ids == {doc["otherData"]["trace_ids"][0]}
    assert len(by_name["campaign"]) == 1
    campaign_span = by_name["campaign"][0]

    # Parent chain: enqueue under campaign, batch-run under a claim,
    # ingest under the batch-run it reported (ids consistent across
    # processes and components).
    def ids(name):
        return {e["args"]["span_id"] for e in by_name[name]}

    for event in by_name["enqueue"]:
        assert event["args"]["parent_span_id"] == \
            campaign_span["args"]["span_id"]
    claim_ids, run_ids = ids("claim"), ids("batch-run")
    for event in by_name["batch-run"]:
        assert event["args"]["parent_span_id"] in claim_ids
    for event in by_name["ingest"]:
        assert event["args"]["parent_span_id"] in run_ids

    # Coordinator, broker, and runner tracks are distinct processes.
    components = {e["args"]["component"] for e in spans}
    assert components == {"coordinator", "broker", "runner"}
    assert len({e["pid"] for e in spans}) >= 3

    # -- timeline understands the merged service document.
    summary = summarize_trace(doc)
    assert "batch-run" in summary["service_spans"]
    assert summary["service_components"]["broker"] > 0
    assert summary["trace_ids"] == doc["otherData"]["trace_ids"]
    assert "service spans" in describe_summary(summary)

    # -- structured logs from every component landed in the obs dir.
    from repro.obs.cli import iter_log_records

    components = {r["component"] for r in iter_log_records(obs_dir)}
    assert {"broker", "runner"} <= components
