"""End-to-end service tests: broker HTTP server + runner loops.

Runners execute as threads in this process (``run_campaign`` with
``jobs=1`` stays in-process), which keeps these fast while still going
through the real HTTP protocol, lease machinery, and store ingestion.
The CI ``service-smoke`` job covers the subprocess-runner path.
"""

import threading

import pytest

from repro.campaign import ResultStore, run_campaign
from repro.harness.runner import RunConfig, clear_cache
from repro.service.broker import Broker, BrokerServer
from repro.service.coordinator import run_distributed_campaign
from repro.service.protocol import BrokerClient, BrokerError, batch_id_for
from repro.service.runner import runner_loop

BASE = RunConfig(scheme="baseline", workload="sop", num_mem_ops=300,
                 num_cores=2, dc_megabytes=8)
GRID = [BASE.with_(seed=s) for s in (1, 2, 3, 4)]


@pytest.fixture(autouse=True)
def _fresh_memo():
    # Concurrent runner *threads* interleave execute_batch's disk-layer
    # save/restore nondeterministically (real runners are processes),
    # so pin the host process's trace-cache config here too.
    from repro.workloads.synthetic import (
        configure_trace_cache,
        trace_cache_stats,
    )

    disk_dir = trace_cache_stats()["disk_dir"] or None
    clear_cache()
    yield
    clear_cache()
    configure_trace_cache(disk_dir=disk_dir)


def _start_runners(url, count=2, **kwargs):
    kwargs.setdefault("poll_s", 0.05)
    kwargs.setdefault("exit_when_idle", 1.0)
    threads = [
        threading.Thread(
            target=runner_loop, args=(url,),
            kwargs={"runner_id": f"t{i}", **kwargs}, daemon=True,
        )
        for i in range(count)
    ]
    for t in threads:
        t.start()
    return threads


def test_distributed_campaign_matches_serial_bitwise(tmp_path):
    serial_store = ResultStore(tmp_path / "serial")
    serial = run_campaign(GRID, jobs=1, store=serial_store, progress=False)
    assert serial.ok
    clear_cache()  # the distributed path must simulate, not hit the memo

    store = ResultStore(tmp_path / "dist")
    broker = Broker(store.root, lease_s=30.0)
    with BrokerServer(broker) as server:
        threads = _start_runners(server.url, count=2)
        campaign = run_distributed_campaign(
            GRID, server.url, store, jobs=2, max_wait_s=120.0,
            progress=False,
        )
        for t in threads:
            t.join(timeout=30)
    assert campaign.ok
    assert len(campaign.records) == len(GRID)
    # Same configs, same results, bit-for-bit.
    for ser, dist in zip(serial.records, campaign.records):
        assert dist.config == ser.config
        assert dist.result.to_dict() == ser.result.to_dict()
    # And the store files agree too (the acceptance bar for CI).
    serial_entries = dict(serial_store.iter_entries())
    dist_entries = dict(store.iter_entries())
    assert serial_entries.keys() == dist_entries.keys()
    for key in serial_entries:
        assert serial_entries[key]["result"] == dist_entries[key]["result"]


def test_dead_runner_lease_requeue_converges_without_duplicates(tmp_path):
    store = ResultStore(tmp_path / "store")
    broker = Broker(store.root, lease_s=1.0)  # short lease: fast requeue
    with BrokerServer(broker) as server:
        cid = "kill-test"
        payloads = [c.to_dict() for c in GRID[:2]]
        client = BrokerClient(server.url)
        client.enqueue(cid, [{
            "batch_id": batch_id_for(cid, payloads),
            "indices": [0, 1],
            "configs": payloads,
        }], {}, manifest=payloads)

        # A runner claims the batch and dies (never completes, never
        # heartbeats) -- the lease must expire and a live runner must
        # pick the batch up and finish the campaign.
        dead = client.claim("r-dead")["batches"]
        assert len(dead) == 1

        threads = _start_runners(server.url, count=1, exit_when_idle=3.0)
        deadline = 60.0
        import time
        t0 = time.monotonic()
        while time.monotonic() - t0 < deadline:
            status = client.status(cid)["campaigns"][cid]
            if status["done"] == status["batches"]:
                break
            time.sleep(0.1)
        else:
            pytest.fail("requeued batch never completed")
        for t in threads:
            t.join(timeout=30)

        status = client.status(cid)["campaigns"][cid]
        records = client.records(cid)
    # Zero lost, zero duplicated.
    assert status["runs_done"] == 2
    assert sorted(r["index"] for r in records) == [0, 1]
    assert broker.requeues >= 1
    assert all(r["status"] in ("completed", "cached") for r in records)
    assert len(store) == 2


def test_resume_after_broker_restart_runs_only_missing(tmp_path):
    store = ResultStore(tmp_path / "store")
    cid = "resume-test"

    broker = Broker(store.root, lease_s=30.0)
    with BrokerServer(broker) as server:
        threads = _start_runners(server.url, count=2)
        first = run_distributed_campaign(
            GRID, server.url, store, campaign_id=cid, jobs=2,
            max_wait_s=120.0, progress=False,
        )
        for t in threads:
            t.join(timeout=30)
    assert first.ok and len(store) == len(GRID)

    # Lose two results (e.g. a partial store copy); the broker process
    # is gone -- a fresh one only has the persisted manifest + store.
    removed = 0
    for cfg in GRID[:2]:
        store.path_for(cfg).unlink()
        removed += 1
    clear_cache()

    broker2 = Broker(store.root, lease_s=30.0)
    with BrokerServer(broker2) as server:
        threads = _start_runners(server.url, count=2)
        resumed = run_distributed_campaign(
            None, server.url, store, campaign_id=cid, resume=True,
            jobs=2, max_wait_s=120.0, progress=False,
        )
        for t in threads:
            t.join(timeout=30)
    assert resumed.ok
    assert len(resumed.records) == len(GRID)
    # Only the missing configs were re-enqueued and re-simulated.
    re_run = [r for r in resumed.records if r.status == "completed"]
    from_store = [r for r in resumed.records if r.source == "store"]
    assert len(re_run) == removed
    assert len(from_store) == len(GRID) - removed
    assert len(store) == len(GRID)


def test_resume_with_nothing_pending_never_needs_runners(tmp_path):
    store = ResultStore(tmp_path / "store")
    cid = "noop-resume"
    broker = Broker(store.root)
    with BrokerServer(broker) as server:
        threads = _start_runners(server.url, count=1)
        run_distributed_campaign(
            GRID[:2], server.url, store, campaign_id=cid, jobs=1,
            max_wait_s=120.0, progress=False,
        )
        for t in threads:
            t.join(timeout=30)

    # Fresh broker, no runners at all: everything resolves by prescan.
    # (Drop the in-process memo so the hits provably come from disk.)
    clear_cache()
    broker2 = Broker(store.root)
    with BrokerServer(broker2) as server:
        resumed = run_distributed_campaign(
            None, server.url, store, campaign_id=cid, resume=True,
            max_wait_s=10.0, progress=False,
        )
    assert resumed.ok
    assert all(r.source == "store" for r in resumed.records)


def test_lease_renewed_by_timer_during_long_run(monkeypatch):
    # Progress events only fire when a run completes; a single run
    # longer than the lease must still heartbeat (else the broker
    # requeues the batch and another runner re-executes it).
    import time

    import repro.service.runner as runner_mod

    class StubClient:
        def __init__(self):
            self.heartbeats = []
            self.completed = []
            self.claims = 0

        def claim(self, rid, max_batches=1):
            self.claims += 1
            batches = [] if self.claims > 1 else [{
                "campaign_id": "c1", "batch_id": "b1",
                "indices": [0], "configs": [BASE.to_dict()],
                "meta": {}, "attempt": 1,
            }]
            return {"batches": batches, "lease_s": 0.3}

        def heartbeat(self, rid, payload, retry=False):
            self.heartbeats.append(payload)
            return {"renewed": 1}

        def complete(self, rid, cid, bid, items, cache_stats=None):
            self.completed.append(bid)
            return {"accepted": True}

    def slow_execute(batch, jobs=1, on_event=None):
        time.sleep(1.0)  # several lease periods, zero progress events
        return [], {}

    monkeypatch.setattr(runner_mod, "execute_batch", slow_execute)
    stub = StubClient()
    done = runner_loop("ignored", client=stub, max_batches=1)
    assert done == 1 and stub.completed == ["b1"]
    # lease_s=0.3 -> renewal every 0.1s; a 1s run must land several.
    assert len(stub.heartbeats) >= 2


def test_runner_restores_trace_cache_config(tmp_path):
    # Runner loops may execute as threads inside a larger process; the
    # disk trace-cache layer they point at the campaign store must not
    # leak into the host process after the batch finishes.
    from repro.service.runner import execute_batch
    from repro.service.protocol import batch_id_for
    from repro.workloads.synthetic import trace_cache_stats

    before = trace_cache_stats()["disk_dir"]
    payloads = [GRID[0].to_dict()]
    items, _ = execute_batch({
        "batch_id": batch_id_for("t", payloads),
        "campaign_id": "t",
        "indices": [0],
        "configs": payloads,
        "meta": {"trace_dir": str(tmp_path / "traces")},
    })
    assert len(items) == 1 and items[0]["status"] == "completed"
    assert trace_cache_stats()["disk_dir"] == before


def test_resume_unknown_campaign_fails_loudly(tmp_path):
    store = ResultStore(tmp_path / "store")
    broker = Broker(store.root)
    with BrokerServer(broker) as server:
        with pytest.raises(BrokerError, match="unknown campaign"):
            run_distributed_campaign(
                None, server.url, store, campaign_id="ghost", resume=True,
            )
