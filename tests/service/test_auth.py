"""Broker HTTP auth (``X-Repro-Token``) and CORS scoping."""

import json
import urllib.error
import urllib.request

import pytest

from repro.service.broker import Broker, BrokerServer
from repro.service.protocol import PROTOCOL_VERSION, BrokerClient, BrokerError


@pytest.fixture(autouse=True)
def _clean_env(monkeypatch):
    # Server and client both default to this variable; tests pin it
    # explicitly so an ambient value cannot change their meaning.
    monkeypatch.delenv("REPRO_BROKER_TOKEN", raising=False)


def _post(url, path, payload, headers=None):
    body = dict(payload)
    body["protocol"] = PROTOCOL_VERSION
    req = urllib.request.Request(
        url + path, data=json.dumps(body).encode(),
        headers={"Content-Type": "application/json", **(headers or {})},
    )
    return urllib.request.urlopen(req, timeout=10)


def test_mutating_endpoints_require_token(tmp_path):
    broker = Broker(tmp_path / "store")
    with BrokerServer(broker, token="sesame") as server:
        payload = {"campaign_id": "c1", "batches": [], "meta": {}}
        with pytest.raises(urllib.error.HTTPError) as err:
            _post(server.url, "/enqueue", payload)
        assert err.value.code == 401
        with pytest.raises(urllib.error.HTTPError) as err:
            _post(server.url, "/enqueue", payload,
                  headers={"X-Repro-Token": "wrong"})
        assert err.value.code == 401
        resp = _post(server.url, "/enqueue", payload,
                     headers={"X-Repro-Token": "sesame"})
        assert resp.status == 200
        # Read-only endpoints stay open (the dashboard poll).
        with urllib.request.urlopen(server.url + "/status",
                                    timeout=10) as resp:
            assert "campaigns" in json.loads(resp.read())


def test_broker_client_sends_token(tmp_path):
    broker = Broker(tmp_path / "store")
    with BrokerServer(broker, token="sesame") as server:
        denied = BrokerClient(server.url)
        with pytest.raises(BrokerError, match="HTTP 401"):
            denied.enqueue("c1", [], {})
        allowed = BrokerClient(server.url, token="sesame")
        assert allowed.enqueue("c1", [], {})["accepted"] == 0


def test_token_defaults_from_environment(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_BROKER_TOKEN", "from-env")
    broker = Broker(tmp_path / "store")
    with BrokerServer(broker) as server:
        assert server.token == "from-env"
        # A same-environment client authenticates automatically --
        # export the variable once to secure the whole fleet.
        assert BrokerClient(server.url).enqueue(
            "c1", [], {}
        )["accepted"] == 0


def test_cors_restricted_to_status(tmp_path):
    broker = Broker(tmp_path / "store")
    with BrokerServer(broker) as server:
        with urllib.request.urlopen(server.url + "/status",
                                    timeout=10) as resp:
            assert resp.headers.get("Access-Control-Allow-Origin") == "*"
        with urllib.request.urlopen(server.url + "/dashboard",
                                    timeout=10) as resp:
            assert resp.headers.get("Access-Control-Allow-Origin") is None
        resp = _post(server.url, "/heartbeat",
                     {"runner_id": "r1", "stats": {}})
        assert resp.headers.get("Access-Control-Allow-Origin") is None
