"""SQLite result index: ingest, query, views, sync, invalidation."""

import sqlite3

import pytest

from repro.campaign import ResultStore
from repro.harness.runner import RunConfig, run_workload
from repro.service.index import QUERYABLE, ResultIndex, parse_where

CFG = RunConfig(scheme="baseline", workload="sop", num_mem_ops=300,
                num_cores=2, dc_megabytes=8)


def _ingest(index, store, cfg, ipc=0.5):
    index.ingest_result(
        store.key(cfg), cfg.to_dict(),
        {"ipc": ipc, "dc_access_time": 100.0, "os_stall_ratio": 0.1,
         "runtime_cycles": 1000, "instructions": 500},
        version=store.version,
    )


def test_ingest_and_query_round_trip(tmp_path):
    store = ResultStore(tmp_path)
    index = ResultIndex(tmp_path)
    _ingest(index, store, CFG, ipc=0.42)
    rows = index.query({"scheme": "baseline"})
    assert len(rows) == 1
    row = rows[0]
    assert row["key"] == store.key(CFG)
    assert row["status"] == "ok"
    assert row["workload"] == "sop"
    assert row["ipc"] == pytest.approx(0.42)
    assert row["metrics"]["runtime_cycles"] == 1000
    assert index.count() == 1
    assert index.count({"scheme": "nomad"}) == 0


def test_reingest_replaces_not_duplicates(tmp_path):
    store = ResultStore(tmp_path)
    index = ResultIndex(tmp_path)
    _ingest(index, store, CFG, ipc=0.1)
    _ingest(index, store, CFG, ipc=0.2)
    rows = index.query()
    assert len(rows) == 1
    assert rows[0]["ipc"] == pytest.approx(0.2)


def test_failure_views(tmp_path):
    store = ResultStore(tmp_path)
    index = ResultIndex(tmp_path)
    _ingest(index, store, CFG)
    quarantined = CFG.with_(seed=2)
    index.ingest_failure(
        store.key(quarantined), quarantined.to_dict(),
        {"failure_kind": "crash", "error": "boom"},
        version=store.version,
    )
    timed_out = CFG.with_(seed=3)
    index.ingest_failure(
        store.key(timed_out), timed_out.to_dict(),
        {"failure_kind": "hang", "error": "watchdog"},
        version=store.version, status="timeout",
    )
    assert index.count(status=["quarantined"]) == 1
    assert index.count(status=["failed", "timeout"]) == 1
    assert index.count(status=["ok"]) == 1
    row = index.query(status=["quarantined"])[0]
    assert row["failure_kind"] == "crash"
    assert row["error"] == "boom"


def test_failure_ingest_never_downgrades_ok_row(tmp_path):
    store = ResultStore(tmp_path)
    index = ResultIndex(tmp_path)
    _ingest(index, store, CFG, ipc=0.42)
    # A transient flake of an already-stored config (e.g. a guarded
    # re-run) must not report the key as failed: the store still holds
    # the good result.
    index.ingest_failure(
        store.key(CFG), CFG.to_dict(),
        {"failure_kind": "crash", "error": "flaky"},
        version=store.version, status="failed",
    )
    row = index.query()[0]
    assert row["status"] == "ok"
    assert row["ipc"] == pytest.approx(0.42)

    # The other direction upgrades: a later success replaces a failure.
    other = CFG.with_(seed=2)
    index.ingest_failure(
        store.key(other), other.to_dict(),
        {"failure_kind": "hang", "error": "watchdog"},
        version=store.version, status="timeout",
    )
    _ingest(index, store, other, ipc=0.5)
    assert index.query({"seed": 2})[0]["status"] == "ok"

    # Failure-over-failure still updates (timeout -> quarantined).
    third = CFG.with_(seed=3)
    index.ingest_failure(
        store.key(third), third.to_dict(),
        {"failure_kind": "hang", "error": "watchdog"},
        version=store.version, status="timeout",
    )
    index.ingest_failure(
        store.key(third), third.to_dict(),
        {"failure_kind": "crash", "error": "boom"},
        version=store.version,
    )
    assert index.query({"seed": 3})[0]["status"] == "quarantined"


def test_sync_from_store_matches_directory(tmp_path):
    store = ResultStore(tmp_path)
    res = run_workload(CFG)
    store.put(CFG, res)
    store.put(CFG.with_(seed=2), res)
    store.put_failure(CFG.with_(seed=3), {"failure_kind": "crash",
                                          "error": "boom"})
    index = ResultIndex(tmp_path)
    assert index.sync_from_store(store) == 3
    assert index.count(status=["ok"]) == 2
    assert index.count(status=["quarantined"]) == 1
    # Rows agree with the directory payloads, and re-sync is a no-op.
    keys = {key for key, _ in store.iter_entries()}
    assert {r["key"] for r in index.query(status=["ok"])} == keys
    assert index.sync_from_store(store) == 0


def test_sync_skips_corrupted_files(tmp_path):
    store = ResultStore(tmp_path)
    path = store.put(CFG, run_workload(CFG))
    (path.parent / "deadbeef.json").write_text("{truncated")
    index = ResultIndex(tmp_path)
    assert index.sync_from_store(store) == 1


def test_write_through_from_attached_store(tmp_path):
    store = ResultStore(tmp_path)
    index = ResultIndex(tmp_path)
    store.attach_index(index)
    store.put(CFG, run_workload(CFG))
    store.put_failure(CFG.with_(seed=2), {"failure_kind": "crash",
                                          "error": "x"})
    assert index.count(status=["ok"]) == 1
    assert index.count(status=["quarantined"]) == 1


def test_schema_version_mismatch_drops_and_rebuilds(tmp_path):
    store = ResultStore(tmp_path)
    index = ResultIndex(tmp_path)
    _ingest(index, store, CFG)
    index.close()
    # Simulate an index written by an older code version.
    conn = sqlite3.connect(tmp_path / "index.db")
    conn.execute("UPDATE meta SET v='0' WHERE k='schema_version'")
    conn.commit()
    conn.close()
    rebuilt = ResultIndex(tmp_path)
    assert rebuilt.count() == 0  # cache dropped, not mis-read
    assert rebuilt.stats()["schema_version"] >= 1
    # The directory refills it.
    store.put(CFG, run_workload(CFG))
    assert rebuilt.sync_from_store(store) == 1


def test_version_filter(tmp_path):
    store_v1 = ResultStore(tmp_path, version="1")
    store_v2 = ResultStore(tmp_path, version="2")
    index = ResultIndex(tmp_path)
    _ingest(index, store_v1, CFG)
    _ingest(index, store_v2, CFG)  # different key: version in the hash
    assert index.count() == 2
    assert index.count(version="1") == 1


def test_parse_where_types_and_errors():
    parsed = parse_where(["scheme=nomad", "seed=2", "ipc=0.5"])
    assert parsed == {"scheme": "nomad", "seed": 2, "ipc": 0.5}
    with pytest.raises(ValueError, match="column=value"):
        parse_where(["schemenomad"])
    with pytest.raises(ValueError, match="unknown --where column"):
        parse_where(["bogus=1"])
    with pytest.raises(ValueError, match="numeric column"):
        parse_where(["seed=abc"])
    assert "scheme" in QUERYABLE and "status" in QUERYABLE


def test_query_rejects_unknown_column(tmp_path):
    index = ResultIndex(tmp_path)
    with pytest.raises(ValueError, match="unknown query column"):
        index.query({"evil; DROP TABLE results": 1})


def test_limit_and_order(tmp_path):
    store = ResultStore(tmp_path)
    index = ResultIndex(tmp_path)
    for seed in (3, 1, 2):
        _ingest(index, store, CFG.with_(seed=seed))
    rows = index.query(limit=2)
    assert len(rows) == 2
    assert [r["seed"] for r in rows] == [1, 2]


# -- --since -----------------------------------------------------------------

def test_parse_duration_units_and_bare_seconds():
    from repro.service.index import parse_duration

    assert parse_duration("45s") == 45.0
    assert parse_duration("15m") == 900.0
    assert parse_duration("2h") == 7200.0
    assert parse_duration("1d") == 86400.0
    assert parse_duration("90") == 90.0
    assert parse_duration(" 1.5h ") == 5400.0


@pytest.mark.parametrize("bad", ["", "m", "abc", "-5m", "1w", "1h30m"])
def test_parse_duration_rejects_garbage(bad):
    from repro.service.index import parse_duration

    with pytest.raises(ValueError, match=r"NUMBER\[s\|m\|h\|d\]|duration"):
        parse_duration(bad)


def test_since_filters_by_updated_at(tmp_path):
    store = ResultStore(tmp_path)
    index = ResultIndex(tmp_path)
    _ingest(index, store, CFG)
    _ingest(index, store, CFG.with_(seed=2))
    # Age one row by an hour, straight in the table -- as if it had been
    # ingested by yesterday's campaign.
    index._conn.execute(
        "UPDATE results SET updated_at = updated_at - 3600 WHERE key = ?",
        (store.key(CFG),),
    )
    index._conn.commit()

    assert index.count() == 2
    assert index.count(since=600.0) == 1
    assert index.count(since=7200.0) == 2
    rows = index.query(since=600.0)
    assert [r["key"] for r in rows] == [store.key(CFG.with_(seed=2))]
    # Composes with where filters.
    assert index.count({"scheme": "baseline"}, since=600.0) == 1
    assert index.count({"scheme": "nomad"}, since=600.0) == 0
