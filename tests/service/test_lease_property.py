"""Property test: lease state machine under clock skew.

Drives the broker's queue through seeded random op sequences against an
injectable fake clock and checks the two lease invariants the service
layer leans on:

1. a lease never expires early -- the broker hands a leased batch to a
   second runner only after ``lease_s`` of fake time has passed since
   the holder's last renewal;
2. a batch completes at most once -- a late ``/complete`` from an
   expired lease's original holder is counted as a duplicate and never
   double-ingested (``runs_done`` and the store stay exact).
"""

import random

import pytest

from repro.harness.runner import RunConfig, run_workload
from repro.service.broker import Broker
from repro.service.protocol import batch_id_for

BASE = RunConfig(scheme="baseline", workload="sop", num_mem_ops=300,
                 num_cores=2, dc_megabytes=8)
GRID = [BASE.with_(seed=s) for s in (1, 2, 3, 4)]
LEASE = 10.0
CID = "lease-prop"

#: One result per grid slot, computed once (the property loop completes
#: batches with ready-made items; no execution inside the loop).
_RESULTS = {}


def _items(i):
    if i not in _RESULTS:
        _RESULTS[i] = run_workload(GRID[i])
    return [{
        "index": i,
        "status": "completed",
        "config": GRID[i].to_dict(),
        "result": _RESULTS[i].to_dict(),
    }]


class FakeClock:
    def __init__(self, t=1000.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


def _fresh(tmp_path, n=len(GRID)):
    clock = FakeClock()
    broker = Broker(tmp_path, lease_s=LEASE, clock=clock)
    bids = []
    for i, cfg in enumerate(GRID[:n]):
        payloads = [cfg.to_dict()]
        bid = batch_id_for(CID, payloads)
        # Distinct single-config batches (batch id covers the config).
        broker.enqueue(CID, [{
            "batch_id": bid, "indices": [i], "configs": payloads,
        }], {})
        bids.append(bid)
    return clock, broker, bids


@pytest.mark.parametrize("seed", range(10))
def test_lease_invariants_under_random_schedules(tmp_path, seed):
    rng = random.Random(seed)
    clock, broker, bids = _fresh(tmp_path)
    runners = ["r1", "r2", "r3"]
    # Model: per batch -- current holder, fake-time of last renewal,
    # whether a complete was accepted, and who ever held it.
    model = {b: {"holder": None, "renewed": None, "done": False,
                 "holders": set()} for b in bids}
    expected_dupes = 0

    for _ in range(80):
        op = rng.choice(["advance", "advance", "claim", "claim",
                         "heartbeat", "complete", "late_complete"])
        if op == "advance":
            clock.advance(rng.uniform(0.0, 7.0))
        elif op == "claim":
            rid = rng.choice(runners)
            for batch in broker.claim(rid)["batches"]:
                m = model[batch["batch_id"]]
                assert not m["done"], "done batch re-granted"
                if m["holder"] is not None and m["holder"] != rid:
                    # Invariant 1: a takeover implies the previous
                    # lease genuinely ran out -- never early.
                    assert clock.t >= m["renewed"] + LEASE, (
                        f"early expiry: granted at t={clock.t}, "
                        f"holder renewed at {m['renewed']}"
                    )
                m["holder"], m["renewed"] = rid, clock.t
                m["holders"].add(rid)
        elif op == "heartbeat":
            rid = rng.choice(runners)
            broker.heartbeat(rid, {})
            for m in model.values():
                # Renewal only applies while the lease is actually
                # held: an already-expired-and-requeued batch is not
                # resurrected by its old holder's heartbeat.
                if (m["holder"] == rid and not m["done"]
                        and clock.t < m["renewed"] + LEASE):
                    m["renewed"] = clock.t
        elif op in ("complete", "late_complete"):
            candidates = [
                (b, m) for b, m in model.items()
                if (m["holders"] if op == "late_complete"
                    else {m["holder"]} - {None})
            ]
            if not candidates:
                continue
            bid, m = rng.choice(candidates)
            rid = rng.choice(sorted(m["holders"])) \
                if op == "late_complete" else m["holder"]
            i = bids.index(bid)
            answer = broker.complete(rid, CID, bid, _items(i))
            if m["done"]:
                # Invariant 2: the first completion won; anything
                # after it is a counted duplicate, never re-ingested.
                assert answer["accepted"] is False
                expected_dupes += 1
            else:
                assert answer["accepted"] is True
                m["done"] = True
                m["holder"] = None

    status = broker.status(CID)["campaigns"][CID]
    done_batches = sum(1 for m in model.values() if m["done"])
    assert status["done"] == done_batches
    assert status["runs_done"] == done_batches  # one item per batch
    assert status["duplicate_completes"] == expected_dupes
    # Exactly the completed configs are in the store -- no loss, no
    # double-ingest artifacts.
    assert len(broker.store) == done_batches
    broker.journal.close()


def test_directed_skew_scenario(tmp_path):
    """The scripted worst case: renewals just inside the lease keep the
    batch pinned; one missed renewal loses it; the late complete from
    the original holder is a duplicate."""
    clock, broker, bids = _fresh(tmp_path, n=1)
    bid = broker.claim("r1")["batches"][0]["batch_id"]
    i = bids.index(bid)

    # Two renewal cycles, each just inside the lease window.
    for _ in range(2):
        clock.advance(LEASE - 0.5)
        assert broker.claim("r2")["batches"] == [], "lease expired early"
        assert broker.heartbeat("r1", {})["renewed"] == 1

    # Missed renewal: one tick past expiry the batch moves on.
    clock.advance(LEASE + 0.01)
    grant = broker.claim("r2")["batches"]
    assert [b["batch_id"] for b in grant] == [bid]
    assert broker.requeues == 1

    # r2 finishes first; r1's late complete must not double-ingest.
    assert broker.complete("r2", CID, bid, _items(i))["accepted"] is True
    late = broker.complete("r1", CID, bid, _items(i))
    assert late["accepted"] is False and late["reason"] == "already complete"
    status = broker.status(CID)["campaigns"][CID]
    assert status["runs_done"] == 1
    assert status["duplicate_completes"] == 1
    assert len(broker.store) == 1
    broker.journal.close()
