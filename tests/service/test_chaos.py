"""Chaos convergence suite: seeded fault schedules vs a serial oracle.

The acceptance bar for the whole service layer: under every seeded
fault schedule -- network faults, injected HTTP errors, disk faults,
runner kills, a broker SIGKILL+restart -- a 12-config campaign's
result store must end up byte-identical to a plain serial run's, with
zero lost and zero double-ingested grid slots.
"""

import json

import pytest

from repro.campaign import ResultStore, run_campaign
from repro.harness.runner import RunConfig, clear_cache
from repro.service.chaos import (
    ALL_KINDS,
    FS_BITFLIP,
    FS_ENOSPC,
    FS_TORN,
    KILL_BROKER,
    KILL_RUNNER,
    NETWORK_KINDS,
    FaultPlan,
    FaultSpec,
    faulty_fs,
    run_chaos_campaign,
    store_file_map,
    stores_identical,
)
from repro.service.index import ResultIndex
from repro.service.journal import Journal
from repro.service.scrub import scrub_store

BASE = RunConfig(scheme="baseline", workload="sop", num_mem_ops=300,
                 num_cores=2, dc_megabytes=8)
#: The 12-config acceptance grid: every scheme, four seeds.
GRID12 = [
    BASE.with_(scheme=scheme, seed=seed)
    for scheme in ("baseline", "tdc", "nomad")
    for seed in (1, 2, 3, 4)
]


@pytest.fixture(autouse=True)
def _fresh_memo():
    # Chaos runners execute as threads in this process; pin the host
    # trace-cache config so batch-local disk layers don't leak.
    from repro.workloads.synthetic import (
        configure_trace_cache,
        trace_cache_stats,
    )

    disk_dir = trace_cache_stats()["disk_dir"] or None
    clear_cache()
    yield
    clear_cache()
    configure_trace_cache(disk_dir=disk_dir)


@pytest.fixture(scope="module")
def serial_root(tmp_path_factory):
    """The oracle: the same grid run serially, once per module."""
    root = tmp_path_factory.mktemp("serial") / "store"
    # This module-scoped fixture is set up before the function-scoped
    # _fresh_memo autouse; if an earlier test already ran part of the
    # grid, memo hits would skip the store write and leave the oracle
    # incomplete.
    clear_cache()
    campaign = run_campaign(GRID12, jobs=1, store=ResultStore(root),
                            progress=False)
    assert campaign.ok
    return root


def _assert_converged(result, chaos_root, serial_root):
    assert result.ok
    assert len(result.records) == len(GRID12)
    assert sorted(r.index for r in result.records) == list(range(len(GRID12)))
    identical, diffs = stores_identical(chaos_root, serial_root)
    assert identical, f"store diverged from serial oracle: {diffs}"


def test_no_faults_is_byte_identical_to_serial(tmp_path, serial_root):
    result, report = run_chaos_campaign(
        GRID12, tmp_path / "chaos", runners=2, lease_s=5.0,
        max_wait_s=120.0,
    )
    _assert_converged(result, tmp_path / "chaos", serial_root)
    assert report["broker_restarts"] == 0
    assert report["runner_kills"] == 0


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_seeded_network_schedules_converge(tmp_path, serial_root, seed):
    plan = FaultPlan.seeded(seed, kinds=NETWORK_KINDS, max_at=3)
    result, report = run_chaos_campaign(
        GRID12, tmp_path / "chaos", plan=plan, runners=2, lease_s=5.0,
        max_wait_s=120.0,
    )
    _assert_converged(result, tmp_path / "chaos", serial_root)
    fired = {f[0] for f in report["plan"]["fired"]}
    # The chatty endpoints (/status, /claim) see far more than max_at
    # ops, so a seeded schedule actually exercises its faults.
    assert len(fired) >= 4, f"too few faults fired: {report['plan']}"


def test_broker_kill_restart_resumes_from_journal(tmp_path, serial_root):
    cid = "chaos-broker-kill"
    plan = FaultPlan(
        [FaultSpec(kind=KILL_BROKER, path="broker", at=1)], seed=42
    )
    result, report = run_chaos_campaign(
        GRID12, tmp_path / "chaos", plan=plan, runners=2, lease_s=5.0,
        max_wait_s=120.0, campaign_id=cid,
    )
    _assert_converged(result, tmp_path / "chaos", serial_root)
    assert report["broker_restarts"] == 1
    # The successor broker resumed from the journal alone: no batch
    # that completed before the kill was ever leased out again.
    entries = Journal(tmp_path / "chaos").replay(cid)[cid]
    completed_at = {}
    for pos, entry in enumerate(entries):
        if entry["op"] == "complete":
            assert entry["batch_id"] not in completed_at, \
                "batch completed twice"
            completed_at[entry["batch_id"]] = pos
        elif entry["op"] == "lease":
            assert entry["batch_id"] not in completed_at, \
                "completed batch re-leased after broker restart"
    assert len(completed_at) > 0


def test_runner_kill_mid_batch_requeues_and_converges(tmp_path, serial_root):
    # The worst client-side moment: the batch is executed but the
    # runner dies right before reporting it.  The lease must expire,
    # the batch requeue, and a surviving runner redo the work.
    plan = FaultPlan(
        [FaultSpec(kind=KILL_RUNNER, path="/complete", at=1)], seed=7
    )
    result, report = run_chaos_campaign(
        GRID12, tmp_path / "chaos", plan=plan, runners=2, lease_s=2.0,
        max_wait_s=120.0,
    )
    _assert_converged(result, tmp_path / "chaos", serial_root)
    assert report["runner_kills"] == 1
    assert report["requeues"] >= 1


def test_disk_faults_detected_by_scrub_then_healed(tmp_path, serial_root):
    # Torn write + bit flip + ENOSPC on store records.  ENOSPC fails
    # the ingest (the broker 500s, the runner retries, the rewrite
    # succeeds); torn/bitflip *survive to disk* -- the campaign still
    # converges in memory, scrub finds the damage, and a healing rerun
    # restores byte-identity.
    chaos_root = tmp_path / "chaos"
    plan = FaultPlan([
        FaultSpec(kind=FS_TORN, path="store", at=2),
        FaultSpec(kind=FS_ENOSPC, path="store", at=5),
        FaultSpec(kind=FS_BITFLIP, path="store", at=8),
    ], seed=3)
    with faulty_fs(plan) as fs:
        result, report = run_chaos_campaign(
            GRID12, chaos_root, plan=plan, runners=2, lease_s=5.0,
            max_wait_s=120.0,
        )
    assert result.ok and len(result.records) == len(GRID12)
    assert len(fs.injected) == 3

    store = ResultStore(chaos_root)
    scrub = scrub_store(store, ResultIndex(store.root))
    # ENOSPC never reached disk; torn + bitflip did and must be caught.
    assert len(scrub["corrupt"]) == 2
    assert scrub["moved"] == 2

    clear_cache()  # the heal must recompute, not hit the in-process memo
    healed = run_campaign(GRID12, jobs=1, store=store, progress=False)
    assert healed.ok
    # Only the quarantined slots were recomputed.
    assert sum(1 for r in healed.records if r.status == "completed") == 2
    identical, diffs = stores_identical(chaos_root, serial_root)
    assert identical, diffs
    assert scrub_store(store)["clean"] is True


def test_capstone_every_fault_site_in_one_schedule(tmp_path, serial_root):
    """All 12 fault kinds in a single seeded schedule; the store must
    still converge to the serial oracle after scrub + heal."""
    chaos_root = tmp_path / "chaos"
    plan = FaultPlan.seeded(5, kinds=ALL_KINDS, max_at=3)
    with faulty_fs(plan):
        result, report = run_chaos_campaign(
            GRID12, chaos_root, plan=plan, runners=3, lease_s=2.0,
            max_wait_s=180.0,
        )
    assert result.ok and len(result.records) == len(GRID12)
    fired = {f[0] for f in report["plan"]["fired"]}
    assert len(fired) >= 8, (
        f"schedule exercised only {sorted(fired)}; "
        f"outstanding: {report['plan']['outstanding']}"
    )

    # Disk faults may have corrupted records on disk; scrub + rerun
    # must converge to the oracle byte-for-byte.
    store = ResultStore(chaos_root)
    scrub_store(store, ResultIndex(store.root))
    clear_cache()
    healed = run_campaign(GRID12, jobs=1, store=store, progress=False)
    assert healed.ok
    identical, diffs = stores_identical(chaos_root, serial_root)
    assert identical, diffs
    # Zero lost, zero double-ingested grid slots.
    assert len(store) == len(GRID12)


def test_store_file_map_scopes_to_records(tmp_path):
    store = ResultStore(tmp_path / "s")
    from repro.harness.runner import run_workload

    store.put(BASE, run_workload(BASE))
    store.put_failure(BASE.with_(seed=9), {"failure_kind": "crash",
                                           "error": "x"})
    (tmp_path / "s" / "service").mkdir()
    (tmp_path / "s" / "service" / "noise.json").write_text("{}")
    files = store_file_map(tmp_path / "s")
    assert len(files) == 2
    assert all("service" not in rel for rel in files)


def test_cli_chaos_smoke(tmp_path, capsys):
    from repro.cli import main

    rc = main([
        "chaos", "--seed", "1", "--schemes", "baseline",
        "--seeds", "1,2", "--runners", "2", "--lease", "5",
        "--store", str(tmp_path), "--json",
    ])
    out = json.loads(capsys.readouterr().out)
    assert rc == 0, out
    assert out["ok"] is True
    assert out["identical"] is True and out["scrub_clean"] is True
