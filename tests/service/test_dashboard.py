"""Broker HTTP surface: dashboard page, status endpoint, error paths."""

import json
import urllib.error
import urllib.request

import pytest

from repro.service.broker import Broker, BrokerServer
from repro.service.dashboard import render_dashboard
from repro.service.protocol import PROTOCOL_VERSION


@pytest.fixture
def server(tmp_path):
    broker = Broker(tmp_path / "store")
    with BrokerServer(broker) as srv:
        yield srv


def _get(url):
    with urllib.request.urlopen(url, timeout=10) as resp:
        return resp.status, resp.headers, resp.read().decode()


def test_render_dashboard_embeds_broker_url():
    html = render_dashboard("http://broker:8765")
    assert "__BROKER_URL__" not in html
    assert '"http://broker:8765"' in html
    assert "<!DOCTYPE html>" in html
    # Same-origin mode: empty string, the page falls back to its origin.
    assert '""' in render_dashboard("")
    # Trailing slash would double up with the /status path.
    assert '"http://b:1"' in render_dashboard("http://b:1/")


def test_broker_serves_dashboard(server):
    for path in ("/", "/dashboard"):
        status, headers, body = _get(server.url + path)
        assert status == 200
        assert "text/html" in headers["Content-Type"]
        assert "repro campaign service" in body
        assert "/status" in body  # the page polls the broker


def test_status_endpoint_shape(server):
    status, headers, body = _get(server.url + "/status")
    assert status == 200
    assert headers["Access-Control-Allow-Origin"] == "*"
    payload = json.loads(body)
    assert payload["protocol"] == PROTOCOL_VERSION
    assert payload["campaigns"] == {}
    assert payload["runners"] == {}
    assert "uptime_s" in payload and "store" in payload


def test_unknown_endpoint_is_404(server):
    with pytest.raises(urllib.error.HTTPError) as exc:
        _get(server.url + "/nope")
    assert exc.value.code == 404


def test_post_with_wrong_protocol_is_rejected(server):
    req = urllib.request.Request(
        server.url + "/claim",
        data=json.dumps({"protocol": 99, "runner_id": "r1"}).encode(),
        headers={"Content-Type": "application/json"},
    )
    with pytest.raises(urllib.error.HTTPError) as exc:
        urllib.request.urlopen(req, timeout=10)
    assert exc.value.code == 400
    detail = json.loads(exc.value.read().decode())
    assert "protocol version mismatch" in detail["error"]
