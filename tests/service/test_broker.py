"""Broker queue semantics: leases, requeue, dedup, durable manifests.

Pure :class:`Broker` unit tests with an injectable clock -- no sockets.
"""

import pytest

from repro.campaign import ResultStore
from repro.harness.runner import RunConfig, run_workload
from repro.service.broker import Broker
from repro.service.protocol import BrokerError, batch_id_for

CFG = RunConfig(scheme="baseline", workload="sop", num_mem_ops=300,
                num_cores=2, dc_megabytes=8)


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now

    def advance(self, s):
        self.now += s


def _batches(cid, configs, per_batch=2):
    out = []
    for start in range(0, len(configs), per_batch):
        chunk = configs[start:start + per_batch]
        payloads = [c.to_dict() for c in chunk]
        out.append({
            "batch_id": batch_id_for(cid, payloads),
            "indices": list(range(start, start + len(chunk))),
            "configs": payloads,
        })
    return out


def _item(cfg, index, status="completed", result=None, **extra):
    item = {"index": index, "config": cfg.to_dict(), "status": status,
            "result": result}
    item.update(extra)
    return item


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def broker(tmp_path, clock):
    return Broker(tmp_path / "store", lease_s=30.0, clock=clock)


def test_enqueue_claim_complete_ingests_into_store(broker, clock):
    configs = [CFG, CFG.with_(seed=2)]
    answer = broker.enqueue("c1", _batches("c1", configs), {"retries": 1},
                            manifest=[c.to_dict() for c in configs])
    assert answer == {"accepted": 1, "skipped": 0, "batches": 1}

    grant = broker.claim("r1")
    assert len(grant["batches"]) == 1
    batch = grant["batches"][0]
    assert batch["meta"]["retries"] == 1
    assert batch["attempt"] == 1

    res = run_workload(CFG)
    items = [_item(c, i, result=res.to_dict())
             for i, c in enumerate(configs)]
    answer = broker.complete("r1", "c1", batch["batch_id"], items)
    assert answer == {"accepted": True}

    # Records land in the store and the index, keyed like any campaign.
    assert broker.store.get(CFG) == res
    assert broker.index.count(status=["ok"]) == 2
    status = broker.status("c1")["campaigns"]["c1"]
    assert status["done"] == 1 and status["queued"] == 0
    assert status["runs_done"] == 2
    assert broker.records("c1")[0]["index"] == 0


def test_enqueue_is_idempotent(broker):
    batches = _batches("c1", [CFG, CFG.with_(seed=2)])
    broker.enqueue("c1", batches, {})
    answer = broker.enqueue("c1", batches, {})
    assert answer == {"accepted": 0, "skipped": 1, "batches": 1}
    # Still only one claimable batch.
    assert len(broker.claim("r1", max_batches=5)["batches"]) == 1


def test_expired_lease_requeues_and_late_complete_is_dropped(broker, clock):
    configs = [CFG]
    broker.enqueue("c1", _batches("c1", configs), {})
    batch = broker.claim("r-dying")["batches"][0]

    # Within the lease nothing is claimable by others.
    assert broker.claim("r2")["batches"] == []
    clock.advance(31.0)  # lease_s=30 expires
    regrant = broker.claim("r2")["batches"]
    assert len(regrant) == 1
    assert regrant[0]["batch_id"] == batch["batch_id"]
    assert regrant[0]["attempt"] == 2
    assert broker.status()["requeues"] == 1

    res = run_workload(CFG)
    items = [_item(CFG, 0, result=res.to_dict())]
    assert broker.complete("r2", "c1", batch["batch_id"], items) == {
        "accepted": True
    }
    # The original runner finishing late must not double-ingest.
    answer = broker.complete("r-dying", "c1", batch["batch_id"], items)
    assert answer["accepted"] is False
    campaign = broker.status("c1")["campaigns"]["c1"]
    assert campaign["runs_done"] == 1
    assert campaign["duplicate_completes"] == 1
    assert len(broker.records("c1")) == 1


def test_complete_ingests_records_before_batch_counts_done(broker, clock):
    # The coordinator breaks its drain loop on done == batches and
    # immediately fetches /records: a batch must never count done while
    # its items are still mid-ingestion, however slow the store is.
    configs = [CFG, CFG.with_(seed=2)]
    broker.enqueue("c1", _batches("c1", configs), {})
    batch = broker.claim("r1")["batches"][0]
    res = run_workload(CFG)
    items = [_item(c, i, result=res.to_dict())
             for i, c in enumerate(configs)]

    observed = []
    orig_put = broker.store.put

    def slow_put(cfg, result):
        # What a polling coordinator sees while this item lands.
        status = broker.status("c1")["campaigns"]["c1"]
        observed.append(status["done"])
        # The lease must survive an arbitrarily slow ingest...
        clock.advance(1000.0)
        assert broker.claim("r-thief")["batches"] == []
        # ...and a duplicate /complete racing it is dropped.
        answer = broker.complete("r-thief", "c1", batch["batch_id"], items)
        assert answer["accepted"] is False
        return orig_put(cfg, result)

    broker.store.put = slow_put
    answer = broker.complete("r1", "c1", batch["batch_id"], items)
    assert answer == {"accepted": True}
    assert observed == [0, 0]  # never done before records were visible
    status = broker.status("c1")["campaigns"]["c1"]
    assert status["done"] == 1 and status["runs_done"] == 2
    assert len(broker.records("c1")) == 2
    assert broker.status()["requeues"] == 0


def test_failed_ingest_leaves_batch_leased_for_requeue(broker, clock):
    broker.enqueue("c1", _batches("c1", [CFG]), {})
    batch = broker.claim("r1")["batches"][0]
    res = run_workload(CFG)
    items = [_item(CFG, 0, result=res.to_dict())]

    def broken_put(cfg, result):
        raise OSError("disk full")

    orig_put = broker.store.put
    broker.store.put = broken_put
    with pytest.raises(OSError):
        broker.complete("r1", "c1", batch["batch_id"], items)
    # Not done, but not stuck either: the lease expires, the batch
    # requeues, and a healthy completion converges.
    assert broker.status("c1")["campaigns"]["c1"]["done"] == 0
    broker.store.put = orig_put
    clock.advance(31.0)
    regrant = broker.claim("r2")["batches"]
    assert len(regrant) == 1
    assert broker.complete(
        "r2", "c1", batch["batch_id"], items
    )["accepted"] is True
    assert broker.status("c1")["campaigns"]["c1"]["done"] == 1


def test_heartbeats_own_runner_cache_stats(broker, clock):
    broker.enqueue("c1", _batches("c1", [CFG]), {})
    batch = broker.claim("r1")["batches"][0]
    # A heartbeat carries the runner process's *cumulative* counters.
    broker.heartbeat(
        "r1", {"cache": {"snapshot": {"hits": 10, "misses": 2}}}
    )
    res = run_workload(CFG)
    broker.complete(
        "r1", "c1", batch["batch_id"],
        [_item(CFG, 0, result=res.to_dict())],
        cache_stats={"snapshot": {"hits": 3, "misses": 1}},
    )
    status = broker.status()
    # The per-batch delta lands in the campaign totals...
    assert status["campaigns"]["c1"]["cache_counts"]["snapshot"]["hits"] == 3
    # ...but is not merged on top of the cumulative heartbeat numbers
    # (10 + 3 would double-count the runner's hit rate).
    assert status["runners"]["r1"]["stats"]["cache"]["snapshot"] == {
        "hits": 10, "misses": 2,
    }


def test_heartbeat_renews_leases(broker, clock):
    broker.enqueue("c1", _batches("c1", [CFG]), {})
    broker.claim("r1")
    clock.advance(25.0)
    assert broker.heartbeat("r1", {"completed": 0})["renewed"] == 1
    clock.advance(25.0)  # 50s since claim, 25s since renewal
    assert broker.claim("r2")["batches"] == []  # still leased to r1


def test_quarantined_item_pins_and_failed_item_does_not(broker):
    configs = [CFG, CFG.with_(seed=2)]
    broker.enqueue("c1", _batches("c1", configs), {})
    batch = broker.claim("r1")["batches"][0]
    items = [
        _item(configs[0], 0, status="quarantined",
              failure_kind="crash", error="boom"),
        _item(configs[1], 1, status="failed",
              failure_kind="crash", error="flaky"),
    ]
    broker.complete("r1", "c1", batch["batch_id"], items)
    # Deterministic failure: pinned in the store quarantine.
    assert broker.store.get_failure(configs[0])["error"] == "boom"
    assert broker.index.count(status=["quarantined"]) == 1
    # Transient failure: indexed for `repro results --failed`, not pinned,
    # so a resume prescan re-runs it.
    assert broker.store.get_failure(configs[1]) is None
    assert broker.index.count(status=["failed"]) == 1


def test_manifest_persists_across_broker_instances(broker, tmp_path, clock):
    configs = [CFG, CFG.with_(seed=2)]
    broker.enqueue("c1", _batches("c1", configs), {"retries": 2},
                   manifest=[c.to_dict() for c in configs])
    reborn = Broker(tmp_path / "store", clock=clock)
    manifest = reborn.load_manifest("c1")
    assert manifest["campaign_id"] == "c1"
    assert [RunConfig.from_dict(c) for c in manifest["configs"]] == configs
    assert manifest["meta"]["retries"] == 2
    assert reborn.known_campaigns() == ["c1"]


def test_unknown_campaign_and_batch_errors(broker):
    with pytest.raises(BrokerError, match="unknown campaign"):
        broker.load_manifest("nope")
    with pytest.raises(BrokerError, match="unknown campaign"):
        broker.complete("r1", "nope", "b1", [])
    with pytest.raises(BrokerError, match="unknown campaign"):
        broker.records("nope")
    broker.enqueue("c1", [], {})
    with pytest.raises(BrokerError, match="unknown batch"):
        broker.complete("r1", "c1", "b1", [])
    with pytest.raises(BrokerError, match="campaign_id"):
        broker.enqueue("", [], {})
    with pytest.raises(BrokerError, match="runner_id"):
        broker.claim("")


def test_mismatched_batch_shape_rejected(broker):
    with pytest.raises(BrokerError, match="indices"):
        broker.enqueue("c1", [{
            "batch_id": "b1", "indices": [0, 1],
            "configs": [CFG.to_dict()],
        }], {})


def test_claim_prefers_oldest_campaign(broker, clock):
    broker.enqueue("new-but-first", _batches("new-but-first", [CFG]), {})
    clock.advance(5.0)
    broker.enqueue("second", _batches("second", [CFG.with_(seed=2)]), {})
    grant = broker.claim("r1", max_batches=1)["batches"]
    assert grant[0]["campaign_id"] == "new-but-first"


def test_status_reports_runner_throughput_and_cache_counts(broker, clock):
    broker.enqueue("c1", _batches("c1", [CFG]), {})
    batch = broker.claim("r1")["batches"][0]
    clock.advance(10.0)
    res = run_workload(CFG)
    broker.complete(
        "r1", "c1", batch["batch_id"],
        [_item(CFG, 0, result=res.to_dict(),
               telemetry={"overlap_fraction": 0.75})],
        cache_stats={"snapshot": {"hits": 3, "misses": 1}},
    )
    status = broker.status()
    runner = status["runners"]["r1"]
    assert runner["runs_done"] == 1
    assert runner["runs_per_sec"] == pytest.approx(0.1)
    campaign = status["campaigns"]["c1"]
    assert campaign["cache_counts"]["snapshot"]["hits"] == 3
    assert campaign["overlap_trend"][-1][1] == pytest.approx(0.75)
