"""Store scrub: damage detection, quarantine-to-corrupt, index repair."""

import json

import pytest

from repro.campaign import ResultStore
from repro.campaign.store import payload_integrity
from repro.harness.runner import RunConfig, run_workload
from repro.cli import main
from repro.service.index import ResultIndex
from repro.service.scrub import load_scrub_report, scrub_store

SMALL = RunConfig(scheme="baseline", workload="sop", num_mem_ops=300,
                  num_cores=2, dc_megabytes=8)
GRID = [SMALL.with_(seed=s) for s in (1, 2, 3)]


def _populated(tmp_path, n=3):
    store = ResultStore(tmp_path / "store")
    for cfg in GRID[:n]:
        store.put(cfg, run_workload(cfg))
    return store


def test_clean_store_scrubs_clean(tmp_path):
    store = _populated(tmp_path)
    report = scrub_store(store)
    assert report["clean"] is True
    assert report["checked"] == 3 and report["ok"] == 3
    # The report is persisted for `repro results --json`.
    assert load_scrub_report(store.root)["clean"] is True


def test_torn_record_is_quarantined_and_index_repaired(tmp_path):
    store = _populated(tmp_path)
    index = ResultIndex(store.root)
    index.sync_from_store(store)
    path = store.path_for(GRID[0])
    raw = path.read_bytes()
    path.write_bytes(raw[: len(raw) // 2])  # torn write

    report = scrub_store(store, index)
    assert report["clean"] is False
    assert len(report["corrupt"]) == 1
    assert "torn" in report["corrupt"][0]["reason"]
    assert report["moved"] == 1
    # Out of the address space: get misses, the config just re-runs.
    assert not path.exists()
    assert (store.root / "corrupt" / path.name).exists()
    assert store.get(GRID[0]) is None
    # And the index row is gone with it.
    assert index.repair_counts["forgotten_rows"] >= 1

    # A second scrub after the damage is cleared is clean.
    assert scrub_store(store, index)["clean"] is True


def test_bitflip_detected_by_integrity_checksum(tmp_path):
    store = _populated(tmp_path, n=1)
    path = store.path_for(GRID[0])
    payload = json.loads(path.read_text())
    # Corrupt a result *value*: still valid JSON, config still matches,
    # key still matches -- only the integrity stamp can see it.
    key = next(iter(payload["result"]))
    payload["result"][key] = payload["result"][key] + 1 \
        if isinstance(payload["result"][key], (int, float)) else "flipped"
    path.write_text(json.dumps(payload))

    report = scrub_store(store, repair=False)  # audit mode
    assert report["clean"] is False
    assert "integrity" in report["corrupt"][0]["reason"]
    assert report["moved"] == 0 and path.exists()  # audit touches nothing


def test_misplaced_record_detected_by_content_key(tmp_path):
    store = _populated(tmp_path, n=1)
    src = store.path_for(GRID[0])
    dst = store.path_for(GRID[1].with_(seed=99))
    dst.parent.mkdir(parents=True, exist_ok=True)
    dst.write_text(src.read_text())  # grafted under the wrong key

    report = scrub_store(store)
    assert len(report["corrupt"]) == 1
    assert "content-key mismatch" in report["corrupt"][0]["reason"]
    assert src.exists()  # the healthy original is untouched


def test_corrupt_quarantine_record_is_swept_too(tmp_path):
    store = ResultStore(tmp_path / "store")
    path = store.put_failure(SMALL, {"failure_kind": "crash", "error": "x"})
    payload = json.loads(path.read_text())
    payload["failure"]["error"] = "doctored"
    path.write_text(json.dumps(payload))  # integrity now stale

    report = scrub_store(store)
    assert len(report["quarantined_corrupt"]) == 1
    assert not path.exists()


def test_pre_integrity_records_pass_with_count(tmp_path):
    store = _populated(tmp_path, n=1)
    path = store.path_for(GRID[0])
    payload = json.loads(path.read_text())
    del payload["integrity"]  # a record from before the stamp existed
    path.write_text(json.dumps(payload))

    report = scrub_store(store)
    assert report["clean"] is True
    assert report["missing_integrity"] == 1


def test_sync_from_store_adopts_unindexed_records(tmp_path):
    store = _populated(tmp_path)
    index = ResultIndex(store.root)
    report = scrub_store(store, index)
    assert report["synced_rows"] == 3
    assert index.repair_counts["synced_rows"] == 3


def test_scrub_ignores_service_metadata(tmp_path):
    store = _populated(tmp_path, n=1)
    meta = store.root / "service"
    meta.mkdir()
    (meta / "x.json").write_text("definitely not a record")
    report = scrub_store(store)
    assert report["checked"] == 1 and report["clean"] is True


def test_integrity_survives_round_trip():
    payload = {"version": "v", "config": {"seed": 1}, "result": {"ipc": 2.0}}
    stamp = payload_integrity(payload)
    assert payload_integrity({**payload, "integrity": stamp}) == stamp
    assert payload_integrity({**payload, "result": {"ipc": 2.1}}) != stamp


# -- CLI --------------------------------------------------------------------

def test_cli_scrub_exit_codes_and_json(tmp_path, capsys):
    store = _populated(tmp_path)
    assert main(["scrub", str(store.root)]) == 0
    path = store.path_for(GRID[1])
    path.write_text("{torn")
    capsys.readouterr()  # drop the first invocation's text summary
    rc = main(["scrub", str(store.root), "--json"])
    assert rc == 1
    report = json.loads(capsys.readouterr().out)
    assert report["clean"] is False and report["moved"] == 1
    # Damage quarantined: the store is clean again.
    assert main(["scrub", str(store.root)]) == 0


def test_cli_results_json_surfaces_repairs(tmp_path, capsys):
    store = _populated(tmp_path)
    main(["scrub", str(store.root)])
    capsys.readouterr()
    rc = main(["results", "--store", str(store.root), "--json"])
    assert rc == 0
    out = json.loads(capsys.readouterr().out)
    assert out["count"] == 3
    assert "synced_now" in out["repairs"]
    assert out["last_scrub"]["clean"] is True


@pytest.mark.parametrize("audit", [True, False])
def test_cli_scrub_audit_flag(tmp_path, audit):
    store = _populated(tmp_path, n=1)
    path = store.path_for(GRID[0])
    path.write_text("{torn")
    argv = ["scrub", str(store.root)] + (["--audit"] if audit else [])
    assert main(argv) == 1
    assert path.exists() is audit  # audit never moves anything
