"""Wire protocol: batch identity, URL handling, client retry policy."""

import pytest

from repro.service.protocol import (
    PROTOCOL_VERSION,
    BrokerClient,
    BrokerError,
    BrokerUnreachable,
    batch_id_for,
    check_protocol,
    normalize_broker_url,
)

CONFIGS = [{"scheme": "nomad", "seed": 1}, {"scheme": "nomad", "seed": 2}]


def test_batch_id_is_deterministic():
    assert batch_id_for("c1", CONFIGS) == batch_id_for("c1", CONFIGS)
    assert len(batch_id_for("c1", CONFIGS)) == 20


def test_batch_id_depends_on_campaign_and_configs():
    assert batch_id_for("c1", CONFIGS) != batch_id_for("c2", CONFIGS)
    assert batch_id_for("c1", CONFIGS) != batch_id_for("c1", CONFIGS[:1])
    # Key order inside a config dict must not matter (canonical JSON).
    flipped = [{"seed": 1, "scheme": "nomad"}, {"seed": 2, "scheme": "nomad"}]
    assert batch_id_for("c1", CONFIGS) == batch_id_for("c1", flipped)


@pytest.mark.parametrize("raw,expected", [
    ("localhost:8765", "http://localhost:8765"),
    (":8765", "http://127.0.0.1:8765"),
    ("http://broker:8765", "http://broker:8765"),
    ("http://broker:8765/", "http://broker:8765"),
    ("https://broker", "https://broker"),
])
def test_normalize_broker_url(raw, expected):
    assert normalize_broker_url(raw) == expected


def test_check_protocol_accepts_current_version():
    payload = {"protocol": PROTOCOL_VERSION, "x": 1}
    assert check_protocol(payload, side="broker") is payload


@pytest.mark.parametrize("bad", [None, 0, 99, "1"])
def test_check_protocol_rejects_mismatch(bad):
    with pytest.raises(BrokerError, match="protocol version mismatch"):
        check_protocol({"protocol": bad}, side="broker")


def test_unreachable_broker_retries_with_backoff_then_raises():
    slept = []
    client = BrokerClient(
        "127.0.0.1:9",  # discard port: connection refused immediately
        timeout=0.2, max_tries=3, sleep=slept.append,
    )
    with pytest.raises(BrokerUnreachable, match="after 3 attempt"):
        client.status()
    # One backoff sleep between each pair of attempts, growing.
    assert len(slept) == 2
    assert all(d > 0 for d in slept)


def test_heartbeat_is_best_effort():
    client = BrokerClient("127.0.0.1:9", timeout=0.2, max_tries=1)
    assert client.heartbeat("r1", {"completed": 3}) is None
    with pytest.raises(BrokerUnreachable):
        client.heartbeat("r1", {}, retry=True)


def test_ping_false_when_down():
    assert BrokerClient("127.0.0.1:9", timeout=0.2).ping() is False
