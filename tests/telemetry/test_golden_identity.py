"""Observed runs are bit-identical to bare runs on every golden config.

The tracer/sampler hooks are read-only by construction; this pins that
contract against the same 12 golden results the unguarded and guarded
suites pin, so any hook that perturbs simulation state fails loudly.
"""

import json
from pathlib import Path

import pytest

from repro.harness.runner import RunConfig, clear_cache, simulate
from repro.telemetry import Telemetry, TelemetryConfig
from repro.workloads.synthetic import clear_trace_cache

GOLDEN_PATH = (
    Path(__file__).resolve().parents[1] / "golden" / "golden_metrics.json"
)

with GOLDEN_PATH.open() as f:
    _GOLDEN = json.load(f)

_IDS = [
    f"{e['config']['scheme']}-{e['config']['workload']}-s{e['config']['seed']}"
    for e in _GOLDEN["entries"]
]

# Off-cadence sampling period so sampler ticks interleave arbitrarily
# with simulation events rather than landing on round numbers.
_TEL = TelemetryConfig(sample_every=777)


@pytest.mark.parametrize("entry", _GOLDEN["entries"], ids=_IDS)
def test_telemetry_golden_bit_identical(entry):
    clear_cache()
    clear_trace_cache()
    cfg = RunConfig.from_dict(entry["config"])
    tel = Telemetry(_TEL)
    result, _machine = simulate(cfg, telemetry=tel)
    assert result.to_dict() == entry["expected"]
    # The observation itself must have happened.
    assert tel.sampler.samples
    assert tel.summary is not None
