"""validate_trace: the published trace-document contract."""

from repro.telemetry.trace_schema import validate_trace


def _doc(events=(), **other):
    data = {"schema_version": 1}
    data.update(other)
    return {"traceEvents": list(events), "otherData": data, "samples": []}


def test_empty_document_is_valid():
    assert validate_trace(_doc()) == []


def test_non_object_document():
    problems = validate_trace([1, 2, 3])
    assert problems and "JSON object" in problems[0]


def test_missing_trace_events():
    assert validate_trace({"otherData": {}}) == [
        "missing or non-list 'traceEvents'"
    ]


def test_missing_schema_version():
    (problem,) = validate_trace({"traceEvents": [], "otherData": {}})
    assert "schema_version" in problem


def test_unknown_phase_rejected():
    (problem,) = validate_trace(
        _doc([{"ph": "Z", "name": "x", "pid": 1, "ts": 0}])
    )
    assert "'Z'" in problem


def test_complete_event_needs_duration():
    bad = {"ph": "X", "name": "x", "pid": 1, "ts": 0, "dur": -5}
    (problem,) = validate_trace(_doc([bad]))
    assert "non-negative 'dur'" in problem


def test_counter_args_must_be_numeric():
    bad = {"ph": "C", "name": "c", "pid": 4, "ts": 0, "args": {"v": "high"}}
    (problem,) = validate_trace(_doc([bad]))
    assert "names to numbers" in problem


def test_unbalanced_async_span_detected():
    events = [
        {"ph": "b", "cat": "page_copy", "id": 1, "name": "fill",
         "pid": 2, "ts": 0},
    ]
    (problem,) = validate_trace(_doc(events))
    assert "unbalanced" in problem


def test_balanced_async_span_passes():
    events = [
        {"ph": "b", "cat": "page_copy", "id": 1, "name": "fill",
         "pid": 2, "ts": 0},
        {"ph": "n", "cat": "page_copy", "id": 1, "name": "launch",
         "pid": 2, "ts": 5},
        {"ph": "e", "cat": "page_copy", "id": 1, "name": "fill",
         "pid": 2, "ts": 9},
    ]
    assert validate_trace(_doc(events)) == []


def test_problem_cap_suppresses_tail():
    events = [{"ph": "Z", "name": "x", "pid": 1, "ts": 0}] * 50
    problems = validate_trace(_doc(events), max_problems=5)
    assert problems[-1].startswith("...")
    assert len(problems) <= 7


# -- schema version 2: service spans -----------------------------------------

def _service_span(span_id="ab12cd34", trace_id="c0ffee00c0ffee00",
                  **overrides):
    begin = {"ph": "b", "cat": "service", "id": span_id, "name": "claim",
             "pid": 9, "tid": 0, "ts": 100,
             "args": {"trace_id": trace_id, "span_id": span_id,
                      "component": "broker"}}
    begin.update(overrides)
    end = {"ph": "e", "cat": "service", "id": span_id, "name": "claim",
           "pid": 9, "tid": 0, "ts": 200, "args": {}}
    return [begin, end]


def test_service_span_valid_at_v2():
    assert validate_trace(_doc(_service_span(), schema_version=2)) == []


def test_service_category_requires_v2():
    problems = validate_trace(_doc(_service_span(), schema_version=1))
    assert any("requires schema_version >= 2" in p for p in problems)


def test_unknown_schema_version_flagged():
    problems = validate_trace(_doc(schema_version=99))
    assert any("not in [1, 2]" in p for p in problems)


def test_service_begin_needs_string_trace_id():
    events = _service_span()
    events[0]["args"]["trace_id"] = 123
    problems = validate_trace(_doc(events, schema_version=2))
    assert any("args.trace_id" in p for p in problems)


def test_service_span_id_must_match_event_id():
    events = _service_span()
    events[0]["args"]["span_id"] = "something-else"
    problems = validate_trace(_doc(events, schema_version=2))
    assert any("args.span_id must equal the event id" in p for p in problems)


def test_synthetic_truncated_end_passes_with_explicit_close():
    # merge_service_traces closes crashed spans with a bare "e" whose
    # args only say truncated -- the schema must accept that shape.
    begin, _ = _service_span()
    end = {"ph": "e", "cat": "service", "id": begin["id"], "name": "claim",
           "pid": 9, "tid": 0, "ts": 500, "args": {"truncated": True}}
    assert validate_trace(_doc([begin, end], schema_version=2)) == []


def test_v1_simulation_trace_unaffected_by_v2_rules():
    events = [
        {"ph": "b", "cat": "dram", "id": 7, "name": "fill", "pid": 1,
         "tid": 0, "ts": 0},
        {"ph": "e", "cat": "dram", "id": 7, "name": "fill", "pid": 1,
         "tid": 0, "ts": 5},
    ]
    assert validate_trace(_doc(events, schema_version=1)) == []
