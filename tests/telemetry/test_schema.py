"""validate_trace: the published trace-document contract."""

from repro.telemetry.trace_schema import validate_trace


def _doc(events=(), **other):
    data = {"schema_version": 1}
    data.update(other)
    return {"traceEvents": list(events), "otherData": data, "samples": []}


def test_empty_document_is_valid():
    assert validate_trace(_doc()) == []


def test_non_object_document():
    problems = validate_trace([1, 2, 3])
    assert problems and "JSON object" in problems[0]


def test_missing_trace_events():
    assert validate_trace({"otherData": {}}) == [
        "missing or non-list 'traceEvents'"
    ]


def test_missing_schema_version():
    (problem,) = validate_trace({"traceEvents": [], "otherData": {}})
    assert "schema_version" in problem


def test_unknown_phase_rejected():
    (problem,) = validate_trace(
        _doc([{"ph": "Z", "name": "x", "pid": 1, "ts": 0}])
    )
    assert "'Z'" in problem


def test_complete_event_needs_duration():
    bad = {"ph": "X", "name": "x", "pid": 1, "ts": 0, "dur": -5}
    (problem,) = validate_trace(_doc([bad]))
    assert "non-negative 'dur'" in problem


def test_counter_args_must_be_numeric():
    bad = {"ph": "C", "name": "c", "pid": 4, "ts": 0, "args": {"v": "high"}}
    (problem,) = validate_trace(_doc([bad]))
    assert "names to numbers" in problem


def test_unbalanced_async_span_detected():
    events = [
        {"ph": "b", "cat": "page_copy", "id": 1, "name": "fill",
         "pid": 2, "ts": 0},
    ]
    (problem,) = validate_trace(_doc(events))
    assert "unbalanced" in problem


def test_balanced_async_span_passes():
    events = [
        {"ph": "b", "cat": "page_copy", "id": 1, "name": "fill",
         "pid": 2, "ts": 0},
        {"ph": "n", "cat": "page_copy", "id": 1, "name": "launch",
         "pid": 2, "ts": 5},
        {"ph": "e", "cat": "page_copy", "id": 1, "name": "fill",
         "pid": 2, "ts": 9},
    ]
    assert validate_trace(_doc(events)) == []


def test_problem_cap_suppresses_tail():
    events = [{"ph": "Z", "name": "x", "pid": 1, "ts": 0}] * 50
    problems = validate_trace(_doc(events), max_problems=5)
    assert problems[-1].startswith("...")
    assert len(problems) <= 7
