"""Mid-run stat snapshots must not change where a run ends up.

The sampler reads StatGroups while the simulation is in flight, which
triggers every ``set_sync`` flush hook early and repeatedly.  The
contract (``repro.common.stats``) is that the flush overwrites with
totals rather than adding, so these tests pin idempotence at the unit
level and end-to-end: a run interrupted for snapshots every few
thousand events finishes bit-identical to an undisturbed one.
"""

from repro.common.stats import StatGroup
from repro.harness.runner import RunConfig, _build, clear_cache
from repro.workloads.synthetic import clear_trace_cache


def test_set_sync_flush_is_idempotent_under_repeated_reads():
    class HotComponent:
        def __init__(self):
            self.stats = StatGroup("hot")
            self.hits = 0  # plain-int hot-path accumulator
            self.stats.set_sync(self._sync)

        def _sync(self):
            self.stats.counter("hits").value = self.hits  # overwrite

    comp = HotComponent()
    comp.hits += 3
    assert comp.stats.as_dict() == {"hits": 3}
    # Re-reading without new work must not double-count.
    assert comp.stats.as_dict() == {"hits": 3}
    assert comp.stats.get("hits").value == 3
    comp.hits += 2
    assert comp.stats.as_dict() == {"hits": 5}
    assert "hits" in comp.stats  # __contains__ also flushes
    assert comp.stats.as_dict() == {"hits": 5}


def _run_machine(cfg, snapshot_every=None):
    """Drive one machine to completion, optionally reading every stat
    group between chunks of events; returns (result, final metrics)."""
    clear_cache()
    clear_trace_cache()
    machine = _build(cfg)
    for core in machine.cores:
        core.start()
    if snapshot_every is None:
        machine.sim.run()
    else:
        snapshots = 0
        while machine.sim.pending_events > 0:
            machine.sim.run(max_events=snapshot_every)
            machine.metrics()  # flushes every set_sync hook
            machine.scheme.stats.as_dict()
            snapshots += 1
        assert snapshots > 3, "run too small to exercise mid-run reads"
    return machine.result(), machine.metrics()


def test_chunked_snapshots_are_bit_identical_end_to_end():
    cfg = RunConfig(scheme="nomad", workload="mcf", num_mem_ops=2000,
                    num_cores=2)
    undisturbed_result, undisturbed_metrics = _run_machine(cfg)
    observed_result, observed_metrics = _run_machine(cfg, snapshot_every=2500)
    assert observed_result.to_dict() == undisturbed_result.to_dict()
    assert observed_metrics == undisturbed_metrics
