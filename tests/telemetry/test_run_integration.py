"""Telemetry against real runs: the acceptance properties.

The page-copy spans must reconstruct every copy the backend counted,
the document must validate against the published schema, and the
overlap fraction must separate the non-blocking design (NOMAD) from
the blocking one (TDC) on the same workload.
"""

import pytest

from repro.harness import runner
from repro.harness.runner import RunConfig, clear_cache, simulate
from repro.telemetry import Telemetry, TelemetryConfig
from repro.telemetry.timeline import summarize_trace
from repro.telemetry.trace_schema import validate_trace

_BASE = dict(workload="mcf", num_mem_ops=3000, num_cores=2)


def _observed(scheme):
    tel = Telemetry(TelemetryConfig(sample_every=1000))
    result, machine = simulate(RunConfig(scheme=scheme, **_BASE), telemetry=tel)
    return result, machine, tel


@pytest.fixture(scope="module")
def nomad_run():
    return _observed("nomad")


@pytest.fixture(scope="module")
def tdc_run():
    return _observed("tdc")


def test_document_validates_against_schema(nomad_run):
    _result, _machine, tel = nomad_run
    assert validate_trace(tel.document) == []


def test_copy_spans_reconstruct_backend_counters(nomad_run):
    result, machine, tel = nomad_run
    backend = machine.scheme.backend
    backends = getattr(backend, "backends", None) or [backend]
    fills = sum(b.stats.get("fill_commands").value for b in backends)
    wbs = sum(b.stats.get("writeback_commands").value for b in backends)
    assert fills > 0
    assert tel.tracer.span_counts.get("copy.fill") == fills
    assert tel.tracer.span_counts.get("copy.writeback", 0) == wbs
    # And the offline analysis recovers the same spans from the JSON.
    assert tel.summary["copies"]["fills"] == fills
    assert tel.summary["copies"]["writebacks"] == wbs
    assert tel.summary["spans_truncated"] == 0


def test_sampler_series_is_monotonic_and_consistent(nomad_run):
    result, _machine, tel = nomad_run
    samples = tel.sampler.samples
    assert len(samples) > 5
    times = [s["t"] for s in samples]
    assert times == sorted(times)
    assert len(set(times)) == len(times)
    assert samples[-1]["instructions"] == result.instructions
    assert all("pending_events" in s and "rob" in s for s in samples)


def test_overlap_fraction_separates_nomad_from_tdc(nomad_run, tdc_run):
    _r, _m, nomad_tel = nomad_run
    _r, _m, tdc_tel = tdc_run
    nomad_frac = nomad_tel.summary["overlap_fraction"]
    tdc_frac = tdc_tel.summary["overlap_fraction"]
    # NOMAD resumes the core at command acceptance: the copy runs
    # under execution.  TDC stalls the core for the whole copy.
    assert nomad_frac > 0.2
    assert tdc_frac < 0.05
    assert nomad_frac > tdc_frac


def test_tdc_copy_spans_match_its_data_manager(tdc_run):
    result, machine, tel = tdc_run
    counts = tel.tracer.span_counts
    assert counts.get("copy.fill") == result.page_fills
    assert counts.get("copy.writeback", 0) == result.page_writebacks


def test_summary_round_trips_through_json_document(nomad_run):
    _result, _machine, tel = nomad_run
    # Re-summarizing the written document gives the attached summary.
    assert summarize_trace(tel.document) == tel.summary


def test_last_window_shape(nomad_run):
    _result, _machine, tel = nomad_run
    window = tel.last_window()
    assert 0 < len(window["samples"]) <= tel.config.window
    assert window["num_samples"] == len(tel.sampler.samples)
    assert window["trace_tail"]
    assert window["span_counts"]["copy.fill"] > 0


def test_bit_identity_telemetry_on_vs_off():
    cfg = RunConfig(scheme="nomad", **_BASE)
    from repro.workloads.synthetic import clear_trace_cache

    clear_cache()
    clear_trace_cache()
    bare, _ = simulate(cfg)
    clear_cache()
    clear_trace_cache()
    observed, _ = simulate(cfg, telemetry=Telemetry(TelemetryConfig(
        sample_every=700)))
    assert observed.to_dict() == bare.to_dict()


def test_run_workload_with_telemetry_primes_cache():
    cfg = RunConfig(scheme="baseline", workload="sop", num_mem_ops=300,
                    num_cores=2, dc_megabytes=8)
    clear_cache()
    result = runner.run_workload(cfg, telemetry=True)
    cached, source = runner.cached_result(cfg)
    assert source == "memo"
    assert cached.to_dict() == result.to_dict()


def test_guarded_crash_bundle_carries_telemetry_window(tmp_path):
    from repro.guard import GuardConfig
    from repro.guard.bundle import load_bundle, replay_bundle

    cfg = RunConfig(scheme="nomad", **_BASE)
    guard_cfg = GuardConfig(check_interval=200, chaos="drop_event",
                            bundle_dir=str(tmp_path))
    with pytest.raises(Exception) as excinfo:
        simulate(cfg, guard=guard_cfg,
                 telemetry=Telemetry(TelemetryConfig(sample_every=500)))
    bundle_path = getattr(excinfo.value, "bundle_path", None)
    assert bundle_path
    window = load_bundle(bundle_path)["telemetry_window"]
    assert window["samples"]
    assert window["trace_tail"]
    report = replay_bundle(bundle_path)
    assert report.reproduced
    text = report.describe()
    assert "telemetry at failure:" in text
    assert "last sample:" in text
