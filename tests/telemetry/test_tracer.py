"""Tracer unit tests: span pairing, caps, track metadata."""

from repro.common.types import TrafficClass
from repro.telemetry.config import (
    ALL_CATEGORIES,
    CAT_MSHR,
    CAT_OS,
    CAT_PAGE_COPY,
    DEFAULT_CAMPAIGN_CATEGORIES,
    TelemetryConfig,
)
from repro.telemetry.tracer import PID_COPY, PID_OS, Tracer


def test_copy_span_is_balanced_and_counted():
    tr = Tracer()
    tr.copy_begin(("be0", 3), "fill", 100, {"cfn": 7})
    tr.copy_end(("be0", 3), 900)
    phases = [e["ph"] for e in tr.events]
    assert phases == ["b", "e"]
    assert tr.events[0]["id"] == tr.events[1]["id"]
    assert tr.events[0]["args"] == {"cfn": 7}
    assert tr.span_counts == {"copy.fill": 1}


def test_copy_key_reuse_nests_lifo():
    tr = Tracer()
    tr.copy_begin("k", "fill", 10, {})
    tr.copy_begin("k", "writeback", 20, {})
    tr.copy_end("k", 30)  # closes the writeback (inner)
    tr.copy_end("k", 40)  # closes the fill (outer)
    ends = [e for e in tr.events if e["ph"] == "e"]
    assert [e["name"] for e in ends] == ["writeback", "fill"]
    begins = {e["name"]: e["id"] for e in tr.events if e["ph"] == "b"}
    assert [e["id"] for e in ends] == [begins["writeback"], begins["fill"]]


def test_copy_instant_attaches_to_innermost_open_span():
    tr = Tracer()
    tr.copy_begin("k", "fill", 10, {})
    tr.copy_instant("k", "launch", 15)
    (instant,) = [e for e in tr.events if e["ph"] == "n"]
    assert instant["name"] == "launch"
    assert instant["id"] == tr.events[0]["id"]


def test_orphan_instant_and_end_are_noops():
    tr = Tracer()
    tr.copy_instant("ghost", "launch", 5)
    tr.copy_end("ghost", 6)
    assert tr.events == []


def test_event_cap_drops_begins_but_never_unbalances():
    tr = Tracer(TelemetryConfig(max_trace_events=2))
    tr.copy_begin("a", "fill", 1, {})
    tr.copy_begin("b", "fill", 2, {})
    tr.copy_begin("c", "fill", 3, {})  # over cap: dropped
    tr.copy_end("c", 4)  # begin was dropped -> no orphan end
    tr.copy_end("a", 5)  # open span: end appended past the cap
    tr.copy_end("b", 6)
    assert tr.dropped == {CAT_PAGE_COPY: 1}
    balance = {}
    for e in tr.events:
        balance[e["id"]] = balance.get(e["id"], 0) + (1 if e["ph"] == "b" else -1)
    assert all(v == 0 for v in balance.values())


def test_os_spans_get_stable_tids_per_label():
    tr = Tracer()
    tr.os_span("core0", "tag_miss", 100, 40)
    tr.os_span("core1", "tag_miss", 110, 25)
    tr.os_span("core0", "tag_miss", 200, 10)
    tids = [e["tid"] for e in tr.events]
    assert tids[0] == tids[2] != tids[1]
    assert all(e["ph"] == "X" and e["pid"] == PID_OS for e in tr.events)
    assert tr.span_counts["os.tag_miss"] == 3


def test_os_begin_end_pairs_into_complete_event():
    tr = Tracer()
    tr.os_begin(("daemon",), "eviction_batch", "daemon", 50)
    tr.os_end(("daemon",), 80, {"freed": 4})
    (event,) = tr.events
    assert event["ph"] == "X"
    assert event["ts"] == 50 and event["dur"] == 30
    assert event["args"] == {"freed": 4}
    tr.os_end(("daemon",), 99)  # already closed: no-op
    assert len(tr.events) == 1


def test_mshr_span_dedups_open_key():
    tr = Tracer()
    tr.mshr_begin(0xABC, 10)
    tr.mshr_begin(0xABC, 11)  # same line already open: ignored
    tr.mshr_end(0xABC, 50)
    tr.mshr_end(0xABC, 51)  # already closed: no-op
    assert [e["ph"] for e in tr.events] == ["b", "e"]
    assert all(e["cat"] == CAT_MSHR for e in tr.events)


def test_dram_spans_get_per_device_pids_and_per_bank_tids():
    tr = Tracer()
    tr.dram_span("hbm", 0, 0, 10, 30, False, TrafficClass.DEMAND)
    tr.dram_span("hbm", 1, 2, 10, 30, True, TrafficClass.FILL)
    tr.dram_span("ddr", 0, 0, 10, 30, False, TrafficClass.DEMAND)
    hbm0, hbm1, ddr0 = tr.events
    assert hbm0["pid"] == hbm1["pid"] != ddr0["pid"]
    assert hbm0["tid"] != hbm1["tid"]
    assert hbm0["name"] == "rd.DEMAND"
    assert hbm1["name"] == "wr.FILL"


def test_close_open_spans_flags_truncation():
    tr = Tracer()
    tr.copy_begin("k", "fill", 10, {})
    tr.mshr_begin(5, 11)
    tr.os_begin("d", "eviction_batch", "daemon", 12)
    assert tr.close_open_spans(100) == 3
    assert not tr._open_copies and not tr._open_mshrs and not tr._open_os
    copy_end = [e for e in tr.events if e["ph"] == "e" and e["cat"] == CAT_PAGE_COPY]
    assert copy_end[0]["args"]["truncated"] is True
    os_x = [e for e in tr.events if e.get("cat") == CAT_OS]
    assert os_x[0]["args"]["truncated"] is True


def test_metadata_names_every_track_in_use():
    tr = Tracer()
    tr.os_span("core0", "tag_miss", 1, 2)
    tr.dram_span("hbm", 0, 3, 4, 9, False, TrafficClass.DEMAND)
    meta = tr.metadata_events()
    assert all(e["ph"] == "M" for e in meta)
    names = {e["args"]["name"] for e in meta if e["name"] == "thread_name"}
    assert {"core0", "ch0.bank3"} <= names
    procs = {e["args"]["name"] for e in meta if e["name"] == "process_name"}
    assert {"cores / OS", "page copies", "hbm"} <= procs


def test_config_roundtrip_and_unknown_key_rejection():
    import pytest

    cfg = TelemetryConfig(sample_every=123, categories=("os",))
    again = TelemetryConfig.from_dict(cfg.to_dict())
    assert again == cfg
    with pytest.raises(ValueError):
        TelemetryConfig.from_dict({"sample_rate": 10})
    assert set(DEFAULT_CAMPAIGN_CATEGORIES) == set(ALL_CATEGORIES) - {"dram"}
