"""Offline trace analysis: interval math, summaries, rendering."""

import pytest

from repro.telemetry.timeline import (
    describe_summary,
    merge_intervals,
    overlap_fraction,
    summarize_trace,
)


def test_merge_intervals_coalesces_and_sorts():
    assert merge_intervals([(5, 9), (0, 3), (2, 6), (20, 21)]) == [
        (0, 9), (20, 21)
    ]


def test_merge_intervals_drops_empty():
    assert merge_intervals([(4, 4), (9, 2)]) == []


def test_overlap_fraction_none_without_fills():
    assert overlap_fraction([], [(0, 10)]) is None


def test_overlap_fraction_fully_covered_is_zero():
    # The blocking shape: every fill lies inside an OS stall.
    assert overlap_fraction([(2, 8)], [(0, 10)]) == pytest.approx(0.0)


def test_overlap_fraction_uncovered_is_one():
    assert overlap_fraction([(0, 10)], [(50, 60)]) == pytest.approx(1.0)


def test_overlap_fraction_partial_and_split_coverage():
    # 10-cycle fill covered on [0,2) and [6,8) -> 4/10 covered.
    frac = overlap_fraction([(0, 10)], [(0, 2), (6, 8), (6, 7)])
    assert frac == pytest.approx(0.6)


def _synthetic_doc():
    events = [
        # Two fills: 100 cycles each; the first fully inside the stall.
        {"ph": "b", "cat": "page_copy", "id": 1, "name": "fill",
         "pid": 2, "tid": 0, "ts": 0},
        {"ph": "e", "cat": "page_copy", "id": 1, "name": "fill",
         "pid": 2, "tid": 0, "ts": 100},
        {"ph": "b", "cat": "page_copy", "id": 2, "name": "fill",
         "pid": 2, "tid": 0, "ts": 1000},
        {"ph": "e", "cat": "page_copy", "id": 2, "name": "fill",
         "pid": 2, "tid": 0, "ts": 1100},
        # One writeback.
        {"ph": "b", "cat": "page_copy", "id": 3, "name": "writeback",
         "pid": 2, "tid": 0, "ts": 50},
        {"ph": "e", "cat": "page_copy", "id": 3, "name": "writeback",
         "pid": 2, "tid": 0, "ts": 90},
        # OS stalls: one covering fill 1, one elsewhere.
        {"ph": "X", "cat": "os", "name": "tag_miss", "pid": 1, "tid": 0,
         "ts": 0, "dur": 100},
        {"ph": "X", "cat": "os", "name": "eviction_batch", "pid": 1,
         "tid": 1, "ts": 400, "dur": 50},
    ]
    return {
        "traceEvents": events,
        "otherData": {
            "schema_version": 1, "scheme": "nomad", "workload": "mcf",
            "runtime_cycles": 2000, "ipc": 1.5,
            "stall_breakdown": {"os": 0.25},
        },
        "samples": [
            {"t": 500, "active_copies": 2, "free_frames": 30},
            {"t": 1000, "active_copies": 5, "free_frames": 12},
        ],
    }


def test_summarize_trace_synthetic():
    summary = summarize_trace(_synthetic_doc())
    assert summary["scheme"] == "nomad"
    assert summary["copies"]["fills"] == 2
    assert summary["copies"]["writebacks"] == 1
    assert summary["copies"]["fill_latency"]["p50"] == 100
    # Fill 1 fully covered, fill 2 not at all -> half the fill time
    # overlapped with execution.
    assert summary["overlap_fraction"] == pytest.approx(0.5)
    assert summary["os_stalls"]["tag_miss"]["count"] == 1
    assert summary["os_stalls"]["eviction_batch"]["total_cycles"] == 50
    assert summary["samples"]["peak_active_copies"] == 5
    assert summary["samples"]["min_free_frames"] == 12


def test_describe_summary_mentions_the_headline_numbers():
    text = describe_summary(summarize_trace(_synthetic_doc()))
    assert "nomad/mcf" in text
    assert "overlap fraction: 0.500" in text
    assert "tag_miss" in text
    assert "page fills: 2" in text


def test_describe_summary_warns_on_drops_and_truncation():
    doc = _synthetic_doc()
    doc["otherData"]["events_dropped"] = {"dram": 12}
    doc["otherData"]["spans_truncated"] = 3
    text = describe_summary(summarize_trace(doc))
    assert "dropped" in text
    assert "3 span(s) still open" in text


def _service_doc():
    def span(name, span_id, component, t0, t1, pid):
        args = {"trace_id": "feedfacefeedface", "span_id": span_id,
                "component": component}
        return [
            {"ph": "b", "cat": "service", "id": span_id, "name": name,
             "pid": pid, "tid": 0, "ts": t0, "args": args},
            {"ph": "e", "cat": "service", "id": span_id, "name": name,
             "pid": pid, "tid": 0, "ts": t1, "args": {}},
        ]

    events = (
        span("campaign", "aa000001", "coordinator", 0, 50_000, 11)
        + span("claim", "aa000002", "broker", 1_000, 2_000, 22)
        + span("batch-run", "aa000003", "runner", 2_000, 42_000, 33)
        + span("batch-run", "aa000004", "runner", 3_000, 23_000, 33)
        + span("ingest", "aa000005", "broker", 42_000, 43_000, 22)
    )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"schema_version": 2, "kind": "service",
                      "trace_ids": ["feedfacefeedface"]},
    }


def test_summarize_trace_service_spans():
    summary = summarize_trace(_service_doc())
    assert summary["service_components"] == {
        "coordinator": 1, "broker": 2, "runner": 2,
    }
    assert summary["trace_ids"] == ["feedfacefeedface"]
    spans = summary["service_spans"]
    assert set(spans) == {"campaign", "claim", "batch-run", "ingest"}
    assert spans["batch-run"]["count"] == 2
    assert spans["batch-run"]["max"] == 40_000
    assert spans["claim"]["p50"] == 1_000


def test_describe_summary_renders_service_section():
    text = describe_summary(summarize_trace(_service_doc()))
    assert "service campaign trace" in text
    assert "service spans" in text
    # Canonical tree order, not alphabetical.
    assert text.index("campaign:") < text.index("claim:") \
        < text.index("batch-run:") < text.index("ingest:")
    assert "1 trace id(s)" in text
