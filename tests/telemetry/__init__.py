"""Telemetry: sampler, tracer, schema, timeline analysis, bit-identity."""
