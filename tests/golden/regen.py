"""Regenerate tests/golden/golden_metrics.json in place.

Re-runs every recorded config on the current simulator and rewrites the
``expected`` blocks.  Only do this for an *intentional* model change --
the golden file exists to prove that perf work does not move fixed-seed
results -- and regenerate in the same commit as the change it blesses.

Usage:  PYTHONPATH=src python tests/golden/regen.py
"""

import json
from pathlib import Path

from repro.harness.runner import RunConfig, clear_cache, run_workload
from repro.workloads.synthetic import clear_trace_cache

GOLDEN_PATH = Path(__file__).resolve().parent / "golden_metrics.json"


def main() -> None:
    with GOLDEN_PATH.open() as f:
        golden = json.load(f)
    for entry in golden["entries"]:
        clear_cache()
        clear_trace_cache()
        cfg = RunConfig.from_dict(entry["config"])
        entry["expected"] = run_workload(cfg).to_dict()
        print(f"regenerated {cfg.scheme}/{cfg.workload} seed={cfg.seed}")
    with GOLDEN_PATH.open("w") as f:
        json.dump(golden, f, indent=1, sort_keys=True)
        f.write("\n")
    print(f"wrote {GOLDEN_PATH} ({len(golden['entries'])} entries)")


if __name__ == "__main__":
    main()
