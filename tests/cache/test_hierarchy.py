"""Three-level hierarchy: latency composition, MSHRs, flush."""

import pytest

from repro.cache.hierarchy import CacheHierarchy, LINES_PER_PAGE, line_key
from repro.common.types import AccessType, MemAccess


def make(sim, tiny_cfg, misses=None, writebacks=None):
    misses = misses if misses is not None else []
    writebacks = writebacks if writebacks is not None else []

    def miss_handler(access, fill_cb):
        misses.append(access)
        # Serve from "DRAM" 100 cycles later.
        sim.schedule(100, lambda: fill_cb(sim.now + 100))

    h = CacheHierarchy(sim, tiny_cfg, miss_handler, writebacks.append)
    return h, misses, writebacks


def load(core, addr, t=0):
    a = MemAccess(addr=addr, access_type=AccessType.LOAD, core_id=core, issue_time=t)
    a.paddr = addr
    return a


def store(core, addr, t=0):
    a = MemAccess(addr=addr, access_type=AccessType.STORE, core_id=core, issue_time=t)
    a.paddr = addr
    return a


def test_first_access_misses_to_dram(sim, tiny_cfg):
    h, misses, _ = make(sim, tiny_cfg)
    done = []
    r = h.access(load(0, 0x1000), 0, done.append)
    assert r is None
    sim.run()
    assert len(misses) == 1
    assert done and done[0] > 100


def test_l1_hit_is_synchronous(sim, tiny_cfg):
    h, _, _ = make(sim, tiny_cfg)
    h.access(load(0, 0x1000), 0, lambda t: None)
    sim.run()
    t = h.access(load(0, 0x1000), 500, lambda t: None)
    assert t == 500 + tiny_cfg.l1.latency


def test_miss_latency_includes_sram_path(sim, tiny_cfg):
    h, _, _ = make(sim, tiny_cfg)
    done = []
    h.access(load(0, 0x2000), 0, done.append)
    sim.run()
    sram = tiny_cfg.l1.latency + tiny_cfg.l2.latency + tiny_cfg.l3.latency
    assert done[0] >= sram + 100


def test_mshr_merge_single_dram_request(sim, tiny_cfg):
    h, misses, _ = make(sim, tiny_cfg)
    done = []
    h.access(load(0, 0x3000), 0, done.append)
    h.access(load(0, 0x3000), 1, done.append)
    sim.run()
    assert len(misses) == 1
    assert len(done) == 2


def test_different_lines_issue_separately(sim, tiny_cfg):
    h, misses, _ = make(sim, tiny_cfg)
    h.access(load(0, 0x3000), 0, lambda t: None)
    h.access(load(0, 0x3040), 0, lambda t: None)
    sim.run()
    assert len(misses) == 2


def test_mshr_overflow_eventually_serviced(sim, tiny_cfg):
    h, misses, _ = make(sim, tiny_cfg)
    done = []
    n = tiny_cfg.l3.mshrs + 8
    for i in range(n):
        h.access(load(0, 0x10000 + i * 64), 0, done.append)
    sim.run()
    assert len(done) == n
    assert len(misses) == n
    assert h.mshrs.overflow_events == 8


def test_line_key_separates_cores(sim, tiny_cfg):
    assert line_key(0, 0x1000) != line_key(1, 0x1000)


def test_cores_do_not_share_private_levels(sim, tiny_cfg):
    h, misses, _ = make(sim, tiny_cfg)
    h.access(load(0, 0x1000), 0, lambda t: None)
    sim.run()
    r = h.access(load(1, 0x1000), 100, lambda t: None)
    assert r is None  # core 1 misses privately
    sim.run()
    assert len(misses) == 2


def test_dirty_l3_eviction_writes_back(sim, tiny_cfg):
    h, _, wbs = make(sim, tiny_cfg)
    # Fill far more lines than L3 holds, all written.
    capacity_lines = tiny_cfg.l3.size_bytes // 64
    for i in range(capacity_lines + 512):
        h.access(store(0, i * 64), 0, lambda t: None)
    sim.run()
    assert len(wbs) > 0


def test_invalidate_page_removes_lines(sim, tiny_cfg):
    h, _, _ = make(sim, tiny_cfg)
    vpn = 7
    for i in range(LINES_PER_PAGE):
        h.access(load(0, vpn * 4096 + i * 64), 0, lambda t: None)
    sim.run()
    h.invalidate_page(0, vpn)
    r = h.access(load(0, vpn * 4096), 10_000, lambda t: None)
    assert r is None  # flushed: misses again


def test_invalidate_page_returns_dirty_line_addrs(sim, tiny_cfg):
    h, _, _ = make(sim, tiny_cfg)
    h.access(store(0, 9 * 4096), 0, lambda t: None)
    sim.run()
    dirty = h.invalidate_page(0, 9)
    assert dirty == [9 * 4096]


def test_retarget_page_changes_writeback_target(sim, tiny_cfg):
    h, _, wbs = make(sim, tiny_cfg)
    h.access(store(0, 5 * 4096), 0, lambda t: None)
    sim.run()
    h.retarget_page(0, 5, 99 * 4096)
    dirty = h.invalidate_page(0, 5)
    assert dirty == [99 * 4096]


def test_pending_dirty_from_merged_store(sim, tiny_cfg):
    h, _, _ = make(sim, tiny_cfg)
    h.access(load(0, 0x8000), 0, lambda t: None)  # miss outstanding
    h.access(store(0, 0x8000), 1, lambda t: None)  # merges as store
    sim.run()
    dirty = h.invalidate_page(0, 0x8000 >> 12)
    assert 0x8000 in dirty


def test_llc_counters(sim, tiny_cfg):
    h, _, _ = make(sim, tiny_cfg)
    h.access(load(0, 0x1000), 0, lambda t: None)
    sim.run()
    h.access(load(0, 0x1000), 1000, lambda t: None)
    assert h.stats.get("llc_misses").value == 1
    assert h.stats.get("llc_accesses").value == 1
