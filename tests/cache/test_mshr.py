"""MSHR file: merge, capacity, overflow queueing."""

import pytest

from repro.cache.mshr import MSHRFile


def test_capacity_validated():
    with pytest.raises(ValueError):
        MSHRFile(0)


def test_new_miss_allocates():
    m = MSHRFile(4)
    assert m.allocate("line1", 0, lambda t: None) == "new"
    assert m.outstanding() == 1


def test_second_miss_merges():
    m = MSHRFile(4)
    m.allocate("x", 0, lambda t: None)
    assert m.allocate("x", 1, lambda t: None) == "merged"
    assert m.merges == 1
    assert m.outstanding() == 1


def test_retire_returns_all_waiters():
    m = MSHRFile(4)
    seen = []
    m.allocate("x", 0, lambda t: seen.append(("a", t)))
    m.allocate("x", 1, lambda t: seen.append(("b", t)))
    for w in m.retire("x", 10):
        w(10)
    assert seen == [("a", 10), ("b", 10)]


def test_full_file_queues():
    m = MSHRFile(2)
    m.allocate("a", 0, lambda t: None)
    m.allocate("b", 0, lambda t: None)
    assert m.allocate("c", 0, lambda t: None) == "queued"
    assert m.full
    assert m.overflow_events == 1


def test_drain_overflow_promotes():
    m = MSHRFile(1)
    m.allocate("a", 0, lambda t: None)
    m.allocate("b", 0, lambda t: None)
    m.retire("a", 5)
    promoted = m.drain_overflow(5)
    assert promoted == ["b"]
    assert m.lookup("b") is not None


def test_drain_overflow_merges_duplicates():
    m = MSHRFile(1)
    m.allocate("a", 0, lambda t: None)
    m.allocate("b", 0, lambda t: None)
    m.allocate("b", 0, lambda t: None)
    m.retire("a", 5)
    promoted = m.drain_overflow(5)
    assert promoted == ["b"]
    assert len(m.lookup("b").waiters) == 2


def test_drain_overflow_respects_capacity():
    m = MSHRFile(1)
    m.allocate("a", 0, lambda t: None)
    for key in ("b", "c"):
        m.allocate(key, 0, lambda t: None)
    m.retire("a", 5)
    promoted = m.drain_overflow(5)
    assert promoted == ["b"]  # only one slot freed
    promoted2 = m.drain_overflow(6)
    assert promoted2 == []  # "c" still waiting; file full again


def test_retire_unknown_raises():
    m = MSHRFile(2)
    with pytest.raises(KeyError):
        m.retire("nope", 0)
