"""LRU and FIFO replacement policies."""

import pytest

from repro.cache.replacement import FIFOPolicy, LRUPolicy, make_policy


def test_lru_evicts_least_recent():
    p = LRUPolicy()
    for k in "abc":
        p.insert(k)
    p.touch("a")
    assert p.evict() == "b"


def test_lru_insert_duplicate_raises():
    p = LRUPolicy()
    p.insert("a")
    with pytest.raises(KeyError):
        p.insert("a")


def test_lru_remove():
    p = LRUPolicy()
    p.insert("a")
    p.insert("b")
    p.remove("a")
    assert p.evict() == "b"
    assert len(p) == 0


def test_lru_evict_empty_raises():
    with pytest.raises(IndexError):
        LRUPolicy().evict()


def test_fifo_ignores_touches():
    p = FIFOPolicy()
    for k in "abc":
        p.insert(k)
    p.touch("a")  # must NOT move "a" back
    assert p.evict() == "a"


def test_fifo_touch_unknown_raises():
    p = FIFOPolicy()
    with pytest.raises(KeyError):
        p.touch("missing")


def test_fifo_order_is_insertion_order():
    p = FIFOPolicy()
    for k in range(5):
        p.insert(k)
    assert [p.evict() for _ in range(5)] == list(range(5))


def test_make_policy():
    assert isinstance(make_policy("lru"), LRUPolicy)
    assert isinstance(make_policy("fifo"), FIFOPolicy)
    with pytest.raises(ValueError):
        make_policy("random")


def test_fifo_vs_lru_divergence():
    """The paper's Section III-C2 point: FIFO and LRU choose different
    victims under reuse."""
    lru, fifo = LRUPolicy(), FIFOPolicy()
    for p in (lru, fifo):
        for k in "abcd":
            p.insert(k)
    lru.touch("a")
    fifo.touch("a")
    assert lru.evict() == "b"
    assert fifo.evict() == "a"
