"""Functional set-associative SRAM cache."""

import pytest

from repro.cache.sram_cache import SRAMCache
from repro.config.system import CacheConfig


def small(ways=2, sets=4):
    return SRAMCache(CacheConfig("t", 64 * ways * sets, ways, 1, 4))


def test_miss_then_hit():
    c = small()
    assert not c.lookup(10)
    c.insert(10, paddr=0x1000)
    assert c.lookup(10)
    assert c.hits == 1 and c.misses == 1


def test_eviction_returns_victim():
    c = SRAMCache(CacheConfig("t", 64 * 2, 2, 1, 4))  # 1 set, 2 ways
    c.insert(1, 0x100)
    c.insert(2, 0x200)
    victim = c.insert(3, 0x300)
    assert victim is not None
    assert victim.key == 1
    assert victim.paddr == 0x100


def test_lru_order_respected():
    c = SRAMCache(CacheConfig("t", 64 * 2, 2, 1, 4))
    c.insert(1, 0)
    c.insert(2, 0)
    c.lookup(1)  # 2 becomes LRU
    victim = c.insert(3, 0)
    assert victim.key == 2


def test_write_sets_dirty():
    c = small()
    c.insert(5, 0x500)
    c.lookup(5, is_write=True)
    line = c.invalidate(5)
    assert line.dirty


def test_insert_dirty():
    c = small()
    c.insert(5, 0x500, dirty=True)
    assert c.invalidate(5).dirty


def test_reinsert_merges_dirty():
    c = small()
    c.insert(5, 0x500, dirty=True)
    victim = c.insert(5, 0x600)  # refill clean
    assert victim is None
    line = c.invalidate(5)
    assert line.dirty  # dirt preserved
    assert line.paddr == 0x600


def test_invalidate_missing_returns_none():
    c = small()
    assert c.invalidate(99) is None


def test_contains_does_not_count():
    c = small()
    c.insert(1, 0)
    hits, misses = c.hits, c.misses
    assert c.contains(1)
    assert not c.contains(2)
    assert (c.hits, c.misses) == (hits, misses)


def test_invalidate_matching():
    c = small(ways=4, sets=4)
    for k in range(8):
        c.insert(k, k * 64)
    removed = c.invalidate_matching(lambda k: k % 2 == 0)
    assert sorted(l.key for l in removed) == [0, 2, 4, 6]
    assert c.occupancy == 4


def test_update_paddr():
    c = small()
    c.insert(1, 0x100)
    c.update_paddr(1, 0x900)
    assert c.invalidate(1).paddr == 0x900


def test_hit_rate():
    c = small()
    c.insert(1, 0)
    c.lookup(1)
    c.lookup(2)
    assert c.hit_rate == pytest.approx(0.5)


def test_zero_sets_rejected():
    with pytest.raises(ValueError):
        SRAMCache(CacheConfig("t", 64, 2, 1, 4))
