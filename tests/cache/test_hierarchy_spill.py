"""Dirty-victim spill paths through the inclusive hierarchy."""

from repro.cache.hierarchy import CacheHierarchy
from repro.common.types import AccessType, MemAccess
from repro.config.system import CacheConfig, scaled_system
import dataclasses


def tiny_hier(sim):
    cfg = scaled_system(num_cores=1, dc_megabytes=8)
    cfg = dataclasses.replace(
        cfg,
        l1=CacheConfig("l1", 2 * 64 * 2, 2, 1, 4),   # 2 sets x 2 ways
        l2=CacheConfig("l2", 4 * 64 * 2, 2, 2, 4),
        l3=CacheConfig("l3", 8 * 64 * 2, 2, 3, 8),
    )
    wbs = []

    def miss(access, cb):
        sim.schedule(10, lambda: cb(sim.now + 10))

    return CacheHierarchy(sim, cfg, miss, wbs.append), wbs


def store(addr):
    a = MemAccess(addr=addr, access_type=AccessType.STORE, core_id=0, issue_time=0)
    a.paddr = addr
    return a


def test_dirty_data_survives_l1_eviction(sim):
    h, wbs = tiny_hier(sim)
    # Write a line, then push it out of tiny L1 with conflicting fills.
    h.access(store(0x0000), sim.now, lambda t: None)
    sim.run()
    for i in range(1, 6):
        h.access(store(i * 128), sim.now, lambda t: None)  # same L1 set stride
        sim.run()
    # The dirty line is either still in L2/L3 (dirt merged downward) or
    # was written back; flushing must account for it exactly once.
    dirty = h.invalidate_page(0, 0)
    total_dirty_events = len(dirty) + len(wbs)
    assert total_dirty_events >= 1


def test_back_invalidate_collects_upper_dirt(sim):
    h, wbs = tiny_hier(sim)
    h.access(store(0x0000), sim.now, lambda t: None)
    sim.run()
    # Thrash L3 set 0 until the inclusive eviction back-invalidates L1/L2.
    for i in range(1, 24):
        h.access(store(i * 64 * 2), sim.now, lambda t: None)
        sim.run()
    assert wbs, "dirty line must eventually reach the writeback handler"
