"""to_dict/from_dict round trips for configs and results."""

import json

import pytest

from repro.config.schemes import (
    BackendTopology,
    NomadConfig,
    TDCConfig,
    TiDConfig,
)
from repro.harness.runner import RunConfig, run_workload
from repro.system.machine import MachineResult


def _json_round_trip(obj):
    return json.loads(json.dumps(obj))


def test_nomad_config_round_trip_with_enum():
    cfg = NomadConfig(num_pcshrs=8, num_copy_buffers=4,
                      topology=BackendTopology.DISTRIBUTED)
    d = _json_round_trip(cfg.to_dict())
    assert d["topology"] == "distributed"
    assert NomadConfig.from_dict(d) == cfg


def test_tdc_and_tid_round_trip():
    for cfg in (TDCConfig(max_parallel_copies=8), TiDConfig(ways=8)):
        assert type(cfg).from_dict(_json_round_trip(cfg.to_dict())) == cfg


def test_run_config_round_trip_nested():
    cfg = RunConfig(
        scheme="nomad", workload="sop", num_mem_ops=300, num_cores=2,
        dc_megabytes=8, seed=3, prewarm=False,
        nomad_cfg=NomadConfig(num_pcshrs=8),
        tdc_cfg=TDCConfig(),
        tid_cfg=TiDConfig(),
    )
    back = RunConfig.from_dict(_json_round_trip(cfg.to_dict()))
    assert back == cfg


def test_run_config_round_trip_none_nested():
    cfg = RunConfig(scheme="baseline", workload="sop")
    d = cfg.to_dict()
    assert d["nomad_cfg"] is None
    assert RunConfig.from_dict(d) == cfg


def test_from_dict_rejects_unknown_keys():
    with pytest.raises(ValueError, match="unknown keys"):
        RunConfig.from_dict({"scheme": "baseline", "workload": "sop",
                             "warp_drive": True})
    with pytest.raises(ValueError, match="unknown keys"):
        NomadConfig.from_dict({"num_pcshrs": 8, "bogus": 1})


def test_dict_is_stable_cache_key_material():
    a = RunConfig(scheme="nomad", workload="sop",
                  nomad_cfg=NomadConfig(num_pcshrs=8))
    b = RunConfig(scheme="nomad", workload="sop",
                  nomad_cfg=NomadConfig(num_pcshrs=8))
    assert json.dumps(a.to_dict(), sort_keys=True) == \
        json.dumps(b.to_dict(), sort_keys=True)


def test_machine_result_round_trip():
    res = run_workload(RunConfig(scheme="baseline", workload="sop",
                                 num_mem_ops=300, num_cores=2,
                                 dc_megabytes=8))
    back = MachineResult.from_dict(_json_round_trip(res.to_dict()))
    assert back == res


def test_machine_result_rejects_unknown_keys():
    with pytest.raises(ValueError, match="unknown keys"):
        MachineResult.from_dict({"nope": 1})
