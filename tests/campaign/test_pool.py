"""Robustness layer: crashes, hangs, retries, deterministic merge order."""

from repro.campaign.pool import CRASHED, ERROR, OK, TIMEOUT, map_with_retries

from tests.campaign import workers


def test_all_ok_preserves_submission_order():
    outcomes = map_with_retries(workers.square, list(range(8)), jobs=4)
    assert [o.status for o in outcomes] == [OK] * 8
    assert [o.value for o in outcomes] == [i * i for i in range(8)]
    assert [o.index for o in outcomes] == list(range(8))


def test_deterministic_crash_exhausts_retries_and_spares_others():
    payloads = [1, 2, 3]
    outcomes = map_with_retries(
        workers.crash_if_two, payloads, jobs=2, retries=2
    )
    assert outcomes[0].status == OK and outcomes[0].value == 1
    assert outcomes[2].status == OK and outcomes[2].value == 3
    assert outcomes[1].status == CRASHED
    assert outcomes[1].attempts == 3  # 1 try + 2 retries


def test_crash_once_recovers_on_retry(tmp_path):
    marker = str(tmp_path / "attempted.marker")
    outcomes = map_with_retries(workers.crash_once, [marker], jobs=2, retries=1)
    assert outcomes[0].status == OK
    assert outcomes[0].value == "recovered"
    assert outcomes[0].attempts == 2


def test_task_exception_is_error_not_retried():
    outcomes = map_with_retries(workers.raise_value_error, [7], jobs=2,
                                retries=3)
    assert outcomes[0].status == ERROR
    assert outcomes[0].attempts == 1
    assert "bad payload 7" in outcomes[0].error


def test_hung_worker_trips_watchdog():
    outcomes = map_with_retries(
        workers.hang_if_negative, [2, -1, 3], jobs=3, timeout=1.0, retries=0
    )
    assert outcomes[0].status == OK and outcomes[0].value == 4
    assert outcomes[2].status == OK and outcomes[2].value == 9
    assert outcomes[1].status == TIMEOUT
    assert "worker killed" in outcomes[1].error


def test_heartbeat_reports_progress_without_completions():
    events = []
    outcomes = map_with_retries(
        workers.sleep_briefly, [1, 2], jobs=2,
        heartbeat=0.1, on_event=lambda kind, info: events.append((kind, info)),
    )
    assert [o.status for o in outcomes] == [OK, OK]
    kinds = [kind for kind, _ in events]
    # The workers sleep ~0.6 s, so several 0.1 s slices elapse first.
    assert "heartbeat" in kinds
    assert "done" in kinds
    final_kind, final_info = events[-1]
    assert final_kind == "done"
    assert final_info["completed"] == 2
    assert final_info["outstanding"] == 0
    assert final_info["total"] == 2
    # Heartbeats never claim more completions than have happened.
    for kind, info in events:
        if kind == "heartbeat":
            assert info["completed"] < 2


def test_heartbeat_does_not_mask_the_watchdog():
    events = []
    outcomes = map_with_retries(
        workers.hang_if_negative, [-1], jobs=1, timeout=0.8, retries=0,
        heartbeat=0.1, on_event=lambda kind, info: events.append(kind),
    )
    assert outcomes[0].status == TIMEOUT
    assert "heartbeat" in events
