"""Robustness layer: crashes, hangs, retries, deterministic merge order."""

import pytest

from repro.campaign.pool import CRASHED, ERROR, OK, TIMEOUT, map_with_retries

from tests.campaign import workers


def test_all_ok_preserves_submission_order():
    outcomes = map_with_retries(workers.square, list(range(8)), jobs=4)
    assert [o.status for o in outcomes] == [OK] * 8
    assert [o.value for o in outcomes] == [i * i for i in range(8)]
    assert [o.index for o in outcomes] == list(range(8))


def test_deterministic_crash_exhausts_retries_and_spares_others():
    payloads = [1, 2, 3]
    outcomes = map_with_retries(
        workers.crash_if_two, payloads, jobs=2, retries=2
    )
    assert outcomes[0].status == OK and outcomes[0].value == 1
    assert outcomes[2].status == OK and outcomes[2].value == 3
    assert outcomes[1].status == CRASHED
    assert outcomes[1].attempts == 3  # 1 try + 2 retries


def test_crash_once_recovers_on_retry(tmp_path):
    marker = str(tmp_path / "attempted.marker")
    outcomes = map_with_retries(workers.crash_once, [marker], jobs=2, retries=1)
    assert outcomes[0].status == OK
    assert outcomes[0].value == "recovered"
    assert outcomes[0].attempts == 2


def test_task_exception_is_error_not_retried():
    outcomes = map_with_retries(workers.raise_value_error, [7], jobs=2,
                                retries=3)
    assert outcomes[0].status == ERROR
    assert outcomes[0].attempts == 1
    assert "bad payload 7" in outcomes[0].error


def test_hung_worker_trips_watchdog():
    outcomes = map_with_retries(
        workers.hang_if_negative, [2, -1, 3], jobs=3, timeout=1.0, retries=0
    )
    assert outcomes[0].status == OK and outcomes[0].value == 4
    assert outcomes[2].status == OK and outcomes[2].value == 9
    assert outcomes[1].status == TIMEOUT
    assert "worker killed" in outcomes[1].error


def test_heartbeat_reports_progress_without_completions():
    events = []
    outcomes = map_with_retries(
        workers.sleep_briefly, [1, 2], jobs=2,
        heartbeat=0.1, on_event=lambda kind, info: events.append((kind, info)),
    )
    assert [o.status for o in outcomes] == [OK, OK]
    kinds = [kind for kind, _ in events]
    # The workers sleep ~0.6 s, so several 0.1 s slices elapse first.
    assert "heartbeat" in kinds
    assert "done" in kinds
    final_kind, final_info = events[-1]
    assert final_kind == "done"
    assert final_info["completed"] == 2
    assert final_info["outstanding"] == 0
    assert final_info["total"] == 2
    # Heartbeats never claim more completions than have happened.
    for kind, info in events:
        if kind == "heartbeat":
            assert info["completed"] < 2


def test_heartbeat_does_not_mask_the_watchdog():
    events = []
    outcomes = map_with_retries(
        workers.hang_if_negative, [-1], jobs=1, timeout=0.8, retries=0,
        heartbeat=0.1, on_event=lambda kind, info: events.append(kind),
    )
    assert outcomes[0].status == TIMEOUT
    assert "heartbeat" in events


# -- jittered exponential backoff (shared with the service layer) -----------

def test_backoff_grows_exponentially_without_jitter():
    from repro.campaign.pool import Backoff

    b = Backoff(base=0.1, factor=2.0, cap=30.0, jitter=0.0)
    assert b.delay(1) == pytest.approx(0.1)
    assert b.delay(2) == pytest.approx(0.2)
    assert b.delay(3) == pytest.approx(0.4)
    assert b.delay(5) == pytest.approx(1.6)


def test_backoff_caps():
    from repro.campaign.pool import Backoff

    b = Backoff(base=1.0, factor=2.0, cap=5.0, jitter=0.0)
    assert b.delay(10) == pytest.approx(5.0)
    assert b.delay(100) == pytest.approx(5.0)  # no overflow blowup


def test_backoff_jitter_stays_in_band():
    from repro.campaign.pool import Backoff

    b = Backoff(base=1.0, factor=2.0, cap=30.0, jitter=0.5)
    # rng=0 -> full jitter reduction; rng=1 -> raw delay.
    assert b.delay(1, rng=lambda: 0.0) == pytest.approx(0.5)
    assert b.delay(1, rng=lambda: 1.0) == pytest.approx(1.0)
    import random
    r = random.Random(7)
    for attempt in (1, 2, 3, 4):
        raw = min(30.0, 1.0 * 2.0 ** (attempt - 1))
        for _ in range(50):
            d = b.delay(attempt, rng=r.random)
            assert raw * 0.5 <= d <= raw


def test_backoff_sleep_uses_injected_sleeper():
    from repro.campaign.pool import Backoff

    slept = []
    b = Backoff(base=0.2, jitter=0.0)
    returned = b.sleep(2, sleep=slept.append)
    assert slept == [pytest.approx(0.4)]
    assert returned == pytest.approx(0.4)


def test_map_with_retries_backs_off_between_retry_rounds(tmp_path):
    from repro.campaign.pool import Backoff

    class CountingBackoff(Backoff):
        calls = []  # class attr: instances are frozen dataclasses

        def sleep(self, attempt, sleep=None):
            CountingBackoff.calls.append(attempt)
            return 0.0

    CountingBackoff.calls = []
    marker = str(tmp_path / "attempted.marker")
    outcomes = map_with_retries(
        workers.crash_once, [marker], jobs=2, retries=1,
        backoff=CountingBackoff(base=0.01),
    )
    assert outcomes[0].status == OK
    assert CountingBackoff.calls == [1]  # one backoff before the retry


def test_map_with_retries_accepts_no_backoff():
    outcomes = map_with_retries(
        workers.square, [1, 2], jobs=2, backoff=None
    )
    assert [o.value for o in outcomes] == [1, 4]
