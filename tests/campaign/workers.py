"""Module-level worker functions for the pool tests.

They live here (not in the test module) so ``ProcessPoolExecutor`` can
pickle them by qualified name in every start method.
"""

import os
import time


def square(x):
    return x * x


def crash(_payload):
    """Kill the worker process outright (bypasses exception handling)."""
    os._exit(13)


def crash_once(path):
    """Crash on the first attempt, succeed on the retry.

    Cross-process state is a marker file: absent -> create it and die;
    present -> return normally.
    """
    if os.path.exists(path):
        return "recovered"
    with open(path, "w") as fh:
        fh.write("attempted")
    os._exit(13)


def hang(_payload):
    time.sleep(300)


def hang_if_negative(x):
    if x < 0:
        time.sleep(300)
    return x * x


def sleep_briefly(x):
    time.sleep(0.6)
    return x * x


def raise_value_error(x):
    raise ValueError(f"bad payload {x}")


def crash_if_two(x):
    if x == 2:
        os._exit(13)
    return x
