"""Scheme-grouped pool batching: planning, isolation, stat merging.

Pool campaigns group runs that share a machine-snapshot key into one
worker task so the group's first run builds+snapshots and the rest fork
inside that worker.  Batching must never change results, output order,
or failure isolation -- only wall clock.
"""

import pytest

from repro.campaign import run_campaign
from repro.campaign.executor import _plan_batches
from repro.harness import runner
from repro.harness.runner import RunConfig, clear_cache

BASE = RunConfig(scheme="nomad", workload="sop", num_mem_ops=300,
                 num_cores=2, dc_megabytes=8)


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_cache()
    runner.clear_snapshot_cache()
    prev = runner.set_result_store(None)
    yield
    runner.set_result_store(prev)
    runner.clear_snapshot_cache()
    clear_cache()


# -- planning ------------------------------------------------------------------


def _grid(schemes, seeds):
    return [BASE.with_(scheme=s, seed=seed) for s in schemes for seed in seeds]


def test_plan_groups_by_snapshot_key():
    configs = _grid(["nomad", "tdc"], [1, 2, 3])
    groups = _plan_batches(list(range(6)), configs, jobs=1, batching=True)
    assert sorted(i for g in groups for i in g) == list(range(6))
    assert [0, 1, 2] in groups and [3, 4, 5] in groups


def test_plan_chunks_to_keep_workers_busy():
    configs = _grid(["nomad"], range(1, 9))  # one key, 8 runs
    groups = _plan_batches(list(range(8)), configs, jobs=4, batching=True)
    assert sorted(i for g in groups for i in g) == list(range(8))
    assert len(groups) >= 4  # a single-key sweep still spreads out
    assert all(len(g) <= 2 for g in groups)


def test_plan_keeps_ineligible_configs_singleton():
    configs = [BASE.with_(scheme="baseline", seed=s) for s in (1, 2)] + \
              [BASE.with_(seed=s) for s in (1, 2)]
    groups = _plan_batches(list(range(4)), configs, jobs=1, batching=True)
    assert [0] in groups and [1] in groups  # baseline never batches
    assert [2, 3] in groups


def test_plan_batching_off_is_all_singletons():
    configs = _grid(["nomad"], [1, 2, 3])
    assert _plan_batches([0, 1, 2], configs, jobs=2, batching=False) == \
        [[0], [1], [2]]


def test_plan_preserves_grid_order_of_first_members():
    configs = _grid(["nomad", "tdc"], [1, 2])
    groups = _plan_batches(list(range(4)), configs, jobs=1, batching=True)
    firsts = [g[0] for g in groups]
    assert firsts == sorted(firsts)


# -- execution -----------------------------------------------------------------


def test_batched_pool_matches_serial_results():
    configs = _grid(["nomad", "tdc"], [1, 2, 3])
    serial = run_campaign(configs, jobs=1)
    assert serial.ok
    clear_cache()
    runner.clear_snapshot_cache()
    pooled = run_campaign(configs, jobs=2)
    assert pooled.ok
    for s_rec, p_rec in zip(serial.records, pooled.records):
        assert s_rec.config == p_rec.config
        assert s_rec.result == p_rec.result


def test_batch_failure_isolated_to_one_item():
    configs = [BASE.with_(seed=1),
               BASE.with_(seed=2, workload="nosuch"),
               BASE.with_(seed=3)]
    campaign = run_campaign(configs, jobs=2)
    assert [r.status for r in campaign.records] == \
        ["completed", "failed", "completed"]
    assert campaign.summary.failed == 1
    assert campaign.failures()[0].error


def test_pool_summary_merges_worker_snapshot_stats():
    configs = _grid(["nomad", "tdc"], [1, 2, 3])
    campaign = run_campaign(configs, jobs=2)
    assert campaign.ok
    snap = campaign.summary.snapshot
    # 6 runs over 2 snapshot keys: at least one fork per key's worker,
    # however the chunks land.
    assert snap.get("stores", 0) >= 2
    assert snap.get("hits", 0) >= 2
    text = campaign.summary.describe()
    assert "snapshot cache" in text
    assert "trace cache" in text
