"""Campaign handling of deterministic failures: classify + quarantine.

A config that fails the same way twice is deterministic; the campaign
must finish, mark it ``quarantined`` with the failure taxonomy and the
diagnostic bundle path, persist it in the store, and never retry it past
the second attempt -- in this campaign or any later one.
"""

import pytest

from repro.campaign import ResultStore, run_campaign
from repro.campaign.executor import COMPLETED, QUARANTINED
from repro.guard import GuardConfig
from repro.harness.runner import RunConfig, clear_cache


@pytest.fixture(autouse=True)
def _fresh_memo():
    clear_cache()
    yield
    clear_cache()


def _configs():
    common = dict(workload="cact", num_mem_ops=600, num_cores=2,
                  dc_megabytes=16)
    return [
        RunConfig(scheme="baseline", **common),
        RunConfig(scheme="nomad", **common),
    ]


def _guard(tmp_path):
    # Chaos scoped to the nomad run: exactly one deterministically
    # failing config in an otherwise healthy campaign.
    return GuardConfig(
        check_interval=200, chaos="leak_mshr", chaos_at_event=400,
        chaos_scheme="nomad", bundle_dir=str(tmp_path),
    )


def test_serial_campaign_quarantines_deterministic_failure(tmp_path):
    store = ResultStore(tmp_path / "store")
    configs = _configs()
    res = run_campaign(configs, store=store, guard=_guard(tmp_path))

    healthy, bad = res.records
    assert healthy.status == COMPLETED
    assert bad.status == QUARANTINED
    assert bad.failure_kind == "invariant"
    assert bad.attempts == 2, "no retry past the second attempt"
    assert bad.bundle_path
    assert "InvariantViolation" in bad.error
    assert "mshr" in bad.traceback
    assert res.summary.quarantined == 1
    assert res.summary.failed == 0
    assert not res.ok

    # Quarantine persisted with the taxonomy + bundle pointer.
    record = store.get_failure(configs[1])
    assert record is not None
    assert record["failure_kind"] == "invariant"
    assert record["bundle_path"] == bad.bundle_path


def test_second_campaign_serves_quarantine_from_store(tmp_path):
    store = ResultStore(tmp_path / "store")
    configs = _configs()
    run_campaign(configs, store=store, guard=_guard(tmp_path))

    res2 = run_campaign(configs, store=store, guard=_guard(tmp_path))
    bad = res2.records[1]
    assert bad.status == QUARANTINED
    assert bad.source == "store"
    assert bad.attempts == 0, "a known-bad config must not be re-run"
    assert bad.failure_kind == "invariant"


def test_pool_campaign_quarantines_with_confirm_pass(tmp_path):
    store = ResultStore(tmp_path / "store")
    configs = _configs()
    res = run_campaign(configs, jobs=2, store=store, guard=_guard(tmp_path))

    healthy, bad = res.records
    assert healthy.status == COMPLETED
    assert bad.status == QUARANTINED
    assert bad.failure_kind == "invariant"
    assert bad.attempts == 2
    assert store.get_failure(configs[1]) is not None


def test_guarded_results_do_not_poison_caches(tmp_path):
    store = ResultStore(tmp_path / "store")
    configs = _configs()
    run_campaign(configs, store=store, guard=_guard(tmp_path))
    # Guarded runs bypass the store in both directions.
    assert store.get(configs[0]) is None
    assert len(store) == 0, "quarantine records must not count as results"


def test_quarantine_excluded_from_store_len(tmp_path):
    store = ResultStore(tmp_path / "store")
    cfg = _configs()[1]
    store.put_failure(cfg, {"failure_kind": "invariant", "error": "x"})
    assert len(store) == 0
    assert store.get_failure(cfg)["error"] == "x"


def test_unguarded_failure_records_traceback():
    """Serial unguarded failures keep a formatted traceback + kind."""
    from repro.campaign.executor import FAILED

    bad_cfg = RunConfig(scheme="nomad", workload="cact", num_mem_ops=-5,
                        num_cores=2, dc_megabytes=16)
    res = run_campaign([bad_cfg], store=None)
    (rec,) = res.records
    assert rec.status == FAILED
    assert rec.failure_kind == "crash"
    assert rec.attempts == 1
    assert "Traceback" in rec.traceback
    payload = rec.to_dict()
    assert payload["failure_kind"] == "crash"
    assert payload["attempts"] == 1
    assert payload["traceback"]
