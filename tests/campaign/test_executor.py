"""Campaign executor: parallel==serial, store reuse, failure summaries."""

import pytest

from repro.campaign import (
    CampaignError,
    GridSpec,
    ResultStore,
    run_campaign,
)
from repro.harness import runner
from repro.harness.runner import RunConfig, clear_cache, run_matrix

BASE = RunConfig(scheme="baseline", workload="sop", num_mem_ops=300,
                 num_cores=2, dc_megabytes=8)
GRID = GridSpec(schemes=("baseline", "nomad"), workloads=("sop", "cc"),
                base=BASE, axes={"seed": (1, 2)})  # 8 runs


@pytest.fixture(autouse=True)
def _fresh_caches():
    clear_cache()
    prev = runner.set_result_store(None)
    yield
    runner.set_result_store(prev)
    clear_cache()


def test_parallel_equals_serial_on_8_run_grid():
    serial = run_campaign(GRID, jobs=1)
    assert serial.ok and serial.summary.completed == 8
    clear_cache()
    parallel = run_campaign(GRID, jobs=4)
    assert parallel.ok and parallel.summary.completed == 8
    for s_rec, p_rec in zip(serial.records, parallel.records):
        assert s_rec.config == p_rec.config
        assert s_rec.result == p_rec.result  # full stat equality, not just IPC


def test_second_campaign_is_all_store_hits(tmp_path):
    store = ResultStore(tmp_path)
    first = run_campaign(GRID, jobs=2, store=store)
    assert first.summary.completed == 8
    clear_cache()  # drop the memo so only the disk store can answer
    second = run_campaign(GRID, jobs=2, store=ResultStore(tmp_path))
    assert second.summary.cached == 8
    assert second.summary.completed == 0
    assert all(r.source == "store" for r in second.records)
    for a, b in zip(first.records, second.records):
        assert a.result == b.result


def test_memo_hits_reported_as_cached():
    first = run_campaign(GRID, jobs=1)
    assert first.summary.completed == 8
    again = run_campaign(GRID, jobs=1)
    assert again.summary.cached == 8
    assert all(r.source == "memo" for r in again.records)


def test_failed_run_does_not_abort_grid():
    configs = [BASE, BASE.with_(workload="nosuch"), BASE.with_(seed=2)]
    campaign = run_campaign(configs, jobs=1)
    assert [r.status for r in campaign.records] == \
        ["completed", "failed", "completed"]
    assert campaign.summary.failed == 1
    assert not campaign.ok
    assert campaign.failures()[0].error


def test_failed_run_in_parallel_mode(tmp_path):
    configs = [BASE, BASE.with_(workload="nosuch"), BASE.with_(seed=2)]
    campaign = run_campaign(configs, jobs=2)
    statuses = [r.status for r in campaign.records]
    assert statuses == ["completed", "failed", "completed"]
    assert campaign.records[1].attempts == 1  # deterministic error: no retry


def test_summary_surfaces_memo_counters():
    campaign = run_campaign(GRID, jobs=1)
    assert campaign.summary.memo["misses"] >= 8
    assert "maxsize" in campaign.summary.memo


def test_as_matrix_raises_on_failure():
    campaign = run_campaign([BASE.with_(workload="nosuch")], jobs=1)
    with pytest.raises(CampaignError, match="failed"):
        campaign.as_matrix()


def test_as_matrix_raises_on_duplicate_keys():
    campaign = run_campaign(GRID, jobs=1)  # seeds axis duplicates (s, wl)
    with pytest.raises(CampaignError, match="multiple runs"):
        campaign.as_matrix()


def test_run_matrix_routes_through_campaign():
    out = run_matrix(["baseline", "ideal"], ["sop"], BASE)
    assert set(out) == {("baseline", "sop"), ("ideal", "sop")}


def test_run_matrix_parallel_matches_serial():
    serial = run_matrix(["baseline", "nomad"], ["sop", "cc"], BASE)
    clear_cache()
    parallel = run_matrix(["baseline", "nomad"], ["sop", "cc"], BASE, jobs=4)
    assert set(serial) == set(parallel)
    for key in serial:
        assert serial[key] == parallel[key]


def test_explicit_store_not_left_installed(tmp_path):
    run_campaign([BASE], jobs=1, store=ResultStore(tmp_path))
    assert runner.get_result_store() is None


def test_telemetry_campaign_attaches_summaries_serial():
    configs = [BASE.with_(scheme="tdc"), BASE.with_(scheme="nomad")]
    campaign = run_campaign(configs, jobs=1, telemetry=True)
    assert campaign.ok
    for rec in campaign.records:
        assert rec.telemetry is not None
        assert "overlap_fraction" in rec.telemetry
        assert rec.telemetry["scheme"] == rec.config.scheme
        assert rec.to_dict()["telemetry"] == rec.telemetry
    # The result itself stays telemetry-free (out-of-band transport).
    assert "__telemetry__" not in campaign.records[0].result.to_dict()


def test_telemetry_campaign_parallel_matches_serial_results():
    configs = [BASE, BASE.with_(seed=2)]
    serial = run_campaign(configs, jobs=1, telemetry=True)
    clear_cache()
    parallel = run_campaign(configs, jobs=2, telemetry=True)
    for s_rec, p_rec in zip(serial.records, parallel.records):
        assert s_rec.result == p_rec.result
        assert p_rec.telemetry is not None
        assert p_rec.telemetry["events"] == s_rec.telemetry["events"]


def test_telemetry_runs_bypass_cache_lookup_but_prime_it():
    first = run_campaign([BASE], jobs=1)
    assert first.summary.completed == 1
    # A cached result has no trace: the observed campaign re-simulates.
    observed = run_campaign([BASE], jobs=1, telemetry=True)
    assert observed.summary.completed == 1
    assert observed.summary.cached == 0
    assert observed.records[0].telemetry is not None
    assert observed.records[0].result == first.records[0].result


def test_progress_callable_sees_every_completion():
    events = []
    campaign = run_campaign(
        [BASE, BASE.with_(seed=2)], jobs=1,
        progress=lambda kind, info: events.append((kind, dict(info))),
    )
    assert campaign.ok
    done = [info for kind, info in events if kind == "done"]
    assert done
    assert done[-1]["completed"] == 2
    assert done[-1]["total"] == 2
