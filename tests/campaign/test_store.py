"""Persistent result store: hits, invalidation, corruption tolerance."""

from repro.campaign import ResultStore
from repro.config.schemes import NomadConfig
from repro.harness.runner import RunConfig, run_workload

SMALL = RunConfig(scheme="baseline", workload="sop", num_mem_ops=300,
                  num_cores=2, dc_megabytes=8)


def _result():
    return run_workload(SMALL)


def test_put_get_round_trip(tmp_path):
    store = ResultStore(tmp_path)
    res = _result()
    assert store.get(SMALL) is None  # cold
    store.put(SMALL, res)
    assert store.get(SMALL) == res
    assert store.stats()["hits"] == 1
    assert store.stats()["writes"] == 1
    assert len(store) == 1


def test_miss_on_any_config_change(tmp_path):
    store = ResultStore(tmp_path)
    store.put(SMALL, _result())
    assert store.get(SMALL.with_(seed=2)) is None
    assert store.get(SMALL.with_(scheme="nomad")) is None
    # A nested scheme-config knob changes the key too.
    assert store.get(
        SMALL.with_(scheme="nomad", nomad_cfg=NomadConfig(num_pcshrs=8))
    ) is None


def test_version_stamp_invalidates(tmp_path):
    old = ResultStore(tmp_path, version="1.0.0")
    old.put(SMALL, _result())
    new = ResultStore(tmp_path, version="2.0.0")
    assert new.get(SMALL) is None
    # The old version's entry is untouched.
    assert old.get(SMALL) is not None


def test_key_is_stable_across_instances(tmp_path):
    a = ResultStore(tmp_path, version="x")
    b = ResultStore(tmp_path, version="x")
    assert a.key(SMALL) == b.key(SMALL)
    assert a.key(SMALL) != a.key(SMALL.with_(seed=2))


def test_corrupted_entry_degrades_to_miss(tmp_path):
    store = ResultStore(tmp_path)
    path = store.put(SMALL, _result())
    path.write_text("{not json")
    assert store.get(SMALL) is None
    # And can be healed by re-writing.
    store.put(SMALL, _result())
    assert store.get(SMALL) is not None


def test_mismatched_config_payload_degrades_to_miss(tmp_path):
    """A (hypothetical) key collision must never return a wrong result."""
    store = ResultStore(tmp_path)
    path = store.put(SMALL, _result())
    other = SMALL.with_(seed=99)
    # Graft the entry onto another config's slot.
    target = store.path_for(other)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(path.read_text())
    assert store.get(other) is None
