"""Persistent result store: hits, invalidation, corruption tolerance."""

from repro.campaign import ResultStore
from repro.config.schemes import NomadConfig
from repro.harness.runner import RunConfig, run_workload

SMALL = RunConfig(scheme="baseline", workload="sop", num_mem_ops=300,
                  num_cores=2, dc_megabytes=8)


def _result():
    return run_workload(SMALL)


def test_put_get_round_trip(tmp_path):
    store = ResultStore(tmp_path)
    res = _result()
    assert store.get(SMALL) is None  # cold
    store.put(SMALL, res)
    assert store.get(SMALL) == res
    assert store.stats()["hits"] == 1
    assert store.stats()["writes"] == 1
    assert len(store) == 1


def test_miss_on_any_config_change(tmp_path):
    store = ResultStore(tmp_path)
    store.put(SMALL, _result())
    assert store.get(SMALL.with_(seed=2)) is None
    assert store.get(SMALL.with_(scheme="nomad")) is None
    # A nested scheme-config knob changes the key too.
    assert store.get(
        SMALL.with_(scheme="nomad", nomad_cfg=NomadConfig(num_pcshrs=8))
    ) is None


def test_version_stamp_invalidates(tmp_path):
    old = ResultStore(tmp_path, version="1.0.0")
    old.put(SMALL, _result())
    new = ResultStore(tmp_path, version="2.0.0")
    assert new.get(SMALL) is None
    # The old version's entry is untouched.
    assert old.get(SMALL) is not None


def test_key_is_stable_across_instances(tmp_path):
    a = ResultStore(tmp_path, version="x")
    b = ResultStore(tmp_path, version="x")
    assert a.key(SMALL) == b.key(SMALL)
    assert a.key(SMALL) != a.key(SMALL.with_(seed=2))


def test_corrupted_entry_degrades_to_miss(tmp_path):
    store = ResultStore(tmp_path)
    path = store.put(SMALL, _result())
    path.write_text("{not json")
    assert store.get(SMALL) is None
    # And can be healed by re-writing.
    store.put(SMALL, _result())
    assert store.get(SMALL) is not None


def test_mismatched_config_payload_degrades_to_miss(tmp_path):
    """A (hypothetical) key collision must never return a wrong result."""
    store = ResultStore(tmp_path)
    path = store.put(SMALL, _result())
    other = SMALL.with_(seed=99)
    # Graft the entry onto another config's slot.
    target = store.path_for(other)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(path.read_text())
    assert store.get(other) is None


# -- quarantine round-trip + atomic writes (service-layer guarantees) -------

FAILURE = {"failure_kind": "crash", "error": "boom",
           "bundle_path": "", "traceback": "Traceback..."}


def test_quarantine_round_trip(tmp_path):
    store = ResultStore(tmp_path)
    assert store.get_failure(SMALL) is None  # cold
    store.put_failure(SMALL, FAILURE)
    assert store.get_failure(SMALL) == FAILURE
    # Quarantine is keyed like results: other configs stay clean.
    assert store.get_failure(SMALL.with_(seed=2)) is None
    # A quarantine record never answers a result lookup.
    assert store.get(SMALL) is None


def test_quarantine_version_mismatch_invalidates(tmp_path):
    old = ResultStore(tmp_path, version="1.0.0")
    old.put_failure(SMALL, FAILURE)
    new = ResultStore(tmp_path, version="2.0.0")
    # New simulator version: the pin no longer applies (the failure may
    # be fixed), but the old version still sees it.
    assert new.get_failure(SMALL) is None
    assert old.get_failure(SMALL) == FAILURE


def test_corrupted_quarantine_json_degrades_to_miss_and_heals(tmp_path):
    store = ResultStore(tmp_path)
    path = store.put_failure(SMALL, FAILURE)
    path.write_text('{"version": "x", "config"')  # torn write simulation
    assert store.get_failure(SMALL) is None  # miss, not a crash
    # A campaign prescan now re-runs the config; re-quarantine heals it.
    store.put_failure(SMALL, FAILURE)
    assert store.get_failure(SMALL) == FAILURE


def test_quarantine_skip_on_resume(tmp_path):
    from repro.campaign.executor import prescan

    store = ResultStore(tmp_path)
    store.put_failure(SMALL, FAILURE)
    cached = SMALL.with_(seed=2)
    store.put(cached, _result())
    fresh = SMALL.with_(seed=3)

    configs = [SMALL, cached, fresh]
    records = [None] * 3
    pending = prescan(configs, records, store)
    assert pending == [2]  # only the un-stored config re-runs
    assert records[0].status == "quarantined"
    assert records[0].source == "store"
    assert records[0].failure_kind == "crash"
    assert records[1].status == "cached"
    assert records[2] is None


def test_atomic_writes_leave_no_temp_litter(tmp_path):
    store = ResultStore(tmp_path)
    store.put(SMALL, _result())
    store.put_failure(SMALL.with_(seed=2), FAILURE)
    leftovers = [p for p in tmp_path.rglob("*.tmp")]
    assert leftovers == []


def test_atomic_write_json_failure_cleans_up(tmp_path):
    from repro.campaign.store import atomic_write_json

    class Unserializable:
        pass

    target = tmp_path / "x.json"
    try:
        atomic_write_json(target, {"bad": Unserializable()})
    except TypeError:
        pass
    assert not target.exists()
    assert list(tmp_path.glob("*.tmp")) == []


# -- the fs shim + durability ordering (chaos-layer seam) -------------------


class RecordingFS:
    """A shim that logs every call in order (and can inject faults)."""

    def __init__(self, fail_write=False):
        from repro.campaign.store import _RealFS

        self.real = _RealFS()
        self.calls = []
        self.fail_write = fail_write

    def write(self, fh, data, path=None):
        self.calls.append(("write", str(path)))
        if self.fail_write:
            import errno

            raise OSError(errno.ENOSPC, "no space left on device")
        return self.real.write(fh, data, path=path)

    def fsync(self, fileno):
        self.calls.append(("fsync", None))
        self.real.fsync(fileno)

    def replace(self, src, dst):
        self.calls.append(("replace", str(dst)))
        self.real.replace(src, dst)

    def fsync_dir(self, path):
        self.calls.append(("fsync_dir", str(path)))
        self.real.fsync_dir(path)


def _with_fs(fs):
    from contextlib import contextmanager

    from repro.campaign.store import install_fs

    @contextmanager
    def ctx():
        prev = install_fs(fs)
        try:
            yield fs
        finally:
            install_fs(prev)

    return ctx()


def test_atomic_write_fsyncs_parent_dir_after_replace(tmp_path):
    """The durability ordering: data fsync -> rename -> directory
    fsync.  Without the final step the rename itself can be lost on
    power failure even though the file's bytes were durable."""
    from repro.campaign.store import atomic_write_json

    target = tmp_path / "deep" / "x.json"
    with _with_fs(RecordingFS()) as fs:
        atomic_write_json(target, {"a": 1})
    ops = [op for op, _ in fs.calls]
    assert ops == ["write", "fsync", "replace", "fsync_dir"]
    assert fs.calls[0][1] == str(target)  # destination path, not tmp
    assert fs.calls[3][1] == str(target.parent)


def test_atomic_write_enospc_leaves_no_litter_and_no_target(tmp_path):
    from repro.campaign.store import atomic_write_json

    target = tmp_path / "x.json"
    with _with_fs(RecordingFS(fail_write=True)):
        try:
            atomic_write_json(target, {"a": 1})
        except OSError:
            pass
        else:
            raise AssertionError("ENOSPC did not surface")
    assert not target.exists()
    assert list(tmp_path.glob("*.tmp")) == []
    # The shim is restored: the next write succeeds for real.
    atomic_write_json(target, {"a": 1})
    assert target.exists()


def test_store_writes_go_through_installed_shim(tmp_path):
    store = ResultStore(tmp_path)
    with _with_fs(RecordingFS()) as fs:
        store.put(SMALL, _result())
        store.put_failure(SMALL.with_(seed=2), FAILURE)
    written = [p for op, p in fs.calls if op == "write"]
    assert str(store.path_for(SMALL)) in written
    assert str(store.failure_path_for(SMALL.with_(seed=2))) in written


def test_payloads_carry_verifiable_integrity_stamp(tmp_path):
    import json

    from repro.campaign.store import payload_integrity

    store = ResultStore(tmp_path)
    for path in (store.put(SMALL, _result()),
                 store.put_failure(SMALL.with_(seed=2), FAILURE)):
        payload = json.loads(path.read_text())
        assert payload["integrity"] == payload_integrity(payload)


def test_bitflipped_result_value_degrades_to_miss(tmp_path):
    """The config comparison cannot see a flipped result value; the
    integrity stamp must."""
    import json

    store = ResultStore(tmp_path)
    path = store.put(SMALL, _result())
    payload = json.loads(path.read_text())
    key = next(iter(payload["result"]))
    value = payload["result"][key]
    payload["result"][key] = (value + 1 if isinstance(value, (int, float))
                              else "flipped")
    path.write_text(json.dumps(payload))
    assert store.get(SMALL) is None  # miss, never a wrong result
