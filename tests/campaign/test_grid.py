"""Grid expansion: counts, order, axis routing, dedup, validation."""

import pytest

from repro.campaign import GridSpec
from repro.config.schemes import BackendTopology
from repro.harness.runner import RunConfig

BASE = RunConfig(scheme="baseline", workload="cact", num_mem_ops=300,
                 num_cores=2, dc_megabytes=8)


def test_plain_grid_matches_serial_loop_order():
    grid = GridSpec(schemes=("baseline", "nomad"), workloads=("sop", "cc"),
                    base=BASE)
    configs = grid.expand()
    assert [(c.scheme, c.workload) for c in configs] == [
        ("baseline", "sop"), ("nomad", "sop"),
        ("baseline", "cc"), ("nomad", "cc"),
    ]


def test_runconfig_axis_applies_to_every_scheme():
    grid = GridSpec(schemes=("baseline",), workloads=("sop",), base=BASE,
                    axes={"seed": (1, 2, 3)})
    assert [c.seed for c in grid.expand()] == [1, 2, 3]


def test_scheme_axis_routes_to_nomad_cfg_only():
    grid = GridSpec(schemes=("baseline", "nomad"), workloads=("sop",),
                    base=BASE, axes={"num_pcshrs": (8, 32)})
    configs = grid.expand()
    # Baseline ignores the axis and dedups to a single run.
    assert [(c.scheme, c.nomad_cfg.num_pcshrs if c.nomad_cfg else None)
            for c in configs] == [("baseline", None), ("nomad", 8), ("nomad", 32)]


def test_enum_axis_value_coerced():
    grid = GridSpec(schemes=("nomad",), workloads=("sop",), base=BASE,
                    axes={"topology": ("centralized", "distributed")})
    tops = [c.nomad_cfg.topology for c in grid.expand()]
    assert tops == [BackendTopology.CENTRALIZED, BackendTopology.DISTRIBUTED]


def test_multi_axis_product_order_is_declaration_major():
    grid = GridSpec(schemes=("nomad",), workloads=("sop",), base=BASE,
                    axes=[("num_pcshrs", (8, 16)), ("seed", (1, 2))])
    combos = [(c.nomad_cfg.num_pcshrs, c.seed) for c in grid.expand()]
    assert combos == [(8, 1), (8, 2), (16, 1), (16, 2)]


def test_axis_preserves_other_nomad_cfg_fields():
    from repro.config.schemes import NomadConfig

    base = BASE.with_(nomad_cfg=NomadConfig(num_copy_buffers=4))
    grid = GridSpec(schemes=("nomad",), workloads=("sop",), base=base,
                    axes={"num_pcshrs": (8,)})
    (cfg,) = grid.expand()
    assert cfg.nomad_cfg.num_pcshrs == 8
    assert cfg.nomad_cfg.num_copy_buffers == 4


def test_unknown_axis_rejected():
    with pytest.raises(ValueError, match="unknown sweep axis"):
        GridSpec(schemes=("nomad",), workloads=("sop",), base=BASE,
                 axes={"bogus_knob": (1,)})


def test_empty_axis_rejected():
    with pytest.raises(ValueError, match="no values"):
        GridSpec(schemes=("nomad",), workloads=("sop",), base=BASE,
                 axes={"seed": ()})


def test_empty_schemes_rejected():
    with pytest.raises(ValueError, match="at least one scheme"):
        GridSpec(schemes=(), workloads=("sop",), base=BASE)


def test_len_counts_deduped_runs():
    grid = GridSpec(schemes=("baseline", "nomad"), workloads=("sop",),
                    base=BASE, axes={"num_pcshrs": (8, 32)})
    assert len(grid) == 3
