"""BitVector: the R/B/W sub-block vectors of a PCSHR."""

import pytest

from repro.common.bitvector import BitVector


def test_starts_empty():
    bv = BitVector(64)
    assert not bv.any_set
    assert bv.count() == 0


def test_set_and_test():
    bv = BitVector(64)
    bv.set(0)
    bv.set(63)
    assert bv.test(0) and bv.test(63)
    assert not bv.test(1)
    assert bv.count() == 2


def test_clear():
    bv = BitVector(8)
    bv.set(3)
    bv.clear(3)
    assert not bv.test(3)


def test_getitem_setitem():
    bv = BitVector(8)
    bv[5] = True
    assert bv[5]
    bv[5] = False
    assert not bv[5]


def test_set_all_and_all_set():
    bv = BitVector(64)
    bv.set_all()
    assert bv.all_set
    assert bv.count() == 64


def test_clear_all():
    bv = BitVector(16)
    bv.set_all()
    bv.clear_all()
    assert not bv.any_set


def test_out_of_range_raises():
    bv = BitVector(8)
    with pytest.raises(IndexError):
        bv.test(8)
    with pytest.raises(IndexError):
        bv.set(-1)


def test_invalid_width():
    with pytest.raises(ValueError):
        BitVector(0)


def test_initial_bits_validated():
    with pytest.raises(ValueError):
        BitVector(4, bits=0x10)


def test_first_zero_empty():
    bv = BitVector(64)
    assert bv.first_zero() == 0


def test_first_zero_skips_set_bits():
    bv = BitVector(8)
    bv.set(0)
    bv.set(1)
    assert bv.first_zero() == 2


def test_first_zero_with_start():
    bv = BitVector(8)
    assert bv.first_zero(start=5) == 5


def test_first_zero_full_returns_minus_one():
    bv = BitVector(8)
    bv.set_all()
    assert bv.first_zero() == -1


def test_first_zero_at_width_boundary():
    bv = BitVector(8)
    assert bv.first_zero(start=8) == -1


def test_first_zero_sequential_scan_order():
    """Sequential fetch scans for the next unissued sub-block."""
    bv = BitVector(64)
    order = []
    for _ in range(64):
        i = bv.first_zero()
        order.append(i)
        bv.set(i)
    assert order == list(range(64))


def test_copy_is_independent():
    a = BitVector(8)
    a.set(1)
    b = a.copy()
    b.set(2)
    assert not a.test(2)
    assert b.test(1)


def test_equality():
    a = BitVector(8, 0b101)
    b = BitVector(8, 0b101)
    c = BitVector(8, 0b111)
    assert a == b
    assert a != c
    assert a != BitVector(16, 0b101)


def test_iter_yields_lsb_first():
    bv = BitVector(4, 0b0101)
    assert list(bv) == [True, False, True, False]


def test_to_int_roundtrip():
    bv = BitVector(64, 0xDEADBEEF)
    assert BitVector(64, bv.to_int()) == bv
