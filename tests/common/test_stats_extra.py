"""Histogram percentile edges and stat-group histogram reuse."""

import pytest

from repro.common.stats import Histogram, StatGroup


def test_percentile_empty():
    h = Histogram("h")
    assert h.percentile(50) == 0


def test_percentile_single_value():
    h = Histogram("h", bucket_width=1)
    h.add(42)
    assert h.percentile(0) == 42
    assert h.percentile(100) == 42


def test_percentile_monotone():
    h = Histogram("h")
    for v in (1, 2, 4, 8, 16, 300, 5000):
        h.add(v)
    ps = [h.percentile(p) for p in (10, 50, 90, 99)]
    assert ps == sorted(ps)


def test_power_of_two_bucket_bounds():
    h = Histogram("h")
    h.add(1023)
    h.add(1024)
    assert h.buckets[512] == 1
    assert h.buckets[1024] == 1


def test_stat_group_histogram_cached():
    g = StatGroup("g")
    a = g.histogram("lat")
    b = g.histogram("lat")
    assert a is b


def test_stat_group_histogram_type_conflict():
    g = StatGroup("g")
    g.counter("x")
    with pytest.raises(TypeError):
        g.histogram("x")
