"""Address arithmetic and access types."""

from repro.common.types import (
    AccessType,
    DC_SPACE_BIT,
    MemAccess,
    PAGE_SIZE,
    SUB_BLOCKS_PER_PAGE,
    line_of,
    page_offset,
    sub_block_of,
    vpn_of,
)


def test_constants_consistent():
    assert PAGE_SIZE == 4096
    assert SUB_BLOCKS_PER_PAGE == 64


def test_vpn_of():
    assert vpn_of(0) == 0
    assert vpn_of(4095) == 0
    assert vpn_of(4096) == 1
    assert vpn_of(3 * PAGE_SIZE + 17) == 3


def test_page_offset():
    assert page_offset(4096) == 0
    assert page_offset(4097) == 1
    assert page_offset(PAGE_SIZE - 1) == PAGE_SIZE - 1


def test_line_of():
    assert line_of(0) == 0
    assert line_of(63) == 0
    assert line_of(64) == 1


def test_sub_block_of_covers_page():
    assert sub_block_of(0) == 0
    assert sub_block_of(64) == 1
    assert sub_block_of(PAGE_SIZE - 1) == 63
    assert sub_block_of(PAGE_SIZE) == 0  # next page wraps


def test_dc_space_bit_clear_of_page_addresses():
    # Physical/cache frame numbers never reach the DC space bit.
    assert (100_000 * PAGE_SIZE) & DC_SPACE_BIT == 0


def test_mem_access_properties():
    a = MemAccess(addr=2 * PAGE_SIZE + 130, access_type=AccessType.STORE,
                  core_id=1, issue_time=10)
    assert a.is_write
    assert a.vpn == 2
    assert a.sub_block == 2


def test_mem_access_load_is_not_write():
    a = MemAccess(addr=0, access_type=AccessType.LOAD, core_id=0, issue_time=0)
    assert not a.is_write
