"""Statistics primitives."""

import pytest

from repro.common.stats import (
    BandwidthMeter,
    Counter,
    Histogram,
    RunningMean,
    StatGroup,
)
from repro.common.types import TrafficClass


def test_counter_increments():
    c = Counter("x")
    c.inc()
    c.inc(5)
    assert c.value == 6


def test_counter_reset():
    c = Counter("x")
    c.inc(3)
    c.reset()
    assert c.value == 0


def test_running_mean_empty():
    m = RunningMean("m")
    assert m.mean == 0.0
    assert m.min is None and m.max is None


def test_running_mean_tracks_min_max():
    m = RunningMean("m")
    for v in (5, 1, 9):
        m.add(v)
    assert m.mean == 5.0
    assert m.min == 1
    assert m.max == 9
    assert m.count == 3


def test_histogram_power_of_two_buckets():
    h = Histogram("h")
    h.add(1)
    h.add(3)
    h.add(5)
    assert h.buckets[1] == 1
    assert h.buckets[2] == 1
    assert h.buckets[4] == 1


def test_histogram_linear_buckets():
    h = Histogram("h", bucket_width=10)
    h.add(5)
    h.add(15)
    h.add(19)
    assert h.buckets[0] == 1
    assert h.buckets[10] == 2


def test_histogram_mean_and_percentile():
    h = Histogram("h", bucket_width=1)
    for v in range(1, 101):
        h.add(v)
    assert h.mean == pytest.approx(50.5)
    assert 45 <= h.percentile(50) <= 55
    assert h.percentile(100) == 100


def test_histogram_zero_sample():
    h = Histogram("h")
    h.add(0)
    assert h.buckets[0] == 1


def test_histogram_percentile_empty():
    assert Histogram("h").percentile(95) == 0


def test_histogram_percentile_single_bucket():
    h = Histogram("h", bucket_width=10)
    for _ in range(5):
        h.add(12)
    assert h.percentile(50) == 10
    assert h.percentile(99) == 10


def test_histogram_percentiles_are_monotonic():
    h = Histogram("h", bucket_width=1)
    for v in range(1, 1001):
        h.add(v)
    p50, p95, p99 = h.percentile(50), h.percentile(95), h.percentile(99)
    assert p50 <= p95 <= p99
    assert 490 <= p50 <= 510
    assert 940 <= p95 <= 960
    assert 980 <= p99 <= 1000


def test_bandwidth_meter_records_by_class():
    bw = BandwidthMeter("bw")
    bw.record(TrafficClass.DEMAND, 64)
    bw.record(TrafficClass.FILL, 128)
    assert bw.total_bytes == 192
    assert bw.bytes_by_class[TrafficClass.FILL] == 128


def test_bandwidth_meter_gbps():
    bw = BandwidthMeter("bw")
    bw.record(TrafficClass.DEMAND, 10**9)
    # 1 GB over 1 second of cycles at 1 GHz -> 1 GB/s.
    assert bw.gbps(elapsed_cycles=10**9, cycles_per_second=1e9) == pytest.approx(1.0)


def test_bandwidth_meter_breakdown_sums_to_one():
    bw = BandwidthMeter("bw")
    bw.record(TrafficClass.DEMAND, 75)
    bw.record(TrafficClass.METADATA, 25)
    frac = bw.breakdown()
    assert frac["DEMAND"] == pytest.approx(0.75)
    assert sum(frac.values()) == pytest.approx(1.0)


def test_bandwidth_meter_zero_elapsed():
    bw = BandwidthMeter("bw")
    assert bw.gbps(0, 1e9) == 0.0


def test_stat_group_creates_and_caches():
    g = StatGroup("g")
    c1 = g.counter("hits")
    c2 = g.counter("hits")
    assert c1 is c2


def test_stat_group_type_conflict():
    g = StatGroup("g")
    g.counter("x")
    with pytest.raises(TypeError):
        g.mean("x")


def test_stat_group_as_dict():
    g = StatGroup("g")
    g.counter("hits").inc(3)
    g.mean("lat").add(10)
    d = g.as_dict()
    assert d["hits"] == 3
    assert d["lat.mean"] == 10
    assert d["lat.count"] == 1


def test_stat_group_as_dict_histogram_percentiles():
    g = StatGroup("g")
    h = g.histogram("lat", bucket_width=1)
    for v in range(1, 101):
        h.add(v)
    d = g.as_dict()
    assert d["lat.count"] == 100
    assert d["lat.mean"] == pytest.approx(50.5)
    assert d["lat.p50"] == h.percentile(50)
    assert d["lat.p95"] == h.percentile(95)
    assert d["lat.p99"] == h.percentile(99)
    assert d["lat.p50"] <= d["lat.p95"] <= d["lat.p99"]


def test_stat_group_contains():
    g = StatGroup("g")
    g.counter("a")
    assert "a" in g
    assert "b" not in g
