"""The quickstart example runs end to end (tiny trace)."""

import subprocess
import sys
import pathlib

EXAMPLES = pathlib.Path(__file__).resolve().parents[2] / "examples"


def test_quickstart_runs():
    out = subprocess.run(
        [sys.executable, str(EXAMPLES / "quickstart.py"), "sop", "400"],
        capture_output=True, text=True, timeout=300,
    )
    assert out.returncode == 0, out.stderr
    assert "NOMAD vs TDC" in out.stdout
    assert "ipc_rel_baseline" in out.stdout
