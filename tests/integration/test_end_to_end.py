"""Whole-machine invariants across schemes."""

import pytest

from repro.common.types import TrafficClass
from repro.config.system import scaled_system
from repro.system.builder import build_machine
from repro.workloads.presets import workload

CFG = scaled_system(num_cores=2, dc_megabytes=8)


def run(scheme, wl="bfs", ops=1500, **kw):
    spec = workload(wl, dc_pages=CFG.dc_pages, num_cores=CFG.num_cores,
                    num_mem_ops=ops)
    return build_machine(scheme, cfg=CFG, spec=spec, **kw).run()


ALL_SCHEMES = ["baseline", "tid", "tdc", "nomad", "ideal", "unthrottled"]


@pytest.mark.parametrize("scheme", ALL_SCHEMES)
def test_every_scheme_completes(scheme):
    r = run(scheme)
    assert r.runtime_cycles > 0
    assert r.instructions > 0
    assert r.ipc > 0


@pytest.mark.parametrize("scheme", ALL_SCHEMES)
def test_determinism(scheme):
    a = run(scheme, ops=600)
    b = run(scheme, ops=600)
    assert a.runtime_cycles == b.runtime_cycles
    assert a.ipc == b.ipc


def test_baseline_never_touches_hbm():
    r = run("baseline")
    assert sum(r.hbm_bytes_by_class.values()) == 0


def test_os_schemes_have_no_metadata_traffic():
    for scheme in ("tdc", "nomad", "ideal"):
        r = run(scheme)
        assert r.hbm_bytes_by_class.get("METADATA", 0) == 0, scheme


def test_tid_pays_metadata_traffic():
    r = run("tid")
    assert r.hbm_bytes_by_class.get("METADATA", 0) > 0


def test_fill_bytes_match_page_fills():
    r = run("nomad", prewarm=False)
    assert r.page_fills > 0
    ddr_fill = r.ddr_bytes_by_class.get("FILL", 0)
    # Every counted fill moved one full page off-package (modulo copies
    # still in flight at the end of the run).
    assert ddr_fill >= (r.page_fills - 20) * 4096


def test_blocking_vs_nonblocking_stalls():
    tdc = run("tdc", wl="cact")
    nomad = run("nomad", wl="cact")
    assert tdc.os_stall_ratio > nomad.os_stall_ratio


def test_nomad_tag_latency_at_least_base():
    r = run("nomad", wl="cact")
    assert r.tag_mgmt_latency >= 400


def test_seed_changes_results():
    spec = workload("bfs", dc_pages=CFG.dc_pages, num_cores=CFG.num_cores,
                    num_mem_ops=800)
    a = build_machine("nomad", cfg=CFG, spec=spec, seed=1).run()
    b = build_machine("nomad", cfg=CFG, spec=spec, seed=2).run()
    assert a.runtime_cycles != b.runtime_cycles


def test_more_cores_more_instructions():
    cfg4 = scaled_system(num_cores=4, dc_megabytes=8)
    spec = workload("sop", dc_pages=cfg4.dc_pages, num_cores=4, num_mem_ops=500)
    r4 = build_machine("ideal", cfg=cfg4, spec=spec).run()
    spec2 = workload("sop", dc_pages=CFG.dc_pages, num_cores=2, num_mem_ops=500)
    r2 = build_machine("ideal", cfg=CFG, spec=spec2).run()
    assert r4.instructions > r2.instructions


def test_dc_capacity_bounds_residency():
    r = run("nomad", wl="cact", prewarm=False)
    # The free queue can never go negative or exceed capacity (checked
    # internally); the run completing is the assertion here, plus:
    assert r.page_fills >= r.page_writebacks
