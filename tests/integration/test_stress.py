"""Randomized stress: many small machines, arbitrary configs, no hangs."""

import pytest

from repro.config.schemes import BackendTopology, NomadConfig
from repro.config.system import scaled_system
from repro.system.builder import build_machine
from repro.workloads.synthetic import WorkloadSpec


def spec_from(rng):
    return WorkloadSpec(
        name="fuzz",
        footprint_pages=int(rng.integers(16, 4096)),
        mem_ratio=float(rng.uniform(0.05, 0.9)),
        page_select=str(rng.choice(["stream", "zipf", "uniform"])),
        zipf_skew=float(rng.uniform(1.0, 6.0)),
        mean_run_lines=int(rng.integers(1, 65)),
        write_frac=float(rng.uniform(0.0, 0.6)),
        dep_frac=float(rng.uniform(0.0, 0.6)),
        bursty=bool(rng.integers(0, 2)),
        cold_frac=float(rng.uniform(0.0, 0.3)),
        reuse_frac=float(rng.uniform(0.0, 0.8)),
        num_mem_ops=400,
    )


@pytest.mark.parametrize("seed", range(8))
def test_random_configs_complete(seed):
    import numpy as np

    rng = np.random.default_rng(seed)
    cfg = scaled_system(num_cores=int(rng.integers(1, 4)), dc_megabytes=8)
    scheme = str(rng.choice(["baseline", "tid", "tdc", "nomad", "ideal"]))
    nomad_cfg = NomadConfig(
        num_pcshrs=int(rng.integers(1, 33)),
        num_copy_buffers=int(rng.integers(1, 33)),
        topology=BackendTopology.DISTRIBUTED if rng.integers(0, 2)
        else BackendTopology.CENTRALIZED,
        critical_data_first=bool(rng.integers(0, 2)),
        serve_from_copy_buffer=bool(rng.integers(0, 2)),
    )
    machine = build_machine(
        scheme, cfg=cfg, spec=spec_from(rng), nomad_cfg=nomad_cfg,
        seed=seed,
    )
    result = machine.run(max_events=5_000_000)
    assert result.instructions > 0
    assert result.runtime_cycles > 0


def test_single_core_single_pcshr():
    cfg = scaled_system(num_cores=1, dc_megabytes=8)
    spec = WorkloadSpec(name="t", footprint_pages=3000, mem_ratio=0.4,
                        page_select="stream", mean_run_lines=8,
                        num_mem_ops=800)
    r = build_machine("nomad", cfg=cfg, spec=spec,
                      nomad_cfg=NomadConfig(num_pcshrs=1)).run()
    assert r.page_fills > 0


def test_tiny_dc_heavy_pressure():
    """DC far smaller than the footprint: constant eviction churn."""
    cfg = scaled_system(num_cores=2, dc_megabytes=8)
    spec = WorkloadSpec(name="t", footprint_pages=8000, mem_ratio=0.5,
                        page_select="uniform", mean_run_lines=4,
                        num_mem_ops=1200)
    r = build_machine("nomad", cfg=cfg, spec=spec).run()
    assert r.page_fills > 500
