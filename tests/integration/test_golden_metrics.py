"""Golden-metrics determinism: fixed seeds must be bit-identical.

The perf work inlines several hot paths (event loop, SRAM probes, MSHR
allocation, DRAM bank state machine) under the invariant that none of it
may change the simulated event stream.  These tests pin that invariant:

* every entry in ``tests/golden/golden_metrics.json`` must reproduce its
  recorded :class:`MachineResult` *exactly* (``to_dict`` equality, no
  tolerances), and
* two fresh interpreter processes given the same seed must emit
  byte-identical JSON (guards against accidental dependence on hash
  randomization, set ordering, or interpreter state).

If an intentional model change shifts these numbers, regenerate the
golden file with ``PYTHONPATH=src python tests/golden/regen.py`` in the
same commit and say so in the commit message.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.harness.runner import (
    RunConfig,
    cache_stats,
    clear_cache,
    clear_snapshot_cache,
    run_workload,
)
from repro.workloads.synthetic import clear_trace_cache

REPO_ROOT = Path(__file__).resolve().parents[2]
GOLDEN_PATH = REPO_ROOT / "tests" / "golden" / "golden_metrics.json"

with GOLDEN_PATH.open() as f:
    _GOLDEN = json.load(f)

_IDS = [
    f"{e['config']['scheme']}-{e['config']['workload']}-s{e['config']['seed']}"
    for e in _GOLDEN["entries"]
]


@pytest.mark.parametrize("entry", _GOLDEN["entries"], ids=_IDS)
def test_golden_entry_bit_identical(entry):
    # Memoized results/traces/snapshots would mask a divergence in the
    # fresh path.
    clear_cache()
    clear_trace_cache()
    clear_snapshot_cache()
    cfg = RunConfig.from_dict(entry["config"])
    result = run_workload(cfg)
    assert result.to_dict() == entry["expected"]


# Schemes the snapshot cache forks (see repro.snapshot: baseline/ideal
# are fork-unprofitable and always build fresh).
_FORKABLE = [
    e for e in _GOLDEN["entries"]
    if e["config"]["scheme"] not in ("baseline", "ideal")
]
_FORK_IDS = [
    f"{e['config']['scheme']}-{e['config']['workload']}-s{e['config']['seed']}"
    for e in _FORKABLE
]


@pytest.mark.parametrize("entry", _FORKABLE, ids=_FORK_IDS)
def test_golden_entry_forked_bit_identical(entry):
    """A run served by forking a machine snapshot matches the golden
    numbers exactly -- the cache must be invisible in every result."""
    clear_cache()
    clear_trace_cache()
    clear_snapshot_cache()
    cfg = RunConfig.from_dict(entry["config"])
    # Prime the snapshot cache with a different-ROI run of the same
    # build key, then run the golden config: it must take the fork path.
    run_workload(cfg.with_(seed=cfg.seed + 1))
    assert cache_stats()["snapshot"]["stores"] == 1
    result = run_workload(cfg)
    assert cache_stats()["snapshot"]["hits"] == 1
    assert result.to_dict() == entry["expected"]
    clear_snapshot_cache()


def _run_cli_json(seed: int) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    out = subprocess.run(
        [
            sys.executable, "-m", "repro", "run",
            "--scheme", "nomad", "--workload", "cact",
            "--ops", "800", "--cores", "2", "--dc-mb", "16",
            "--seed", str(seed), "--json",
        ],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        check=True,
        timeout=300,
    )
    return json.loads(out.stdout)


def test_cross_process_determinism():
    """Two fresh processes, same seed -> identical result payloads."""
    first = _run_cli_json(seed=3)
    second = _run_cli_json(seed=3)
    assert first == second
    # Sanity: the payload is a real run, not an empty stub.
    assert first["result"]["instructions"] > 0
