"""The paper's qualitative claims, checked on scaled-down runs.

These runs use short traces, so thresholds are generous; the full-size
shapes are produced by the benchmark harness (see EXPERIMENTS.md).
"""

import pytest

from repro.harness.runner import RunConfig, run_workload

BASE = RunConfig(scheme="ideal", workload="cact", num_mem_ops=3000)


def r(scheme, wl, **kw):
    return run_workload(BASE.with_(scheme=scheme, workload=wl, **kw))


def test_excess_class_rmhb_exceeds_offpackage_peak():
    res = r("unthrottled", "cact")
    assert res.rmhb_gbps > 25.6


def test_few_class_rmhb_negligible():
    res = r("unthrottled", "tc")
    assert res.rmhb_gbps < 6.0


def test_ideal_dominates_tdc_everywhere():
    for wl in ("cact", "bfs", "mcf", "tc"):
        ideal = r("ideal", wl)
        tdc = r("tdc", wl)
        assert ideal.ipc >= tdc.ipc * 0.98, wl


def test_nomad_between_tdc_and_ideal_for_excess():
    tdc = r("tdc", "cact")
    nomad = r("nomad", "cact")
    ideal = r("ideal", "cact")
    assert tdc.ipc < nomad.ipc <= ideal.ipc * 1.02


def test_nomad_matches_ideal_for_few_class():
    nomad = r("nomad", "tc")
    ideal = r("ideal", "tc")
    assert nomad.ipc > 0.9 * ideal.ipc


def test_tdc_stalls_scale_with_rmhb_class():
    excess = r("tdc", "cact").os_stall_ratio
    few = r("tdc", "tc").os_stall_ratio
    assert excess > 3 * few


def test_nomad_cuts_stalls_massively():
    tdc = r("tdc", "cact").os_stall_ratio
    nomad = r("nomad", "cact").os_stall_ratio
    assert nomad < 0.5 * tdc


def test_tid_dc_access_time_worst():
    tid = r("tid", "pr")
    nomad = r("nomad", "pr")
    assert tid.dc_access_time > 2 * nomad.dc_access_time


def test_os_schemes_near_ideal_access_time_for_resident_pages():
    ideal = r("ideal", "tc")
    nomad = r("nomad", "tc")
    assert nomad.dc_access_time < ideal.dc_access_time * 1.5


def test_pcshr_count_matters_for_excess():
    from repro.config.schemes import NomadConfig
    few_pcshrs = r("nomad", "cact", nomad_cfg=NomadConfig(num_pcshrs=1))
    many_pcshrs = r("nomad", "cact", nomad_cfg=NomadConfig(num_pcshrs=16))
    assert many_pcshrs.ipc > few_pcshrs.ipc


def test_centralized_and_distributed_comparable():
    from repro.config.schemes import BackendTopology, NomadConfig
    cen = r("nomad", "cact", nomad_cfg=NomadConfig(num_pcshrs=16))
    dist = r("nomad", "cact",
             nomad_cfg=NomadConfig(num_pcshrs=16,
                                   topology=BackendTopology.DISTRIBUTED))
    assert dist.ipc == pytest.approx(cen.ipc, rel=0.25)
