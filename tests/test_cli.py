"""CLI smoke tests."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "cact" in out
    assert "nomad" in out


def test_run(capsys):
    rc = main(["run", "--scheme", "baseline", "--workload", "sop",
               "--ops", "200", "--cores", "2", "--dc-mb", "8"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "baseline" in out and "ipc" in out


def test_run_nomad_with_pcshrs(capsys):
    rc = main(["run", "--scheme", "nomad", "--workload", "sop",
               "--ops", "200", "--cores", "2", "--dc-mb", "8",
               "--pcshrs", "4"])
    assert rc == 0
    assert "tag management latency" in capsys.readouterr().out


def test_compare(capsys):
    rc = main(["compare", "--workload", "sop", "--ops", "200",
               "--cores", "2", "--dc-mb", "8"])
    assert rc == 0
    out = capsys.readouterr().out
    for scheme in ("baseline", "tid", "tdc", "nomad", "ideal"):
        assert scheme in out


def test_invalid_scheme_rejected():
    with pytest.raises(SystemExit):
        main(["run", "--scheme", "bogus", "--workload", "sop"])
