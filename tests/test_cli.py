"""CLI smoke tests."""

import json

import pytest

from repro.cli import build_parser, main
from repro.harness.runner import clear_cache


@pytest.fixture(autouse=True)
def _fresh_memo():
    clear_cache()
    yield
    clear_cache()


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "cact" in out
    assert "nomad" in out


def test_run(capsys):
    rc = main(["run", "--scheme", "baseline", "--workload", "sop",
               "--ops", "200", "--cores", "2", "--dc-mb", "8"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "baseline" in out and "ipc" in out


def test_run_nomad_with_pcshrs(capsys):
    rc = main(["run", "--scheme", "nomad", "--workload", "sop",
               "--ops", "200", "--cores", "2", "--dc-mb", "8",
               "--pcshrs", "4"])
    assert rc == 0
    assert "tag management latency" in capsys.readouterr().out


def test_compare(capsys):
    rc = main(["compare", "--workload", "sop", "--ops", "200",
               "--cores", "2", "--dc-mb", "8"])
    assert rc == 0
    out = capsys.readouterr().out
    for scheme in ("baseline", "tid", "tdc", "nomad", "ideal"):
        assert scheme in out


def test_invalid_scheme_rejected(capsys):
    rc = main(["run", "--scheme", "bogus", "--workload", "sop"])
    assert rc == 2
    err = capsys.readouterr().err
    assert "bogus" in err and "repro list" in err


def test_invalid_workload_rejected(capsys):
    rc = main(["run", "--scheme", "nomad", "--workload", "nope"])
    assert rc == 2
    err = capsys.readouterr().err
    assert "nope" in err and "repro list" in err


def test_compare_rejects_unknown_workload(capsys):
    rc = main(["compare", "--workload", "nope"])
    assert rc == 2
    assert "nope" in capsys.readouterr().err


def test_run_guarded(capsys):
    rc = main(["run", "--scheme", "nomad", "--workload", "sop",
               "--ops", "200", "--cores", "2", "--dc-mb", "8", "--guard"])
    assert rc == 0
    assert "nomad" in capsys.readouterr().out


def test_replay_missing_bundle(capsys):
    rc = main(["replay", "/nonexistent/bundle"])
    assert rc == 2
    assert "cannot read bundle" in capsys.readouterr().err


def test_run_json(capsys):
    rc = main(["run", "--scheme", "baseline", "--workload", "sop",
               "--ops", "200", "--cores", "2", "--dc-mb", "8", "--json"])
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["config"]["scheme"] == "baseline"
    assert payload["result"]["workload"] == "sop"
    assert payload["result"]["ipc"] > 0


def test_compare_json(capsys):
    rc = main(["compare", "--workload", "sop", "--ops", "200",
               "--cores", "2", "--dc-mb", "8", "--json"])
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    assert {r["scheme"] for r in payload["rows"]} == \
        {"baseline", "tid", "tdc", "nomad", "ideal"}
    (base_row,) = [r for r in payload["rows"] if r["scheme"] == "baseline"]
    assert base_row["ipc_rel"] == pytest.approx(1.0)


def test_sweep_text_and_store_round_trip(tmp_path, capsys):
    args = ["sweep", "--schemes", "baseline,nomad", "--workloads", "sop",
            "--seeds", "1,2", "--ops", "200", "--cores", "2", "--dc-mb", "8",
            "--store", str(tmp_path)]
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "4 runs" in out and "4 simulated" in out
    # Second invocation: everything comes from the disk store.
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "4 cached" in out and "0 failed" in out


def test_sweep_json(tmp_path, capsys):
    rc = main(["sweep", "--schemes", "baseline", "--workloads", "sop",
               "--ops", "200", "--cores", "2", "--dc-mb", "8",
               "--store", str(tmp_path), "--json"])
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"]["total"] == 1
    assert payload["runs"][0]["status"] in ("completed", "cached")
    assert payload["runs"][0]["result"]["ipc"] > 0


def test_sweep_no_store(capsys):
    rc = main(["sweep", "--schemes", "baseline", "--workloads", "sop",
               "--ops", "200", "--cores", "2", "--dc-mb", "8", "--no-store"])
    assert rc == 0
    assert "result store" not in capsys.readouterr().out


def test_run_timeline_and_metrics_out(tmp_path, capsys):
    trace = tmp_path / "t.json"
    metrics = tmp_path / "m.json"
    rc = main(["run", "--scheme", "nomad", "--workload", "sop",
               "--ops", "300", "--cores", "2", "--dc-mb", "8",
               "--timeline", str(trace), "--sample-every", "1000",
               "--metrics-out", str(metrics)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "timeline written to" in out and "metrics written to" in out

    doc = json.loads(trace.read_text())
    from repro.telemetry.trace_schema import validate_trace

    assert validate_trace(doc) == []
    assert doc["otherData"]["scheme"] == "nomad"
    assert doc["samples"]

    flat = json.loads(metrics.read_text())
    assert flat  # every component's StatGroup, flattened
    assert any(key.endswith(".p95") for key in flat)
    assert all(not isinstance(v, (dict, list)) for v in flat.values())


def test_run_json_carries_telemetry_summary(tmp_path, capsys):
    trace = tmp_path / "t.json"
    rc = main(["run", "--scheme", "nomad", "--workload", "sop",
               "--ops", "300", "--cores", "2", "--dc-mb", "8",
               "--timeline", str(trace), "--json"])
    assert rc == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["telemetry"]["copies"]["fills"] >= 0
    assert payload["telemetry"]["events"] > 0


def test_timeline_subcommand_text_and_json(tmp_path, capsys):
    trace = tmp_path / "t.json"
    assert main(["run", "--scheme", "nomad", "--workload", "sop",
                 "--ops", "300", "--cores", "2", "--dc-mb", "8",
                 "--timeline", str(trace)]) == 0
    capsys.readouterr()

    assert main(["timeline", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "timeline: nomad/sop" in out

    assert main(["timeline", str(trace), "--json"]) == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["scheme"] == "nomad"
    assert summary["events"] > 0


def test_timeline_subcommand_rejects_missing_and_invalid(tmp_path, capsys):
    rc = main(["timeline", str(tmp_path / "nope.json")])
    assert rc == 2
    capsys.readouterr()
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"traceEvents": "not-a-list"}))
    rc = main(["timeline", str(bad)])
    assert rc == 2
    assert "traceEvents" in capsys.readouterr().err


def test_sweep_telemetry_adds_overlap_column(capsys):
    rc = main(["sweep", "--schemes", "tdc,nomad", "--workloads", "sop",
               "--ops", "300", "--cores", "2", "--dc-mb", "8",
               "--no-store", "--telemetry", "--no-progress"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "overlap" in out


def test_sweep_rejects_unknown_names(capsys):
    rc = main(["sweep", "--schemes", "warpdrive", "--workloads", "sop",
               "--no-store"])
    assert rc == 2
    assert "warpdrive" in capsys.readouterr().err


# -- service subcommands ----------------------------------------------------

def _seed_store(tmp_path):
    assert main(["sweep", "--schemes", "baseline,nomad", "--workloads",
                 "sop", "--seeds", "1,2", "--ops", "200", "--cores", "2",
                 "--dc-mb", "8", "--store", str(tmp_path),
                 "--no-progress"]) == 0


def test_results_empty_store(tmp_path, capsys):
    assert main(["results", "--store", str(tmp_path)]) == 0
    assert "no matching rows" in capsys.readouterr().out


def test_results_lists_and_filters_swept_runs(tmp_path, capsys):
    _seed_store(tmp_path)
    capsys.readouterr()
    assert main(["results", "--store", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "4 rows" in out and "nomad" in out and "baseline" in out

    assert main(["results", "--store", str(tmp_path),
                 "--where", "scheme=nomad", "--count"]) == 0
    assert capsys.readouterr().out.strip() == "2"

    assert main(["results", "--store", str(tmp_path),
                 "--where", "scheme=nomad", "--where", "seed=1",
                 "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["count"] == 1
    row = payload["rows"][0]
    assert row["scheme"] == "nomad" and row["seed"] == 1
    assert row["status"] == "ok" and row["ipc"] > 0


def test_results_json_matches_directory_store(tmp_path, capsys):
    from repro.campaign import ResultStore

    _seed_store(tmp_path)
    capsys.readouterr()
    assert main(["results", "--store", str(tmp_path), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    store = ResultStore(tmp_path)
    disk = dict(store.iter_entries())
    assert {r["key"] for r in payload["rows"]} == set(disk)
    for row in payload["rows"]:
        assert row["metrics"] == disk[row["key"]]["result"]


def test_results_quarantined_view(tmp_path, capsys):
    from repro.campaign import ResultStore
    from repro.harness.runner import RunConfig

    store = ResultStore(tmp_path)
    cfg = RunConfig(scheme="baseline", workload="sop", num_mem_ops=200,
                    num_cores=2, dc_megabytes=8)
    store.put_failure(cfg, {"failure_kind": "crash", "error": "boom"})
    assert main(["results", "--store", str(tmp_path),
                 "--quarantined"]) == 0
    out = capsys.readouterr().out
    assert "quarantined" in out and "crash" in out


def test_results_rejects_bad_where(tmp_path, capsys):
    assert main(["results", "--store", str(tmp_path),
                 "--where", "bogus=1"]) == 2
    assert "unknown --where column" in capsys.readouterr().err


def test_sweep_distributed_requires_store(capsys):
    rc = main(["sweep", "--schemes", "baseline", "--workloads", "sop",
               "--ops", "200", "--no-store", "--distributed"])
    assert rc == 2
    assert "--no-store" in capsys.readouterr().err


def test_sweep_distributed_local_service_round_trip(tmp_path, capsys):
    args = ["sweep", "--schemes", "baseline", "--workloads", "sop",
            "--seeds", "1,2", "--ops", "200", "--cores", "2", "--dc-mb", "8",
            "--store", str(tmp_path), "--distributed", "--runners", "2",
            "--no-progress"]
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "2 runs" in out and "2 simulated" in out
    assert "campaign id:" in out
    cid = out.rsplit("campaign id: ", 1)[1].split()[0]
    # Resume of a finished campaign: all served from the store, and the
    # campaign id round-trips from the printed hint.
    from repro.harness.runner import clear_cache
    clear_cache()
    assert main(["sweep", "--distributed", "--resume", cid,
                 "--store", str(tmp_path), "--no-progress"]) == 0
    out = capsys.readouterr().out
    assert "0 simulated, 2 cached" in out


def test_results_since_filters_recent_rows(tmp_path, capsys):
    _seed_store(tmp_path)
    capsys.readouterr()
    # Everything was ingested moments ago: a generous window keeps all
    # rows, and it composes with --where.
    assert main(["results", "--store", str(tmp_path),
                 "--since", "15m", "--count"]) == 0
    assert capsys.readouterr().out.strip() == "4"
    assert main(["results", "--store", str(tmp_path), "--since", "1h",
                 "--where", "scheme=nomad", "--count"]) == 0
    assert capsys.readouterr().out.strip() == "2"

    # Age two rows in the index; a narrow window must exclude them.
    from repro.service.index import ResultIndex

    index = ResultIndex(tmp_path)
    index._conn.execute(
        "UPDATE results SET updated_at = updated_at - 86400 "
        "WHERE scheme = 'baseline'"
    )
    index._conn.commit()
    index.close()
    assert main(["results", "--store", str(tmp_path),
                 "--since", "1h", "--count"]) == 0
    assert capsys.readouterr().out.strip() == "2"


def test_results_since_rejects_bad_duration(tmp_path, capsys):
    assert main(["results", "--store", str(tmp_path),
                 "--since", "fortnight"]) == 2
    assert "NUMBER[s|m|h|d]" in capsys.readouterr().err
