"""Two-level TLB with directory callbacks."""

from repro.config.system import TLBConfig
from repro.vm.page_table import PTE
from repro.vm.tlb import TLB

CFG = TLBConfig(l1_entries=2, l2_entries=4, l2_latency=8, walk_latency=100)


def test_miss_then_install_then_hit():
    tlb = TLB(0, CFG)
    assert tlb.lookup(1) is None
    pte = PTE(page_frame_num=7)
    tlb.install(1, pte)
    got, lat = tlb.lookup(1)
    assert got is pte
    assert lat == 0  # L1 hit
    assert tlb.l1_hits == 1 and tlb.misses == 1


def test_l2_hit_pays_latency():
    tlb = TLB(0, CFG)
    for vpn in range(3):  # exceed L1 (2 entries)
        tlb.install(vpn, PTE(page_frame_num=vpn))
    got, lat = tlb.lookup(0)  # fell out of L1 but in L2
    assert lat == CFG.l2_latency
    assert tlb.l2_hits == 1


def test_l2_eviction_fires_callback():
    evicted = []
    tlb = TLB(0, CFG, on_evict=lambda vpn, pte: evicted.append(vpn))
    for vpn in range(5):  # exceed L2 (4 entries)
        tlb.install(vpn, PTE(page_frame_num=vpn))
    assert evicted == [0]
    assert tlb.lookup(0) is None


def test_install_fires_callback():
    installed = []
    tlb = TLB(0, CFG, on_install=lambda vpn, pte: installed.append(vpn))
    tlb.install(9, PTE(page_frame_num=9))
    assert installed == [9]


def test_reinstall_does_not_duplicate():
    installed = []
    tlb = TLB(0, CFG, on_install=lambda vpn, pte: installed.append(vpn))
    pte = PTE(page_frame_num=1)
    tlb.install(1, pte)
    tlb.install(1, pte)
    assert installed == [1]
    assert tlb.occupancy == 1


def test_invalidate_fires_evict():
    evicted = []
    tlb = TLB(0, CFG, on_evict=lambda vpn, pte: evicted.append(vpn))
    tlb.install(3, PTE(page_frame_num=3))
    assert tlb.invalidate(3)
    assert evicted == [3]
    assert not tlb.invalidate(3)


def test_lru_within_l2():
    tlb = TLB(0, CFG)
    for vpn in range(4):
        tlb.install(vpn, PTE(page_frame_num=vpn))
    tlb.lookup(0)  # refresh 0
    tlb.install(4, PTE(page_frame_num=4))  # evicts 1, not 0
    assert tlb.contains(0)
    assert not tlb.contains(1)


def test_l1_inclusion_in_l2():
    tlb = TLB(0, CFG)
    for vpn in range(5):
        tlb.install(vpn, PTE(page_frame_num=vpn))
    # Anything in L1 must be in L2.
    for vpn in list(tlb._l1):
        assert vpn in tlb._l2
