"""Page tables and the extended PTE."""

from repro.vm.descriptors import DescriptorTables
from repro.vm.page_table import PTE, PageTable


def test_lazy_allocation():
    t = PageTable(0, DescriptorTables())
    assert t.lookup(5) is None
    pte = t.get_or_create(5)
    assert t.lookup(5) is pte
    assert t.pages_touched == 1


def test_distinct_frames_per_page():
    tables = DescriptorTables()
    t = PageTable(0, tables)
    a = t.get_or_create(1)
    b = t.get_or_create(2)
    assert a.page_frame_num != b.page_frame_num


def test_get_or_create_idempotent():
    t = PageTable(0, DescriptorTables())
    a = t.get_or_create(1)
    b = t.get_or_create(1)
    assert a is b
    assert len(t) == 1


def test_tag_miss_predicate():
    pte = PTE(page_frame_num=3)
    assert pte.is_tag_miss  # cacheable, uncached
    pte.cached = True
    assert not pte.is_tag_miss
    pte.cached = False
    pte.non_cacheable = True
    assert not pte.is_tag_miss


def test_frames_unique_across_cores():
    tables = DescriptorTables()
    t0, t1 = PageTable(0, tables), PageTable(1, tables)
    assert t0.get_or_create(7).page_frame_num != t1.get_or_create(7).page_frame_num


def test_entries_iteration():
    t = PageTable(0, DescriptorTables())
    t.get_or_create(1)
    t.get_or_create(2)
    assert sorted(vpn for vpn, _ in t.entries()) == [1, 2]
