"""Page walker."""

from repro.config.system import TLBConfig
from repro.vm.descriptors import DescriptorTables
from repro.vm.page_table import PageTable
from repro.vm.walker import PageWalker


def test_walk_returns_pte_and_latency():
    cfg = TLBConfig(walk_latency=120)
    pt = PageTable(0, DescriptorTables())
    w = PageWalker(0, cfg, pt)
    pte, lat = w.walk(7)
    assert lat == 120
    assert pte is pt.lookup(7)
    assert w.walks == 1


def test_walk_allocates_on_first_touch():
    pt = PageTable(0, DescriptorTables())
    w = PageWalker(0, TLBConfig(), pt)
    assert pt.lookup(3) is None
    w.walk(3)
    assert pt.lookup(3) is not None
