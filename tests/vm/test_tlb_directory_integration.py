"""TLB directory maintained end-to-end through a NOMAD scheme."""

from repro.config.schemes import NomadConfig
from repro.core.nomad import NomadScheme
from repro.engine.simulator import Simulator


def cached_pte(sim, scheme, vpn, core=0):
    out = []
    scheme.translate_miss(core, vpn, sim.now, lambda t, p: out.append(p),
                          addr=vpn * 4096)
    sim.run()
    return out[-1]


def test_directory_set_while_resident(tiny_cfg):
    sim = Simulator()
    s = NomadScheme(sim, tiny_cfg, NomadConfig())
    pte = cached_pte(sim, s, 3)
    cpd = s.frontend.cpds[pte.page_frame_num]
    assert cpd.tlb_directory & 1


def test_directory_cleared_on_tlb_eviction(tiny_cfg):
    sim = Simulator()
    s = NomadScheme(sim, tiny_cfg, NomadConfig())
    pte = cached_pte(sim, s, 3)
    cfn = pte.page_frame_num
    # Thrash the TLB past its L2 capacity with non-cacheable-page walks
    # (cacheable uncached pages would trap to the tag miss handler).
    for vpn in range(100, 100 + tiny_cfg.tlb.l2_entries + 8):
        s.page_tables[0].get_or_create(vpn).non_cacheable = True
        s.peek_translate(0, vpn)
    assert s.frontend.cpds[cfn].tlb_directory == 0


def test_two_cores_two_directory_bits(tiny_cfg):
    sim = Simulator()
    s = NomadScheme(sim, tiny_cfg, NomadConfig())
    pte0 = cached_pte(sim, s, 3, core=0)
    cfn = pte0.page_frame_num
    # Core 1 maps the same physical frame (shared page).
    pfn = s.frontend.cpds[cfn].pfn
    s.tables.share(pfn, 1, 7)
    from repro.vm.page_table import PTE
    pte1 = PTE(page_frame_num=cfn, cached=True)
    s.page_tables[1]._entries[7] = pte1
    s.tlbs[1].install(7, pte1)
    assert s.frontend.cpds[cfn].tlb_directory == 0b11
