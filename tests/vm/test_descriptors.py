"""PPDs, CPDs, TLB directory, reverse mappings."""

import pytest

from repro.vm.descriptors import CPD, CPDArray, DescriptorTables


def test_allocate_creates_ppd_and_rmap():
    t = DescriptorTables()
    pfn = t.allocate(0, 42)
    assert t.ppd(pfn).pfn == pfn
    assert t.reverse_map(pfn) == [(0, 42)]
    assert t.frames_allocated == 1


def test_share_extends_rmap():
    t = DescriptorTables()
    pfn = t.allocate(0, 42)
    t.share(pfn, 1, 99)
    assert t.reverse_map(pfn) == [(0, 42), (1, 99)]


def test_share_unknown_pfn_raises():
    t = DescriptorTables()
    with pytest.raises(KeyError):
        t.share(123, 0, 0)


def test_cpd_tlb_directory_bits():
    cpd = CPD(cfn=0)
    assert not cpd.in_any_tlb
    cpd.set_tlb_bit(2)
    cpd.set_tlb_bit(5)
    assert cpd.in_any_tlb
    assert cpd.tlb_directory == (1 << 2) | (1 << 5)
    cpd.clear_tlb_bit(2)
    assert cpd.tlb_directory == 1 << 5
    cpd.clear_tlb_bit(5)
    assert not cpd.in_any_tlb


def test_cpd_clear_unset_bit_is_noop():
    cpd = CPD(cfn=0)
    cpd.clear_tlb_bit(3)
    assert cpd.tlb_directory == 0


def test_cpd_array_indexing():
    arr = CPDArray(16)
    assert len(arr) == 16
    assert arr[3].cfn == 3
    arr[3].valid = True
    assert arr.valid_count() == 1


def test_cpd_array_rejects_empty():
    with pytest.raises(ValueError):
        CPDArray(0)


def test_reverse_map_unknown_is_empty():
    t = DescriptorTables()
    assert t.reverse_map(999) == []
