"""Shared fixtures: a fresh simulator and a tiny two-core system."""

import pytest

from repro.config.system import scaled_system
from repro.engine.simulator import Simulator


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def tiny_cfg():
    """A 2-core, 8 MB-DC machine: fast enough for unit tests."""
    return scaled_system(num_cores=2, dc_megabytes=8)
