"""Circular FIFO cache-frame queue (Fig. 5)."""

import pytest

from repro.core.free_queue import FreeQueue
from repro.vm.descriptors import CPDArray


def test_allocates_sequentially():
    fq, cpds = FreeQueue(8), CPDArray(8)
    got = []
    for _ in range(3):
        cfn = fq.allocate(cpds)
        cpds[cfn].valid = True
        got.append(cfn)
    assert got == [0, 1, 2]
    assert fq.num_free == 5
    assert fq.allocated == 3


def test_skips_valid_frames_at_head():
    fq, cpds = FreeQueue(8), CPDArray(8)
    cpds[0].valid = True  # TLB-shootdown-avoidance leftover
    fq.num_free -= 1
    cfn = fq.allocate(cpds)
    assert cfn == 1
    assert fq.head_skips == 1


def test_allocate_exhausted_raises():
    fq, cpds = FreeQueue(2), CPDArray(2)
    for _ in range(2):
        cpds[fq.allocate(cpds)].valid = True
    with pytest.raises(RuntimeError):
        fq.allocate(cpds)


def test_wraps_around():
    fq, cpds = FreeQueue(4), CPDArray(4)
    for _ in range(4):
        cpds[fq.allocate(cpds)].valid = True
    # Free the tail frame, allocate again: head wraps to it.
    victim = fq.advance_tail()
    cpds[victim].valid = False
    fq.mark_freed()
    assert fq.allocate(cpds) == victim


def test_mark_freed_overflow_guarded():
    fq = FreeQueue(2)
    with pytest.raises(RuntimeError):
        fq.mark_freed()


def test_advance_tail_returns_old():
    fq = FreeQueue(4)
    assert fq.advance_tail() == 0
    assert fq.advance_tail() == 1
    assert fq.tail == 2


def test_zero_frames_rejected():
    with pytest.raises(ValueError):
        FreeQueue(0)
