"""NOMAD scheme: decoupled tag-data behaviour end to end."""

import pytest

from repro.common.types import AccessType, MemAccess
from repro.config.schemes import BackendTopology, NomadConfig
from repro.core.nomad import IdealScheme, NomadScheme
from repro.engine.simulator import Simulator


def make(tiny_cfg, nomad_cfg=None):
    sim = Simulator()
    scheme = NomadScheme(sim, tiny_cfg, nomad_cfg or NomadConfig())
    return sim, scheme


def translate(sim, scheme, core, addr):
    results = []
    scheme.translate_miss(core, addr >> 12, sim.now, lambda t, p: results.append((t, p)),
                          addr=addr)
    sim.run()
    return results[-1]


def test_tag_miss_resumes_before_fill_completes(tiny_cfg):
    sim, scheme = make(tiny_cfg)
    results = []
    scheme.translate_miss(0, 5, 0, lambda t, p: results.append(t), addr=5 * 4096)
    sim.run(until=scheme.nomad_cfg.tag_mgmt_latency + 400)
    assert results, "thread must resume right after tag management"
    # The fill is still outstanding in a PCSHR at resume time.
    assert results[0] < 2000


def test_tag_miss_installs_cached_translation(tiny_cfg):
    sim, scheme = make(tiny_cfg)
    t, pte = translate(sim, scheme, 0, 3 * 4096)
    assert pte.cached
    hit = scheme.tlb_lookup(0, 3)
    assert hit is not None


def test_tlb_directory_set_on_install(tiny_cfg):
    sim, scheme = make(tiny_cfg)
    _, pte = translate(sim, scheme, 0, 3 * 4096)
    cfn = pte.page_frame_num
    assert scheme.frontend.cpds[cfn].tlb_directory & 1


def test_data_hit_goes_to_hbm(tiny_cfg):
    sim, scheme = make(tiny_cfg)
    _, pte = translate(sim, scheme, 0, 0)
    access = MemAccess(addr=0, access_type=AccessType.LOAD, core_id=0, issue_time=sim.now)
    access.paddr = scheme.translate_addr(pte, 0)
    done = []
    scheme.dc_access(access, done.append)
    sim.run()
    assert done
    assert scheme.backend.stats.get("data_hits").value == 1


def test_data_miss_during_transfer(tiny_cfg):
    sim, scheme = make(tiny_cfg)
    results = []
    scheme.translate_miss(0, 7, 0, lambda t, p: results.append((t, p)), addr=7 * 4096)
    sim.run(until=700)  # tag resolved, fill in flight
    t, pte = results[-1]
    access = MemAccess(addr=7 * 4096 + 63 * 64, access_type=AccessType.LOAD,
                       core_id=0, issue_time=sim.now)
    access.paddr = scheme.translate_addr(pte, access.addr)
    done = []
    scheme.dc_access(access, done.append)
    sim.run()
    assert done
    assert scheme.backend.stats.get("data_misses").value == 1


def test_write_data_miss_marks_dirty(tiny_cfg):
    sim, scheme = make(tiny_cfg)
    results = []
    scheme.translate_miss(0, 7, 0, lambda t, p: results.append(p), addr=7 * 4096)
    sim.run(until=700)
    pte = results[-1]
    access = MemAccess(addr=7 * 4096, access_type=AccessType.STORE,
                       core_id=0, issue_time=sim.now)
    access.paddr = scheme.translate_addr(pte, access.addr)
    done = []
    scheme.dc_access(access, done.append)
    cfn = pte.page_frame_num
    assert scheme.frontend.cpds[cfn].dirty_in_cache
    sim.run()
    assert done


def test_uncacheable_pages_use_ddr(tiny_cfg):
    sim, scheme = make(tiny_cfg)
    pte = scheme.page_tables[0].get_or_create(9)
    pte.non_cacheable = True
    access = MemAccess(addr=9 * 4096, access_type=AccessType.LOAD, core_id=0,
                       issue_time=0)
    access.paddr = scheme.translate_addr(pte, access.addr)
    done = []
    scheme.dc_access(access, done.append)
    sim.run()
    assert done
    assert scheme.stats.get("uncached_accesses").value == 1


def test_needs_os_intervention_only_for_tag_miss(tiny_cfg):
    sim, scheme = make(tiny_cfg)
    pte = scheme.page_tables[0].get_or_create(1)
    assert scheme._needs_os_intervention(pte)
    pte.cached = True
    assert not scheme._needs_os_intervention(pte)


def test_distributed_topology_builds_per_channel_backends(tiny_cfg):
    sim, scheme = make(tiny_cfg, NomadConfig(num_pcshrs=16,
                                             topology=BackendTopology.DISTRIBUTED))
    assert len(scheme.backend.backends) == tiny_cfg.hbm.num_channels


def test_ideal_scheme_zero_tag_latency(tiny_cfg):
    sim = Simulator()
    scheme = IdealScheme(sim, tiny_cfg)
    results = []
    scheme.translate_miss(0, 5, 0, lambda t, p: results.append(t), addr=5 * 4096)
    sim.run()
    assert results[0] == tiny_cfg.tlb.walk_latency  # no OS overhead


def test_translate_addr_spaces(tiny_cfg):
    sim, scheme = make(tiny_cfg)
    pte = scheme.page_tables[0].get_or_create(2)
    pa = scheme.translate_addr(pte, 2 * 4096 + 128)
    assert pa == pte.page_frame_num * 4096 + 128
    pte.cached = True
    pte.page_frame_num = 5
    ca = scheme.translate_addr(pte, 2 * 4096 + 128)
    from repro.schemes.base import is_dc_addr
    assert is_dc_addr(ca)
