"""Forced-shootdown fallback accounting."""

from repro.config.schemes import NomadConfig
from repro.system.builder import build_machine
from repro.workloads.presets import workload


def test_normal_runs_avoid_shootdowns(tiny_cfg):
    r = build_machine(
        "nomad", cfg=tiny_cfg,
        spec=workload("cact", dc_pages=tiny_cfg.dc_pages,
                      num_cores=tiny_cfg.num_cores, num_mem_ops=1500),
    )
    result = r.run()
    # Proactive eviction + TLB-directory skips keep the fallback idle.
    assert r.scheme.frontend.stats.get("forced_shootdowns").value == 0
    # And the eviction machinery did real work.
    assert r.scheme.frontend.stats.get("evictions").value > 0
