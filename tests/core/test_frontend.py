"""Front-end OS routines: tag miss handler + eviction daemon."""

import pytest

from repro.cache.hierarchy import CacheHierarchy
from repro.common.types import MemAccess
from repro.config.dram import HBM2, scaled_dram
from repro.config.system import scaled_system
from repro.core.frontend import DataManager, FrontEnd
from repro.dram.device import DRAMDevice
from repro.vm.descriptors import DescriptorTables
from repro.vm.page_table import PageTable
from repro.vm.tlb import TLB


class RecordingManager(DataManager):
    """Accepts everything instantly; records calls."""

    def __init__(self, sim):
        self.sim = sim
        self.fills = []
        self.writebacks = []
        self.busy = set()

    def fill(self, cfn, pfn, sub_block, on_offloaded, on_resume):
        self.fills.append((cfn, pfn, sub_block))
        on_offloaded()
        on_resume(self.sim.now)

    def writeback(self, cfn, pfn, on_offloaded):
        self.writebacks.append((cfn, pfn))
        on_offloaded()

    def frame_busy(self, cfn):
        return cfn in self.busy


class World:
    def __init__(self, sim, num_frames=32, use_mutex=True, threshold=4, batch=2,
                 tag_latency=400):
        cfg = scaled_system(num_cores=2, dc_megabytes=8)
        object.__setattr__(cfg, "__dict__", dict(cfg.__dict__))  # no-op for frozen
        self.tables = DescriptorTables()
        self.page_tables = [PageTable(i, self.tables) for i in range(2)]
        self.hierarchy = CacheHierarchy(sim, cfg, lambda a, cb: None, lambda p: None)
        self.hbm = DRAMDevice(sim, "hbm", scaled_dram(HBM2, 1 << 24), 3.6)
        self.manager = RecordingManager(sim)
        import dataclasses
        cfg_small = dataclasses.replace(cfg, dc_pages=num_frames)
        self.fe = FrontEnd(
            sim, cfg_small, self.manager, self.page_tables, self.tables,
            self.hierarchy, self.hbm,
            use_mutex=use_mutex, tag_mgmt_latency=tag_latency,
            eviction_threshold=threshold, eviction_batch=batch, eviction_cost=10,
        )
        self.tlbs = [TLB(i, cfg.tlb,
                         on_install=lambda vpn, pte, i=i: self.fe.tlb_changed(i, pte, True),
                         on_evict=lambda vpn, pte, i=i: self.fe.tlb_changed(i, pte, False))
                     for i in range(2)]
        self.fe.attach_tlbs(self.tlbs)

    def fault(self, sim, core, vpn, done):
        pte = self.page_tables[core].get_or_create(vpn)
        self.fe.handle_tag_miss(core, vpn, pte, vpn * 4096, done)
        return pte


def test_tag_miss_updates_pte_and_cpd(sim):
    w = World(sim)
    done = []
    pte = w.fault(sim, 0, 5, done.append)
    sim.run()
    assert done and done[0] >= 400
    assert pte.cached
    cfn = pte.page_frame_num
    cpd = w.fe.cpds[cfn]
    assert cpd.valid
    assert w.tables.reverse_map(cpd.pfn) == [(0, 5)]
    assert w.tables.ppd(cpd.pfn).cached
    assert w.manager.fills == [(cfn, cpd.pfn, 0)]


def test_tag_latency_includes_base_cost(sim):
    w = World(sim, tag_latency=400)
    w.fault(sim, 0, 1, lambda t: None)
    sim.run()
    assert w.fe.stats.get("tag_mgmt_latency").mean >= 400


def test_mutex_serializes_handlers(sim):
    w = World(sim)
    times = []
    w.fault(sim, 0, 1, times.append)
    w.fault(sim, 1, 2, times.append)
    sim.run()
    # Second handler queued behind the first: ~800 total.
    assert times[1] >= 800


def test_no_mutex_handlers_overlap(sim):
    w = World(sim, use_mutex=False)
    times = []
    w.fault(sim, 0, 1, times.append)
    w.fault(sim, 1, 2, times.append)
    sim.run()
    assert times[1] < 800


def test_fifo_frame_allocation(sim):
    w = World(sim)
    ptes = []
    for vpn in range(3):
        ptes.append(w.fault(sim, 0, vpn, lambda t: None))
    sim.run()
    assert [p.page_frame_num for p in ptes] == [0, 1, 2]


def test_daemon_triggers_below_threshold(sim):
    w = World(sim, num_frames=8, threshold=4, batch=2)
    for vpn in range(6):
        w.fault(sim, 0, vpn, lambda t: None)
        sim.run()
    assert w.fe.stats.get("evictions").value > 0


def test_eviction_restores_pte(sim):
    w = World(sim, num_frames=8, threshold=6, batch=4)
    ptes = [w.fault(sim, 0, vpn, lambda t: None) for vpn in range(4)]
    sim.run()
    evicted = [p for p in ptes if not p.cached]
    assert evicted, "daemon should have evicted something"
    for p in evicted:
        ppd = w.tables.ppd(p.page_frame_num)
        assert not ppd.cached


def test_eviction_skips_tlb_resident(sim):
    w = World(sim, num_frames=8, threshold=6, batch=4)
    pte0 = w.fault(sim, 0, 0, lambda t: None)
    sim.run()
    w.tlbs[0].install(0, pte0)  # now TLB-resident
    for vpn in range(1, 4):
        w.fault(sim, 0, vpn, lambda t: None)
        sim.run()
    assert pte0.cached, "TLB-resident frame must not be evicted"
    assert w.fe.stats.get("eviction_tlb_skips").value > 0


def test_eviction_skips_busy_fills(sim):
    w = World(sim, num_frames=8, threshold=6, batch=4)
    pte0 = w.fault(sim, 0, 0, lambda t: None)
    sim.run()
    w.manager.busy.add(pte0.page_frame_num)  # fill still in flight
    for vpn in range(1, 4):
        w.fault(sim, 0, vpn, lambda t: None)
        sim.run()
    assert pte0.cached
    assert w.fe.stats.get("eviction_busy_skips").value > 0


def test_dirty_frame_writes_back(sim):
    w = World(sim, num_frames=8, threshold=6, batch=4)
    pte = w.fault(sim, 0, 0, lambda t: None)
    sim.run()
    w.fe.cpds[pte.page_frame_num].dirty_in_cache = True
    for vpn in range(1, 4):
        w.fault(sim, 0, vpn, lambda t: None)
        sim.run()
    assert w.manager.writebacks


def test_handler_waits_for_free_frame(sim):
    """All frames allocated and TLB-resident: forced shootdown path."""
    w = World(sim, num_frames=4, threshold=0, batch=2)
    ptes = []
    for vpn in range(4):
        pte = w.fault(sim, 0, vpn, lambda t: None)
        ptes.append(pte)
        sim.run()
        w.tlbs[0].install(vpn, pte)
    done = []
    w.fault(sim, 0, 99, done.append)
    sim.run()
    assert done, "handler must eventually get a frame via forced shootdown"
    assert w.fe.stats.get("forced_shootdowns").value >= 1


def test_shared_page_updates_all_mappings(sim):
    w = World(sim)
    pte0 = w.page_tables[0].get_or_create(7)
    pfn = pte0.page_frame_num
    w.tables.share(pfn, 1, 8)
    pte1 = w.page_tables[1]._entries[8] = type(pte0)(page_frame_num=pfn)
    w.fe.handle_tag_miss(0, 7, pte0, 0, lambda t: None)
    sim.run()
    assert pte0.cached and pte1.cached
    assert pte0.page_frame_num == pte1.page_frame_num


def test_warm_fill_zero_cost(sim):
    w = World(sim)
    pte = w.page_tables[0].get_or_create(3)
    w.fe.warm_fill(0, 3, pte)
    assert pte.cached
    assert sim.now == 0
    assert w.fe.stats.get("fills").value == 0  # not a timed fill


def test_warm_fill_evicts_when_needed(sim):
    w = World(sim, num_frames=4, threshold=2, batch=2)
    ptes = [w.page_tables[0].get_or_create(v) for v in range(4)]
    for v, p in enumerate(ptes):
        w.fe.warm_fill(0, v, p)
    assert sum(p.cached for p in ptes) < 4 or w.fe.free_queue.num_free > 0
