"""Back-end hardware: interface admission, page copies, data misses."""

import pytest

from repro.common.types import TrafficClass
from repro.config.dram import DDR4_3200, HBM2, scaled_dram
from repro.config.schemes import NomadConfig
from repro.core.backend import Backend
from repro.core.pcshr import CommandType
from repro.dram.device import DRAMDevice


def make_backend(sim, **cfg_kw):
    cfg = NomadConfig(**cfg_kw)
    hbm = DRAMDevice(sim, "hbm", scaled_dram(HBM2, 1 << 26), 3.6)
    ddr = DRAMDevice(sim, "ddr", scaled_dram(DDR4_3200, 1 << 28), 3.6)
    return Backend(sim, cfg, hbm, ddr), hbm, ddr


def test_fill_accepts_and_resumes_immediately(sim):
    be, hbm, ddr = make_backend(sim, num_pcshrs=4)
    events = []
    be.fill(1, 2, 0, on_offloaded=lambda: events.append(("off", sim.now)),
            on_resume=lambda t: events.append(("res", t)))
    assert events == [("off", 0), ("res", 0)]
    assert be.outstanding_copies == 1


def test_fill_moves_page_through_both_devices(sim):
    be, hbm, ddr = make_backend(sim, num_pcshrs=4)
    be.fill(1, 2, 0, on_offloaded=lambda: None, on_resume=lambda t: None)
    sim.run()
    assert ddr.bytes_by_class()[TrafficClass.FILL] == 4096  # reads
    assert hbm.bytes_by_class()[TrafficClass.FILL] == 4096  # writes
    assert be.outstanding_copies == 0


def test_writeback_moves_page_out(sim):
    be, hbm, ddr = make_backend(sim, num_pcshrs=4)
    be.writeback(1, 2, on_offloaded=lambda: None)
    sim.run()
    assert hbm.bytes_by_class()[TrafficClass.WRITEBACK] == 4096
    assert ddr.bytes_by_class()[TrafficClass.WRITEBACK] == 4096


def test_interface_blocks_without_free_pcshr(sim):
    be, _, _ = make_backend(sim, num_pcshrs=1)
    accepted = []
    be.fill(1, 2, 0, lambda: accepted.append(1), lambda t: None)
    be.fill(3, 4, 0, lambda: accepted.append(2), lambda t: None)
    assert accepted == [1]
    assert be.interface_busy
    sim.run()  # first copy completes, second admitted
    assert accepted == [1, 2]


def test_command_wait_recorded(sim):
    be, _, _ = make_backend(sim, num_pcshrs=1)
    be.fill(1, 2, 0, lambda: None, lambda t: None)
    be.fill(3, 4, 0, lambda: None, lambda t: None)
    sim.run()
    wait = be.stats.get("command_wait")
    assert wait.count == 2
    assert wait.max > 0


def test_same_cfn_command_defers(sim):
    """A second command for an in-flight CFN waits for completion."""
    be, _, _ = make_backend(sim, num_pcshrs=4)
    order = []
    be.fill(1, 2, 0, lambda: order.append("fill"), lambda t: None)
    be.writeback(1, 2, on_offloaded=lambda: order.append("wb"))
    assert order == ["fill"]
    sim.run()
    assert order == ["fill", "wb"]


def test_probe_matches_only_inflight(sim):
    be, _, _ = make_backend(sim, num_pcshrs=4)
    be.fill(7, 2, 0, lambda: None, lambda t: None)
    assert be.probe(7) is not None
    assert be.probe(8) is None
    sim.run()
    assert be.probe(7) is None  # completed


def test_frame_busy_only_for_fills(sim):
    be, _, _ = make_backend(sim, num_pcshrs=4)
    be.fill(1, 2, 0, lambda: None, lambda t: None)
    be.writeback(3, 4, on_offloaded=lambda: None)
    assert be.frame_busy(1)
    assert not be.frame_busy(3)  # writeback does not block eviction scans


def test_read_data_miss_waits_for_arrival(sim):
    be, _, _ = make_backend(sim, num_pcshrs=4)
    be.fill(1, 2, 0, lambda: None, lambda t: None)
    pcshr = be.probe(1)
    done = []
    be.read_data_miss(pcshr, 63, done.append)  # last sub-block
    assert not done
    sim.run()
    assert done
    assert be.stats.get("sub_entry_waits").value == 1


def test_read_data_miss_buffer_hit(sim):
    be, _, _ = make_backend(sim, num_pcshrs=4)
    be.fill(1, 2, sub_block=9, on_offloaded=lambda: None, on_resume=lambda t: None)
    pcshr = be.probe(1)
    arrival = pcshr.buffer_ready_time(9)  # prioritized: earliest
    done = []

    def later():
        be.read_data_miss(pcshr, 9, done.append)

    sim.schedule_at(arrival + 1, later)
    sim.run()
    assert done
    assert be.stats.get("buffer_hits").value == 1


def test_critical_data_first_earliest_arrival(sim):
    be, _, _ = make_backend(sim, num_pcshrs=1)
    be.fill(1, 2, sub_block=40, on_offloaded=lambda: None, on_resume=lambda t: None)
    pcshr = be.probe(1)
    arrivals = pcshr.arrival_times
    assert arrivals[40] == min(arrivals)


def test_no_critical_data_first_sequential(sim):
    be, _, _ = make_backend(sim, num_pcshrs=1, critical_data_first=False)
    be.fill(1, 2, sub_block=40, on_offloaded=lambda: None, on_resume=lambda t: None)
    arrivals = be.probe(1).arrival_times
    assert arrivals[0] == min(arrivals)


def test_write_data_miss_merges_into_buffer(sim):
    be, _, _ = make_backend(sim, num_pcshrs=4)
    be.fill(1, 2, 0, lambda: None, lambda t: None)
    pcshr = be.probe(1)
    t = be.write_data_miss(pcshr, 50)
    assert t >= sim.now
    assert pcshr.sub_block_in_buffer(50, now=sim.now)
    assert be.stats.get("buffer_write_merges").value == 1


def test_buffer_hit_ratio_counts_merges(sim):
    be, _, _ = make_backend(sim, num_pcshrs=4)
    be.fill(1, 2, 0, lambda: None, lambda t: None)
    pcshr = be.probe(1)
    be.write_data_miss(pcshr, 50)
    be.read_data_miss(pcshr, 63, lambda t: None)
    assert be.buffer_hit_ratio() == pytest.approx(0.5)
    sim.run()


def test_area_optimized_waits_for_buffer(sim):
    be, _, _ = make_backend(sim, num_pcshrs=4, num_copy_buffers=1)
    accepted = []
    be.fill(1, 2, 0, lambda: accepted.append(1), lambda t: None)
    be.fill(3, 4, 0, lambda: accepted.append(2), lambda t: None)
    # Both commands accepted (PCSHRs free)...
    assert accepted == [1, 2]
    # ...but only one copy launched (one buffer).
    p2 = be.probe(3)
    assert not p2.launched
    sim.run()
    assert be.outstanding_copies == 0


def test_area_optimized_pending_read_serviced(sim):
    be, _, _ = make_backend(sim, num_pcshrs=4, num_copy_buffers=1)
    be.fill(1, 2, 0, lambda: None, lambda t: None)
    be.fill(3, 4, 0, lambda: None, lambda t: None)
    p2 = be.probe(3)
    done = []
    be.read_data_miss(p2, 0, done.append)
    assert not done  # not even launched
    sim.run()
    assert done


def test_serve_from_copy_buffer_ablation(sim):
    be, _, _ = make_backend(sim, num_pcshrs=4, serve_from_copy_buffer=False)
    be.fill(1, 2, 0, lambda: None, lambda t: None)
    pcshr = be.probe(1)
    done = []
    be.read_data_miss(pcshr, 0, done.append)
    sim.run()
    assert done
    assert be.stats.get("buffer_hits").value == 0


def test_fill_and_writeback_counters(sim):
    be, _, _ = make_backend(sim, num_pcshrs=8)
    be.fill(1, 2, 0, lambda: None, lambda t: None)
    be.writeback(3, 4, on_offloaded=lambda: None)
    assert be.stats.get("fill_commands").value == 1
    assert be.stats.get("writeback_commands").value == 1
    sim.run()
