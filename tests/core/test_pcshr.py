"""PCSHR register semantics (Fig. 6)."""

import pytest

from repro.core.pcshr import CommandType, PCSHR


def alloc(p=None, pi=5, cmd=CommandType.CACHE_FILL):
    p = p or PCSHR(0)
    p.allocate(cmd, pfn=10, cfn=20, priority_index=pi, now=100)
    return p


def test_allocate_resets_state():
    p = PCSHR(0)
    p.r_vector.set_all()
    p = alloc(p)
    assert p.valid
    assert not p.r_vector.any_set
    assert not p.b_vector.any_set
    assert not p.w_vector.any_set
    assert p.priority and p.priority_index == 5
    assert p.alloc_time == 100


def test_allocate_without_priority():
    p = alloc(pi=None)
    assert not p.priority


def test_launch_sets_r_vector():
    p = alloc()
    p.launch(110, [110 + i for i in range(64)])
    assert p.r_vector.all_set
    assert p.launched


def test_launch_wrong_length_rejected():
    p = alloc()
    with pytest.raises(ValueError):
        p.launch(110, [1, 2, 3])


def test_sub_block_in_buffer_follows_arrivals():
    p = alloc()
    p.launch(0, [100] * 32 + [500] * 32)
    assert p.sub_block_in_buffer(0, now=100)
    assert not p.sub_block_in_buffer(40, now=100)
    assert p.sub_block_in_buffer(40, now=500)


def test_cpu_write_puts_data_in_buffer():
    p = alloc()
    assert not p.sub_block_in_buffer(3, now=0)
    p.record_cpu_write(3)
    assert p.sub_block_in_buffer(3, now=0)


def test_buffer_ready_time_none_before_launch():
    p = alloc()
    assert p.buffer_ready_time(0) is None


def test_sync_derives_b_and_w_vectors():
    p = alloc()
    p.launch(0, [10 * (i + 1) for i in range(64)])
    p.write_times = [1000 + i for i in range(64)]
    p.sync(now=40)
    assert p.b_vector.count() == 4
    assert p.w_vector.count() == 0
    p.sync(now=2000)
    assert p.b_vector.all_set
    assert p.w_vector.all_set


def test_sync_wakes_sub_entries():
    p = alloc()
    p.launch(0, [50] * 64)
    e = p.add_sub_entry(7, access_id=1)
    p.sync(now=10)
    assert e.valid
    p.sync(now=60)
    assert not e.valid


def test_sub_entry_overflow_counted():
    p = PCSHR(0, num_sub_entries=2)
    p.allocate(CommandType.CACHE_FILL, 1, 2, None, 0)
    for i in range(3):
        p.add_sub_entry(i, access_id=i)
    assert p.sub_entry_overflows == 1


def test_transfer_order_critical_data_first():
    p = alloc(pi=9)
    order = p.transfer_order(critical_data_first=True)
    assert order[0] == 9
    assert sorted(order) == list(range(64))


def test_transfer_order_sequential_when_disabled():
    p = alloc(pi=9)
    assert p.transfer_order(critical_data_first=False) == list(range(64))


def test_transfer_order_writeback_has_no_priority():
    p = alloc(pi=None, cmd=CommandType.WRITEBACK)
    assert p.transfer_order(critical_data_first=True) == list(range(64))


def test_release():
    p = alloc()
    p.release()
    assert not p.valid


def test_repr_states():
    p = PCSHR(3)
    assert "idle" in repr(p)
    p = alloc(p)
    assert "waiting" in repr(p)
    p.launch(0, [0] * 64)
    assert "active" in repr(p)
