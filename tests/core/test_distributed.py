"""Distributed back-ends (Fig. 8b / Fig. 16)."""

import pytest

from repro.config.dram import DDR4_3200, HBM2, scaled_dram
from repro.config.schemes import NomadConfig
from repro.core.distributed import DistributedBackend
from repro.dram.device import DRAMDevice


def make(sim, num_backends=4, **cfg_kw):
    cfg = NomadConfig(**cfg_kw)
    hbm = DRAMDevice(sim, "hbm", scaled_dram(HBM2, 1 << 26), 3.6)
    ddr = DRAMDevice(sim, "ddr", scaled_dram(DDR4_3200, 1 << 28), 3.6)
    return DistributedBackend(sim, cfg, hbm, ddr, num_backends=num_backends)


def test_budget_split_evenly(sim):
    d = make(sim, num_backends=4, num_pcshrs=16)
    assert len(d.backends) == 4
    assert all(len(b.pcshrs) == 4 for b in d.backends)


def test_commands_route_by_cfn(sim):
    d = make(sim, num_backends=4, num_pcshrs=16)
    for cfn in range(8):
        d.fill(cfn, 100 + cfn, 0, lambda: None, lambda t: None)
    # FIFO cfn allocation spreads uniformly (paper Section III-F).
    assert all(b.outstanding_copies == 2 for b in d.backends)
    sim.run()


def test_probe_routes(sim):
    d = make(sim, num_backends=2, num_pcshrs=4)
    d.fill(3, 100, 0, lambda: None, lambda t: None)
    assert d.probe(3) is not None
    assert d.probe(2) is None
    sim.run()


def test_read_data_miss_routed_to_owner(sim):
    d = make(sim, num_backends=2, num_pcshrs=4)
    d.fill(5, 100, 0, lambda: None, lambda t: None)
    pcshr = d.probe(5)
    done = []
    d.read_data_miss(pcshr, 63, done.append)
    sim.run()
    assert done


def test_frame_busy_routed(sim):
    d = make(sim, num_backends=2, num_pcshrs=4)
    d.fill(5, 100, 0, lambda: None, lambda t: None)
    assert d.frame_busy(5)
    assert not d.frame_busy(4)
    sim.run()


def test_aggregated_buffer_hit_ratio(sim):
    d = make(sim, num_backends=2, num_pcshrs=4)
    d.fill(0, 100, 0, lambda: None, lambda t: None)
    p = d.probe(0)
    d.write_data_miss(p, 1)
    assert d.buffer_hit_ratio() == 1.0
    sim.run()


def test_zero_backends_rejected(sim):
    with pytest.raises(ValueError):
        make(sim, num_backends=0)


def test_command_wait_mean_aggregates(sim):
    d = make(sim, num_backends=2, num_pcshrs=2)
    for cfn in range(6):
        d.fill(cfn, 100 + cfn, 0, lambda: None, lambda t: None)
    sim.run()
    assert d.command_wait_mean() >= 0
