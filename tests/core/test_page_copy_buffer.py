"""Page copy buffer pool semantics."""

import pytest

from repro.core.page_copy_buffer import PageCopyBufferPool


def test_acquire_immediate_when_free(sim):
    pool = PageCopyBufferPool(sim, 2)
    got = []
    pool.acquire(lambda: got.append(sim.now))
    assert got == [0]
    assert pool.in_use == 1


def test_waits_when_exhausted(sim):
    pool = PageCopyBufferPool(sim, 1)
    got = []
    pool.acquire(lambda: got.append("a"))
    pool.acquire(lambda: got.append("b"))
    assert got == ["a"]
    assert pool.waits == 1
    sim.schedule(50, pool.release)
    sim.run()
    assert got == ["a", "b"]


def test_fifo_grant_order(sim):
    pool = PageCopyBufferPool(sim, 1)
    got = []
    pool.acquire(lambda: None)
    pool.acquire(lambda: got.append(1))
    pool.acquire(lambda: got.append(2))
    pool.release()
    pool.release()
    sim.run()
    assert got == [1, 2]


def test_release_overflow_guarded(sim):
    pool = PageCopyBufferPool(sim, 1)
    with pytest.raises(RuntimeError):
        pool.release()


def test_zero_buffers_rejected(sim):
    with pytest.raises(ValueError):
        PageCopyBufferPool(sim, 0)
