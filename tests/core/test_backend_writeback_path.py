"""Writeback-type PCSHRs and probe interactions."""

from repro.common.types import TrafficClass
from repro.config.dram import DDR4_3200, HBM2, scaled_dram
from repro.config.schemes import NomadConfig
from repro.core.backend import Backend
from repro.core.pcshr import CommandType
from repro.dram.device import DRAMDevice


def make(sim, **kw):
    hbm = DRAMDevice(sim, "hbm", scaled_dram(HBM2, 1 << 26), 3.6)
    ddr = DRAMDevice(sim, "ddr", scaled_dram(DDR4_3200, 1 << 28), 3.6)
    return Backend(sim, NomadConfig(**kw), hbm, ddr), hbm, ddr


def test_writeback_pcshr_probe_matches(sim):
    be, _, _ = make(sim, num_pcshrs=4)
    be.writeback(5, 10, on_offloaded=lambda: None)
    p = be.probe(5)
    assert p is not None
    assert p.cmd_type == CommandType.WRITEBACK
    sim.run()
    assert be.probe(5) is None


def test_writeback_reads_hbm_sequentially(sim):
    be, hbm, ddr = make(sim, num_pcshrs=2)
    be.writeback(0, 1, on_offloaded=lambda: None)
    p = be.probe(0)
    # No priority for writebacks: arrivals ordered sequentially.
    assert p.arrival_times[0] == min(p.arrival_times)
    sim.run()


def test_write_merge_into_writeback_buffer(sim):
    """A racing CPU write merges into the outgoing copy."""
    be, _, _ = make(sim, num_pcshrs=2)
    be.writeback(0, 1, on_offloaded=lambda: None)
    p = be.probe(0)
    t = be.write_data_miss(p, 7)
    assert t >= sim.now
    assert p.cpu_written.test(7)
    sim.run()


def test_pcshr_sub_entry_wakeup_via_read(sim):
    be, _, _ = make(sim, num_pcshrs=2)
    be.fill(0, 1, 0, lambda: None, lambda t: None)
    p = be.probe(0)
    served = []
    for sub in (10, 20, 30):
        be.read_data_miss(p, sub, served.append)
    sim.run()
    assert len(served) == 3
    assert served == sorted(served)  # sequential fetch order


def test_backend_full_lifecycle_counts(sim):
    be, hbm, ddr = make(sim, num_pcshrs=2)
    for cfn in range(6):
        if cfn % 2:
            be.writeback(cfn, 100 + cfn, on_offloaded=lambda: None)
        else:
            be.fill(cfn, 100 + cfn, 0, lambda: None, lambda t: None)
    sim.run()
    assert be.stats.get("fill_commands").value == 3
    assert be.stats.get("writeback_commands").value == 3
    assert ddr.bytes_by_class()[TrafficClass.FILL] == 3 * 4096
    assert ddr.bytes_by_class()[TrafficClass.WRITEBACK] == 3 * 4096
    assert be.outstanding_copies == 0
