"""Dirty-in-cache (DC) bit ablation: without it, every eviction pays."""

from repro.config.schemes import NomadConfig, TDCConfig
from repro.system.builder import build_machine
from repro.workloads.presets import workload


def run(tiny_cfg, scheme, dc_bits, ops=1500):
    spec = workload("lbm", dc_pages=tiny_cfg.dc_pages,
                    num_cores=tiny_cfg.num_cores, num_mem_ops=ops)
    kw = {}
    if scheme == "nomad":
        kw["nomad_cfg"] = NomadConfig(dirty_in_cache_bits=dc_bits)
    else:
        kw["tdc_cfg"] = TDCConfig(dirty_in_cache_bits=dc_bits)
    return build_machine(scheme, cfg=tiny_cfg, spec=spec, **kw).run()


def test_nomad_without_dc_bits_writes_back_everything(tiny_cfg):
    with_bits = run(tiny_cfg, "nomad", True)
    without = run(tiny_cfg, "nomad", False)
    assert without.page_writebacks >= with_bits.page_writebacks
    wb_with = with_bits.ddr_bytes_by_class.get("WRITEBACK", 0)
    wb_without = without.ddr_bytes_by_class.get("WRITEBACK", 0)
    assert wb_without > wb_with


def test_tdc_without_dc_bits_writes_back_everything(tiny_cfg):
    with_bits = run(tiny_cfg, "tdc", True)
    without = run(tiny_cfg, "tdc", False)
    assert without.page_writebacks >= with_bits.page_writebacks
