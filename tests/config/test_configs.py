"""Table II configuration encodings."""

import pytest

from repro.config.dram import DDR4_3200, HBM2, scaled_dram
from repro.config.schemes import BackendTopology, NomadConfig, TDCConfig, TiDConfig
from repro.config.system import CacheConfig, paper_system, scaled_system


def test_paper_system_matches_table2():
    cfg = paper_system()
    assert cfg.num_cores == 8
    assert cfg.l1.size_bytes == 32 * 1024
    assert cfg.l2.size_bytes == 256 * 1024
    assert cfg.l3.size_bytes == 16 * 1024 * 1024
    assert cfg.hbm.name == "HBM2"
    assert cfg.ddr.name == "DDR4-3200"
    assert cfg.dc_pages == (4 * 1024**3) // 4096


def test_hbm_outbandwidths_ddr():
    # The heterogeneous-memory premise: on-package >> off-package.
    assert HBM2.peak_gbps() > 4 * DDR4_3200.peak_gbps()


def test_ddr_peak_bandwidth():
    assert DDR4_3200.peak_gbps() == pytest.approx(25.6)


def test_scaled_system_preserves_ratios():
    cfg = scaled_system(num_cores=4, dc_megabytes=64)
    assert cfg.dc_pages == 64 * 1024 * 1024 // 4096
    # L3 shrinks with the DC.
    assert cfg.l3.size_bytes < 16 * 1024 * 1024
    # Timings untouched.
    assert cfg.hbm.burst_ns == HBM2.burst_ns


def test_scaled_dram_keeps_timings():
    small = scaled_dram(HBM2, 8 * 1024 * 1024)
    assert small.capacity_bytes == 8 * 1024 * 1024
    assert small.trcd_ns == HBM2.trcd_ns
    assert small.peak_gbps() == HBM2.peak_gbps()


def test_cache_config_sets():
    c = CacheConfig("x", 64 * 1024, 8, 4, 16)
    assert c.num_sets == 64 * 1024 // (64 * 8)


def test_nomad_config_defaults():
    cfg = NomadConfig()
    assert cfg.num_pcshrs == 16
    assert cfg.resolved_copy_buffers() == 16
    assert cfg.tag_mgmt_latency == 400
    assert cfg.topology == BackendTopology.CENTRALIZED
    assert cfg.frontend_mutex


def test_nomad_config_area_optimized():
    cfg = NomadConfig(num_pcshrs=32, num_copy_buffers=8)
    assert cfg.resolved_copy_buffers() == 8


def test_tid_config_geometry():
    cfg = TiDConfig()
    assert cfg.line_size == 1024
    assert cfg.ways == 4
    assert cfg.sub_blocks_per_line == 16


def test_tdc_config():
    cfg = TDCConfig()
    assert cfg.tag_mgmt_latency == 400


def test_with_cores():
    cfg = paper_system().with_cores(2)
    assert cfg.num_cores == 2


def test_cycles_per_second():
    cfg = paper_system()
    assert cfg.cycles_per_second == pytest.approx(cfg.core.freq_ghz * 1e9)


def test_rows_per_bank_positive():
    assert HBM2.rows_per_bank() > 0
    assert DDR4_3200.rows_per_bank() > 0


def test_dram_cycles_rounds_up():
    assert HBM2.cycles(1.0, 3.6) == 4
    assert HBM2.cycles(0.1, 3.6) == 1
