"""Chunked trace iteration must match the per-element reference path.

``SyntheticWorkload.__iter__`` converts each numpy chunk with
``ndarray.tolist()`` and assembles op tuples with ``zip`` (the fast
path).  The reference semantics are the per-element ``int()``/``bool()``
conversion loop it replaced; the two must agree element-for-element --
values *and* native types -- for every Table I preset, since the trace
feeds the deterministic event stream that the golden-metrics tests pin.
"""

import pytest

from repro.workloads.presets import PRESETS, workload
from repro.workloads.synthetic import SyntheticWorkload, WorkloadSpec


def _reference_ops(spec: WorkloadSpec, seed: int, core_id: int) -> list:
    """The old serial materialization: one int()/bool() per field."""
    w = SyntheticWorkload(spec, seed=seed, core_id=core_id)
    out = []
    remaining = spec.num_mem_ops
    while remaining > 0:
        gaps, addrs, writes, deps = w._make_chunk(remaining)
        remaining -= len(gaps)
        for i in range(len(gaps)):
            out.append(
                (int(gaps[i]), int(addrs[i]), bool(writes[i]), bool(deps[i]))
            )
    return out


@pytest.mark.parametrize("name", sorted(PRESETS))
def test_chunked_iteration_matches_reference(name):
    spec = workload(name, dc_pages=2048, num_cores=2, num_mem_ops=700)
    fast = list(SyntheticWorkload(spec, seed=5, core_id=1))
    ref = _reference_ops(spec, seed=5, core_id=1)
    assert fast == ref
    # tolist() must yield native python scalars, not numpy types: the
    # core's dispatch arithmetic and the heap ordering rely on exact int
    # semantics, and bools must stay bools for the dependence flags.
    gap, addr, write, dep = fast[0]
    assert type(gap) is int and type(addr) is int
    assert type(write) is bool and type(dep) is bool


def test_multiple_chunks_are_exercised():
    """The equivalence must hold across chunk boundaries, not just one."""
    spec = workload("cact", dc_pages=2048, num_cores=2, num_mem_ops=4000)
    w = SyntheticWorkload(spec, seed=2, core_id=0)
    assert spec.num_mem_ops > w.CHUNK_VISITS  # > one chunk of visits
    fast = list(w)
    assert fast == _reference_ops(spec, seed=2, core_id=0)
    assert len(fast) == spec.num_mem_ops
