"""The steady-state warmup plan."""

from repro.workloads.presets import _DEAD_PAGE_BASE, warm_plan, workload


def test_stream_plan_is_trailing_window():
    spec = workload("cact", dc_pages=16384, num_cores=4)
    plan = warm_plan(spec, 4096)
    pages = [vpn for vpn, _ in plan]
    assert len(pages) == 4096
    # The youngest warmed page is the one just behind the stream start.
    assert pages[-1] == spec.footprint_pages - 1


def test_zipf_plan_hot_pages_youngest():
    spec = workload("tc", dc_pages=16384, num_cores=4)
    plan = warm_plan(spec, 4096)
    pages = [vpn for vpn, _ in plan]
    # Dead filler (if any) comes first; the hottest page is last.
    from repro.workloads.synthetic import _SCATTER_PRIME
    hottest = int(0 * _SCATTER_PRIME) % spec.footprint_pages
    assert pages[-1] == hottest


def test_zipf_plan_fills_share_with_dead_pages():
    spec = workload("sop", dc_pages=16384, num_cores=4)  # footprint < share
    plan = warm_plan(spec, 4096)
    assert len(plan) == 4096
    dead = [vpn for vpn, _ in plan if vpn >= _DEAD_PAGE_BASE]
    assert dead, "small footprints need dead filler to reach steady state"


def test_dirty_fraction_tracks_write_frac():
    spec = workload("lbm", dc_pages=16384, num_cores=4)  # write_frac 0.45
    plan = warm_plan(spec, 4096)
    frac = sum(d for _, d in plan) / len(plan)
    assert 0.3 < frac < 0.6


def test_plan_deterministic():
    spec = workload("cact", dc_pages=16384, num_cores=4)
    assert warm_plan(spec, 4096) == warm_plan(spec, 4096)


def test_machine_starts_at_steady_state():
    from repro.system.builder import build_machine
    m = build_machine("nomad", workload_name="cact", num_mem_ops=10)
    fq = m.scheme.frontend.free_queue
    # Warm fills consumed the whole DC; warm eviction keeps the free
    # count pinned near the eviction threshold.
    assert fq.num_free <= m.scheme.frontend.eviction_threshold + \
        m.scheme.frontend.eviction_batch
