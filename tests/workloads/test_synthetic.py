"""Synthetic workload generator."""

import numpy as np
import pytest

from repro.workloads.synthetic import SyntheticWorkload, WorkloadSpec


def spec(**kw):
    base = dict(name="t", footprint_pages=256, num_mem_ops=2000)
    base.update(kw)
    return WorkloadSpec(**base)


def collect(s, seed=1, core=0):
    return list(SyntheticWorkload(s, seed=seed, core_id=core))


def test_emits_requested_ops():
    ops = collect(spec(num_mem_ops=777))
    assert len(ops) == 777


def test_deterministic_per_seed():
    a = collect(spec(), seed=3)
    b = collect(spec(), seed=3)
    assert a == b


def test_different_seeds_differ():
    assert collect(spec(), seed=1) != collect(spec(), seed=2)


def test_different_cores_differ():
    assert collect(spec(), core=0) != collect(spec(), core=1)


def test_addresses_within_footprint():
    ops = collect(spec(footprint_pages=64, cold_frac=0.0))
    assert all(0 <= addr < 64 * 4096 for _, addr, _, _ in ops)


def test_cold_pages_outside_hot_footprint():
    ops = collect(spec(cold_frac=0.5))
    cold = [a for _, a, _, _ in ops if a >= 256 * 4096]
    assert cold, "cold region must be visited"
    # Cold pages never repeat.
    cold_pages = [a >> 12 for a in cold]
    # runs within a cold page repeat the page; distinct pages strictly increase
    assert sorted(set(cold_pages)) == sorted(dict.fromkeys(cold_pages))


def test_write_fraction_approximate():
    ops = collect(spec(write_frac=0.5, num_mem_ops=5000))
    frac = sum(w for _, _, w, _ in ops) / len(ops)
    assert 0.4 < frac < 0.6


def test_dep_only_on_loads():
    ops = collect(spec(dep_frac=0.5, write_frac=0.5))
    assert all(not (w and d) for _, _, w, d in ops)


def test_mem_ratio_sets_mean_gap():
    ops = collect(spec(mem_ratio=0.25, num_mem_ops=8000))
    mean_gap = sum(g for g, _, _, _ in ops) / len(ops)
    assert 2.0 < mean_gap < 4.0  # (1-r)/r = 3


def test_stream_visits_sequential_pages():
    ops = collect(spec(page_select="stream", mean_run_lines=64, num_mem_ops=640))
    pages = [a >> 12 for _, a, _, _ in ops]
    distinct = list(dict.fromkeys(pages))
    diffs = {(b - a) % 256 for a, b in zip(distinct, distinct[1:])}
    assert diffs == {1}


def test_stream_run_covers_whole_page_when_64():
    ops = collect(spec(page_select="stream", mean_run_lines=64, num_mem_ops=256))
    lines = [(a >> 6) & 63 for _, a, _, _ in ops]
    assert lines[:64] == list(range(64))


def test_reuse_revisits_recent_pages():
    ops = collect(spec(page_select="stream", reuse_frac=0.5, reuse_window=16,
                       mean_run_lines=1, num_mem_ops=4000))
    pages = [a >> 12 for _, a, _, _ in ops]
    revisits = len(pages) - len(set(pages))
    assert revisits > 500


def test_zipf_concentrates_on_hot_pages():
    ops = collect(spec(page_select="zipf", zipf_skew=4.0, mean_run_lines=1,
                       num_mem_ops=8000))
    pages = [a >> 12 for _, a, _, _ in ops]
    top = max(pages, key=pages.count)
    # Far beyond uniform (8000/256 ~ 31 per page).
    assert pages.count(top) > 100


def test_uniform_spreads():
    ops = collect(spec(page_select="uniform", mean_run_lines=1, num_mem_ops=8000))
    pages = {a >> 12 for _, a, _, _ in ops}
    assert len(pages) > 200


def test_bursty_gap_structure():
    quiet = spec(bursty=False, mem_ratio=0.2, num_mem_ops=16000)
    burst = spec(bursty=True, mem_ratio=0.2, burst_idle_multiplier=10,
                 num_mem_ops=16000)
    g_quiet = sum(g for g, _, _, _ in collect(quiet))
    g_burst = sum(g for g, _, _, _ in collect(burst))
    assert g_burst > 2 * g_quiet


def test_len_reports_num_ops():
    assert len(SyntheticWorkload(spec(num_mem_ops=123))) == 123


def test_invalid_specs_rejected():
    with pytest.raises(ValueError):
        SyntheticWorkload(spec(footprint_pages=0))
    with pytest.raises(ValueError):
        SyntheticWorkload(spec(mem_ratio=0.0))
    with pytest.raises(ValueError):
        SyntheticWorkload(spec(mean_run_lines=65))


def test_unknown_selector_rejected():
    with pytest.raises(ValueError):
        collect(spec(page_select="mystery"))


def test_scaled_override():
    s = spec().scaled(num_mem_ops=10)
    assert s.num_mem_ops == 10
    assert s.footprint_pages == 256
