"""Trace archive round-trips."""

import numpy as np
import pytest

from repro.workloads.presets import workload
from repro.workloads.synthetic import SyntheticWorkload
from repro.workloads.tracefile import (
    ArchivedTrace,
    load_traces,
    materialize,
    save_traces,
)


def test_materialize_columns():
    trace = [(1, 64, False, True), (2, 128, True, False)]
    gaps, addrs, writes, deps = materialize(trace)
    assert list(gaps) == [1, 2]
    assert list(addrs) == [64, 128]
    assert list(writes) == [False, True]
    assert list(deps) == [True, False]


def test_roundtrip(tmp_path):
    spec = workload("sop", num_mem_ops=300)
    traces = [SyntheticWorkload(spec, seed=1, core_id=i) for i in range(2)]
    expected = [list(SyntheticWorkload(spec, seed=1, core_id=i)) for i in range(2)]
    path = tmp_path / "t.npz"
    save_traces(path, traces)
    loaded = load_traces(path)
    assert len(loaded) == 2
    for got, want in zip(loaded, expected):
        assert list(got) == want
        assert len(got) == len(want)


def test_archived_trace_reiterable(tmp_path):
    t = ArchivedTrace(np.array([1]), np.array([64]),
                      np.array([True]), np.array([False]))
    assert list(t) == list(t) == [(1, 64, True, False)]


def test_column_length_mismatch():
    with pytest.raises(ValueError):
        ArchivedTrace(np.array([1, 2]), np.array([64]),
                      np.array([True]), np.array([False]))


def test_archived_trace_runs_on_machine(tmp_path):
    from repro.config.system import scaled_system
    from repro.engine.simulator import Simulator
    from repro.system.builder import make_scheme
    from repro.system.machine import Machine

    cfg = scaled_system(num_cores=2, dc_megabytes=8)
    spec = workload("sop", dc_pages=cfg.dc_pages, num_cores=2, num_mem_ops=200)
    path = tmp_path / "t.npz"
    save_traces(path, [SyntheticWorkload(spec, 1, i) for i in range(2)])
    traces = load_traces(path)
    sim = Simulator()
    machine = Machine(cfg, make_scheme("nomad", sim, cfg), traces, "archived")
    result = machine.run()
    assert result.instructions > 0
