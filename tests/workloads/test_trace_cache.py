"""Trace-cache layers: bounded memory LRU, counters, disk round-trip."""

import pytest

from repro.workloads.presets import workload
from repro.workloads.synthetic import (
    clear_trace_cache,
    configure_trace_cache,
    materialized_trace,
    trace_cache_stats,
)


def _spec(name="sop", ops=120):
    return workload(name, dc_pages=2048, num_cores=2, num_mem_ops=ops)


@pytest.fixture(autouse=True)
def _pristine_cache():
    before = trace_cache_stats()
    clear_trace_cache()
    yield
    configure_trace_cache(maxsize=before["maxsize"],
                          disk_dir=before["disk_dir"] or None)
    clear_trace_cache()


def test_memory_hit_and_miss_counters():
    materialized_trace(_spec(), seed=1, core_id=0)
    stats = trace_cache_stats()
    assert stats["misses"] == 1 and stats["hits"] == 0
    materialized_trace(_spec(), seed=1, core_id=0)
    stats = trace_cache_stats()
    assert stats["hits"] == 1 and stats["size"] == 1


def test_distinct_keys_do_not_collide():
    a = materialized_trace(_spec(), seed=1, core_id=0)
    b = materialized_trace(_spec(), seed=2, core_id=0)
    c = materialized_trace(_spec(), seed=1, core_id=1)
    assert trace_cache_stats()["misses"] == 3
    assert a != b and a != c


def test_memory_layer_is_bounded():
    configure_trace_cache(maxsize=2)
    for seed in (1, 2, 3):
        materialized_trace(_spec(), seed=seed, core_id=0)
    stats = trace_cache_stats()
    assert stats["size"] == 2
    assert stats["evictions"] == 1
    # seed=1 was evicted: regenerating it is a miss, not a hit.
    materialized_trace(_spec(), seed=1, core_id=0)
    assert trace_cache_stats()["hits"] == 0


def test_shrinking_maxsize_evicts_down():
    for seed in (1, 2, 3):
        materialized_trace(_spec(), seed=seed, core_id=0)
    configure_trace_cache(maxsize=1)
    assert trace_cache_stats()["size"] == 1


def test_disk_layer_round_trips_bit_identically(tmp_path):
    configure_trace_cache(disk_dir=str(tmp_path))
    generated = materialized_trace(_spec("cact"), seed=5, core_id=0)
    assert trace_cache_stats()["disk_writes"] == 1
    # Drop the memory layer so only the disk file can answer.
    clear_trace_cache()
    configure_trace_cache(disk_dir=str(tmp_path))
    loaded = materialized_trace(_spec("cact"), seed=5, core_id=0)
    stats = trace_cache_stats()
    assert stats["disk_hits"] == 1
    assert loaded == generated
    # Native scalars, not numpy: downstream code mixes them into dicts
    # and bit-identity depends on exact types.
    gap, addr, is_write, dep = loaded[0]
    assert type(gap) is int and type(addr) is int
    assert type(is_write) is bool


def test_disk_hit_promotes_into_memory(tmp_path):
    configure_trace_cache(disk_dir=str(tmp_path))
    materialized_trace(_spec(), seed=8, core_id=0)
    clear_trace_cache()
    configure_trace_cache(disk_dir=str(tmp_path))
    materialized_trace(_spec(), seed=8, core_id=0)  # disk hit
    materialized_trace(_spec(), seed=8, core_id=0)  # now a memory hit
    stats = trace_cache_stats()
    assert stats["disk_hits"] == 1 and stats["hits"] == 1


def test_disk_layer_disabled_by_default():
    materialized_trace(_spec(), seed=1, core_id=0)
    stats = trace_cache_stats()
    assert stats["disk_dir"] == ""
    assert stats["disk_writes"] == 0
