"""Table I presets."""

import pytest

from repro.workloads.presets import (
    CLASS_OF,
    PRESETS,
    WORKLOAD_CLASSES,
    warm_pages,
    workload,
    workloads_in_class,
)
from repro.workloads.synthetic import SyntheticWorkload


def test_fifteen_benchmarks():
    assert len(PRESETS) == 15


def test_all_paper_names_present():
    names = {"cact", "sssp", "bwav", "les", "libq", "gems", "bfs",
             "cc", "lbm", "mcf", "bc", "ast", "pr", "sop", "tc"}
    assert set(PRESETS) == names


def test_classes_partition_benchmarks():
    total = sum(len(workloads_in_class(k)) for k in WORKLOAD_CLASSES)
    assert total == 15


def test_class_sizes_match_table1():
    assert len(workloads_in_class("excess")) == 3
    assert len(workloads_in_class("tight")) == 4
    assert len(workloads_in_class("loose")) == 4
    assert len(workloads_in_class("few")) == 4


def test_unknown_class_rejected():
    with pytest.raises(ValueError):
        workloads_in_class("medium")


def test_workload_instantiation():
    spec = workload("cact", dc_pages=16384, num_cores=4, num_mem_ops=100)
    assert spec.name == "cact"
    assert spec.footprint_pages == int(3.0 * 4096)
    assert spec.num_mem_ops == 100
    # Instantiable as a trace.
    assert len(list(SyntheticWorkload(spec))) == 100


def test_unknown_workload_rejected():
    with pytest.raises(KeyError):
        workload("nope")


def test_footprint_scales_with_dc():
    big = workload("cact", dc_pages=16384, num_cores=4)
    small = workload("cact", dc_pages=8192, num_cores=4)
    assert big.footprint_pages == 2 * small.footprint_pages


def test_excess_class_exceeds_share():
    for name in workloads_in_class("excess"):
        if PRESETS[name].page_select == "stream":
            spec = workload(name, dc_pages=16384, num_cores=4)
            assert spec.footprint_pages > 4096


def test_warm_pages_stream_is_empty():
    spec = workload("cact")
    assert warm_pages(spec, 4096) == []


def test_warm_pages_zipf_bounded():
    spec = workload("pr")
    pages = warm_pages(spec, 4096)
    assert 0 < len(pages) <= 4096
    assert all(0 <= p < spec.footprint_pages for p in pages)


def test_warm_pages_cover_hot_ranks():
    spec = workload("tc")
    pages = warm_pages(spec, 4096)
    # rank 0 (the hottest page) must be warm.
    from repro.workloads.synthetic import _SCATTER_PRIME
    assert int(0 * _SCATTER_PRIME) % spec.footprint_pages in pages


def test_bursty_flags():
    assert PRESETS["libq"].bursty and PRESETS["gems"].bursty
    assert not PRESETS["cact"].bursty
