"""Event cancellation and rescheduling interplay with the run loop."""

from repro.engine.simulator import Simulator


def test_cancel_pending_event_mid_run():
    sim = Simulator()
    fired = []
    later = sim.schedule(100, lambda: fired.append("later"))
    sim.schedule(10, lambda: later.cancel())
    sim.run()
    assert fired == []
    assert sim.now == 10


def test_reschedule_pattern():
    """Cancel-and-reschedule, the classic timer pattern."""
    sim = Simulator()
    fired = []
    handle = {"ev": sim.schedule(50, lambda: fired.append(50))}

    def postpone():
        handle["ev"].cancel()
        handle["ev"] = sim.schedule(100, lambda: fired.append(sim.now))

    sim.schedule(10, postpone)
    sim.run()
    assert fired == [110]


def test_zero_delay_cascade_terminates():
    sim = Simulator()
    count = {"n": 0}

    def chain():
        count["n"] += 1
        if count["n"] < 100:
            sim.schedule(0, chain)

    sim.schedule(0, chain)
    processed = sim.run(max_events=1000)
    assert count["n"] == 100
    assert processed == 100
    assert sim.now == 0


def test_interleaved_components_deterministic():
    def run_once():
        sim = Simulator()
        log = []
        for comp in range(3):
            for t in (5, 5, 10):
                sim.schedule(t, lambda c=comp, t=t: log.append((t, c)))
        sim.run()
        return log

    assert run_once() == run_once()
