"""Simulator clock and run loop."""

import pytest

from repro.engine.simulator import Component, Simulator


def test_schedule_advances_clock(sim):
    times = []
    sim.schedule(10, lambda: times.append(sim.now))
    sim.schedule(20, lambda: times.append(sim.now))
    sim.run()
    assert times == [10, 20]


def test_schedule_at_absolute(sim):
    hits = []
    sim.schedule_at(42, lambda: hits.append(sim.now))
    sim.run()
    assert hits == [42]


def test_schedule_in_past_rejected(sim):
    sim.schedule(5, lambda: None)
    sim.run()
    with pytest.raises(ValueError):
        sim.schedule_at(1, lambda: None)


def test_negative_delay_rejected(sim):
    with pytest.raises(ValueError):
        sim.schedule(-1, lambda: None)


def test_run_until_bound(sim):
    fired = []
    sim.schedule(5, lambda: fired.append(5))
    sim.schedule(15, lambda: fired.append(15))
    sim.run(until=10)
    assert fired == [5]
    assert sim.now == 10
    sim.run()
    assert fired == [5, 15]


def test_run_max_events(sim):
    for i in range(10):
        sim.schedule(i, lambda: None)
    processed = sim.run(max_events=4)
    assert processed == 4
    assert sim.pending_events == 6


def test_events_can_schedule_events(sim):
    order = []

    def first():
        order.append("first")
        sim.schedule(5, lambda: order.append("second"))

    sim.schedule(1, first)
    sim.run()
    assert order == ["first", "second"]
    assert sim.now == 6


def test_stop_exits_loop(sim):
    fired = []

    def stopper():
        fired.append("a")
        sim.stop()

    sim.schedule(1, stopper)
    sim.schedule(2, lambda: fired.append("b"))
    sim.run()
    assert fired == ["a"]


def test_component_registration(sim):
    c = Component(sim, "thing")
    assert c in sim.components
    assert c.now == sim.now
    assert repr(c) == "Component('thing')"


def test_component_schedule(sim):
    c = Component(sim, "c")
    fired = []
    c.schedule(3, lambda: fired.append(c.now))
    sim.run()
    assert fired == [3]
