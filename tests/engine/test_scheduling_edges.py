"""Scheduling edge cases the fast loops must keep rejecting/handling."""

import pytest


def test_negative_delay_rejected(sim):
    with pytest.raises(ValueError, match="negative delay"):
        sim.schedule(-1, lambda: None)


def test_schedule_at_past_rejected(sim):
    sim.schedule(10, lambda: None)
    sim.run()
    assert sim.now == 10
    with pytest.raises(ValueError, match="past"):
        sim.schedule_at(5, lambda: None)


def test_schedule_at_now_is_allowed(sim):
    fired = []
    sim.schedule(10, lambda: sim.schedule_at(10, lambda: fired.append(sim.now)))
    sim.run()
    assert fired == [10]


def test_cancel_then_fire_is_a_noop(sim):
    fired = []
    ev = sim.schedule(5, lambda: fired.append("cancelled"))
    sim.schedule(5, lambda: fired.append("kept"))
    ev.cancel()
    processed = sim.run()
    assert fired == ["kept"]
    assert processed == 1, "a cancelled event must not count as processed"


def test_cancel_is_idempotent(sim):
    ev = sim.schedule(5, lambda: None)
    ev.cancel()
    ev.cancel()  # second cancel must not corrupt the live counter
    assert sim.pending_events == 0
    assert sim.run() == 0


def test_events_processed_accumulates_across_runs(sim):
    for delay in (1, 2, 3):
        sim.schedule(delay, lambda: None)
    assert sim.run(max_events=2) == 2
    assert sim.events_processed == 2
    assert sim.run() == 1
    assert sim.events_processed == 3
    # A later run starts from the accumulated count, never resets it.
    sim.schedule(1, lambda: None)
    sim.run()
    assert sim.events_processed == 4


def test_events_processed_identical_in_guarded_loop(sim):
    """The guarded loop must count exactly like the fast loops."""

    class _NullGuard:
        def before_event(self, time, seq, callback):
            pass

        def after_event(self):
            pass

    for delay in (1, 2, 3):
        sim.schedule(delay, lambda: None)
    sim.attach_guard(_NullGuard())
    assert sim.run(max_events=2) == 2
    assert sim.events_processed == 2
    assert sim.run() == 1
    assert sim.events_processed == 3
