"""The event-driven FIFO mutex guarding frame management."""

import pytest

from repro.engine.sync import Mutex


def test_uncontended_acquire_is_synchronous(sim):
    m = Mutex(sim)
    granted = []
    m.acquire(lambda: granted.append(sim.now))
    assert granted == [0]
    assert m.locked


def test_release_unlocks(sim):
    m = Mutex(sim)
    m.acquire(lambda: None)
    m.release()
    assert not m.locked


def test_fifo_grant_order(sim):
    m = Mutex(sim)
    order = []

    def holder():
        order.append("holder")
        sim.schedule(10, m.release)

    m.acquire(holder)
    m.acquire(lambda: (order.append("w1"), m.release()))
    m.acquire(lambda: (order.append("w2"), m.release()))
    sim.run()
    assert order == ["holder", "w1", "w2"]


def test_waiters_granted_at_release_time(sim):
    m = Mutex(sim)
    grant_times = []
    m.acquire(lambda: None)
    m.acquire(lambda: grant_times.append(sim.now))
    sim.schedule(100, m.release)
    sim.run()
    assert grant_times == [100]


def test_release_unheld_raises(sim):
    m = Mutex(sim)
    with pytest.raises(RuntimeError):
        m.release()


def test_release_unheld_names_never_acquired(sim):
    m = Mutex(sim, name="frame_mutex")
    with pytest.raises(RuntimeError, match="frame_mutex.*never acquired"):
        m.release()


def test_release_unheld_names_last_holder(sim):
    m = Mutex(sim)
    m.acquire(lambda: None, owner="tag_miss_handler")
    sim.schedule(25, m.release)
    sim.run()
    with pytest.raises(RuntimeError) as excinfo:
        m.release()
    msg = str(excinfo.value)
    assert "tag_miss_handler" in msg
    assert "t=25" in msg  # when the last holder released


def test_holder_tracks_owner_labels(sim):
    m = Mutex(sim)
    assert m.holder is None
    m.acquire(lambda: None, owner="daemon")
    assert m.holder == "daemon"
    m.release()
    assert m.holder is None


def test_holder_defaults_to_callback_qualname(sim):
    m = Mutex(sim)

    def grab():
        pass

    m.acquire(grab)
    assert "grab" in m.holder


def test_double_acquire_queues_fifo_and_hands_off_holder(sim):
    m = Mutex(sim)
    m.acquire(lambda: None, owner="first")
    m.acquire(lambda: None, owner="second")  # same logical actor re-entering
    assert m.holder == "first"
    assert m.queue_depth == 1
    m.release()
    sim.run()  # the hand-off fires in a fresh event
    assert m.holder == "second"
    assert m.locked
    m.release()
    assert not m.locked


def test_contention_counters(sim):
    m = Mutex(sim)
    m.acquire(lambda: None)
    m.acquire(lambda: None)
    assert m.acquisitions == 2
    assert m.contended_acquisitions == 1
    assert m.queue_depth == 1
