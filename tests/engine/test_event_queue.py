"""Event queue ordering and cancellation."""

import pytest

from repro.engine.event_queue import EventQueue


def test_pop_in_time_order():
    q = EventQueue()
    seen = []
    q.push(5, lambda: seen.append(5))
    q.push(1, lambda: seen.append(1))
    q.push(3, lambda: seen.append(3))
    while (e := q.pop()) is not None:
        e.callback()
    assert seen == [1, 3, 5]


def test_same_time_fifo():
    q = EventQueue()
    seen = []
    for i in range(10):
        q.push(7, lambda i=i: seen.append(i))
    while (e := q.pop()) is not None:
        e.callback()
    assert seen == list(range(10))


def test_cancelled_events_skipped():
    q = EventQueue()
    e1 = q.push(1, lambda: None)
    e2 = q.push(2, lambda: None)
    e1.cancel()
    assert q.pop() is e2
    assert q.pop() is None


def test_peek_time_skips_cancelled():
    q = EventQueue()
    e1 = q.push(1, lambda: None)
    q.push(5, lambda: None)
    e1.cancel()
    assert q.peek_time() == 5


def test_len_counts_live_events():
    q = EventQueue()
    e = q.push(1, lambda: None)
    q.push(2, lambda: None)
    assert len(q) == 2
    e.cancel()
    assert len(q) == 1


def test_negative_time_rejected():
    q = EventQueue()
    with pytest.raises(ValueError):
        q.push(-1, lambda: None)


def test_empty_property():
    q = EventQueue()
    assert q.empty
    q.push(0, lambda: None)
    assert not q.empty
