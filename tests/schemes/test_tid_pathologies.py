"""TiD pathologies the paper calls out (Section IV-B4)."""

import pytest

from repro.config.schemes import TiDConfig
from repro.engine.simulator import Simulator
from repro.schemes.tid import TiDScheme
from repro.system.builder import build_machine
from repro.workloads.presets import workload


def test_conflict_misses_despite_spare_capacity(tiny_cfg):
    """tc's pathology: set conflicts fill the DC with traffic even when
    the total working set would fit a fully-associative cache."""
    sim = Simulator()
    s = TiDScheme(sim, tiny_cfg)
    sets = s.tags.num_sets
    ways = s.tid_cfg.ways
    # ways+1 lines aliasing one set, accessed round-robin: every access
    # conflicts forever.
    for round_ in range(3):
        for i in range(ways + 1):
            a = type("A", (), {})
            from repro.common.types import AccessType, MemAccess
            acc = MemAccess(addr=(i * sets) * 1024, access_type=AccessType.LOAD,
                            core_id=0, issue_time=sim.now)
            acc.paddr = acc.addr
            s.dc_access(acc, lambda t: None)
            sim.run()
    assert s.stats.get("line_fills").value > ways + 1  # refetched lines
    assert s.dc_hit_rate() < 0.5


def test_metadata_share_grows_with_hit_traffic(tiny_cfg):
    """High-MPMS workloads burn HBM bandwidth on tags (pr's pathology)."""
    r = build_machine(
        "tid", cfg=tiny_cfg,
        spec=workload("pr", dc_pages=tiny_cfg.dc_pages,
                      num_cores=tiny_cfg.num_cores, num_mem_ops=1200),
    ).run()
    meta = r.hbm_bytes_by_class.get("METADATA", 0)
    demand = r.hbm_bytes_by_class.get("DEMAND", 1)
    assert meta > 0.5 * demand  # at least one tag burst per data burst


def test_sub_blocks_per_line_consistency():
    cfg = TiDConfig(line_size=512)
    assert cfg.sub_blocks_per_line == 8
