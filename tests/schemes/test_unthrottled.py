"""Unthrottled characterization scheme (Table I measurements)."""

from repro.engine.simulator import Simulator
from repro.schemes.ideal import UnthrottledScheme


def test_fill_is_free_and_instant(tiny_cfg):
    sim = Simulator()
    s = UnthrottledScheme(sim, tiny_cfg)
    resumed = []
    s.translate_miss(0, 5, 0, lambda t, p: resumed.append(t), addr=5 * 4096)
    sim.run()
    assert resumed[0] == tiny_cfg.tlb.walk_latency
    assert s.ddr.total_bytes() == 0
    assert s.hbm.total_bytes() == 0
    assert s.page_fills() == 1


def test_fills_counted_for_rmhb(tiny_cfg):
    sim = Simulator()
    s = UnthrottledScheme(sim, tiny_cfg)
    for vpn in range(5):
        s.translate_miss(0, vpn, sim.now, lambda t, p: None, addr=vpn * 4096)
        sim.run()
    assert s.fill_bytes() == 5 * 4096


def test_zero_tag_latency(tiny_cfg):
    sim = Simulator()
    s = UnthrottledScheme(sim, tiny_cfg)
    s.translate_miss(0, 0, 0, lambda t, p: None, addr=0)
    sim.run()
    assert s.tag_mgmt_latency_mean() == 0
