"""DC access-time tail latency across schemes."""

from repro.system.builder import build_machine
from repro.workloads.presets import workload


def test_percentiles_exposed(tiny_cfg):
    spec = workload("bfs", dc_pages=tiny_cfg.dc_pages,
                    num_cores=tiny_cfg.num_cores, num_mem_ops=1200)
    r = build_machine("nomad", cfg=tiny_cfg, spec=spec).run()
    assert r.dc_access_p95 >= r.dc_access_time * 0.3
    assert r.dc_access_p95 > 0


def test_scheme_percentile_api(tiny_cfg):
    spec = workload("bfs", dc_pages=tiny_cfg.dc_pages,
                    num_cores=tiny_cfg.num_cores, num_mem_ops=800)
    m = build_machine("ideal", cfg=tiny_cfg, spec=spec)
    m.run()
    p50 = m.scheme.dc_access_time_percentile(50)
    p99 = m.scheme.dc_access_time_percentile(99)
    assert p50 <= p99
