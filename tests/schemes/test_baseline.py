"""Baseline scheme: DDR-only."""

from repro.common.types import AccessType, MemAccess, TrafficClass
from repro.engine.simulator import Simulator
from repro.schemes.baseline import BaselineScheme


def test_all_traffic_goes_to_ddr(tiny_cfg):
    sim = Simulator()
    s = BaselineScheme(sim, tiny_cfg)
    pte = s.page_tables[0].get_or_create(0)
    a = MemAccess(addr=0, access_type=AccessType.LOAD, core_id=0, issue_time=0)
    a.paddr = s.translate_addr(pte, 0)
    done = []
    s.dc_access(a, done.append)
    sim.run()
    assert done
    assert s.ddr.total_bytes() == 64
    assert s.hbm.total_bytes() == 0


def test_no_fills(tiny_cfg):
    sim = Simulator()
    s = BaselineScheme(sim, tiny_cfg)
    assert s.page_fills() == 0
    assert s.fill_bytes() == 0


def test_dc_access_time_recorded(tiny_cfg):
    sim = Simulator()
    s = BaselineScheme(sim, tiny_cfg)
    pte = s.page_tables[0].get_or_create(0)
    a = MemAccess(addr=0, access_type=AccessType.LOAD, core_id=0, issue_time=0)
    a.paddr = s.translate_addr(pte, 0)
    s.dc_access(a, lambda t: None)
    sim.run()
    assert s.dc_access_time_mean() > 0


def test_translate_never_needs_os(tiny_cfg):
    sim = Simulator()
    s = BaselineScheme(sim, tiny_cfg)
    pte, walk, needs_os = s.peek_translate(0, 7)
    assert not needs_os
    assert walk == tiny_cfg.tlb.walk_latency
    assert s.tlb_lookup(0, 7) is not None  # installed by peek
