"""TiD: HW-based tags-in-DRAM cache."""

import pytest

from repro.common.types import AccessType, MemAccess, TrafficClass
from repro.config.schemes import TiDConfig
from repro.engine.simulator import Simulator
from repro.schemes.tid import TiDScheme, TiDTagArray


def make(tiny_cfg, tid_cfg=None):
    sim = Simulator()
    return sim, TiDScheme(sim, tiny_cfg, tid_cfg or TiDConfig())


def load(addr, w=False):
    a = MemAccess(addr=addr,
                  access_type=AccessType.STORE if w else AccessType.LOAD,
                  core_id=0, issue_time=0)
    a.paddr = addr
    return a


# -- tag array ---------------------------------------------------------

def test_tag_array_allocate_and_lookup():
    t = TiDTagArray(num_sets=4, ways=2)
    way, victim = t.allocate(0)
    assert victim is None
    assert t.lookup(0) == [way, False]


def test_tag_array_lru_victim():
    t = TiDTagArray(num_sets=1, ways=2)
    t.allocate(0)
    t.allocate(1)
    t.lookup(0)  # refresh
    way, victim = t.allocate(2)
    assert victim[0] == 1  # line 1 evicted
    assert way == victim[1]


def test_tag_array_dirty_tracking():
    t = TiDTagArray(num_sets=1, ways=2)
    t.allocate(0)
    t.allocate(1)
    t.mark_dirty(0)
    _, victim = t.allocate(2)  # evicts line 0 (LRU)
    assert victim is not None
    victim_line, _, victim_dirty = victim
    assert victim_line == 0
    assert victim_dirty


def test_tag_array_duplicate_raises():
    t = TiDTagArray(4, 2)
    t.allocate(0)
    with pytest.raises(KeyError):
        t.allocate(0)


# -- scheme ------------------------------------------------------------

def test_miss_fetches_line_from_ddr(tiny_cfg):
    sim, s = make(tiny_cfg)
    done = []
    s.dc_access(load(0x4000), done.append)
    sim.run()
    assert done
    assert s.ddr.bytes_by_class()[TrafficClass.FILL] == 1024  # one 1 KB line
    assert s.hbm.bytes_by_class()[TrafficClass.FILL] == 1024


def test_every_access_pays_metadata_bandwidth(tiny_cfg):
    sim, s = make(tiny_cfg)
    s.dc_access(load(0x4000), lambda t: None)
    sim.run()
    s.dc_access(load(0x4000), lambda t: None)  # now a hit
    sim.run()
    meta = s.hbm.bytes_by_class()[TrafficClass.METADATA]
    assert meta >= 3 * 64  # 2 tag reads + >=1 tag update


def test_hit_after_fill(tiny_cfg):
    sim, s = make(tiny_cfg)
    s.dc_access(load(0x4000), lambda t: None)
    sim.run()
    s.dc_access(load(0x4000), lambda t: None)
    sim.run()
    assert s.stats.get("dc_hits").value == 1
    assert s.dc_hit_rate() == pytest.approx(0.5)


def test_mshr_merge_same_line(tiny_cfg):
    sim, s = make(tiny_cfg)
    done = []
    s.dc_access(load(0x4000), done.append)
    s.dc_access(load(0x4040), done.append)  # same 1 KB line
    sim.run()
    assert len(done) == 2
    assert s.stats.get("line_fills").value == 1


def test_critical_word_first(tiny_cfg):
    """The demanded sub-block responds before the full line lands."""
    sim, s = make(tiny_cfg)
    done = []
    s.dc_access(load(0x4000 + 0x3C0), done.append)  # last 64B of the line
    sim.run()
    fills_end = sim.now
    assert done[0] <= fills_end


def test_dirty_victim_writes_back(tiny_cfg):
    sim, s = make(tiny_cfg)
    sets = s.tags.num_sets
    ways = s.tid_cfg.ways
    # Fill one set completely with writes, then overflow it.
    for i in range(ways + 1):
        s.dc_access(load((i * sets) * 1024, w=True), lambda t: None)
        sim.run()
    assert s.stats.get("line_writebacks").value >= 1
    assert s.ddr.bytes_by_class().get(TrafficClass.WRITEBACK, 0) >= 1024


def test_llc_writeback_to_present_line(tiny_cfg):
    sim, s = make(tiny_cfg)
    s.dc_access(load(0x4000), lambda t: None)
    sim.run()
    s.dc_writeback(0x4000)
    rec = s.tags.lookup(s._line_id(0x4000), touch=False)
    assert rec[1]  # dirty


def test_llc_writeback_to_absent_line_goes_ddr(tiny_cfg):
    sim, s = make(tiny_cfg)
    before = s.ddr.total_bytes()
    s.dc_writeback(0x9000)
    assert s.ddr.total_bytes() == before + 64


def test_warm_page_preinstalls_lines(tiny_cfg):
    sim, s = make(tiny_cfg)
    s.warm_page(0, 2)
    pte = s.page_tables[0].lookup(2)
    base_line = (pte.page_frame_num * 4096) >> 10
    for i in range(4):
        assert s.tags.lookup(base_line + i, touch=False) is not None


def test_fill_bytes_uses_line_size(tiny_cfg):
    sim, s = make(tiny_cfg)
    s.dc_access(load(0x4000), lambda t: None)
    sim.run()
    assert s.fill_bytes() == 1024
