"""TDC: blocking OS-managed cache."""

from repro.common.types import AccessType, MemAccess, TrafficClass
from repro.engine.simulator import Simulator
from repro.schemes.tdc import TDCScheme


def make(tiny_cfg):
    sim = Simulator()
    return sim, TDCScheme(sim, tiny_cfg)


def test_tag_miss_blocks_until_copy_done(tiny_cfg):
    sim, s = make(tiny_cfg)
    resumed = []
    s.translate_miss(0, 5, 0, lambda t, p: resumed.append(t), addr=5 * 4096)
    sim.run()
    # walk + 400 tag mgmt + full page copy: thousands of cycles.
    assert resumed[0] > 1000


def test_fill_traffic_both_devices(tiny_cfg):
    sim, s = make(tiny_cfg)
    s.translate_miss(0, 5, 0, lambda t, p: None, addr=5 * 4096)
    sim.run()
    assert s.ddr.bytes_by_class()[TrafficClass.FILL] == 4096
    assert s.hbm.bytes_by_class()[TrafficClass.FILL] == 4096


def test_tag_hit_guarantees_data_hit(tiny_cfg):
    sim, s = make(tiny_cfg)
    results = []
    s.translate_miss(0, 5, 0, lambda t, p: results.append(p), addr=5 * 4096)
    sim.run()
    pte = results[-1]
    assert pte.cached
    a = MemAccess(addr=5 * 4096, access_type=AccessType.LOAD, core_id=0,
                  issue_time=sim.now)
    a.paddr = s.translate_addr(pte, a.addr)
    done = []
    s.dc_access(a, done.append)
    sim.run()
    assert done
    # Served straight from HBM: short latency, no PCSHR machinery.
    assert s.dc_access_time_mean() < 200


def test_flat_tag_latency(tiny_cfg):
    sim, s = make(tiny_cfg)
    for vpn in range(3):
        s.translate_miss(0, vpn, sim.now, lambda t, p: None, addr=vpn * 4096)
        sim.run()
    # No mutex: tag management is the flat 400 cycles.
    assert s.tag_mgmt_latency_mean() == 400


def test_dc_writeback_marks_dirty(tiny_cfg):
    sim, s = make(tiny_cfg)
    results = []
    s.translate_miss(0, 5, 0, lambda t, p: results.append(p), addr=5 * 4096)
    sim.run()
    pte = results[-1]
    ca = s.translate_addr(pte, 5 * 4096)
    s.dc_writeback(ca)
    assert s.frontend.cpds[pte.page_frame_num].dirty_in_cache


def test_warm_page(tiny_cfg):
    sim, s = make(tiny_cfg)
    s.warm_page(0, 9)
    pte = s.page_tables[0].lookup(9)
    assert pte.cached
    assert s.page_fills() == 0  # warm fills are unmetered
