"""Metrics registry: families, exposition rendering, and its inverse."""

import pytest

from repro.obs.metrics import (
    CONTENT_TYPE,
    MetricsRegistry,
    counter_samples,
    parse_exposition,
)


def test_counter_labels_and_render_round_trip():
    reg = MetricsRegistry()
    c = reg.counter("req_total", "requests", labels=("endpoint", "code"))
    c.inc(endpoint="/claim", code="200")
    c.inc(endpoint="/claim", code="200")
    c.inc(endpoint="/status", code="404")

    text = reg.render()
    assert "# TYPE req_total counter" in text
    samples, types = parse_exposition(text)
    assert types["req_total"] == "counter"
    key = ("req_total", frozenset({("endpoint", "/claim"), ("code", "200")}))
    assert samples[key] == 2
    assert samples[("req_total",
                    frozenset({("endpoint", "/status"),
                               ("code", "404")}))] == 1


def test_counters_only_go_up():
    c = MetricsRegistry().counter("n_total")
    with pytest.raises(ValueError):
        c.inc(-1)


def test_unlabelled_families_render_a_zero_sample():
    reg = MetricsRegistry()
    reg.counter("never_touched_total", "zero")
    samples, _ = parse_exposition(reg.render())
    assert samples[("never_touched_total", frozenset())] == 0


def test_gauge_set_inc_dec():
    reg = MetricsRegistry()
    g = reg.gauge("depth", labels=("state",))
    g.set(5, state="queued")
    g.inc(state="queued")
    g.dec(2, state="queued")
    assert g.value(state="queued") == 4
    samples, types = parse_exposition(reg.render())
    assert types["depth"] == "gauge"
    assert samples[("depth", frozenset({("state", "queued")}))] == 4


def test_histogram_buckets_sum_count():
    reg = MetricsRegistry()
    h = reg.histogram("lat_seconds", buckets=(0.01, 0.1, 1.0))
    for v in (0.005, 0.05, 0.5, 5.0):
        h.observe(v)
    samples, types = parse_exposition(reg.render())
    assert types["lat_seconds"] == "histogram"
    bucket = lambda le: samples[("lat_seconds_bucket",
                                 frozenset({("le", le)}))]
    assert bucket("0.01") == 1
    assert bucket("0.1") == 2
    assert bucket("1") == 3
    assert bucket("+Inf") == 4
    assert samples[("lat_seconds_count", frozenset())] == 4
    assert samples[("lat_seconds_sum", frozenset())] == pytest.approx(5.555)


def test_func_families_evaluate_at_render_time():
    reg = MetricsRegistry()
    depth = {"queued": 3}
    reg.gauge_func("queue_depth",
                   lambda: [((state,), n) for state, n in depth.items()],
                   labels=("state",))
    reg.counter_func("done_total", lambda: 7)
    samples, types = parse_exposition(reg.render())
    assert samples[("queue_depth", frozenset({("state", "queued")}))] == 3
    assert samples[("done_total", frozenset())] == 7
    assert types["done_total"] == "counter"
    depth["queued"] = 9
    samples, _ = parse_exposition(reg.render())
    assert samples[("queue_depth", frozenset({("state", "queued")}))] == 9


def test_broken_callback_does_not_break_the_scrape():
    reg = MetricsRegistry()
    reg.gauge_func("bad", lambda: 1 / 0)
    reg.counter("ok_total").inc()
    samples, _ = parse_exposition(reg.render())
    assert samples[("ok_total", frozenset())] == 1
    assert not any(name == "bad" for name, _ in samples)


def test_duplicate_and_invalid_names_rejected():
    reg = MetricsRegistry()
    reg.counter("a_total")
    with pytest.raises(ValueError):
        reg.counter("a_total")
    with pytest.raises(ValueError):
        reg.counter("0bad")
    with pytest.raises(ValueError):
        reg.counter("b_total", labels=("bad-label",))


def test_label_values_are_escaped_and_unescaped():
    reg = MetricsRegistry()
    c = reg.counter("esc_total", labels=("msg",))
    c.inc(msg='say "hi"\nplease\\now')
    samples, _ = parse_exposition(reg.render())
    [(name, labels)] = [k for k in samples if k[0] == "esc_total"]
    assert dict(labels)["msg"] == 'say "hi"\nplease\\now'


def test_counter_samples_includes_histogram_series():
    reg = MetricsRegistry()
    reg.counter("c_total").inc()
    reg.gauge("g").set(2)
    reg.histogram("h_seconds", buckets=(1.0,)).observe(0.5)
    samples, types = parse_exposition(reg.render())
    cumulative = counter_samples(samples, types)
    names = {name for name, _ in cumulative}
    assert "c_total" in names and "h_seconds_count" in names
    assert "g" not in names


def test_content_type_pins_prometheus_text_version():
    assert "version=0.0.4" in CONTENT_TYPE
