"""`repro obs` subcommands: tail filtering, merge reporting, CLI wiring."""

import io
import json

import pytest

from repro import obs
from repro.cli import main
from repro.obs.cli import cmd_merge, cmd_tail, format_record, iter_log_records


def _write_logs(tmp_path):
    obs.configure(obs.ObsConfig(component="broker", obs_dir=str(tmp_path),
                                level="debug"))
    log = obs.get_logger("broker")
    log.debug("claim.poll", runner="r1")
    log.info("batch.ingested", campaign="c1", runs=4)
    obs.configure(obs.ObsConfig(component="runner", obs_dir=str(tmp_path),
                                level="debug"))
    obs.get_logger("runner").warning("lease.lost", batch_id="b2")
    obs.configure(None)


def test_iter_log_records_merges_files_by_timestamp(tmp_path):
    _write_logs(tmp_path)
    records = list(iter_log_records(tmp_path))
    assert [r["event"] for r in records] == [
        "claim.poll", "batch.ingested", "lease.lost",
    ]
    assert records == sorted(records, key=lambda r: r["ts"])


def test_tail_filters_level_and_component(tmp_path):
    _write_logs(tmp_path)
    out = io.StringIO()
    assert cmd_tail(str(tmp_path), level="info", out=out) == 0
    lines = out.getvalue().splitlines()
    assert len(lines) == 2
    assert "batch.ingested" in lines[0] and "lease.lost" in lines[1]
    assert "claim.poll" not in out.getvalue()

    out = io.StringIO()
    cmd_tail(str(tmp_path), component="runner", out=out)
    assert out.getvalue().count("\n") == 1
    assert "lease.lost" in out.getvalue()


def test_tail_json_mode_round_trips(tmp_path):
    _write_logs(tmp_path)
    out = io.StringIO()
    cmd_tail(str(tmp_path), as_json=True, out=out)
    records = [json.loads(line) for line in out.getvalue().splitlines()]
    assert records[1]["campaign"] == "c1" and records[1]["runs"] == 4


def test_format_record_is_single_line_and_shows_fields():
    line = format_record({"ts": 1723100000.0, "level": "warning",
                          "component": "broker", "pid": 7,
                          "event": "lease.expired", "batch_id": "b1"})
    assert "\n" not in line
    assert "WARN" in line and "broker[7]" in line
    assert "lease.expired" in line and "batch_id=b1" in line


def test_tail_missing_path_raises_oserror(tmp_path):
    with pytest.raises(FileNotFoundError):
        cmd_tail(str(tmp_path / "nope"))


def test_cmd_merge_reports_and_flags_schema_problems(tmp_path):
    obs.configure(obs.ObsConfig(component="svc", obs_dir=str(tmp_path)))
    tracer = obs.service_tracer("broker")
    with tracer.span("claim", obs.new_trace_id()):
        pass
    obs.configure(None)
    out = io.StringIO()
    assert cmd_merge(str(tmp_path), out_path=str(tmp_path / "m.json"),
                     out=out) == 0
    assert "1 spans, 1 trace id(s)" in out.getvalue()

    # Corrupt a span file so the merged doc violates the schema.
    [path] = (tmp_path / "traces").glob("broker-*.jsonl")
    events = [json.loads(l) for l in path.read_text().splitlines()]
    for event in events:
        if event.get("ph") == "b":
            event["args"].pop("trace_id")
    path.write_text("".join(json.dumps(e) + "\n" for e in events))
    out = io.StringIO()
    assert cmd_merge(str(tmp_path), out=out) == 1
    assert "SCHEMA:" in out.getvalue()


def test_cli_obs_tail_and_merge_wiring(tmp_path, capsys):
    _write_logs(tmp_path)
    assert main(["obs", "tail", str(tmp_path), "--level", "warning"]) == 0
    out = capsys.readouterr().out
    assert "lease.lost" in out and "batch.ingested" not in out

    # merge on a dir with no traces/ subdir -> empty but valid doc.
    assert main(["obs", "merge", str(tmp_path),
                 "--out", str(tmp_path / "merged.json")]) == 0
    assert json.loads((tmp_path / "merged.json").read_text())["otherData"][
        "kind"] == "service"


def test_cli_obs_tail_missing_path_exits_2(tmp_path, capsys):
    assert main(["obs", "tail", str(tmp_path / "missing")]) == 2
    assert "error:" in capsys.readouterr().err


def test_cli_obs_tail_into_closed_pipe_exits_quietly(tmp_path):
    # `repro obs tail ... | head` closes our stdout mid-stream; a
    # well-behaved filter exits 0 with nothing on stderr.
    import os
    import subprocess
    import sys

    _write_logs(tmp_path)
    log = obs.get_logger("runner")
    for i in range(4000):  # well past the 64 KiB pipe buffer
        log.info("batch.progress", step=i, padding="x" * 64)
    env = dict(os.environ, PYTHONPATH="src")
    proc = subprocess.run(
        f"{sys.executable} -m repro obs tail {tmp_path} | head -1",
        shell=True, cwd=os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__)))),
        env=env, capture_output=True, text=True, timeout=60,
    )
    assert proc.returncode == 0
    assert "error" not in proc.stderr.lower()
    assert proc.stdout.count("\n") == 1
