"""Structured logging: config lifecycle, context binding, flight recorder."""

import json

from repro import obs
from repro.obs.log import _STATE


def _records(path):
    return [json.loads(line) for line in path.read_text().splitlines()]


def test_disabled_by_default_is_a_noop():
    obs.configure(None)
    log = obs.get_logger("test")
    log.info("event.should.vanish", answer=42)
    assert not obs.enabled()


def test_file_sink_writes_one_json_object_per_line(tmp_path):
    obs.configure(obs.ObsConfig(component="unit", obs_dir=str(tmp_path)))
    log = obs.get_logger("unit")
    log.info("thing.happened", count=3, name="x")
    log.warning("thing.warned")

    files = list((tmp_path / "logs").glob("unit-*.jsonl"))
    assert len(files) == 1
    records = _records(files[0])
    assert [r["event"] for r in records] == ["thing.happened", "thing.warned"]
    first = records[0]
    assert first["level"] == "info" and first["component"] == "unit"
    assert first["count"] == 3 and first["name"] == "x"
    assert isinstance(first["ts"], float) and isinstance(first["pid"], int)


def test_level_threshold_drops_below(tmp_path):
    obs.configure(obs.ObsConfig(component="unit", obs_dir=str(tmp_path),
                                level="warning"))
    log = obs.get_logger("unit")
    log.debug("nope")
    log.info("nope.either")
    log.error("kept")
    [path] = (tmp_path / "logs").glob("*.jsonl")
    assert [r["event"] for r in _records(path)] == ["kept"]


def test_bind_stacks_and_restores(tmp_path):
    obs.configure(obs.ObsConfig(component="unit", obs_dir=str(tmp_path)))
    log = obs.get_logger("unit")
    with obs.bind(campaign="c1"):
        with obs.bind(batch_id="b1"):
            log.info("inner")
        log.info("outer")
    log.info("unbound")
    [path] = (tmp_path / "logs").glob("*.jsonl")
    inner, outer, unbound = _records(path)
    assert inner["campaign"] == "c1" and inner["batch_id"] == "b1"
    assert outer["campaign"] == "c1" and "batch_id" not in outer
    assert "campaign" not in unbound


def test_correlation_ids_are_short_and_unique():
    ids = {obs.new_correlation_id() for _ in range(64)}
    assert len(ids) == 64
    assert all(len(i) == 12 for i in ids)


def test_flight_recorder_ring_survives_disabled_sink_and_dumps(tmp_path):
    obs.configure(obs.ObsConfig(component="unit", obs_dir=str(tmp_path),
                                ring_size=4))
    log = obs.get_logger("unit")
    for i in range(10):
        log.info("tick", i=i)
    bundle = obs.dump_flight_recorder(reason="test")
    assert bundle is not None
    with open(f"{bundle}/flight.json") as fh:
        payload = json.load(fh)
    assert payload["reason"] == "test"
    # Ring is bounded: only the newest ring_size events survive.
    assert [e["i"] for e in payload["events"]] == [6, 7, 8, 9]


def test_dump_flight_recorder_returns_none_when_disabled():
    obs.configure(None)
    assert obs.dump_flight_recorder() is None


def test_crash_dump_writes_bundle_and_reraises(tmp_path):
    obs.configure(obs.ObsConfig(component="unit", obs_dir=str(tmp_path)))
    obs.get_logger("unit").info("before.crash")
    try:
        with obs.crash_dump("unit"):
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    bundles = list(tmp_path.glob("obs-bundle-unit-*/flight.json"))
    assert len(bundles) == 1
    assert json.loads(bundles[0].read_text())["reason"] == "crash"


def test_autoconfigure_env_dir_enables_file_sinks(tmp_path, monkeypatch):
    monkeypatch.delenv(obs.ENV_ENABLE, raising=False)
    monkeypatch.setenv(obs.ENV_DIR, str(tmp_path))
    monkeypatch.setenv(obs.ENV_LEVEL, "debug")
    assert obs.autoconfigure("svc") is True
    config = obs.current_config()
    assert config.obs_dir == str(tmp_path) and config.level == "debug"
    assert config.trace_dir == str(tmp_path / "traces")


def test_autoconfigure_zero_forces_off_even_with_dir(tmp_path, monkeypatch):
    monkeypatch.setenv(obs.ENV_ENABLE, "0")
    monkeypatch.setenv(obs.ENV_DIR, str(tmp_path))
    assert obs.autoconfigure("svc") is False
    assert not obs.enabled()


def test_autoconfigure_explicit_dir_wins_over_env(tmp_path, monkeypatch):
    monkeypatch.delenv(obs.ENV_ENABLE, raising=False)
    monkeypatch.setenv(obs.ENV_DIR, str(tmp_path / "env"))
    obs.autoconfigure("svc", obs_dir=str(tmp_path / "flag"))
    assert obs.current_config().obs_dir == str(tmp_path / "flag")


def test_autoconfigure_without_signals_leaves_current(monkeypatch):
    monkeypatch.delenv(obs.ENV_ENABLE, raising=False)
    monkeypatch.delenv(obs.ENV_DIR, raising=False)
    obs.configure(None)
    assert obs.autoconfigure("svc") is False
    assert obs.current_config() is None


def test_torn_sink_never_raises(tmp_path):
    obs.configure(obs.ObsConfig(component="unit", obs_dir=str(tmp_path)))
    _STATE.sink.close()  # simulate a dead fd at shutdown
    obs.get_logger("unit").info("survives")  # must not raise
