"""Service tracing: spans, header propagation, cross-process merge."""

import json

from repro import obs
from repro.obs.trace import Span, parse_trace_header, service_tracer
from repro.telemetry.trace_schema import validate_trace


def _span_file_events(tmp_path, component):
    [path] = (tmp_path / "traces").glob(f"{component}-*.jsonl")
    return [json.loads(line) for line in path.read_text().splitlines()]


def test_tracer_is_none_without_file_sinks(tmp_path):
    obs.configure(None)
    assert service_tracer("broker") is None
    # stderr-only logging (no obs_dir) must not enable tracing either.
    obs.configure(obs.ObsConfig(component="x"))
    assert service_tracer("broker") is None


def test_span_emits_balanced_pair_with_own_id(tmp_path):
    obs.configure(obs.ObsConfig(component="svc", obs_dir=str(tmp_path)))
    tracer = service_tracer("broker")
    trace_id = obs.new_trace_id()
    with tracer.span("claim", trace_id, parent="aabbccdd",
                     args={"batch_id": "b1"}) as span:
        assert obs.current_span() == (trace_id, span.span_id)
        assert obs.current_trace_header() == f"{trace_id}-{span.span_id}"
    assert obs.current_span() is None

    meta, begin, end = _span_file_events(tmp_path, "broker")
    assert meta["ph"] == "M" and meta["name"] == "process_name"
    assert begin["ph"] == "b" and end["ph"] == "e"
    assert begin["cat"] == end["cat"] == "service"
    assert begin["id"] == end["id"] == span.span_id
    assert begin["args"]["trace_id"] == trace_id
    assert begin["args"]["span_id"] == span.span_id
    assert begin["args"]["parent_span_id"] == "aabbccdd"
    assert begin["args"]["component"] == "broker"
    assert begin["args"]["batch_id"] == "b1"
    assert end["ts"] >= begin["ts"]


def test_span_exit_records_error_class(tmp_path):
    obs.configure(obs.ObsConfig(component="svc", obs_dir=str(tmp_path)))
    tracer = service_tracer("broker")
    try:
        with tracer.span("ingest", obs.new_trace_id()):
            raise KeyError("x")
    except KeyError:
        pass
    *_, end = _span_file_events(tmp_path, "broker")
    assert end["args"]["error"] == "KeyError"


def test_begin_end_do_not_touch_active_span(tmp_path):
    obs.configure(obs.ObsConfig(component="svc", obs_dir=str(tmp_path)))
    tracer = service_tracer("coordinator")
    span = tracer.span("campaign", obs.new_trace_id()).begin()
    assert obs.current_span() is None
    span.end(batches=3)
    *_, end = _span_file_events(tmp_path, "coordinator")
    assert end["args"]["batches"] == 3


def test_span_at_emits_retrospective_pair(tmp_path):
    obs.configure(obs.ObsConfig(component="svc", obs_dir=str(tmp_path)))
    tracer = service_tracer("broker")
    tracer.span_at("enqueue", obs.new_trace_id(), 1000, 2000)
    *_, begin, end = _span_file_events(tmp_path, "broker")
    assert (begin["ts"], end["ts"]) == (1000, 2000)


def test_components_sharing_a_process_get_distinct_pids(tmp_path):
    obs.configure(obs.ObsConfig(component="svc", obs_dir=str(tmp_path)))
    pids = {service_tracer(c).pid for c in ("coordinator", "broker", "runner")}
    assert len(pids) == 3


def test_header_round_trip_and_rejects():
    header = obs.format_trace_header("aa11", "bb22")
    assert parse_trace_header(header) == ("aa11", "bb22")
    assert parse_trace_header(None) is None
    assert parse_trace_header("") is None
    assert parse_trace_header("zz-yy") is None
    assert parse_trace_header("abc") is None
    assert parse_trace_header("a-b-c") is None


def test_merge_closes_truncated_spans_and_validates(tmp_path):
    obs.configure(obs.ObsConfig(component="svc", obs_dir=str(tmp_path)))
    trace_id = obs.new_trace_id()
    broker = service_tracer("broker")
    with broker.span("claim", trace_id):
        pass
    # A runner that died mid-batch: begin with no matching end.
    runner = service_tracer("runner")
    runner.span("batch-run", trace_id, args={"batch_id": "b9"}).begin()
    obs.configure(None)  # close tracer files

    out = tmp_path / "merged.json"
    doc = obs.merge_service_traces(tmp_path, out_path=out)
    assert validate_trace(doc) == []
    assert doc["otherData"]["schema_version"] == obs.SERVICE_SCHEMA_VERSION
    assert doc["otherData"]["spans_truncated"] == 1
    assert doc["otherData"]["trace_ids"] == [trace_id]
    assert len(doc["otherData"]["sources"]) == 2
    ends = [e for e in doc["traceEvents"]
            if e.get("ph") == "e" and e.get("args", {}).get("truncated")]
    assert len(ends) == 1 and ends[0]["name"] == "batch-run"
    assert json.loads(out.read_text()) == doc


def test_merge_skips_torn_tail_lines(tmp_path):
    traces = tmp_path / "traces"
    traces.mkdir()
    good = {"ph": "M", "name": "process_name", "pid": 1, "tid": 0,
            "args": {"name": "x"}}
    (traces / "broker-1.jsonl").write_text(
        json.dumps(good) + "\n" + '{"ph": "b", "cat": "serv'
    )
    doc = obs.merge_service_traces(tmp_path)
    assert doc["traceEvents"] == [good]


def test_reconfigure_resets_tracers(tmp_path):
    obs.configure(obs.ObsConfig(component="svc", obs_dir=str(tmp_path / "a")))
    first = service_tracer("broker")
    obs.configure(obs.ObsConfig(component="svc", obs_dir=str(tmp_path / "b")))
    second = service_tracer("broker")
    assert first is not second
    assert str(tmp_path / "b") in second.path


def test_span_header_matches_wire_format(tmp_path):
    obs.configure(obs.ObsConfig(component="svc", obs_dir=str(tmp_path)))
    tracer = service_tracer("runner")
    span = Span(tracer, "batch-run", "cafe" * 4, None, None)
    assert parse_trace_header(span.header()) == ("cafe" * 4, span.span_id)
