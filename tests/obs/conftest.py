"""Obs tests mutate process-global state; always restore it."""

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _obs_restored():
    previous = obs.current_config()
    yield
    obs.configure(previous)
