"""Chaos self-test: every injection must be caught by its checker.

This is the guard layer's proof of coverage -- a checker that silently
stops detecting its corruption class shows up here, not in a production
debugging session months later.
"""

import pytest

from repro.guard import Guard, GuardConfig
from repro.guard.chaos import INJECTIONS, apply_injection
from repro.guard.errors import DeadlockError, GuardError, InvariantViolation
from repro.harness.runner import run_workload


def _chaos_config(name):
    return GuardConfig(
        check_interval=200,
        chaos=name,
        chaos_at_event=500,
        deadlock_cycles=20_000,
        livelock_events=5_000,
        write_bundle=False,
    )


@pytest.mark.parametrize("name", sorted(INJECTIONS))
def test_injection_caught_by_matching_checker(name, small_cfg):
    guard = Guard(_chaos_config(name))
    with pytest.raises(GuardError) as excinfo:
        run_workload(small_cfg, guard=guard)
    exc = excinfo.value
    # The injection was actually applied, and the checker that raised is
    # exactly the one the injector declared it was corrupting for.
    assert guard.chaos_applied == name
    assert exc.checker == guard.chaos_expected_checker
    if name == "inject_deadlock":
        assert isinstance(exc, DeadlockError)
        assert exc.checker == "forward_progress"
    else:
        assert isinstance(exc, InvariantViolation)
        assert exc.problems  # typed detail, not a bare crash


def test_unknown_injection_rejected():
    with pytest.raises(ValueError, match="unknown chaos injection"):
        apply_injection("made_up", machine=None)


def test_unguarded_run_is_unaffected(small_cfg):
    """Chaos lives in GuardConfig: without a guard nothing is injected."""
    result = run_workload(small_cfg)
    assert result.instructions > 0
