"""Direct unit tests of the invariant checkers and guard plumbing."""

import pytest

from repro.guard import Guard, GuardConfig, as_guard
from repro.guard.checkers import (
    build_checkers,
    check_banks,
    check_event_queue,
    check_frames,
    check_rob,
)
from repro.harness.runner import RunConfig, _build


def _machine(scheme="nomad"):
    return _build(RunConfig(scheme=scheme, workload="cact",
                            num_mem_ops=400, num_cores=2, dc_megabytes=16))


# -- individual checkers ---------------------------------------------------

def test_healthy_machine_has_no_problems():
    machine = _machine()
    guard = Guard(GuardConfig())
    guard.install(machine)
    guard.check_now()  # must not raise on a freshly built machine
    assert guard.checks_run == 1
    assert guard.violations == 0


def test_event_queue_checker_catches_counter_drift(sim):
    sim.schedule(5, lambda: None)
    assert check_event_queue(sim) == []
    sim._queue._live += 1
    problems = check_event_queue(sim)
    assert problems and "live counter" in problems[0]


def test_rob_checker_catches_negative_stores():
    machine = _machine()
    core = machine.cores[0]
    assert check_rob(core) == []
    core.outstanding_stores = -1
    problems = check_rob(core)
    assert problems and "outstanding_stores" in problems[0]


def test_frame_checker_catches_counter_drift():
    machine = _machine()
    frontend = machine.scheme.frontend
    assert check_frames(frontend) == []
    frontend.free_queue.num_free -= 1
    problems = check_frames(frontend)
    assert problems and "free queue" in problems[0]


def test_bank_checker_catches_closed_row_with_timing():
    machine = _machine()
    device = machine.scheme.hbm
    assert check_banks(device) == []
    bank = device.channels[0].banks[0]
    bank.open_row = None
    bank.ready_at = 100
    problems = check_banks(device)
    assert problems and "closed" in problems[0]


# -- discovery -------------------------------------------------------------

def test_build_checkers_discovers_nomad_components():
    machine = _machine("nomad")
    names = {name for name, _, _ in build_checkers(machine, GuardConfig())}
    assert {"event_queue", "rob", "mshr", "dram_bank",
            "frames", "tlb_coherence", "pcshr"} <= names


def test_build_checkers_baseline_has_no_pcshr():
    machine = _machine("baseline")
    names = {name for name, _, _ in build_checkers(machine, GuardConfig())}
    assert "event_queue" in names and "rob" in names
    assert "pcshr" not in names


# -- config / coercion -----------------------------------------------------

def test_guard_config_round_trip():
    cfg = GuardConfig(check_interval=7, chaos="leak_mshr", chaos_scheme="nomad")
    assert GuardConfig.from_dict(cfg.to_dict()) == cfg


def test_guard_config_rejects_unknown_keys():
    with pytest.raises(ValueError, match="unknown keys"):
        GuardConfig.from_dict({"check_intervall": 5})


def test_as_guard_coercions():
    assert as_guard(None) is None
    assert as_guard(False) is None
    g = as_guard(True)
    assert isinstance(g, Guard)
    cfg = GuardConfig(check_interval=3)
    assert as_guard(cfg).config is cfg
    assert as_guard(g) is g
    with pytest.raises(TypeError):
        as_guard("yes")


# -- watchdog (unit level, fake machine) -----------------------------------

class _FakeCore:
    def __init__(self):
        self.inst_count = 10


class _FakeMachine:
    def __init__(self, sim):
        self.sim = sim
        self.cores = [_FakeCore()]


def test_progress_watchdog_trips_after_horizon(sim):
    from repro.guard.errors import DeadlockError

    guard = Guard(GuardConfig(deadlock_cycles=100))
    guard.machine = _FakeMachine(sim)
    guard._check_progress()  # records the baseline
    sim.now = 50
    guard._check_progress()  # inside the horizon: fine
    sim.now = 200
    with pytest.raises(DeadlockError, match="stalled"):
        guard._check_progress()


def test_progress_watchdog_resets_on_retirement(sim):
    guard = Guard(GuardConfig(deadlock_cycles=100))
    machine = _FakeMachine(sim)
    guard.machine = machine
    guard._check_progress()
    sim.now = 200
    machine.cores[0].inst_count += 1  # retirement = forward progress
    guard._check_progress()
    sim.now = 250
    guard._check_progress()  # horizon restarts from t=200
