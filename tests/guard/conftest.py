"""Shared guard-test helpers: small machines, fast guard configs."""

import pytest

from repro.harness.runner import RunConfig


@pytest.fixture
def small_cfg():
    """A NOMAD run small enough for per-test guarded simulation."""
    return RunConfig(
        scheme="nomad", workload="cact",
        num_mem_ops=800, num_cores=2, dc_megabytes=16,
    )
