"""Paranoid mode over the pinned golden configs.

Two properties at once: (a) every golden config completes under the full
checker sweep with zero violations -- the simulator's own bookkeeping
passes its declared invariants on real runs, not just on toy setups --
and (b) the guarded dispatch loop is bit-identical to the fast loops,
so turning the guard on can never change what is being validated.
"""

import json
from pathlib import Path

import pytest

from repro.guard import Guard, GuardConfig
from repro.harness.runner import RunConfig, clear_cache, run_workload
from repro.workloads.synthetic import clear_trace_cache

GOLDEN_PATH = (
    Path(__file__).resolve().parents[1] / "golden" / "golden_metrics.json"
)

with GOLDEN_PATH.open() as f:
    _GOLDEN = json.load(f)

_IDS = [
    f"{e['config']['scheme']}-{e['config']['workload']}-s{e['config']['seed']}"
    for e in _GOLDEN["entries"]
]

# Short interval so small runs get many sweeps, not one.
_GUARD = GuardConfig(check_interval=500, write_bundle=False)


@pytest.mark.parametrize("entry", _GOLDEN["entries"], ids=_IDS)
def test_guarded_golden_bit_identical_zero_violations(entry):
    clear_cache()
    clear_trace_cache()
    cfg = RunConfig.from_dict(entry["config"])
    guard = Guard(_GUARD)
    result = run_workload(cfg, guard=guard)
    assert guard.violations == 0
    assert guard.checks_run > 0, "guard must actually have swept"
    assert result.to_dict() == entry["expected"]
