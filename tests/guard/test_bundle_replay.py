"""Crash bundles and deterministic replay."""

import json
from pathlib import Path

import pytest

from repro.guard import GuardConfig
from repro.guard.bundle import load_bundle, replay_bundle
from repro.guard.errors import GuardError
from repro.harness.runner import run_workload


@pytest.fixture
def crashed(small_cfg, tmp_path):
    """Run to a deterministic chaos crash; returns (exc, bundle_path)."""
    gcfg = GuardConfig(
        check_interval=200, chaos="leak_mshr", chaos_at_event=500,
        bundle_dir=str(tmp_path),
    )
    with pytest.raises(GuardError) as excinfo:
        run_workload(small_cfg, guard=gcfg)
    exc = excinfo.value
    assert exc.bundle_path, "guarded crash must leave a bundle"
    return exc, exc.bundle_path


def test_bundle_contents(crashed, small_cfg):
    exc, path = crashed
    payload = load_bundle(path)
    assert payload["bundle_version"] == 1
    assert payload["run_config"] == small_cfg.to_dict()
    assert payload["guard_config"]["chaos"] == "leak_mshr"
    assert payload["error"]["type"] == "InvariantViolation"
    assert payload["error"]["checker"] == "mshr"
    assert payload["error"]["failure_kind"] == "invariant"
    assert payload["error"]["traceback"]
    assert payload["events_processed"] > 0
    assert payload["ring"], "ring buffer of recent events must be present"
    assert payload["components"], "component state dumps must be present"
    # The bundle is a plain-JSON artifact (portable, greppable).
    bundle_file = [p for p in Path(path).iterdir()
                   if p.name == "bundle.json"]
    assert bundle_file
    json.loads(bundle_file[0].read_text())


def test_replay_reproduces_failure(crashed):
    exc, path = crashed
    report = replay_bundle(path)
    assert report.reproduced, report.detail
    assert report.observed["type"] == type(exc).__name__
    assert report.observed["checker"] == "mshr"
    # Same failing invariant at the same event count: determinism.
    assert report.observed["events_processed"] == \
        report.expected["events_processed"]


def test_replay_cli_round_trip(crashed, capsys):
    from repro.cli import main

    _, path = crashed
    rc = main(["replay", path, "--json"])
    out = json.loads(capsys.readouterr().out)
    assert rc == 0
    assert out["reproduced"] is True


def test_load_bundle_rejects_garbage(tmp_path):
    bad = tmp_path / "bundle.json"
    bad.write_text("{not json")
    with pytest.raises(GuardError):
        load_bundle(bad)


def test_write_bundle_disabled(small_cfg):
    gcfg = GuardConfig(check_interval=200, chaos="leak_mshr",
                       chaos_at_event=500, write_bundle=False)
    with pytest.raises(GuardError) as excinfo:
        run_workload(small_cfg, guard=gcfg)
    assert not excinfo.value.bundle_path
