"""The obs-overhead regression gate (no service campaigns are run here;
`run_obs_bench` itself is exercised by `repro bench --obs` in CI)."""

from repro.harness.bench import OBS_OVERHEAD_FAIL_FRAC, check_regression


def _measured(frac, noise):
    return {"scenarios": {}, "obs_overhead_frac": frac,
            "obs_noise_frac": noise}


def test_overhead_within_budget_is_silent():
    assert check_regression({"scenarios": {}}, _measured(0.03, 0.01)) == []
    assert check_regression({"scenarios": {}}, _measured(-0.02, 0.10)) == []


def test_real_regression_fails():
    problems = check_regression({"scenarios": {}}, _measured(0.50, 0.02))
    assert any(p.startswith("FAIL") and "50.0%" in p for p in problems)


def test_noisy_host_warns_instead_of_failing():
    # 6% measured overhead against a 14% rep-noise floor: the
    # measurement cannot distinguish that from zero, so the gate warns.
    problems = check_regression({"scenarios": {}}, _measured(0.06, 0.14))
    assert len(problems) == 1
    assert problems[0].startswith("warn") and "noise" in problems[0]


def test_gate_boundary_tracks_three_sigma_of_noise():
    assert any(p.startswith("FAIL") for p in
               check_regression({"scenarios": {}}, _measured(0.31, 0.10)))
    assert not any(p.startswith("FAIL") for p in
                   check_regression({"scenarios": {}}, _measured(0.29, 0.10)))


def test_missing_noise_field_defaults_to_strict():
    measured = {"scenarios": {}, "obs_overhead_frac": 0.06}
    problems = check_regression({"scenarios": {}}, measured)
    assert any(p.startswith("FAIL") for p in problems)
    assert OBS_OVERHEAD_FAIL_FRAC == 0.05
