"""Text-table rendering."""

from repro.harness.reporting import format_table, render_series, rows_to_series


def test_format_table_basic():
    rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.123456}]
    out = format_table(rows, title="T")
    lines = out.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "b" in lines[1]
    assert len(lines) == 5


def test_format_table_empty():
    assert "(no rows)" in format_table([])


def test_format_table_column_subset():
    rows = [{"a": 1, "b": 2, "c": 3}]
    out = format_table(rows, columns=["a", "c"])
    assert "b" not in out.splitlines()[0]


def test_format_table_missing_cells():
    rows = [{"a": 1}, {"a": 2, "b": 9}]
    out = format_table(rows, columns=["a", "b"])
    assert "9" in out


def test_render_series():
    series = {"s1": {1: 0.5, 2: 0.7}, "s2": {1: 0.6}}
    out = render_series(series, x_label="pcshrs")
    assert "pcshrs" in out
    assert "s1" in out and "s2" in out
    assert out.count("\n") == 3


def test_rows_to_series():
    rows = [
        {"wl": "a", "x": 1, "y": 10},
        {"wl": "a", "x": 2, "y": 20},
        {"wl": "b", "x": 1, "y": 30},
    ]
    s = rows_to_series(rows, "wl", "x", "y")
    assert s == {"a": {1: 10, 2: 20}, "b": {1: 30}}
