"""Experiment definitions produce well-formed rows (tiny runs)."""

import pytest

from repro.config.schemes import BackendTopology
from repro.harness.experiments import (
    FIG2_WORKLOADS,
    experiment_fig02,
    experiment_fig07,
    experiment_fig09,
    experiment_fig10,
    experiment_fig11,
    experiment_fig12,
    experiment_fig13,
    experiment_fig14,
    experiment_fig15,
    experiment_fig16,
    experiment_summary,
    experiment_table1,
)
from repro.harness.runner import RunConfig

BASE = RunConfig(scheme="ideal", workload="cact", num_mem_ops=400,
                 num_cores=2, dc_megabytes=8)
WLS = ["cact", "pr"]


def test_table1_rows():
    rows = experiment_table1(BASE, workloads=WLS)
    assert len(rows) == 2
    assert rows[0]["rmhb_gbps"] >= rows[1]["rmhb_gbps"]
    assert {"workload", "paper_class", "measured_class", "llc_mpms"} <= set(rows[0])


def test_fig02_rows():
    rows = experiment_fig02(BASE, workloads=WLS)
    assert all(r["tdc_over_tid"] > 0 for r in rows)


def test_fig02_default_workloads():
    assert len(FIG2_WORKLOADS) == 6


def test_fig07_static():
    t = experiment_fig07(BASE)
    assert t["tdc"]["miss_miss"] > t["nomad"]["miss_miss"]


def test_fig09_rows():
    rows = experiment_fig09(BASE, workloads=WLS, schemes=["nomad"])
    assert len(rows) == 2
    assert all("nomad_ipc_rel" in r and "nomad_dc_access_time" in r for r in rows)


def test_fig10_fractions_sum():
    rows = experiment_fig10(BASE, workloads=["pr"], schemes=["nomad"])
    r = rows[0]
    total = (r["demand_frac"] + r["metadata_frac"] + r["fill_frac"]
             + r["writeback_frac"])
    assert total == pytest.approx(1.0, abs=1e-6)


def test_fig11_rows():
    rows = experiment_fig11(BASE, workloads=WLS)
    assert all(0 <= r["tdc_stall_ratio"] <= 1 for r in rows)
    assert all(r["nomad_tag_latency"] >= 0 for r in rows)


def test_fig12_rows():
    rows = experiment_fig12(BASE, pcshr_counts=(1, 4), workloads_per_class=1)
    assert len(rows) == 8  # 4 classes x 2 counts
    assert all(r["ipc_rel_baseline"] > 0 for r in rows)


def test_fig13_normalized_to_largest():
    rows = experiment_fig13(BASE, core_counts=(2,), pcshr_counts=(4, 8),
                            workloads=("cact",))
    top = [r for r in rows if r["pcshrs"] == 8][0]
    assert top["ipc_rel_32"] == pytest.approx(1.0)


def test_fig14_rows():
    rows = experiment_fig14(BASE, pcshr_counts=(1, 8), workloads=("cact",))
    assert len(rows) == 2
    assert {r["pcshrs"] for r in rows} == {1, 8}


def test_fig15_rows():
    rows = experiment_fig15(BASE, combos=((4, 4), (8, 4)), workloads=("libq",))
    assert len(rows) == 2
    assert all(r["buffers"] == 4 for r in rows)


def test_fig16_topologies():
    rows = experiment_fig16(BASE, pcshr_counts=(4,), workloads=("cact",))
    tops = {r["topology"] for r in rows}
    assert tops == {"centralized", "distributed"}


def test_summary_fields():
    s = experiment_summary(BASE, workloads=WLS)
    assert "ipc_gain_over_tdc" in s
    assert s["paper_ipc_gain_over_tdc"] == pytest.approx(0.167)
    assert 0 <= s["buffer_hit_ratio"] <= 1
