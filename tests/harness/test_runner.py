"""Run driver and memoization."""

from repro.harness.runner import (
    MemoCache,
    RunConfig,
    cache_stats,
    clear_cache,
    run_matrix,
    run_workload,
)


SMALL = RunConfig(scheme="baseline", workload="sop", num_mem_ops=300,
                  num_cores=2, dc_megabytes=8)


def setup_function(_):
    clear_cache()


def test_run_workload_returns_result():
    r = run_workload(SMALL)
    assert r.scheme == "baseline"
    assert r.workload == "sop"


def test_results_memoized():
    a = run_workload(SMALL)
    b = run_workload(SMALL)
    assert a is b


def test_distinct_configs_not_shared():
    a = run_workload(SMALL)
    b = run_workload(SMALL.with_(seed=2))
    assert a is not b


def test_with_override():
    cfg = SMALL.with_(scheme="nomad")
    assert cfg.scheme == "nomad"
    assert cfg.workload == "sop"


def test_run_matrix_keys():
    out = run_matrix(["baseline", "ideal"], ["sop"], SMALL)
    assert set(out) == {("baseline", "sop"), ("ideal", "sop")}


def test_cache_stats_count_hits_and_misses():
    assert cache_stats()["memo"]["size"] == 0
    run_workload(SMALL)
    stats = cache_stats()["memo"]
    assert stats["misses"] >= 1 and stats["size"] == 1
    hits_before = stats["hits"]
    run_workload(SMALL)
    assert cache_stats()["memo"]["hits"] == hits_before + 1


def test_cache_stats_has_all_layers():
    stats = cache_stats()
    assert set(stats) == {"memo", "snapshot", "trace"}
    for section in ("memo", "snapshot", "trace"):
        assert "hits" in stats[section] and "misses" in stats[section]


def test_memo_cache_is_bounded_lru():
    cache = MemoCache(maxsize=2)
    cache.put("a", 1)
    cache.put("b", 2)
    assert cache.get("a") == 1  # refresh "a"; "b" is now LRU
    cache.put("c", 3)
    assert len(cache) == 2
    assert cache.get("b") is None  # evicted
    assert cache.get("a") == 1 and cache.get("c") == 3
    stats = cache.stats()
    assert stats["evictions"] == 1
    assert stats["misses"] == 1


def test_clear_cache_resets_counters():
    run_workload(SMALL)
    run_workload(SMALL)
    clear_cache()
    stats = cache_stats()["memo"]
    assert stats == {"hits": 0, "misses": 0, "evictions": 0, "size": 0,
                     "maxsize": stats["maxsize"]}
