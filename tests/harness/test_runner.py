"""Run driver and memoization."""

from repro.harness.runner import RunConfig, clear_cache, run_matrix, run_workload


SMALL = RunConfig(scheme="baseline", workload="sop", num_mem_ops=300,
                  num_cores=2, dc_megabytes=8)


def setup_function(_):
    clear_cache()


def test_run_workload_returns_result():
    r = run_workload(SMALL)
    assert r.scheme == "baseline"
    assert r.workload == "sop"


def test_results_memoized():
    a = run_workload(SMALL)
    b = run_workload(SMALL)
    assert a is b


def test_distinct_configs_not_shared():
    a = run_workload(SMALL)
    b = run_workload(SMALL.with_(seed=2))
    assert a is not b


def test_with_override():
    cfg = SMALL.with_(scheme="nomad")
    assert cfg.scheme == "nomad"
    assert cfg.workload == "sop"


def test_run_matrix_keys():
    out = run_matrix(["baseline", "ideal"], ["sop"], SMALL)
    assert set(out) == {("baseline", "sop"), ("ideal", "sop")}
