"""CLI table1 and compare at tiny scale."""

from repro.cli import main


def test_table1_cmd(capsys):
    rc = main(["table1", "--ops", "300", "--cores", "2", "--dc-mb", "8"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "rmhb_gbps" in out
    assert out.count("\n") >= 17  # header + 15 workloads
