"""Sweep-bench harness: entry shape, hit accounting, regression gate."""

import pytest

from repro.harness import bench, runner


@pytest.fixture
def tiny_sweep(monkeypatch):
    monkeypatch.setitem(bench.SWEEP_SCENARIOS, "sweep_quick", (100, 2, 8, 2))


def test_sweep_configs_cover_schemes_times_seeds(tiny_sweep):
    configs = bench._sweep_configs("sweep_quick")
    assert len(configs) == len(bench.SWEEP_SCHEMES) * 2
    assert {c.scheme for c in configs} == set(bench.SWEEP_SCHEMES)
    assert all(c.workload == bench.BENCH_WORKLOAD for c in configs)


def test_run_sweep_scenario_entry_shape_and_hits(tiny_sweep):
    entry = bench.run_sweep_scenario("sweep_quick", reps=1)
    assert entry["runs"] == 6
    assert entry["params"]["amortize"] is True
    # 3 schemes x 2 seeds: one build and one fork per scheme.
    assert entry["snapshot_builds"] == 3
    assert entry["snapshot_forks"] == 3
    assert entry["snapshot_hit_rate"] == pytest.approx(0.5)
    assert entry["runs_per_sec"] > 0
    assert entry["normalized"] > 0


def test_run_sweep_scenario_baseline_mode_never_forks(tiny_sweep):
    entry = bench.run_sweep_scenario("sweep_quick", amortize=False, reps=1)
    assert entry["params"]["amortize"] is False
    assert entry["snapshot_forks"] == 0
    assert entry["snapshot_builds"] == 0  # cache disabled: not even misses


def test_run_sweep_scenario_restores_runner_state(tiny_sweep):
    before = runner.cache_stats()["snapshot"]["maxsize"]
    bench.run_sweep_scenario("sweep_quick", reps=1)
    assert runner.cache_stats()["snapshot"]["maxsize"] == before
    assert runner.cache_stats()["memo"]["size"] == 0


def test_check_regression_gates_sweep_scenarios():
    committed = {"scenarios": {"sweep_quick": {"current": {"normalized": 1.0}}}}
    ok = {"scenarios": {"sweep_quick": {"normalized": 0.95}}}
    assert bench.check_regression(committed, ok) == []
    slow = {"scenarios": {"sweep_quick": {"normalized": 0.5}}}
    problems = bench.check_regression(committed, slow)
    assert any(p.startswith("FAIL") for p in problems)
    unknown = {"scenarios": {"other": {"normalized": 1.0}}}
    problems = bench.check_regression(committed, unknown)
    assert problems and problems[0].startswith("warn")
