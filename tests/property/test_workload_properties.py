"""Property-based checks on the synthetic trace generator."""

from hypothesis import given, settings, strategies as st

from repro.workloads.synthetic import SyntheticWorkload, WorkloadSpec

spec_strategy = st.builds(
    WorkloadSpec,
    name=st.just("prop"),
    footprint_pages=st.integers(8, 2048),
    mem_ratio=st.floats(0.05, 1.0),
    page_select=st.sampled_from(["stream", "zipf", "uniform"]),
    zipf_skew=st.floats(1.0, 8.0),
    mean_run_lines=st.integers(1, 64),
    write_frac=st.floats(0.0, 1.0),
    dep_frac=st.floats(0.0, 1.0),
    bursty=st.booleans(),
    cold_frac=st.floats(0.0, 0.5),
    reuse_frac=st.floats(0.0, 0.9),
    num_mem_ops=st.integers(1, 600),
)


@settings(max_examples=30, deadline=None)
@given(spec_strategy)
def test_trace_wellformed(spec):
    ops = list(SyntheticWorkload(spec, seed=7))
    assert len(ops) == spec.num_mem_ops
    for gap, addr, is_write, dep in ops:
        assert gap >= 0
        assert addr >= 0
        assert addr % 64 == 0  # line-aligned accesses
        assert not (is_write and dep)
        # Hot-region addresses stay in the footprint; cold ones beyond.
        if addr < spec.footprint_pages * 4096:
            pass
        else:
            assert spec.cold_frac > 0


@settings(max_examples=15, deadline=None)
@given(spec_strategy, st.integers(0, 3))
def test_trace_deterministic(spec, core):
    a = list(SyntheticWorkload(spec, seed=5, core_id=core))
    b = list(SyntheticWorkload(spec, seed=5, core_id=core))
    assert a == b


@settings(max_examples=15, deadline=None)
@given(spec_strategy)
def test_line_offsets_within_page(spec):
    """Run construction never generates a line index past the page end."""
    for _, addr, _, _ in SyntheticWorkload(spec, seed=3):
        assert 0 <= (addr >> 6) & 63 <= 63
        assert addr & 63 == 0
