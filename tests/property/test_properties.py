"""Property-based tests (hypothesis) for core data structures."""

from hypothesis import given, settings, strategies as st

from repro.cache.mshr import MSHRFile
from repro.cache.replacement import FIFOPolicy, LRUPolicy
from repro.common.bitvector import BitVector
from repro.core.free_queue import FreeQueue
from repro.dram.address_map import AddressMap
from repro.config.dram import DDR4_3200, HBM2
from repro.vm.descriptors import CPDArray


# -- BitVector ------------------------------------------------------------

@given(st.sets(st.integers(0, 63)))
def test_bitvector_count_matches_set(bits):
    bv = BitVector(64)
    for b in bits:
        bv.set(b)
    assert bv.count() == len(bits)
    for i in range(64):
        assert bv.test(i) == (i in bits)


@given(st.sets(st.integers(0, 63)), st.integers(0, 64))
def test_bitvector_first_zero_is_correct(bits, start):
    bv = BitVector(64)
    for b in bits:
        bv.set(b)
    expected = next((i for i in range(start, 64) if i not in bits), -1)
    assert bv.first_zero(start) == expected


@given(st.sets(st.integers(0, 63)))
def test_bitvector_set_clear_roundtrip(bits):
    bv = BitVector(64)
    for b in bits:
        bv.set(b)
    for b in bits:
        bv.clear(b)
    assert not bv.any_set


# -- Replacement policies ----------------------------------------------------

@given(st.lists(st.integers(0, 9), min_size=1, max_size=60))
def test_lru_victim_is_least_recent(refs):
    """Model check against an explicit recency list."""
    policy = LRUPolicy()
    recency = []
    for key in refs:
        if key in recency:
            policy.touch(key)
            recency.remove(key)
            recency.append(key)
        else:
            policy.insert(key)
            recency.append(key)
    assert policy.evict() == recency[0]


@given(st.lists(st.integers(0, 9), min_size=1, max_size=60))
def test_fifo_victim_is_oldest_insert(refs):
    policy = FIFOPolicy()
    order = []
    for key in refs:
        if key in order:
            policy.touch(key)
        else:
            policy.insert(key)
            order.append(key)
    assert policy.evict() == order[0]


# -- MSHR file -----------------------------------------------------------------

@given(st.lists(st.integers(0, 5), min_size=1, max_size=40),
       st.integers(1, 4))
def test_mshr_conservation(keys, capacity):
    """Every waiter is eventually notified exactly once."""
    m = MSHRFile(capacity)
    notified = []
    issued = []
    for i, key in enumerate(keys):
        outcome = m.allocate(key, i, lambda t, i=i: notified.append(i))
        if outcome == "new":
            issued.append(key)
    # Retire in issue order, draining overflow as slots free.
    while issued:
        key = issued.pop(0)
        for w in m.retire(key, 0):
            w(0)
        issued.extend(m.drain_overflow(0))
    assert sorted(notified) == list(range(len(keys)))


# -- Free queue -----------------------------------------------------------------

@given(st.lists(st.sampled_from(["alloc", "free"]), max_size=64))
def test_free_queue_accounting_invariant(ops):
    fq, cpds = FreeQueue(16), CPDArray(16)
    allocated = []
    for op in ops:
        if op == "alloc" and fq.num_free > 0:
            cfn = fq.allocate(cpds)
            assert not cpds[cfn].valid
            cpds[cfn].valid = True
            allocated.append(cfn)
        elif op == "free" and allocated:
            # FIFO reclamation from the tail side.
            cfn = allocated.pop(0)
            cpds[cfn].valid = False
            fq.mark_freed()
        assert 0 <= fq.num_free <= 16
        assert fq.allocated == len(allocated)
        assert sum(1 for i in range(16) if cpds[i].valid) == len(allocated)


# -- Address map ------------------------------------------------------------------

@given(st.integers(0, 2**34), st.sampled_from([HBM2, DDR4_3200]))
def test_address_map_decode_in_range(addr, cfg):
    am = AddressMap(cfg)
    d = am.decode(addr)
    assert 0 <= d.channel < cfg.num_channels
    assert 0 <= d.bank < cfg.banks_per_channel
    assert d.row >= 0


@given(st.integers(0, 2**30))
def test_address_map_same_burst_same_location(addr):
    am = AddressMap(HBM2)
    base = (addr >> 6) << 6
    assert am.decode(base) == am.decode(base + 63)
