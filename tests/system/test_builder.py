"""Builder and scheme registry."""

import pytest

from repro.config.schemes import NomadConfig
from repro.engine.simulator import Simulator
from repro.system.builder import SCHEME_REGISTRY, build_machine, make_scheme


def test_registry_contents():
    assert set(SCHEME_REGISTRY) == {
        "baseline", "tid", "tdc", "nomad", "ideal", "unthrottled"
    }


def test_make_scheme_unknown_raises(tiny_cfg):
    with pytest.raises(KeyError):
        make_scheme("magic", Simulator(), tiny_cfg)


def test_make_scheme_passes_nomad_cfg(tiny_cfg):
    s = make_scheme("nomad", Simulator(), tiny_cfg, nomad_cfg=NomadConfig(num_pcshrs=2))
    assert len(s.backend.pcshrs) == 2


def test_build_machine_by_name(tiny_cfg):
    m = build_machine("baseline", workload_name="sop", cfg=tiny_cfg, num_mem_ops=200)
    r = m.run()
    assert r.workload == "sop"


def test_build_machine_requires_workload(tiny_cfg):
    with pytest.raises(ValueError):
        build_machine("baseline", cfg=tiny_cfg)


def test_prewarm_populates_dc(tiny_cfg):
    m = build_machine("tdc", workload_name="sop", cfg=tiny_cfg, num_mem_ops=100)
    # sop is zipf: its hot set should be pre-cached.
    assert m.scheme.frontend.free_queue.allocated > 0


def test_no_prewarm(tiny_cfg):
    m = build_machine("tdc", workload_name="sop", cfg=tiny_cfg, num_mem_ops=100,
                      prewarm=False)
    assert m.scheme.frontend.free_queue.allocated == 0


def test_default_config_is_scaled():
    m = build_machine("baseline", workload_name="sop", num_mem_ops=50)
    assert m.cfg.num_cores == 4
    assert m.cfg.dc_pages == 16384
