"""Machine assembly and result extraction."""

import pytest

from repro.config.system import scaled_system
from repro.system.builder import build_machine
from repro.workloads.synthetic import WorkloadSpec


def small_spec(n=800):
    return WorkloadSpec(name="unit", footprint_pages=128, mem_ratio=0.2,
                        page_select="zipf", zipf_skew=2.0, mean_run_lines=8,
                        num_mem_ops=n)


def test_run_produces_result(tiny_cfg):
    m = build_machine("baseline", cfg=tiny_cfg, spec=small_spec())
    r = m.run()
    assert r.scheme == "baseline"
    assert r.workload == "unit"
    assert r.runtime_cycles > 0
    assert r.instructions > 0
    assert 0 < r.ipc < tiny_cfg.core.width * tiny_cfg.num_cores


def test_per_core_ipc_length(tiny_cfg):
    r = build_machine("ideal", cfg=tiny_cfg, spec=small_spec()).run()
    assert len(r.per_core_ipc) == tiny_cfg.num_cores
    assert all(ipc > 0 for ipc in r.per_core_ipc)


def test_stall_breakdown_keys(tiny_cfg):
    r = build_machine("tdc", cfg=tiny_cfg, spec=small_spec()).run()
    assert set(r.stall_breakdown) == {"os", "window", "store", "dep", "tlb"}
    assert all(0 <= v <= 1 for v in r.stall_breakdown.values())


def test_speedup_over(tiny_cfg):
    base = build_machine("baseline", cfg=tiny_cfg, spec=small_spec()).run()
    ideal = build_machine("ideal", cfg=tiny_cfg, spec=small_spec()).run()
    assert ideal.speedup_over(base) == pytest.approx(ideal.ipc / base.ipc)


def test_trace_count_mismatch_rejected(tiny_cfg):
    from repro.engine.simulator import Simulator
    from repro.system.machine import Machine
    from repro.system.builder import make_scheme
    sim = Simulator()
    scheme = make_scheme("baseline", sim, tiny_cfg)
    with pytest.raises(ValueError):
        Machine(tiny_cfg, scheme, traces=[[]], workload_name="x")


def test_rmhb_zero_for_baseline(tiny_cfg):
    r = build_machine("baseline", cfg=tiny_cfg, spec=small_spec()).run()
    assert r.rmhb_gbps == 0


def test_nomad_result_has_scheme_metrics(tiny_cfg):
    # prewarm off so the zipf hot set actually generates fills.
    r = build_machine("nomad", cfg=tiny_cfg, spec=small_spec(), prewarm=False).run()
    assert r.tag_mgmt_latency is not None
    assert r.buffer_hit_ratio is not None
    assert r.page_fills > 0


def test_bytes_by_class_exposed(tiny_cfg):
    r = build_machine("nomad", cfg=tiny_cfg, spec=small_spec(), prewarm=False).run()
    assert "FILL" in r.hbm_bytes_by_class
    assert r.hbm_bandwidth_gbps > 0


def test_result_tolerates_missing_os_stall_key(tiny_cfg, monkeypatch):
    """Cores without an "os" stall bucket must not crash result().

    Custom core models (and the paper's baseline, which never suspends
    threads) may report a breakdown without the key; os_stall_ratio then
    defaults to 0 instead of raising KeyError.
    """
    m = build_machine("baseline", cfg=tiny_cfg, spec=small_spec(400))
    m.run()
    for core in m.cores:
        monkeypatch.setattr(
            core, "stall_breakdown", lambda: {"window": 0.0, "dep": 0.0}
        )
    r = m.result()
    assert r.os_stall_ratio == 0.0
    assert "os" not in r.stall_breakdown
