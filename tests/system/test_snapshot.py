"""Machine snapshot/fork: bit-identity, versioning, refusal cases.

The snapshot cache only exists to make sweeps cheaper; it must be
invisible in every result.  These tests pin that: a forked machine's
run -- plain, guarded, or telemetry-observed -- is ``to_dict``-equal to
a freshly built one, across schemes, workloads, seeds, and trace
lengths.
"""

import pickle

import pytest

from repro.config.system import scaled_system
from repro.harness import runner
from repro.harness.runner import RunConfig
from repro.snapshot import (
    SnapshotCache,
    SnapshotError,
    snapshot_eligible,
    snapshot_key,
)
from repro.system.builder import build_machine
from repro.system.machine import Machine
from repro.workloads.synthetic import clear_trace_cache

OPS = 300
CORES = 2
DC_MB = 8


def _build(scheme, workload="sop", ops=OPS, seed=1):
    cfg = scaled_system(num_cores=CORES, dc_megabytes=DC_MB)
    return build_machine(scheme, workload_name=workload, cfg=cfg,
                        num_mem_ops=ops, seed=seed)


@pytest.fixture(autouse=True)
def _fresh_caches():
    runner.clear_cache()
    runner.clear_snapshot_cache()
    clear_trace_cache()
    yield
    runner.clear_cache()
    runner.clear_snapshot_cache()
    clear_trace_cache()


# -- round-trip bit-identity ---------------------------------------------------


@pytest.mark.parametrize("scheme", ["tid", "tdc", "nomad", "unthrottled"])
@pytest.mark.parametrize("workload", ["cact", "sop"])
def test_fork_same_seed_bit_identical(scheme, workload):
    blob = _build(scheme, workload).snapshot()
    forked = Machine.restore(blob).run()
    fresh = _build(scheme, workload).run()
    assert forked.to_dict() == fresh.to_dict()


def test_fork_with_different_seed_matches_fresh_build():
    blob = _build("nomad").snapshot()
    forked = Machine.restore(blob, seed=9).run()
    fresh = _build("nomad", seed=9).run()
    assert forked.to_dict() == fresh.to_dict()


def test_fork_with_different_trace_length_matches_fresh_build():
    blob = _build("tdc", ops=OPS).snapshot()
    forked = Machine.restore(blob, seed=2, num_mem_ops=500).run()
    fresh = _build("tdc", ops=500, seed=2).run()
    assert forked.to_dict() == fresh.to_dict()


def test_every_fork_is_independent():
    """Two forks of one blob never share mutable state."""
    blob = _build("tid").snapshot()
    first = Machine.restore(blob).run()
    second = Machine.restore(blob).run()  # would diverge if state leaked
    assert first.to_dict() == second.to_dict()


def test_guarded_fork_bit_identical():
    blob = _build("nomad", "cact").snapshot()
    forked = Machine.restore(blob).run(guard=True)
    fresh = _build("nomad", "cact").run()
    assert forked.to_dict() == fresh.to_dict()


def test_telemetry_fork_bit_identical():
    blob = _build("tdc", "cact").snapshot()
    forked = Machine.restore(blob).run(telemetry=True)
    fresh = _build("tdc", "cact").run()
    d = forked.to_dict()
    d.pop("__telemetry__", None)
    assert d == fresh.to_dict()


# -- versioning and refusal ----------------------------------------------------


def test_restore_refuses_other_version():
    blob = _build("tdc").snapshot()
    payload = pickle.loads(blob)
    payload["version"] = 999
    with pytest.raises(SnapshotError, match="version"):
        Machine.restore(pickle.dumps(payload))


def test_restore_refuses_garbage():
    with pytest.raises(SnapshotError, match="unreadable"):
        Machine.restore(b"not a snapshot")
    with pytest.raises(SnapshotError, match="unreadable"):
        Machine.restore(pickle.dumps({"no": "version"}))


def test_snapshot_refuses_after_run():
    machine = _build("tdc")
    machine.run()
    with pytest.raises(SnapshotError, match="before the run"):
        machine.snapshot()


def test_snapshot_refuses_without_specs():
    machine = _build("tdc")
    machine._specs = None  # a machine assembled from raw traces
    with pytest.raises(SnapshotError, match="raw traces"):
        machine.snapshot()


# -- key derivation and eligibility --------------------------------------------


def test_snapshot_key_ignores_roi_knobs():
    cfg = RunConfig(scheme="nomad", workload="cact", num_mem_ops=OPS,
                    num_cores=CORES, dc_megabytes=DC_MB, seed=1)
    assert snapshot_key(cfg) == snapshot_key(cfg.with_(seed=7))
    assert snapshot_key(cfg) == snapshot_key(cfg.with_(num_mem_ops=999))
    assert snapshot_key(cfg) != snapshot_key(cfg.with_(scheme="tdc"))
    assert snapshot_key(cfg) != snapshot_key(cfg.with_(dc_megabytes=16))
    assert snapshot_key(cfg) != snapshot_key(cfg.with_(workload="sop"))


def test_eligibility_excludes_unprofitable_and_unwarmed():
    cfg = RunConfig(scheme="nomad", workload="cact")
    assert snapshot_eligible(cfg)
    assert not snapshot_eligible(cfg.with_(scheme="baseline"))
    assert not snapshot_eligible(cfg.with_(scheme="ideal"))
    assert not snapshot_eligible(cfg.with_(prewarm=False))


def test_snapshot_cache_lru_and_disable():
    cache = SnapshotCache(maxsize=2)
    cache.put("a", b"1")
    cache.put("b", b"2")
    assert cache.get("a") == b"1"  # refresh: "b" becomes LRU
    cache.put("c", b"3")
    assert cache.get("b") is None
    assert cache.stats()["evictions"] == 1
    disabled = SnapshotCache(maxsize=0)
    disabled.put("a", b"1")
    assert disabled.get("a") is None
    assert disabled.stats()["size"] == 0


# -- runner integration --------------------------------------------------------


def _run_cfg(**over):
    base = RunConfig(scheme="nomad", workload="sop", num_mem_ops=OPS,
                     num_cores=CORES, dc_megabytes=DC_MB, seed=1)
    return base.with_(**over)


def test_run_workload_forks_across_seeds():
    runner.run_workload(_run_cfg(seed=1))
    stats = runner.cache_stats()["snapshot"]
    assert stats["stores"] == 1
    result = runner.run_workload(_run_cfg(seed=2))
    stats = runner.cache_stats()["snapshot"]
    assert stats["hits"] == 1
    # The forked result still equals a rebuilt-from-scratch run.
    runner.clear_cache()
    runner.clear_snapshot_cache()
    prev = runner.configure_snapshots(0)
    try:
        fresh = runner.run_workload(_run_cfg(seed=2))
    finally:
        runner.configure_snapshots(prev)
    assert result.to_dict() == fresh.to_dict()


def test_guarded_run_consumes_but_never_primes():
    cfg = _run_cfg()
    runner.run_workload(cfg, guard=True)
    assert runner.cache_stats()["snapshot"]["stores"] == 0
    runner.run_workload(cfg)  # unguarded: primes
    assert runner.cache_stats()["snapshot"]["stores"] == 1
    runner.run_workload(cfg.with_(seed=3), guard=True)  # may consume
    assert runner.cache_stats()["snapshot"]["hits"] == 1


def test_configure_snapshots_zero_disables_forking():
    prev = runner.configure_snapshots(0)
    try:
        runner.run_workload(_run_cfg(seed=1))
        runner.run_workload(_run_cfg(seed=2))
        stats = runner.cache_stats()["snapshot"]
        assert stats["hits"] == 0 and stats["stores"] == 0
    finally:
        runner.configure_snapshots(prev)
