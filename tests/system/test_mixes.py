"""Heterogeneous multi-programmed mixes (one workload per core)."""

import pytest

from repro.system.builder import build_machine
from repro.workloads.presets import workload


def specs_for(tiny_cfg, names, ops=600):
    return [
        workload(n, dc_pages=tiny_cfg.dc_pages, num_cores=tiny_cfg.num_cores,
                 num_mem_ops=ops)
        for n in names
    ]


def test_mix_runs(tiny_cfg):
    specs = specs_for(tiny_cfg, ["cact", "tc"])
    r = build_machine("nomad", cfg=tiny_cfg, specs=specs).run()
    assert r.workload == "mix"
    assert len(r.per_core_ipc) == 2
    assert all(ipc > 0 for ipc in r.per_core_ipc)


def test_mix_wrong_count_rejected(tiny_cfg):
    with pytest.raises(ValueError):
        build_machine("nomad", cfg=tiny_cfg,
                      specs=specs_for(tiny_cfg, ["cact"]))


def test_homogeneous_specs_keep_name(tiny_cfg):
    specs = specs_for(tiny_cfg, ["sop", "sop"])
    r = build_machine("ideal", cfg=tiny_cfg, specs=specs).run()
    assert r.workload == "sop"


def test_mix_shares_dram_cache(tiny_cfg):
    """An Excess core degrades a Few core's DC residency vs running solo."""
    solo = build_machine(
        "nomad", cfg=tiny_cfg, specs=specs_for(tiny_cfg, ["tc", "tc"])
    ).run()
    mixed = build_machine(
        "nomad", cfg=tiny_cfg, specs=specs_for(tiny_cfg, ["tc", "cact"])
    ).run()
    # The tc core keeps running; the machine completes either way.
    assert mixed.per_core_ipc[0] > 0
    assert solo.instructions != mixed.instructions
