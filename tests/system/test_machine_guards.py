"""Run-loop guard rails."""

import pytest

from repro.system.builder import build_machine
from repro.workloads.synthetic import WorkloadSpec


def test_max_events_guard_raises(tiny_cfg):
    spec = WorkloadSpec(name="t", footprint_pages=512, mem_ratio=0.5,
                        page_select="uniform", mean_run_lines=2,
                        num_mem_ops=2000)
    m = build_machine("nomad", cfg=tiny_cfg, spec=spec)
    with pytest.raises(RuntimeError, match="stalled"):
        m.run(max_events=50)  # far too few events to finish


def test_result_before_run_is_mostly_empty(tiny_cfg):
    spec = WorkloadSpec(name="t", footprint_pages=64, num_mem_ops=10)
    m = build_machine("baseline", cfg=tiny_cfg, spec=spec)
    r = m.result()
    assert r.instructions == 0
    assert r.runtime_cycles == 1  # clamped


def test_rerun_protection_not_needed_for_fresh_machines(tiny_cfg):
    spec = WorkloadSpec(name="t", footprint_pages=64, num_mem_ops=50)
    a = build_machine("baseline", cfg=tiny_cfg, spec=spec).run()
    b = build_machine("baseline", cfg=tiny_cfg, spec=spec).run()
    assert a.runtime_cycles == b.runtime_cycles
