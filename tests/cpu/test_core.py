"""The ROB-occupancy core model against a scriptable fake memory system."""

import pytest

from repro.config.system import CoreConfig
from repro.cpu.core import Core
from repro.engine.simulator import Simulator


class FakeScheme:
    """Memory system with programmable hit latency and per-page walks."""

    def __init__(self, sim, hit_latency=10, miss_latency=None, miss_addrs=(),
                 os_stall=0):
        self.sim = sim
        self.hit_latency = hit_latency
        self.miss_latency = miss_latency or 200
        self.miss_addrs = set(miss_addrs)
        self.os_stall = os_stall
        self.walk_latency = 100
        self.tlb = set()
        self.issued = []
        self.walked = []

    def tlb_lookup(self, core_id, vpn):
        if vpn in self.tlb:
            return ("pte", 0)
        return None

    def peek_translate(self, core_id, vpn):
        self.walked.append(vpn)
        needs_os = self.os_stall > 0 and vpn not in self.tlb
        if not needs_os:
            self.tlb.add(vpn)
        return "pte", self.walk_latency, needs_os

    def translate_miss(self, core_id, vpn, now, done, addr=0):
        self.tlb.add(vpn)
        ready = now + self.walk_latency + self.os_stall
        self.sim.schedule_at(ready, lambda: done(ready, "pte"))

    def translate_addr(self, pte, addr):
        return addr

    def hierarchy_access(self, access, now, on_complete):
        self.issued.append((access.addr, now))
        if access.addr in self.miss_addrs:
            finish = now + self.miss_latency
            self.sim.schedule_at(finish, lambda: on_complete(finish))
            return None
        return now + self.hit_latency


def run_core(trace, scheme=None, **core_kw):
    sim = Simulator()
    scheme = scheme or FakeScheme(sim)
    scheme.sim = sim
    cfg = CoreConfig(width=4, rob_size=32, store_buffer=4, **core_kw)
    core = Core(sim, 0, cfg, scheme, iter(trace))
    core.start()
    sim.run()
    assert core.done
    return core, scheme


def T(gap, addr, w=False, d=False):
    return (gap, addr, w, d)


def test_pure_compute_ipc_approaches_width():
    # One op with a huge gap: IPC ~ width (minus the tail where the
    # final load's walk+hit latency drains with an empty pipeline).
    core, scheme = run_core([T(40_000, 0)])
    assert core.ipc == pytest.approx(4.0, rel=0.02)


def test_instruction_count():
    core, _ = run_core([T(3, 0), T(5, 64)])
    assert core.inst_count == 3 + 1 + 5 + 1


def test_tlb_miss_counted_once_per_page():
    core, scheme = run_core([T(0, 0), T(0, 64), T(0, 4096)])
    assert core.tlb_misses == 2
    assert scheme.walked == [0, 1]


def test_independent_misses_overlap():
    """Two misses within the ROB window overlap (MLP)."""
    miss = {0, 64}
    core, _ = run_core([T(0, 0), T(0, 64), T(2000, 128)])
    # finish approx: miss latency 200 paid once, not twice.
    assert core.finish_time < 200 * 2 + 600


def test_dependent_load_serializes():
    miss = {0}
    scheme_factory = lambda sim: FakeScheme(sim, miss_addrs=miss)
    sim = Simulator()
    s = FakeScheme(sim, miss_addrs={0, 4096})
    cfg = CoreConfig(width=4, rob_size=32, store_buffer=4)
    trace = [T(0, 0, d=True), T(0, 4096, d=True)]
    core = Core(sim, 0, cfg, s, iter(trace))
    core.start()
    sim.run()
    # Two serialized 200-cycle misses (plus walks).
    assert core.finish_time >= 400
    assert core.dep_stall_cycles > 0


def test_rob_window_limits_runahead():
    """A miss stalls dispatch once it is rob_size instructions old."""
    sim = Simulator()
    s = FakeScheme(sim, miss_addrs={0})
    cfg = CoreConfig(width=1, rob_size=8, store_buffer=4)
    trace = [T(0, 0)] + [T(0, 64 * (i + 1)) for i in range(20)]
    core = Core(sim, 0, cfg, s, iter(trace))
    core.start()
    sim.run()
    assert core.window_stall_cycles > 0


def test_os_stall_accounted():
    sim = Simulator()
    s = FakeScheme(sim, os_stall=500)
    cfg = CoreConfig(width=4, rob_size=32, store_buffer=4)
    core = Core(sim, 0, cfg, s, iter([T(0, 0)]))
    core.start()
    sim.run()
    assert core.os_stall_cycles == 500
    assert core.tag_miss_count == 1
    assert core.tlb_stall_cycles == 100


def test_store_buffer_backpressure():
    sim = Simulator()
    miss = {i * 64 for i in range(64)}
    s = FakeScheme(sim, miss_addrs=miss, miss_latency=1000)
    cfg = CoreConfig(width=4, rob_size=256, store_buffer=4)
    trace = [T(0, i * 64, w=True) for i in range(16)]
    core = Core(sim, 0, cfg, s, iter(trace))
    core.start()
    sim.run()
    assert core.store_stall_cycles > 0
    assert core.outstanding_stores == 0  # all drained by completion events


def test_stores_do_not_block_window():
    sim = Simulator()
    s = FakeScheme(sim, miss_addrs={0}, miss_latency=5000)
    cfg = CoreConfig(width=4, rob_size=64, store_buffer=8)
    trace = [T(0, 0, w=True), T(1000, 64)]
    core = Core(sim, 0, cfg, s, iter(trace))
    core.start()
    sim.run()
    # The slow store does not hold the ROB window; only drain matters.
    assert core.window_stall_cycles == 0


def test_stall_breakdown_fractions():
    sim = Simulator()
    s = FakeScheme(sim, os_stall=300)
    cfg = CoreConfig(width=4, rob_size=32, store_buffer=4)
    core = Core(sim, 0, cfg, s, iter([T(0, 0)]))
    core.start()
    sim.run()
    b = core.stall_breakdown()
    assert set(b) == {"os", "window", "store", "dep", "tlb"}
    assert 0 <= b["os"] <= 1


def test_finish_waits_for_outstanding_loads():
    sim = Simulator()
    s = FakeScheme(sim, miss_addrs={0}, miss_latency=2000)
    cfg = CoreConfig(width=4, rob_size=64, store_buffer=4)
    core = Core(sim, 0, cfg, s, iter([T(0, 0)]))
    core.start()
    sim.run()
    assert core.finish_time >= 2000


def test_empty_trace_finishes():
    core, _ = run_core([])
    assert core.inst_count == 0
    assert core.done


def test_ipc_zero_before_finish():
    sim = Simulator()
    s = FakeScheme(sim)
    core = Core(sim, 0, CoreConfig(), s, iter([T(0, 0)]))
    assert core.ipc == 0.0
