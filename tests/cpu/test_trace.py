"""Trace format helpers."""

import numpy as np

from repro.cpu.trace import TraceOp, chain_chunks, ops_from_arrays, total_instructions


def test_trace_op_tuple():
    op = TraceOp(gap=3, addr=0x1000, is_write=True, dependent=False)
    assert op.as_tuple() == (3, 0x1000, True, False)


def test_ops_from_arrays():
    gaps = np.array([1, 2])
    addrs = np.array([64, 128])
    writes = np.array([False, True])
    deps = np.array([True, False])
    ops = list(ops_from_arrays(gaps, addrs, writes, deps))
    assert ops == [(1, 64, False, True), (2, 128, True, False)]
    assert all(isinstance(x, int) for x in (ops[0][0], ops[0][1]))


def test_chain_chunks():
    c1 = (np.array([0]), np.array([0]), np.array([False]), np.array([False]))
    c2 = (np.array([5]), np.array([64]), np.array([True]), np.array([False]))
    ops = list(chain_chunks([c1, c2]))
    assert len(ops) == 2
    assert ops[1][0] == 5


def test_total_instructions():
    trace = [(3, 0, False, False), (0, 64, False, False)]
    assert total_instructions(trace) == 5
