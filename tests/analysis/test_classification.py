"""RMHB classification."""

import pytest

from repro.analysis.classification import classify_rmhb, classify_results


def test_class_boundaries():
    peak = 25.6
    assert classify_rmhb(40.0, peak) == "excess"
    assert classify_rmhb(25.0, peak) == "tight"
    assert classify_rmhb(12.0, peak) == "loose"
    assert classify_rmhb(1.0, peak) == "few"


def test_monotone_in_rmhb():
    peak = 25.6
    order = ["few", "loose", "tight", "excess"]
    last = -1
    for rmhb in (0.1, 8, 22, 50):
        idx = order.index(classify_rmhb(rmhb, peak))
        assert idx > last
        last = idx


def test_zero_peak_rejected():
    with pytest.raises(ValueError):
        classify_rmhb(1.0, 0)


def test_classify_results():
    class R:
        def __init__(self, rmhb):
            self.rmhb_gbps = rmhb

    out = classify_results({"a": R(50), "b": R(1)}, 25.6)
    assert out == {"a": "excess", "b": "few"}
