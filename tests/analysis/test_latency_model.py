"""Fig. 7 analytic latency model."""

import pytest

from repro.analysis.latency_model import LatencyCase, LatencyModel
from repro.config.system import scaled_system

M = LatencyModel.from_config(scaled_system())


def test_hit_hit_ordering():
    """Fig. 7a: OS-managed schemes are near-ideal; TiD pays the tag read."""
    assert M.ideal(LatencyCase.HIT_HIT) <= M.nomad(LatencyCase.HIT_HIT)
    assert M.nomad(LatencyCase.HIT_HIT) <= M.ideal(LatencyCase.HIT_HIT) + 2
    assert M.tid(LatencyCase.HIT_HIT) > M.tdc(LatencyCase.HIT_HIT)


def test_miss_miss_ordering():
    """Fig. 7b: blocking TDC pays the whole copy; NOMAD and TiD hide it."""
    assert M.tdc(LatencyCase.MISS_MISS) > M.nomad(LatencyCase.MISS_MISS)
    assert M.tdc(LatencyCase.MISS_MISS) > M.tid(LatencyCase.MISS_MISS)
    assert M.nomad(LatencyCase.MISS_MISS) < M.tdc(LatencyCase.MISS_MISS) / 2


def test_miss_hit_adds_walk():
    for fn in (M.tid, M.tdc, M.nomad, M.ideal):
        assert fn(LatencyCase.MISS_HIT) == fn(LatencyCase.HIT_HIT) + M.walk


def test_hit_miss_is_uncacheable_for_os_schemes():
    assert M.tdc(LatencyCase.HIT_MISS) == M.sram_path + M.ddr_access
    assert M.nomad(LatencyCase.HIT_MISS) == M.sram_path + M.ddr_access


def test_tid_hit_miss_avoids_walk():
    assert M.tid(LatencyCase.MISS_MISS) - M.tid(LatencyCase.HIT_MISS) == M.walk


def test_page_copy_dominates_tdc_miss():
    assert M.page_copy > 5 * M.ddr_access


def test_table_covers_everything():
    t = M.table()
    assert set(t) == {"tid", "tdc", "nomad", "ideal"}
    for scheme in t.values():
        assert set(scheme) == {c.value for c in LatencyCase}
        assert all(v > 0 for v in scheme.values())
