"""FIFO fully-associative vs set-associative LRU (Section III-C2)."""

import pytest

from repro.analysis.replacement_study import (
    FullyAssociativeFIFO,
    ReplacementComparison,
    SetAssociativeLRU,
    compare_replacement,
    page_stream,
    replacement_study,
)
from repro.workloads.presets import workload


def test_fifo_hits_resident_pages():
    c = FullyAssociativeFIFO(2)
    assert not c.access(1)
    assert c.access(1)
    assert c.miss_rate == 0.5


def test_fifo_evicts_oldest():
    c = FullyAssociativeFIFO(2)
    c.access(1)
    c.access(2)
    c.access(3)  # evicts 1
    assert not c.access(1)
    assert c.access(3)


def test_lru_set_conflicts():
    """Pages mapping to one set conflict even with free space elsewhere."""
    c = SetAssociativeLRU(capacity_pages=8, ways=2)  # 4 sets
    s = c.num_sets
    c.access(0)
    c.access(s)
    c.access(2 * s)  # third page in set 0: evicts LRU (page 0)
    assert not c.access(0)


def test_full_associativity_avoids_conflicts():
    fifo = FullyAssociativeFIFO(8)
    lru = SetAssociativeLRU(8, ways=2)
    s = lru.num_sets
    pattern = [0, s, 2 * s] * 20  # pathological set conflict
    for p in pattern:
        fifo.access(p)
        lru.access(p)
    assert fifo.miss_rate < lru.miss_rate


def test_invalid_capacity():
    with pytest.raises(ValueError):
        FullyAssociativeFIFO(0)
    with pytest.raises(ValueError):
        SetAssociativeLRU(0, 4)


def test_page_stream_dedups_runs():
    spec = workload("cact", num_mem_ops=500)
    pages = list(page_stream(spec))
    assert all(a != b for a, b in zip(pages, pages[1:]))


def test_compare_replacement_on_preset():
    spec = workload("tc", dc_pages=2048, num_cores=4, num_mem_ops=4000)
    cmp = compare_replacement(spec, capacity_pages=512, ways=16)
    assert 0 <= cmp.fifo_miss_rate <= 1
    assert 0 <= cmp.lru_miss_rate <= 1
    assert isinstance(cmp.miss_reduction, float)


def test_fifo_competitive_on_presets():
    """On the synthetic presets (whose page IDs spread evenly over sets)
    FIFO-full-assoc at least matches set-assoc LRU; the paper's ~23%
    advantage comes from the skewed set pressure of real address
    streams, demonstrated by the pathological-conflict test above."""
    specs = [workload(n, dc_pages=2048, num_cores=4, num_mem_ops=6000)
             for n in ("tc", "pr", "sop")]
    results = replacement_study(specs, capacity_pages=512, ways=16)
    mean_reduction = sum(r.miss_reduction for r in results) / len(results)
    assert mean_reduction > -0.05


def test_zero_lru_misses_edge():
    cmp = ReplacementComparison("x", 0.0, 0.0)
    assert cmp.miss_reduction == 0.0
