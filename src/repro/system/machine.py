"""The simulated machine: cores + scheme + run loop.

``Machine.run`` drives the event queue until every core has drained its
trace, then snapshots a :class:`MachineResult` with the metrics the
paper's figures report: IPC, stall-cycle breakdowns, DC access time,
bandwidth by traffic class, row-buffer hit rates, tag-management
latency, and the derived Table I characteristics (RMHB, LLC MPMS).
"""

from __future__ import annotations

import gc
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.types import PAGE_SIZE, TrafficClass
from repro.config.system import SystemConfig
from repro.cpu.core import Core
from repro.engine.simulator import Simulator
from repro.guard.errors import DeadlockError


@dataclass
class MachineResult:
    """Everything the experiment harness needs from one run."""

    scheme: str
    workload: str
    runtime_cycles: int
    instructions: int
    ipc: float
    per_core_ipc: List[float]
    stall_breakdown: Dict[str, float]
    os_stall_ratio: float
    dc_access_time: float
    llc_misses: int
    llc_mpms: float
    page_fills: int
    page_writebacks: int
    rmhb_gbps: float
    hbm_bytes_by_class: Dict[str, int]
    ddr_bytes_by_class: Dict[str, int]
    hbm_bandwidth_gbps: float
    ddr_bandwidth_gbps: float
    hbm_row_hit_rate: float
    ddr_row_hit_rate: float
    dc_access_p95: int = 0
    tag_mgmt_latency: Optional[float] = None
    buffer_hit_ratio: Optional[float] = None
    extra: Dict[str, float] = field(default_factory=dict)

    def speedup_over(self, other: "MachineResult") -> float:
        """IPC relative to another run of the same workload."""
        if other.ipc <= 0:
            return 0.0
        return self.ipc / other.ipc

    def to_dict(self) -> Dict:
        """JSON-serializable flat view (for the CLI and log files)."""
        from dataclasses import asdict

        return asdict(self)

    @classmethod
    def from_dict(cls, d: Dict) -> "MachineResult":
        """Inverse of :meth:`to_dict` (campaign store / worker transport)."""
        from dataclasses import fields as dc_fields

        known = {f.name for f in dc_fields(cls)}
        unknown = set(d) - known
        if unknown:
            raise ValueError(
                f"MachineResult.from_dict: unknown keys {sorted(unknown)}"
            )
        return cls(**d)


class Machine:
    """One configured simulation: scheme + per-core traces."""

    def __init__(self, cfg: SystemConfig, scheme, traces, workload_name: str = "",
                 specs=None, seed: Optional[int] = None):
        if len(traces) != cfg.num_cores:
            raise ValueError(
                f"need {cfg.num_cores} traces, got {len(traces)}"
            )
        self.cfg = cfg
        self.scheme = scheme
        self.sim: Simulator = scheme.sim
        self.workload_name = workload_name
        self._finished = 0
        # Provenance for snapshot/fork: with the per-core WorkloadSpecs
        # and the seed recorded, a restored machine can re-materialize
        # its traces instead of carrying them in the pickle (see
        # :meth:`snapshot`).  Machines built from raw trace lists keep
        # None here and simply cannot be snapshotted.
        self._specs = list(specs) if specs is not None else None
        self._seed = seed
        self.cores = [
            Core(self.sim, i, cfg.core, scheme, trace, on_finish=self._core_done)
            for i, trace in enumerate(traces)
        ]

    def _core_done(self, _core: Core) -> None:
        self._finished += 1

    # -- warmup ------------------------------------------------------------

    def prewarm_pages(self, core_pages: List[list]) -> None:
        """Functionally pre-cache pages per core (the paper's fast-forward).

        Entries are bare VPNs or ``(vpn, dirty)`` pairs.  Cores are
        interleaved so the FIFO frame queue ends up age-mixed across
        cores, as it would be in steady state.
        """
        longest = max((len(p) for p in core_pages), default=0)
        for i in range(longest):
            for core_id, pages in enumerate(core_pages):
                if i >= len(pages):
                    continue
                entry = pages[i]
                if isinstance(entry, tuple):
                    vpn, dirty = entry
                else:
                    vpn, dirty = entry, False
                self.scheme.warm_page(core_id, vpn, dirty=dirty)

    # -- snapshot / fork ---------------------------------------------------

    def _sync_all_stats(self, swallow: bool = False) -> None:
        """Flush every component's set_sync counters into its StatGroup.

        ``swallow=True`` is for exception paths: a half-updated
        component's sync hook may itself raise, and that must not mask
        the original failure (the bundle still gets the other groups).
        """
        for component in self.sim.components:
            try:
                component.stats.sync()
            except Exception:
                if not swallow:
                    raise

    def snapshot(self) -> bytes:
        """Serialize the built+prewarmed machine for later forking.

        Must be taken at the build+prewarm boundary: prewarm is
        functional, so the event queue is empty and no scheduled closure
        needs to survive pickling.  Counters are ``sync()``-flushed
        first so the captured state carries exact totals.  The blob
        excludes the traces (cores drop them, see ``Core.__getstate__``);
        :meth:`restore` re-materializes them from the recorded specs,
        which is what lets one snapshot serve every (seed, num_mem_ops).
        """
        import pickle

        from repro.snapshot import SNAPSHOT_VERSION, SnapshotError

        if self._specs is None or self._seed is None:
            raise SnapshotError(
                "machine was built from raw traces (no WorkloadSpecs "
                "recorded); only builder-produced machines can snapshot"
            )
        if self.sim.events_processed or self.sim.pending_events:
            raise SnapshotError(
                f"snapshot must be taken before the run starts "
                f"(events_processed={self.sim.events_processed}, "
                f"pending={self.sim.pending_events})"
            )
        self._sync_all_stats()
        payload = {
            "version": SNAPSHOT_VERSION,
            "machine": self,
            "specs": self._specs,
            "seed": self._seed,
        }
        # Same rationale as run(): serializing the machine graph churns
        # through thousands of temporaries and cyclic-GC passes over the
        # (large) live heap are pure overhead here.
        was_enabled = gc.isenabled()
        if was_enabled:
            gc.disable()
        try:
            return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        finally:
            if was_enabled:
                gc.enable()

    @classmethod
    def restore(cls, blob: bytes, seed: Optional[int] = None,
                num_mem_ops: Optional[int] = None) -> "Machine":
        """Fork a machine from a :meth:`snapshot` blob.

        Every call deserializes a fresh, independent object graph, so
        forks never share mutable state.  ``seed``/``num_mem_ops``
        override the ROI-side knobs the snapshot is independent of; the
        traces are re-materialized accordingly (hitting the trace cache
        when warm).  The forked machine is bit-identical to a freshly
        built one -- pinned by the golden fork test.
        """
        import pickle

        from repro.snapshot import SNAPSHOT_VERSION, SnapshotError
        from repro.workloads.synthetic import materialized_trace

        # Unpickling materializes the whole machine graph (one object
        # per DC frame and then some); with collection enabled every few
        # thousand allocations trigger a full-heap GC pass, which can
        # make a fork cost as much as the build it replaces.
        was_enabled = gc.isenabled()
        if was_enabled:
            gc.disable()
        try:
            payload = pickle.loads(blob)
        except Exception as exc:
            raise SnapshotError(f"unreadable snapshot: {exc}") from exc
        finally:
            if was_enabled:
                gc.enable()
        if not isinstance(payload, dict) or "version" not in payload:
            raise SnapshotError("unreadable snapshot: not a snapshot payload")
        version = payload["version"]
        if version != SNAPSHOT_VERSION:
            raise SnapshotError(
                f"snapshot version {version!r} is not the supported "
                f"version {SNAPSHOT_VERSION!r}; rebuild instead of forking"
            )
        machine: "Machine" = payload["machine"]
        specs = payload["specs"]
        if seed is None:
            seed = payload["seed"]
        new_specs = []
        for core, spec in zip(machine.cores, specs):
            if num_mem_ops is not None and spec.num_mem_ops != num_mem_ops:
                spec = spec.scaled(num_mem_ops=num_mem_ops)
            core.attach_trace(materialized_trace(spec, seed, core.core_id))
            new_specs.append(spec)
        machine._specs = new_specs
        machine._seed = seed
        return machine

    # -- run ------------------------------------------------------------------

    def run(self, max_events: Optional[int] = None, guard=None,
            telemetry=None) -> MachineResult:
        """Drive the simulation to completion.

        ``guard`` opts into paranoid mode (off by default, so golden
        bit-identity and bench numbers are untouched): pass ``True``, a
        ``repro.guard.GuardConfig``, or a ``repro.guard.Guard``.  A
        guarded run validates component invariants every N events, trips
        a forward-progress watchdog on livelock/deadlock, and writes a
        diagnostic bundle (replayable via ``python -m repro replay``)
        when it dies.

        ``telemetry`` opts into observability (``True``, a
        ``repro.telemetry.TelemetryConfig``, or a ``Telemetry``): a
        cycle sampler plus a span tracer whose hooks are strictly
        read-only, so observed runs stay bit-identical too.  When the
        run dies under a guard, the crash bundle carries the last
        telemetry window.
        """
        from repro.guard import as_guard
        from repro.telemetry import as_telemetry

        guard_obj = as_guard(guard)
        tel_obj = as_telemetry(telemetry)
        if guard_obj is not None:
            guard_obj.install(self)
            self.sim.attach_guard(guard_obj)
        if tel_obj is not None:
            tel_obj.install(self)
        for core in self.cores:
            core.start()
        # The event loop allocates heavily (events, closures, cache
        # lines) while the big structures (page tables, CPDs) stay live;
        # cyclic GC scans of those structures are pure overhead for the
        # duration of the run, so pause collection and let refcounting
        # do the work.  Purely a wall-clock optimization: the simulation
        # itself is allocation-order independent.
        was_enabled = gc.isenabled()
        if was_enabled:
            gc.disable()
        try:
            try:
                self.sim.run(max_events=max_events)
                if guard_obj is not None:
                    # Catch corruption introduced after the last sweep.
                    guard_obj.check_now()
                if self._finished != len(self.cores):
                    raise DeadlockError(self._stall_report())
            except Exception as exc:
                if guard_obj is not None:
                    guard_obj.last_exception = exc
                    guard_obj.events_at_failure = self.sim.events_processed
                    if tel_obj is not None:
                        guard_obj.telemetry_window = tel_obj.last_window()
                    # Flush set_sync counters first: the bundle's
                    # component dumps (and their replay) must see exact
                    # totals, not values stale since the last read.
                    self._sync_all_stats(swallow=True)
                    bundle_path = guard_obj.write_bundle(exc)
                    if bundle_path is not None:
                        try:
                            exc.bundle_path = str(bundle_path)
                        except AttributeError:
                            pass  # exceptions with __slots__
                raise
        finally:
            # Exception-safe teardown: whatever killed the run, gc comes
            # back on, the guard hooks detach, and the plain-int counter
            # flush still happens so no caller ever observes stale
            # StatGroup values.
            if was_enabled:
                gc.enable()
            if guard_obj is not None:
                self.sim.attach_guard(None)
            if tel_obj is not None:
                tel_obj.uninstall()
            self._sync_all_stats(swallow=True)
        result = self.result()
        if tel_obj is not None:
            tel_obj.finalize(self, result)
        return result

    def _stall_report(self) -> str:
        """Queue head + per-component summaries for a stalled drain."""
        from repro.guard.core import progress_report

        lines = [
            f"simulation stalled: {self._finished}/{len(self.cores)} cores "
            f"finished, {self.sim.pending_events} events pending"
        ]
        lines.extend(progress_report(self))
        return "\n".join(lines)

    def metrics(self) -> Dict[str, float]:
        """Flat ``{component.stat: value}`` dump of every StatGroup.

        The full raw counter set behind :meth:`result` -- what
        ``repro run --metrics-out`` writes.  Reading flushes every
        set_sync stat, which is idempotent by contract.
        """
        out: Dict[str, float] = {}
        for component in self.sim.components:
            for key, value in component.stats.as_dict().items():
                out[f"{component.name}.{key}"] = value
        return out

    def result(self) -> MachineResult:
        cfg = self.cfg
        runtime = max(core.finish_time or 0 for core in self.cores)
        runtime = max(runtime, 1)
        instructions = sum(core.inst_count for core in self.cores)
        cps = cfg.cycles_per_second
        seconds = runtime / cps

        # Aggregate stall breakdown averaged over cores.
        breakdown: Dict[str, float] = {}
        for core in self.cores:
            for k, v in core.stall_breakdown().items():
                breakdown[k] = breakdown.get(k, 0.0) + v / len(self.cores)

        scheme = self.scheme
        llc_misses = scheme.llc_misses()
        fills = scheme.page_fills()
        writebacks = scheme.page_writebacks()

        hbm_bytes = {tc.name: b for tc, b in scheme.hbm.bytes_by_class().items()}
        ddr_bytes = {tc.name: b for tc, b in scheme.ddr.bytes_by_class().items()}

        tag_latency = None
        if hasattr(scheme, "tag_mgmt_latency_mean"):
            tag_latency = scheme.tag_mgmt_latency_mean()
        buffer_ratio = None
        if hasattr(scheme, "buffer_hit_ratio"):
            buffer_ratio = scheme.buffer_hit_ratio()

        return MachineResult(
            scheme=scheme.scheme_name,
            workload=self.workload_name,
            runtime_cycles=runtime,
            instructions=instructions,
            ipc=instructions / runtime,
            per_core_ipc=[core.ipc for core in self.cores],
            stall_breakdown=breakdown,
            os_stall_ratio=breakdown.get("os", 0.0),
            dc_access_time=scheme.dc_access_time_mean(),
            dc_access_p95=scheme.dc_access_time_percentile(95),
            llc_misses=llc_misses,
            llc_mpms=llc_misses / (seconds * 1e6),
            page_fills=fills,
            page_writebacks=writebacks,
            rmhb_gbps=scheme.fill_bytes() / seconds / 1e9,
            hbm_bytes_by_class=hbm_bytes,
            ddr_bytes_by_class=ddr_bytes,
            hbm_bandwidth_gbps=scheme.hbm.bandwidth_gbps(runtime, cps),
            ddr_bandwidth_gbps=scheme.ddr.bandwidth_gbps(runtime, cps),
            hbm_row_hit_rate=scheme.hbm.row_hit_rate,
            ddr_row_hit_rate=scheme.ddr.row_hit_rate,
            tag_mgmt_latency=tag_latency,
            buffer_hit_ratio=buffer_ratio,
        )
