"""System assembly: build and run a complete simulated machine."""

from repro.system.builder import SCHEME_REGISTRY, build_machine
from repro.system.machine import Machine, MachineResult

__all__ = ["Machine", "MachineResult", "SCHEME_REGISTRY", "build_machine"]
