"""Factory that assembles a runnable machine for one (scheme, workload).

This is the main entry point downstream users need:

    from repro import build_machine
    machine = build_machine("nomad", workload_name="cact")
    result = machine.run()
"""

from __future__ import annotations

from typing import Dict, List, Optional, Type

from repro.config.schemes import NomadConfig, TDCConfig, TiDConfig
from repro.config.system import SystemConfig, scaled_system
from repro.core.nomad import IdealScheme, NomadScheme
from repro.engine.simulator import Simulator
from repro.schemes.base import SchemeBase
from repro.schemes.baseline import BaselineScheme
from repro.schemes.ideal import UnthrottledScheme
from repro.schemes.tdc import TDCScheme
from repro.schemes.tid import TiDScheme
from repro.system.machine import Machine
from repro.workloads.presets import warm_plan, workload
from repro.workloads.synthetic import WorkloadSpec, materialized_trace

SCHEME_REGISTRY: Dict[str, Type[SchemeBase]] = {
    "baseline": BaselineScheme,
    "tid": TiDScheme,
    "tdc": TDCScheme,
    "nomad": NomadScheme,
    "ideal": IdealScheme,
    "unthrottled": UnthrottledScheme,
}


def make_scheme(
    name: str,
    sim: Simulator,
    cfg: SystemConfig,
    nomad_cfg: Optional[NomadConfig] = None,
    tdc_cfg: Optional[TDCConfig] = None,
    tid_cfg: Optional[TiDConfig] = None,
) -> SchemeBase:
    cls = SCHEME_REGISTRY.get(name)
    if cls is None:
        raise KeyError(f"unknown scheme {name!r}; choose from {sorted(SCHEME_REGISTRY)}")
    if name == "nomad":
        return NomadScheme(sim, cfg, nomad_cfg or NomadConfig())
    if name == "tdc":
        return TDCScheme(sim, cfg, tdc_cfg or TDCConfig())
    if name == "tid":
        return TiDScheme(sim, cfg, tid_cfg or TiDConfig())
    return cls(sim, cfg)


def build_machine(
    scheme: str,
    workload_name: Optional[str] = None,
    cfg: Optional[SystemConfig] = None,
    spec: Optional[WorkloadSpec] = None,
    specs: Optional[List[WorkloadSpec]] = None,
    num_mem_ops: int = 50_000,
    seed: int = 1,
    prewarm: bool = True,
    nomad_cfg: Optional[NomadConfig] = None,
    tdc_cfg: Optional[TDCConfig] = None,
    tid_cfg: Optional[TiDConfig] = None,
) -> Machine:
    """Build a ready-to-run machine.

    Provide one of:

    * ``workload_name`` -- a Table I preset; every core runs its own
      instance (the paper's rate-mode setup);
    * ``spec`` -- an explicit :class:`WorkloadSpec`, rate mode;
    * ``specs`` -- one spec per core (heterogeneous multi-programmed
      mix; each core keeps its private address space).

    ``prewarm`` pre-populates the DRAM cache for reuse-heavy workloads,
    mirroring the paper's fast-forward warmup.
    """
    if cfg is None:
        cfg = scaled_system()
    if specs is None:
        if spec is None:
            if workload_name is None:
                raise ValueError("provide workload_name, spec, or specs")
            spec = workload(
                workload_name,
                dc_pages=cfg.dc_pages,
                num_cores=cfg.num_cores,
                num_mem_ops=num_mem_ops,
            )
        specs = [spec] * cfg.num_cores
    elif len(specs) != cfg.num_cores:
        raise ValueError(f"need {cfg.num_cores} specs, got {len(specs)}")
    sim = Simulator()
    scheme_obj = make_scheme(scheme, sim, cfg, nomad_cfg, tdc_cfg, tid_cfg)
    # Traces are deterministic per (spec, seed, core) and a comparison
    # builds one machine per scheme, so materialization is memoized; the
    # cores iterate a shared immutable list.
    traces = [materialized_trace(s, seed, i) for i, s in enumerate(specs)]
    name = specs[0].name if len({s.name for s in specs}) == 1 else "mix"
    # Specs + seed ride along so Machine.snapshot can re-materialize the
    # traces on restore instead of pickling them.
    machine = Machine(cfg, scheme_obj, traces, workload_name=name,
                      specs=specs, seed=seed)
    if prewarm and scheme != "baseline":
        share = max(1, cfg.dc_pages // cfg.num_cores)
        machine.prewarm_pages([warm_plan(s, share) for s in specs])
    return machine
