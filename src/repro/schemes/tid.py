"""TiD: the HW-based tags-in-DRAM cache (Unison-style, Section IV-A).

A 4-way set-associative DRAM cache with 1 KB lines and an *ideal way
predictor*.  Tags live in on-package DRAM rows alongside data, so every
DC access spends on-package bandwidth on metadata: a tag-read burst
before the data access and a tag/LRU/dirty update burst after it.  That
metadata tax is TiD's fundamental drawback (Fig. 1a, Fig. 10) -- it
stretches the effective DC access time for high-MPMS workloads.

Miss handling is non-blocking through a line-granular MSHR file with
critical-word-first fetch: the demanded 64 B sub-block returns to the
LLC as soon as it arrives from off-package memory.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, List, Optional, Tuple

from repro.cache.mshr import MSHRFile
from repro.common.types import MemAccess, TrafficClass
from repro.config.schemes import TiDConfig
from repro.config.system import SystemConfig
from repro.engine.simulator import Simulator
from repro.schemes.base import SchemeBase


class TiDTagArray:
    """Set-associative tag state with way assignment and LRU."""

    def __init__(self, num_sets: int, ways: int):
        self.num_sets = num_sets
        self.ways = ways
        # Per set: line_id -> (way, dirty); insertion order tracks LRU
        # (entries are re-inserted on touch).
        self._sets: List["OrderedDict[int, list]"] = [
            OrderedDict() for _ in range(num_sets)
        ]

    def set_of(self, line_id: int) -> int:
        return line_id % self.num_sets

    def lookup(self, line_id: int, touch: bool = True) -> Optional[list]:
        """Returns the ``[way, dirty]`` record or None."""
        s = self._sets[self.set_of(line_id)]
        rec = s.get(line_id)
        if rec is not None and touch:
            s.move_to_end(line_id)
        return rec

    def allocate(self, line_id: int) -> Tuple[int, Optional[Tuple[int, int, bool]]]:
        """Choose a way for ``line_id``.

        Returns ``(way, victim)`` where victim is ``(line_id, way, dirty)``
        or None when a way was free.
        """
        s = self._sets[self.set_of(line_id)]
        if line_id in s:
            raise KeyError(f"line {line_id} already present")
        victim = None
        if len(s) >= self.ways:
            victim_id, (victim_way, victim_dirty) = s.popitem(last=False)
            victim = (victim_id, victim_way, victim_dirty)
            way = victim_way
        else:
            used = {rec[0] for rec in s.values()}
            way = next(w for w in range(self.ways) if w not in used)
        s[line_id] = [way, False]
        return way, victim

    def mark_dirty(self, line_id: int) -> None:
        rec = self.lookup(line_id, touch=False)
        if rec is not None:
            rec[1] = True

    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)


class _ActiveFill:
    """One in-flight 1 KB line fill and its merged waiters."""

    __slots__ = ("line_id", "way", "arrivals", "waiters")

    def __init__(self, line_id: int, way: int):
        self.line_id = line_id
        self.way = way
        self.arrivals: Optional[List[int]] = None
        self.waiters: List[Tuple[int, Callable[[int], None]]] = []


class TiDScheme(SchemeBase):
    """Hardware-managed DRAM cache with tags in on-package DRAM."""

    scheme_name = "tid"

    def __init__(
        self, sim: Simulator, cfg: SystemConfig, tid_cfg: TiDConfig = TiDConfig()
    ):
        super().__init__(sim, cfg)
        self.tid_cfg = tid_cfg
        dc_bytes = cfg.dc_pages * 4096
        num_sets = dc_bytes // (tid_cfg.line_size * tid_cfg.ways)
        if num_sets <= 0:
            raise ValueError("DRAM cache too small for the TiD organization")
        self.tags = TiDTagArray(num_sets, tid_cfg.ways)
        self.mshrs = MSHRFile(tid_cfg.mshrs)
        self._active: Dict[int, _ActiveFill] = {}
        self._pending_access: Dict[int, MemAccess] = {}
        self._sub_per_line = tid_cfg.line_size // 64
        self._line_shift = tid_cfg.line_size.bit_length() - 1

        self._tag_reads = self.stats.counter("tag_reads")
        self._tag_updates = self.stats.counter("tag_updates")
        self._dc_hits = self.stats.counter("dc_hits")
        self._dc_misses = self.stats.counter("dc_misses")
        self._line_fills = self.stats.counter("line_fills")
        self._line_writebacks = self.stats.counter("line_writebacks")

    # -- address helpers ----------------------------------------------------

    def _line_id(self, paddr: int) -> int:
        return paddr >> self._line_shift

    def _hbm_line_base(self, line_id: int, way: int) -> int:
        s = self.tags.set_of(line_id)
        return (s * self.tid_cfg.ways + way) * self.tid_cfg.line_size

    def _hbm_tag_addr(self, line_id: int) -> int:
        """Tags share the set's DRAM row (Unison's compound access)."""
        return self._hbm_line_base(line_id, 0)

    # -- DC access path -------------------------------------------------------

    def dc_access(self, access: MemAccess, fill_cb: Callable[[int], None]) -> None:
        """Probe and access.

        The tag burst travels with the data in the same DRAM row (Unison's
        compound access with an ideal way predictor), so on a *hit* the tag
        read costs bandwidth but no extra serialized latency.  On a *miss*
        the fetch can only start once the tag read has confirmed the miss.
        """
        start = self.sim.now
        paddr = access.paddr if access.paddr is not None else access.addr
        line_id = self._line_id(paddr)
        self._tag_reads.inc()
        tag_done = self.hbm.access(
            self._hbm_tag_addr(line_id), False, TrafficClass.METADATA
        )
        rec = self.tags.lookup(line_id)
        if rec is not None and line_id not in self._active:
            # DC hit: the data burst follows the tag in the open row.
            self._dc_hits.inc()
            way = rec[0]
            if access.is_write:
                rec[1] = True
            data_addr = self._hbm_line_base(line_id, way) + (
                (paddr >> 6) % self._sub_per_line
            ) * 64

            def _done() -> None:
                end = self.sim.now
                self._record_dc_access(start, end)
                self._touch_metadata(line_id)
                fill_cb(end)

            self.hbm.access(
                data_addr, access.is_write, TrafficClass.DEMAND, callback=_done
            )
            return
        self.sim.schedule_at(
            tag_done,
            lambda: self._after_probe(access, paddr, line_id, start, fill_cb),
        )

    def _after_probe(
        self,
        access: MemAccess,
        paddr: int,
        line_id: int,
        start: int,
        fill_cb: Callable[[int], None],
    ) -> None:
        sub = (paddr >> 6) % self._sub_per_line
        rec = self.tags.lookup(line_id)
        if rec is not None and line_id not in self._active:
            # The line landed while the tag read was in flight: serve it.
            self._dc_hits.inc()
            if access.is_write:
                rec[1] = True

            def _late_hit() -> None:
                end = self.sim.now
                self._record_dc_access(start, end)
                fill_cb(end)

            self.hbm.access(
                self._hbm_line_base(line_id, rec[0]) + sub * 64,
                access.is_write,
                TrafficClass.DEMAND,
                callback=_late_hit,
            )
            return

        # DC miss (or the line is still being filled): go through MSHRs.
        self._dc_misses.inc()
        waiter = self._make_waiter(start, fill_cb)
        if line_id in self._active:
            self._attach_waiter(self._active[line_id], sub, waiter)
            self.mshrs.merges += 1
            return
        outcome = self.mshrs.allocate(line_id, self.sim.now, waiter)
        if outcome == "new":
            self._pending_access[line_id] = access
            self._start_fill(line_id, sub, access.is_write)
        elif outcome == "queued" and line_id not in self._pending_access:
            self._pending_access[line_id] = access
        elif outcome == "merged":
            entry = self.mshrs.lookup(line_id)
            fill = self._active.get(line_id)
            if fill is not None:
                entry.waiters.remove(waiter)
                self._attach_waiter(fill, sub, waiter)

    def _make_waiter(self, start: int, fill_cb: Callable[[int], None]):
        def _respond(t: int) -> None:
            self._record_dc_access(start, t)
            fill_cb(t)

        return _respond

    def _attach_waiter(self, fill: _ActiveFill, sub: int, waiter) -> None:
        if fill.arrivals is not None:
            ready = max(self.sim.now, fill.arrivals[sub])
            self.sim.schedule_at(ready, lambda: waiter(ready))
        else:
            fill.waiters.append((sub, waiter))

    # -- miss handling ---------------------------------------------------------

    def _start_fill(self, line_id: int, demanded_sub: int, is_write: bool) -> None:
        self._line_fills.inc()
        way, victim = self.tags.allocate(line_id)
        if is_write:
            self.tags.mark_dirty(line_id)
        if victim is not None and victim[2]:
            self._writeback_line(victim[0], victim[1])
        fill = _ActiveFill(line_id, way)
        self._active[line_id] = fill

        # Critical-word-first fetch of the 1 KB line from off-package DDR.
        order = list(range(self._sub_per_line))
        order.remove(demanded_sub)
        order.insert(0, demanded_sub)
        arrivals = [0] * self._sub_per_line
        base = line_id * self.tid_cfg.line_size
        for s in order:
            arrivals[s] = self.ddr.access(base + s * 64, False, TrafficClass.FILL)
        fill.arrivals = arrivals

        # Wake waiters registered before arrivals were known (the MSHR
        # entry's waiters include the original access and early merges).
        entry = self.mshrs.lookup(line_id)
        demanded_ready = arrivals[demanded_sub]
        for waiter in entry.waiters:
            self.sim.schedule_at(demanded_ready, _fire_at(waiter, demanded_ready))
        entry.waiters = []
        for sub, waiter in fill.waiters:
            ready = arrivals[sub]
            self.sim.schedule_at(ready, _fire_at(waiter, ready))
        fill.waiters = []

        self.sim.schedule_at(max(arrivals), lambda: self._drain_fill(fill))

    def _drain_fill(self, fill: _ActiveFill) -> None:
        """All sub-blocks arrived: write the line + its tag into the DC."""
        base = self._hbm_line_base(fill.line_id, fill.way)
        for s in range(self._sub_per_line):
            self.hbm.access(base + s * 64, True, TrafficClass.FILL)
        self._touch_metadata(fill.line_id)
        # Late waiters were serviced at their arrival times already.
        for sub, waiter in fill.waiters:
            ready = max(self.sim.now, fill.arrivals[sub])
            self.sim.schedule_at(ready, _fire_at(waiter, ready))
        fill.waiters = []
        del self._active[fill.line_id]
        self.mshrs.retire(fill.line_id, self.sim.now)
        self._pending_access.pop(fill.line_id, None)
        for promoted in self.mshrs.drain_overflow(self.sim.now):
            access = self._pending_access[promoted]
            paddr = access.paddr if access.paddr is not None else access.addr
            sub = (paddr >> 6) % self._sub_per_line
            self._start_fill(promoted, sub, access.is_write)

    def _writeback_line(self, line_id: int, way: int) -> None:
        """Dirty victim: read 1 KB out of the DC, write it off-package."""
        self._line_writebacks.inc()
        base = self._hbm_line_base(line_id, way)
        arrivals = [
            self.hbm.access(base + s * 64, False, TrafficClass.WRITEBACK)
            for s in range(self._sub_per_line)
        ]
        ddr_base = line_id * self.tid_cfg.line_size

        def _drain() -> None:
            for s in range(self._sub_per_line):
                self.ddr.access(ddr_base + s * 64, True, TrafficClass.WRITEBACK)

        self.sim.schedule_at(max(arrivals), _drain)

    def _touch_metadata(self, line_id: int) -> None:
        """LRU/dirty/tag update burst (fire-and-forget bandwidth)."""
        self._tag_updates.inc()
        self.hbm.access(self._hbm_tag_addr(line_id), True, TrafficClass.METADATA)

    # -- LLC writebacks ----------------------------------------------------------

    def dc_writeback(self, paddr: int) -> None:
        line_id = self._line_id(paddr)
        rec = self.tags.lookup(line_id, touch=False)
        if rec is not None:
            rec[1] = True
            sub = (paddr >> 6) % self._sub_per_line
            self.hbm.access(
                self._hbm_line_base(line_id, rec[0]) + sub * 64,
                True,
                TrafficClass.DEMAND,
            )
            self._touch_metadata(line_id)
        else:
            self.ddr.access(paddr, True, TrafficClass.DEMAND)

    def _warm_cache_page(self, core_id, vpn, pte, dirty=False) -> None:
        """Pre-install the page's 1 KB lines in the tag array."""
        base_line = (pte.page_frame_num * 4096) >> self._line_shift
        lines_per_page = 4096 // self.tid_cfg.line_size
        for i in range(lines_per_page):
            if self.tags.lookup(base_line + i, touch=False) is None:
                self.tags.allocate(base_line + i)
            if dirty:
                self.tags.mark_dirty(base_line + i)

    # -- reporting ----------------------------------------------------------------

    def fill_bytes(self) -> int:
        return self._line_fills.value * self.tid_cfg.line_size

    def page_fills(self) -> int:
        return self._line_fills.value

    def page_writebacks(self) -> int:
        return self._line_writebacks.value

    def dc_hit_rate(self) -> float:
        total = self._dc_hits.value + self._dc_misses.value
        return self._dc_hits.value / total if total else 0.0


def _fire_at(waiter: Callable[[int], None], t: int):
    def _fire() -> None:
        waiter(t)

    return _fire
