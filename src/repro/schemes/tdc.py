"""TDC: the state-of-the-art *blocking* OS-managed DRAM cache.

Implemented, as the paper does (Section IV-A), like the NOMAD front-end
minus the non-blocking machinery: the DC tag miss handler performs the
page copy itself and only resumes the application thread when the copy
has fully landed in the DRAM cache.  There is no global frame-management
mutex penalty (TDC locks only the critical PTEs), so its tag-management
latency is the flat 400 cycles -- its weakness is the thousands of
cycles of blocking copy, which scales with the workload's required
miss-handling bandwidth (RMHB).
"""

from __future__ import annotations

from typing import Callable, Dict, Set

from repro.common.types import DC_SPACE_BIT, MemAccess, PAGE_SIZE, TrafficClass
from repro.config.schemes import TDCConfig
from repro.config.system import SystemConfig
from repro.core.frontend import DataManager, FrontEnd
from repro.dram.device import DRAMDevice
from repro.engine.simulator import Simulator
from repro.schemes.base import SchemeBase, is_dc_addr

_DEMAND = TrafficClass.DEMAND


class BlockingCopyManager(DataManager):
    """Page copies executed synchronously by the OS on the faulting CPU."""

    # Telemetry tracer hook (repro.telemetry); instance attr when armed.
    _tel = None

    def __init__(self, sim: Simulator, hbm: DRAMDevice, ddr: DRAMDevice):
        self.sim = sim
        self.hbm = hbm
        self.ddr = ddr
        self._busy_fills: Set[int] = set()
        self.fills = 0
        self.writebacks = 0

    def fill(self, cfn, pfn, sub_block, on_offloaded, on_resume) -> None:
        """Copy the page in; the thread resumes only when it is done."""
        self.fills += 1
        self._busy_fills.add(cfn)
        if self._tel is not None:
            self._tel.copy_begin(
                ("tdc", cfn), "fill", self.sim.now,
                {"cfn": cfn, "pfn": pfn},
            )
        on_offloaded()
        arrivals = [
            self.ddr.access(pfn * PAGE_SIZE + i * 64, False, TrafficClass.FILL)
            for i in range(PAGE_SIZE // 64)
        ]

        def _drain() -> None:
            ends = [
                self.hbm.access(cfn * PAGE_SIZE + i * 64, True, TrafficClass.FILL)
                for i in range(PAGE_SIZE // 64)
            ]
            done = max(ends)
            self.sim.schedule_at(done, lambda: self._fill_done(cfn, done, on_resume))

        self.sim.schedule_at(max(arrivals), _drain)

    def _fill_done(self, cfn: int, t: int, on_resume: Callable[[int], None]) -> None:
        self._busy_fills.discard(cfn)
        if self._tel is not None:
            self._tel.copy_end(("tdc", cfn), self.sim.now)
        on_resume(t)

    def writeback(self, cfn, pfn, on_offloaded) -> None:
        """Copy-out runs on a kernel thread; the daemon does not wait."""
        self.writebacks += 1
        if self._tel is not None:
            self._tel.copy_begin(
                ("tdc-wb", cfn), "writeback", self.sim.now,
                {"cfn": cfn, "pfn": pfn},
            )
        arrivals = [
            self.hbm.access(cfn * PAGE_SIZE + i * 64, False, TrafficClass.WRITEBACK)
            for i in range(PAGE_SIZE // 64)
        ]

        def _drain() -> None:
            ends = [
                self.ddr.access(pfn * PAGE_SIZE + i * 64, True, TrafficClass.WRITEBACK)
                for i in range(PAGE_SIZE // 64)
            ]
            if self._tel is not None:
                self._tel.copy_end(("tdc-wb", cfn), max(ends))

        self.sim.schedule_at(max(arrivals), _drain)
        on_offloaded()

    def frame_busy(self, cfn: int) -> bool:
        return cfn in self._busy_fills


class TDCScheme(SchemeBase):
    """Blocking OS-managed (tagless) DRAM cache."""

    scheme_name = "tdc"

    def __init__(
        self, sim: Simulator, cfg: SystemConfig, tdc_cfg: TDCConfig = TDCConfig()
    ):
        super().__init__(sim, cfg)
        self.tdc_cfg = tdc_cfg
        self.data_manager = BlockingCopyManager(sim, self.hbm, self.ddr)
        self.frontend = FrontEnd(
            sim,
            cfg,
            self.data_manager,
            self.page_tables,
            self.tables,
            self.hierarchy,
            self.hbm,
            use_mutex=False,
            tag_mgmt_latency=tdc_cfg.tag_mgmt_latency,
            eviction_threshold=tdc_cfg.eviction_threshold_frames,
            eviction_batch=tdc_cfg.eviction_batch,
            eviction_cost=tdc_cfg.eviction_cost_per_frame,
            assume_all_dirty=not tdc_cfg.dirty_in_cache_bits,
        )
        self.frontend.attach_tlbs(self.tlbs)
        # dc_access bindings: one DC probe + CPD poke per LLC miss.
        self._cpd_list = self.frontend.cpds._cpds
        self._hbm_access = self.hbm.access
        self._ddr_access = self.ddr.access

    def on_tlb_change(self, core_id, vpn, pte, installed) -> None:
        self.frontend.tlb_changed(core_id, pte, installed)

    def _needs_os_intervention(self, pte) -> bool:
        return pte.is_tag_miss

    def translate_miss(self, core_id, vpn, now, done, addr=0) -> None:
        pte, walk = self.walkers[core_id].walk(vpn)
        ready = now + walk

        def _after_walk() -> None:
            if pte.is_tag_miss:
                self.frontend.handle_tag_miss(
                    core_id, vpn, pte, addr, _install
                )
            else:
                _install(self.sim.now)

        def _install(t: int) -> None:
            self.tlbs[core_id].install(vpn, pte)
            done(t, pte)

        self.sim.schedule_at(ready, _after_walk)

    def dc_access(self, access: MemAccess, fill_cb: Callable[[int], None]) -> None:
        """Tag hits guarantee data hits: the DC access goes straight in."""
        start = self.sim.now
        paddr = access.paddr if access.paddr is not None else access.addr
        if is_dc_addr(paddr):
            hbm_addr = paddr & ~DC_SPACE_BIT
            if access.is_write:
                self._cpd_list[hbm_addr >> 12].dirty_in_cache = True

            def _done() -> None:
                end = self.sim.now
                self._record_dc_access(start, end)
                fill_cb(end)

            self._hbm_access(hbm_addr, access.is_write, _DEMAND, _done)
        else:
            self._ddr_access(
                paddr, access.is_write, _DEMAND,
                lambda: fill_cb(self.sim.now),
            )

    def dc_writeback(self, paddr: int) -> None:
        if is_dc_addr(paddr):
            hbm_addr = paddr & ~DC_SPACE_BIT
            self.frontend.cpds[hbm_addr >> 12].dirty_in_cache = True
            self.hbm.access(hbm_addr, True, TrafficClass.DEMAND)
        else:
            self.ddr.access(paddr, True, TrafficClass.DEMAND)

    def _warm_cache_page(self, core_id, vpn, pte, dirty=False) -> None:
        if pte.is_tag_miss:
            self.frontend.warm_fill(core_id, vpn, pte, dirty=dirty)

    # -- reporting --------------------------------------------------------

    def tag_mgmt_latency_mean(self) -> float:
        return self.frontend.stats.get("tag_mgmt_latency").mean

    def page_fills(self) -> int:
        return self.frontend.stats.get("fills").value

    def page_writebacks(self) -> int:
        return self.frontend.stats.get("writeback_commands").value
