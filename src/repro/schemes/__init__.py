"""DRAM cache schemes: the paper's baselines and upper/lower bounds.

* ``BaselineScheme`` -- off-package DDR4 only (performance lower bound).
* ``TiDScheme``      -- HW-based tags-in-DRAM (Unison-style) cache.
* ``TDCScheme``      -- blocking OS-managed tagless DRAM cache.
* ``IdealScheme``    -- zero-cost OS-managed cache (upper bound).

NOMAD itself lives in :mod:`repro.core` (it is the paper's contribution).
"""

from repro.schemes.base import DC_SPACE_BIT, SchemeBase
from repro.schemes.baseline import BaselineScheme
from repro.schemes.ideal import UnthrottledScheme
from repro.schemes.tdc import TDCScheme
from repro.schemes.tid import TiDScheme

__all__ = [
    "BaselineScheme",
    "DC_SPACE_BIT",
    "SchemeBase",
    "TDCScheme",
    "TiDScheme",
    "UnthrottledScheme",
]
