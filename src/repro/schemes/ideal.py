"""The Unthrottled characterization bound.

Fills and writebacks teleport (no traffic, no latency).  This
configuration measures the *inherent* workload demand: the required
miss-handling bandwidth (RMHB) and LLC MPMS of Table I, which by
definition must be observable even beyond the off-package bandwidth the
real schemes would saturate.  (The Fig. 9 upper bound -- ``ideal``, a
"perfect NOMAD" with free OS routines but real copy traffic -- lives in
:mod:`repro.core.nomad`.)
"""

from __future__ import annotations

from typing import Callable

from repro.common.types import DC_SPACE_BIT, MemAccess, TrafficClass
from repro.config.system import SystemConfig
from repro.core.frontend import DataManager, FrontEnd
from repro.engine.simulator import Simulator
from repro.schemes.base import SchemeBase, is_dc_addr

class TeleportDataManager(DataManager):
    """Fills and writebacks that cost nothing and move nothing."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.fills = 0
        self.writebacks = 0

    def fill(self, cfn, pfn, sub_block, on_offloaded, on_resume) -> None:
        self.fills += 1
        on_offloaded()
        on_resume(self.sim.now)

    def writeback(self, cfn, pfn, on_offloaded) -> None:
        self.writebacks += 1
        on_offloaded()


class UnthrottledScheme(SchemeBase):
    """Traffic-free OS-managed cache for Table I characterization."""

    scheme_name = "unthrottled"

    def __init__(self, sim: Simulator, cfg: SystemConfig):
        super().__init__(sim, cfg)
        self.data_manager = TeleportDataManager(sim)
        self.frontend = FrontEnd(
            sim,
            cfg,
            self.data_manager,
            self.page_tables,
            self.tables,
            self.hierarchy,
            self.hbm,
            use_mutex=False,
            tag_mgmt_latency=0,
            eviction_cost=0,
            flush_on_evict=False,
        )
        self.frontend.attach_tlbs(self.tlbs)

    def on_tlb_change(self, core_id, vpn, pte, installed) -> None:
        self.frontend.tlb_changed(core_id, pte, installed)

    def _needs_os_intervention(self, pte) -> bool:
        return pte.is_tag_miss

    def translate_miss(self, core_id, vpn, now, done, addr=0) -> None:
        pte, walk = self.walkers[core_id].walk(vpn)
        ready = now + walk

        def _after_walk() -> None:
            if pte.is_tag_miss:
                self.frontend.handle_tag_miss(
                    core_id, vpn, pte, addr, _install
                )
            else:
                _install(self.sim.now)

        def _install(t: int) -> None:
            self.tlbs[core_id].install(vpn, pte)
            done(t, pte)

        self.sim.schedule_at(ready, _after_walk)

    def dc_access(self, access: MemAccess, fill_cb: Callable[[int], None]) -> None:
        start = self.sim.now
        paddr = access.paddr if access.paddr is not None else access.addr
        if is_dc_addr(paddr):
            def _done() -> None:
                end = self.sim.now
                self._record_dc_access(start, end)
                fill_cb(end)

            self.hbm.access(
                paddr & ~DC_SPACE_BIT, access.is_write, TrafficClass.DEMAND,
                callback=_done,
            )
        else:
            self.ddr.access(
                paddr, access.is_write, TrafficClass.DEMAND,
                callback=lambda: fill_cb(self.sim.now),
            )

    def _warm_cache_page(self, core_id, vpn, pte, dirty=False) -> None:
        if pte.is_tag_miss:
            self.frontend.warm_fill(core_id, vpn, pte, dirty=dirty)

    def page_fills(self) -> int:
        return self.frontend.stats.get("fills").value

    def page_writebacks(self) -> int:
        return self.frontend.stats.get("writeback_commands").value

    def tag_mgmt_latency_mean(self) -> float:
        return self.frontend.stats.get("tag_mgmt_latency").mean
