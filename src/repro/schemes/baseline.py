"""The Baseline scheme: a conventional system with off-package DDR only.

Serves as the performance lower bound in Fig. 9 -- every LLC miss pays
the DDR4 latency, and the single off-package channel's bandwidth is the
only bandwidth there is.
"""

from __future__ import annotations

from typing import Callable

from repro.common.types import MemAccess, TrafficClass
from repro.schemes.base import SchemeBase


class BaselineScheme(SchemeBase):
    """No DRAM cache at all."""

    scheme_name = "baseline"

    def dc_access(self, access: MemAccess, fill_cb: Callable[[int], None]) -> None:
        start = self.sim.now
        paddr = access.paddr if access.paddr is not None else access.addr

        def _done():
            end = self.sim.now
            self._record_dc_access(start, end)
            fill_cb(end)

        self.ddr.access(paddr, access.is_write, TrafficClass.DEMAND, callback=_done)
