"""Common plumbing shared by every DRAM cache scheme.

A scheme owns the whole memory side of the machine: per-core TLBs, page
tables and walkers, the SRAM hierarchy, and both DRAM devices.  The core
model talks to it through four methods:

* :meth:`tlb_lookup` -- synchronous TLB probe (None on miss),
* :meth:`translate_miss` -- asynchronous walk + scheme-specific OS work
  (this is where OS-managed schemes run their DC tag miss handlers),
* :meth:`translate_addr` -- PTE + virtual address -> routed byte address,
* :meth:`hierarchy_access` -- issue into L1/L2/L3; LLC misses call back
  into the scheme's :meth:`dc_access`.

Address routing: translated addresses carry ``DC_SPACE_BIT`` when they
point into the DRAM cache (on-package HBM); otherwise they are physical
addresses in off-package DDR.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.cache.hierarchy import CacheHierarchy
from repro.common.types import DC_SPACE_BIT, MemAccess, PAGE_SIZE, TrafficClass
from repro.config.system import SystemConfig
from repro.dram.device import DRAMDevice
from repro.engine.simulator import Component, Simulator
from repro.vm.descriptors import DescriptorTables
from repro.vm.page_table import PTE, PageTable
from repro.vm.tlb import TLB
from repro.vm.walker import PageWalker


def is_dc_addr(addr: int) -> bool:
    return bool(addr & DC_SPACE_BIT)


def dc_addr(cfn: int, offset: int) -> int:
    """Cache-space byte address of (cache frame, in-page offset)."""
    return DC_SPACE_BIT | (cfn * PAGE_SIZE + offset)


def pa_addr(pfn: int, offset: int) -> int:
    return pfn * PAGE_SIZE + offset


class _TLBHook:
    """One core's TLB install/evict notification into the scheme.

    A class rather than a closure so the whole scheme graph stays
    picklable for ``Machine.snapshot`` (a closure would not be).
    """

    __slots__ = ("scheme", "core_id", "installed")

    def __init__(self, scheme: "SchemeBase", core_id: int, installed: bool):
        self.scheme = scheme
        self.core_id = core_id
        self.installed = installed

    def __call__(self, vpn: int, pte: PTE) -> None:
        self.scheme.on_tlb_change(self.core_id, vpn, pte, self.installed)

    def __getstate__(self):
        return (self.scheme, self.core_id, self.installed)

    def __setstate__(self, state):
        self.scheme, self.core_id, self.installed = state


class SchemeBase(Component):
    """Abstract DRAM cache scheme + the memory system it governs."""

    scheme_name = "abstract"

    def __init__(self, sim: Simulator, cfg: SystemConfig):
        super().__init__(sim, f"scheme.{self.scheme_name}")
        self.cfg = cfg
        freq = cfg.core.freq_ghz
        self.hbm = DRAMDevice(sim, "hbm", cfg.hbm, freq)
        self.ddr = DRAMDevice(sim, "ddr", cfg.ddr, freq)
        self.tables = DescriptorTables()
        self.page_tables = [PageTable(i, self.tables) for i in range(cfg.num_cores)]
        self.walkers = [
            PageWalker(i, cfg.tlb, self.page_tables[i]) for i in range(cfg.num_cores)
        ]
        self.tlbs = [
            TLB(
                i,
                cfg.tlb,
                on_install=self._make_tlb_hook(i, installed=True),
                on_evict=self._make_tlb_hook(i, installed=False),
            )
            for i in range(cfg.num_cores)
        ]
        self.walk_latency = cfg.tlb.walk_latency
        self.hierarchy = CacheHierarchy(sim, cfg, self.dc_access, self.dc_writeback)

        self._dc_access_time = self.stats.mean("dc_access_time")
        self._dc_access_hist = self.stats.histogram("dc_access_time_hist")
        self._dc_reads = self.stats.counter("dc_reads")
        self._fills = self.stats.counter("page_fills")
        self._writebacks = self.stats.counter("page_writebacks")

        # _record_dc_access runs once per LLC miss, so it accumulates
        # plain ints and _sync_dc_stats flushes them into the StatGroup
        # objects above on read (see the stats module docstring).  The
        # fill/writeback counters stay direct Counter objects: they fire
        # at page, not line, granularity.
        self._dc_time_count = 0
        self._dc_time_total = 0
        self._dc_time_min: Optional[int] = None
        self._dc_time_max: Optional[int] = None
        self._dc_hist_buckets: dict = {}
        self.stats.set_sync(self._sync_dc_stats)

    # -- TLB directory hooks (overridden where CPDs exist) ----------------

    def _make_tlb_hook(self, core_id: int, installed: bool) -> _TLBHook:
        return _TLBHook(self, core_id, installed)

    def on_tlb_change(self, core_id: int, vpn: int, pte: PTE, installed: bool) -> None:
        """Maintain the CPD TLB directory; no-op for HW schemes."""

    # -- core-facing API ---------------------------------------------------

    def tlb_lookup(self, core_id: int, vpn: int) -> Optional[tuple]:
        return self.tlbs[core_id].lookup(vpn)

    def peek_translate(self, core_id: int, vpn: int) -> tuple:
        """TLB-miss fast path: walk functionally and report whether the
        OS must intervene.

        Returns ``(pte, walk_latency, needs_os)``.  When ``needs_os`` is
        False the walk behaves like extra access latency (hardware page
        walkers overlap with execution), the translation is installed,
        and the core does NOT suspend.  When True (a DC tag miss in an
        OS-managed scheme) the core synchronizes with simulated time and
        calls :meth:`translate_miss`, which suspends the thread for the
        OS routine -- the paper's blocking semantics.
        """
        pte, walk = self.walkers[core_id].walk(vpn)
        if self._needs_os_intervention(pte):
            return pte, walk, True
        self.tlbs[core_id].install(vpn, pte)
        return pte, walk, False

    def _needs_os_intervention(self, pte: PTE) -> bool:
        """HW schemes never trap to the OS on a walk."""
        return False

    def translate_miss(
        self,
        core_id: int,
        vpn: int,
        now: int,
        done: Callable[[int, PTE], None],
        addr: int = 0,
    ) -> None:
        """Walk the page table; subclasses add their OS miss handling.

        ``done(ready_time, pte)`` must be called at ``ready_time`` (the
        simulator clock will read that time).
        """
        pte, walk = self.walkers[core_id].walk(vpn)
        ready = now + walk
        self.tlbs[core_id].install(vpn, pte)
        self.sim.schedule_at(ready, lambda: done(ready, pte))

    def translate_addr(self, pte: PTE, addr: int) -> int:
        """Virtual byte address -> routed (DC- or PA-space) address.

        Runs once per post-TLB access, so the dc_addr/pa_addr helpers are
        inlined as shift-and-or (PAGE_SIZE is 4096 and the offset stays
        below it, so ``pfn * PAGE_SIZE + offset == (pfn << 12) | offset``).
        """
        if pte.cached:
            return DC_SPACE_BIT | (pte.page_frame_num << 12) | (addr & 4095)
        return (pte.page_frame_num << 12) | (addr & 4095)

    def hierarchy_access(
        self, access: MemAccess, now: int, on_complete: Callable[[int], None]
    ) -> Optional[int]:
        return self.hierarchy.access(access, now, on_complete)

    # -- hierarchy-facing API ----------------------------------------------

    def dc_access(self, access: MemAccess, fill_cb: Callable[[int], None]) -> None:
        """Service an LLC miss; must call ``fill_cb(finish_time)``."""
        raise NotImplementedError

    def dc_writeback(self, paddr: int) -> None:
        """Dirty LLC eviction; route to the device owning ``paddr``."""
        if is_dc_addr(paddr):
            self.hbm.access(paddr & ~DC_SPACE_BIT, True, TrafficClass.DEMAND)
        else:
            self.ddr.access(paddr, True, TrafficClass.DEMAND)

    # -- shared helpers ------------------------------------------------------

    def _record_dc_access(self, start: int, end: int) -> None:
        lat = end - start
        self._dc_time_count += 1
        self._dc_time_total += lat
        mn = self._dc_time_min
        if mn is None or lat < mn:
            self._dc_time_min = lat
        mx = self._dc_time_max
        if mx is None or lat > mx:
            self._dc_time_max = lat
        # Same power-of-two bucketing as Histogram._bucket.
        bucket = (1 << (lat.bit_length() - 1)) if lat > 0 else 0
        buckets = self._dc_hist_buckets
        buckets[bucket] = buckets.get(bucket, 0) + 1

    def _sync_dc_stats(self) -> None:
        """Flush the plain-int DC access totals into the StatGroup objects.

        Writes ``self.stats._stats[...]`` contents directly (the objects
        were created in ``__init__``); going through ``stats.get`` would
        re-enter this hook.
        """
        self._dc_reads.value = self._dc_time_count
        mean = self._dc_access_time
        mean.count = self._dc_time_count
        mean.total = self._dc_time_total
        mean.min = self._dc_time_min
        mean.max = self._dc_time_max
        hist = self._dc_access_hist
        hist.count = self._dc_time_count
        hist.total = self._dc_time_total
        hist.buckets.clear()
        hist.buckets.update(self._dc_hist_buckets)

    # -- warmup (the paper's fast-forward region) ---------------------------

    def warm_page(self, core_id: int, vpn: int, dirty: bool = False) -> None:
        """Functionally touch a page at zero cost: allocate its frame and
        let the scheme pre-cache it (used to warm the DC before timing).
        ``dirty`` marks the frame dirty-in-cache so steady-state eviction
        produces writeback traffic."""
        pte = self.page_tables[core_id].get_or_create(vpn)
        self._warm_cache_page(core_id, vpn, pte, dirty)

    def _warm_cache_page(self, core_id: int, vpn: int, pte: PTE,
                         dirty: bool = False) -> None:
        """Scheme hook: bring the page into the DRAM cache state."""

    # -- reporting ---------------------------------------------------------

    def fill_bytes(self) -> int:
        """Bytes of fill the workload demanded (RMHB numerator)."""
        return self.page_fills() * PAGE_SIZE

    def dc_access_time_mean(self) -> float:
        n = self._dc_time_count
        return self._dc_time_total / n if n else 0.0

    def dc_access_time_percentile(self, p: float) -> int:
        """Approximate percentile of DC access time (power-of-two buckets).

        Tail latency is where miss-handling designs differ most: a
        blocking scheme's mean hides multi-thousand-cycle outliers that
        the p99 exposes.
        """
        self._sync_dc_stats()
        return self._dc_access_hist.percentile(p)

    def llc_misses(self) -> int:
        return self.hierarchy.llc_miss_count

    def page_fills(self) -> int:
        return self._fills.value

    def page_writebacks(self) -> int:
        return self._writebacks.value
