"""Configuration dataclasses for the simulated system (paper Table II)."""

from repro.config.dram import DDR4_3200, DRAMTimingConfig, HBM2
from repro.config.schemes import (
    BackendTopology,
    NomadConfig,
    TDCConfig,
    TiDConfig,
)
from repro.config.system import (
    CacheConfig,
    CoreConfig,
    SystemConfig,
    TLBConfig,
    paper_system,
    scaled_system,
)

__all__ = [
    "BackendTopology",
    "CacheConfig",
    "CoreConfig",
    "DDR4_3200",
    "DRAMTimingConfig",
    "HBM2",
    "NomadConfig",
    "SystemConfig",
    "TDCConfig",
    "TLBConfig",
    "TiDConfig",
    "paper_system",
    "scaled_system",
]
