"""Whole-system configuration (paper Table II) and scaled presets.

``paper_system()`` encodes the full HPCA'23 configuration: an 8-core CMP
with private L1/L2, a shared L3, two-level TLBs, 4 GB of on-package HBM2
used as the DRAM cache, and off-package DDR4.

``scaled_system()`` is the default for experiments in this repository:
the same machine shrunk so a pure-Python simulation finishes in seconds.
Cache and DRAM-cache capacities shrink together with trace footprints
(see ``repro.workloads.presets``), keeping miss rates and bandwidth
pressure in the paper's regimes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.config.dram import DDR4_3200, DRAMTimingConfig, HBM2, scaled_dram


@dataclass(frozen=True)
class CoreConfig:
    """Out-of-order core model parameters."""

    freq_ghz: float = 3.6
    width: int = 4  # dispatch/commit width (instructions per cycle)
    rob_size: int = 192
    compute_latency: int = 1  # cycles per non-memory instruction at width 1
    # Outstanding missed stores before dispatch stalls (write buffer).
    store_buffer: int = 32


@dataclass(frozen=True)
class CacheConfig:
    """One SRAM cache level."""

    name: str
    size_bytes: int
    ways: int
    latency: int  # hit latency in CPU cycles
    mshrs: int
    line_size: int = 64

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.line_size * self.ways)


@dataclass(frozen=True)
class TLBConfig:
    """Two-level data TLB."""

    l1_entries: int = 64
    l2_entries: int = 1536
    l2_latency: int = 8
    walk_latency: int = 120  # page-table walk (cycles), PTEs assumed cached


@dataclass(frozen=True)
class SystemConfig:
    """The complete simulated machine."""

    num_cores: int = 8
    core: CoreConfig = field(default_factory=CoreConfig)
    l1: CacheConfig = field(
        default_factory=lambda: CacheConfig("l1", 32 * 1024, 8, 4, 16)
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig("l2", 256 * 1024, 8, 12, 16)
    )
    l3: CacheConfig = field(
        default_factory=lambda: CacheConfig("l3", 16 * 1024 * 1024, 16, 38, 128)
    )
    tlb: TLBConfig = field(default_factory=TLBConfig)
    hbm: DRAMTimingConfig = HBM2
    ddr: DRAMTimingConfig = DDR4_3200
    # DRAM-cache capacity in 4 KB pages (defaults to all of HBM).
    dc_pages: int = (4 * 1024**3) // 4096

    @property
    def cycles_per_second(self) -> float:
        return self.core.freq_ghz * 1e9

    def with_cores(self, num_cores: int) -> "SystemConfig":
        return replace(self, num_cores=num_cores)


def paper_system() -> SystemConfig:
    """The full configuration from Table II of the paper."""
    return SystemConfig()


def scaled_system(num_cores: int = 4, dc_megabytes: int = 64) -> SystemConfig:
    """A laptop-scale configuration preserving the paper's ratios.

    The DRAM cache shrinks to ``dc_megabytes``; the L3 shrinks by the same
    factor (16 MB * 64 MB / 4 GB = 1 MB for the default), so the
    LLC-miss-to-DC-capacity ratio matches the paper.  DRAM timings are
    untouched -- bandwidth and latency are the physics being studied.
    """
    dc_bytes = dc_megabytes * 1024 * 1024
    shrink = (4 * 1024**3) // dc_bytes
    l3_bytes = max(256 * 1024, (16 * 1024 * 1024) // shrink)
    return SystemConfig(
        num_cores=num_cores,
        l3=CacheConfig("l3", l3_bytes, 16, 38, 128),
        # TLB reach shrinks with the DC so shootdown-avoidance stays in
        # the paper's regime (TLB coverage << DC capacity).
        tlb=TLBConfig(l1_entries=32, l2_entries=256),
        hbm=scaled_dram(HBM2, dc_bytes),
        ddr=scaled_dram(DDR4_3200, 16 * dc_bytes),
        dc_pages=dc_bytes // 4096,
    )
