"""Per-scheme configuration knobs.

These map one-to-one onto the design parameters the paper sweeps:
PCSHR count (Fig. 12-14), page-copy-buffer count for the area-optimized
design (Fig. 15), and centralized vs distributed back-ends (Fig. 16).
"""

from __future__ import annotations

import enum
from dataclasses import asdict, dataclass, fields


class BackendTopology(enum.Enum):
    """Fig. 8: one back-end for the whole DC, or one per HBM channel."""

    CENTRALIZED = "centralized"
    DISTRIBUTED = "distributed"


class ConfigSerializable:
    """Stable dict round-trip for the frozen config dataclasses.

    ``to_dict`` output is JSON-compatible (enums become their values) and
    keyed by field name, so it doubles as the content-hash input for the
    campaign result store; ``from_dict`` rejects unknown keys so a stale
    or corrupted payload can never silently half-apply.
    """

    _ENUM_FIELDS: dict = {}

    def to_dict(self) -> dict:
        d = asdict(self)
        for name in self._ENUM_FIELDS:
            if d.get(name) is not None:
                d[name] = d[name].value
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "ConfigSerializable":
        known = {f.name for f in fields(cls)}
        unknown = set(d) - known
        if unknown:
            raise ValueError(
                f"{cls.__name__}.from_dict: unknown keys {sorted(unknown)}"
            )
        kwargs = dict(d)
        for name, enum_cls in cls._ENUM_FIELDS.items():
            if kwargs.get(name) is not None and not isinstance(kwargs[name], enum_cls):
                kwargs[name] = enum_cls(kwargs[name])
        return cls(**kwargs)


@dataclass(frozen=True)
class NomadConfig(ConfigSerializable):
    """NOMAD front-end + back-end parameters (Sections III-C/D)."""

    _ENUM_FIELDS = {"topology": BackendTopology}

    num_pcshrs: int = 16
    # Page copy buffers; None means one per PCSHR (the default design).
    num_copy_buffers: int = None  # type: ignore[assignment]
    sub_entries_per_pcshr: int = 4
    topology: BackendTopology = BackendTopology.CENTRALIZED
    # Base critical-section cost of the DC tag miss handler (paper: two
    # serialized on-package DRAM reads + sync overhead ~= 400 cycles).
    tag_mgmt_latency: int = 400
    # Background eviction: start evicting when free frames drop below the
    # threshold; evict `eviction_batch` frames per invocation (power of 2).
    eviction_threshold_frames: int = 512
    eviction_batch: int = 64
    # Per-victim bookkeeping cost inside the eviction critical section
    # (CPD read, reverse-map walk, PTE restore).
    eviction_cost_per_frame: int = 25
    # PCSHR tag-compare delay on the DC access path (paper: 0.21 CPU
    # cycles via CACTI; we charge the conservative 1 cycle it also tests).
    pcshr_lookup_latency: int = 1
    # Latency to service a data miss from the page copy buffer.
    copy_buffer_latency: int = 10
    critical_data_first: bool = True
    serve_from_copy_buffer: bool = True
    # The frame-management critical section (Algorithms 1-2).  Disabled
    # only by the Ideal upper bound.
    frontend_mutex: bool = True
    # Dirty-in-cache (DC) bits in CPDs/PTEs (Fig. 4).  Disabling them is
    # an ablation: every eviction then costs a full-page writeback.
    dirty_in_cache_bits: bool = True

    def resolved_copy_buffers(self) -> int:
        return self.num_copy_buffers if self.num_copy_buffers is not None else self.num_pcshrs


@dataclass(frozen=True)
class TDCConfig(ConfigSerializable):
    """Blocking OS-managed scheme (tagless DRAM cache).

    TDC locks only the critical PTEs, so there is no global-mutex
    contention; the tag cost is flat and the thread then blocks for the
    whole page copy (Section IV-A).
    """

    tag_mgmt_latency: int = 400
    eviction_threshold_frames: int = 512
    eviction_batch: int = 64
    eviction_cost_per_frame: int = 25
    # TDC performs page copies in parallel across cores (per-PTE locks);
    # each copy occupies the issuing thread until completion.
    max_parallel_copies: int = 64
    # The paper's TDC is given dirty-in-cache bits "to disregard the
    # effects of other efficiencies"; disable for the ablation.
    dirty_in_cache_bits: bool = True


@dataclass(frozen=True)
class TiDConfig(ConfigSerializable):
    """HW-based tags-in-DRAM scheme (Unison-style, Section IV-A).

    1 KB cache lines in a 4-way set-associative organization with an
    ideal way predictor; tags live in HBM, so every DC access pays a
    metadata burst, and metadata updates consume further bandwidth.
    """

    line_size: int = 1024
    ways: int = 4
    mshrs: int = 32
    # Bursts of metadata traffic per access: one 64 B tag read per lookup
    # (ideal way prediction folds the set's tags into one burst), one 64 B
    # write when dirty/LRU bits change.
    tag_read_bursts: int = 1
    tag_update_bursts: int = 1

    @property
    def sub_blocks_per_line(self) -> int:
        return self.line_size // 64
