"""DRAM device timing configurations.

Timings are specified in nanoseconds (as datasheets give them) and
converted to CPU cycles at system-build time.  Two presets mirror the
paper's heterogeneous memory system (Table II): on-package HBM2 and
off-package DDR4-3200.

The bandwidth-defining parameter is ``burst_ns``: the data-bus occupancy
of one 64-byte burst on one channel.  DDR4-3200 on a 64-bit channel moves
64 B in 2.5 ns (25.6 GB/s per channel); an HBM2 pseudo-channel pair on a
128-bit bus moves 64 B in 2.0 ns, and eight such channels give the
on-package device roughly an order of magnitude more bandwidth than the
single off-package channel -- the regime Table I's RMHB classes assume.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DRAMTimingConfig:
    """Timing and geometry of one DRAM device (all channels identical)."""

    name: str
    capacity_bytes: int
    num_channels: int
    banks_per_channel: int
    row_size_bytes: int
    trcd_ns: float  # activate -> column command
    trp_ns: float  # precharge
    tcas_ns: float  # column command -> first data
    burst_ns: float  # data-bus occupancy of one 64 B burst
    tras_ns: float  # activate -> precharge minimum

    def cycles(self, ns: float, cpu_ghz: float) -> int:
        """Convert a nanosecond figure to (rounded-up) CPU cycles."""
        cycles = ns * cpu_ghz
        return max(1, int(cycles + 0.999999))

    def peak_gbps(self) -> float:
        """Peak data bandwidth of the whole device in GB/s."""
        per_channel = 64 / self.burst_ns  # bytes per ns
        return per_channel * self.num_channels  # == GB/s

    def rows_per_bank(self) -> int:
        per_bank = self.capacity_bytes // (self.num_channels * self.banks_per_channel)
        return per_bank // self.row_size_bytes


HBM2 = DRAMTimingConfig(
    name="HBM2",
    capacity_bytes=4 * 1024**3,
    num_channels=8,
    banks_per_channel=16,
    row_size_bytes=2048,
    trcd_ns=14.0,
    trp_ns=14.0,
    tcas_ns=14.0,
    burst_ns=2.0,
    tras_ns=33.0,
)

DDR4_3200 = DRAMTimingConfig(
    name="DDR4-3200",
    capacity_bytes=16 * 1024**3,
    num_channels=1,
    banks_per_channel=16,
    row_size_bytes=8192,
    trcd_ns=13.75,
    trp_ns=13.75,
    tcas_ns=13.75,
    burst_ns=2.5,
    tras_ns=32.0,
)


def scaled_dram(base: DRAMTimingConfig, capacity_bytes: int) -> DRAMTimingConfig:
    """Same timings, smaller capacity (for laptop-scale experiments)."""
    return DRAMTimingConfig(
        name=f"{base.name}-scaled",
        capacity_bytes=capacity_bytes,
        num_channels=base.num_channels,
        banks_per_channel=base.banks_per_channel,
        row_size_bytes=base.row_size_bytes,
        trcd_ns=base.trcd_ns,
        trp_ns=base.trp_ns,
        tcas_ns=base.tcas_ns,
        burst_ns=base.burst_ns,
        tras_ns=base.tras_ns,
    )
