"""Command-line interface.

    python -m repro run --scheme nomad --workload cact
    python -m repro compare --workload cact --ops 6000
    python -m repro table1
    python -m repro list

Everything prints plain-text tables; the heavy experiment campaign lives
in ``examples/reproduce_paper.py`` and the benchmark suite.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.config.schemes import BackendTopology, NomadConfig
from repro.harness.experiments import experiment_table1
from repro.harness.reporting import format_table
from repro.harness.runner import RunConfig, run_workload
from repro.system.builder import SCHEME_REGISTRY
from repro.workloads.presets import CLASS_OF, PRESETS


def _result_row(res) -> dict:
    return {
        "scheme": res.scheme,
        "workload": res.workload,
        "ipc": res.ipc,
        "dc_access_time": res.dc_access_time,
        "os_stall": res.os_stall_ratio,
        "ddr_gbps": res.ddr_bandwidth_gbps,
        "hbm_gbps": res.hbm_bandwidth_gbps,
    }


def cmd_run(args) -> int:
    nomad_cfg = None
    if args.pcshrs is not None or args.distributed:
        nomad_cfg = NomadConfig(
            num_pcshrs=args.pcshrs or 16,
            topology=(BackendTopology.DISTRIBUTED if args.distributed
                      else BackendTopology.CENTRALIZED),
        )
    cfg = RunConfig(
        scheme=args.scheme,
        workload=args.workload,
        num_mem_ops=args.ops,
        num_cores=args.cores,
        dc_megabytes=args.dc_mb,
        seed=args.seed,
        nomad_cfg=nomad_cfg,
    )
    res = run_workload(cfg)
    print(format_table([_result_row(res)], title="run result"))
    if res.tag_mgmt_latency is not None:
        print(f"\ntag management latency: {res.tag_mgmt_latency:.0f} cycles")
    if res.buffer_hit_ratio is not None:
        print(f"page-copy-buffer hit ratio: {res.buffer_hit_ratio:.1%}")
    return 0


def cmd_compare(args) -> int:
    rows = []
    baseline = None
    for scheme in ("baseline", "tid", "tdc", "nomad", "ideal"):
        res = run_workload(RunConfig(
            scheme=scheme, workload=args.workload, num_mem_ops=args.ops,
            num_cores=args.cores, dc_megabytes=args.dc_mb, seed=args.seed,
        ))
        if scheme == "baseline":
            baseline = res
        row = _result_row(res)
        row["ipc_rel"] = res.speedup_over(baseline)
        rows.append(row)
    print(format_table(
        rows,
        columns=["scheme", "ipc", "ipc_rel", "dc_access_time", "os_stall",
                 "ddr_gbps", "hbm_gbps"],
        title=f"schemes on {args.workload!r} ({CLASS_OF[args.workload]} class)",
    ))
    return 0


def cmd_table1(args) -> int:
    base = RunConfig(scheme="unthrottled", workload="cact",
                     num_mem_ops=args.ops, num_cores=args.cores,
                     dc_megabytes=args.dc_mb)
    print(format_table(experiment_table1(base), title="Table I (measured)"))
    return 0


def cmd_list(_args) -> int:
    rows = [
        {
            "workload": name,
            "class": p.klass,
            "footprint_ratio": p.footprint_ratio,
            "page_select": p.page_select,
            "bursty": p.bursty,
        }
        for name, p in PRESETS.items()
    ]
    print(format_table(rows, title="Table I workload presets"))
    print("\nschemes:", ", ".join(sorted(SCHEME_REGISTRY)))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="NOMAD (HPCA'23) reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p):
        p.add_argument("--ops", type=int, default=6000,
                       help="memory ops per core (default 6000)")
        p.add_argument("--cores", type=int, default=4)
        p.add_argument("--dc-mb", type=int, default=64,
                       help="DRAM cache capacity in MB")
        p.add_argument("--seed", type=int, default=1)

    p_run = sub.add_parser("run", help="run one (scheme, workload)")
    p_run.add_argument("--scheme", required=True, choices=sorted(SCHEME_REGISTRY))
    p_run.add_argument("--workload", required=True, choices=sorted(PRESETS))
    p_run.add_argument("--pcshrs", type=int, default=None)
    p_run.add_argument("--distributed", action="store_true",
                       help="distributed back-ends (NOMAD only)")
    add_common(p_run)
    p_run.set_defaults(func=cmd_run)

    p_cmp = sub.add_parser("compare", help="all schemes on one workload")
    p_cmp.add_argument("--workload", required=True, choices=sorted(PRESETS))
    add_common(p_cmp)
    p_cmp.set_defaults(func=cmd_compare)

    p_t1 = sub.add_parser("table1", help="regenerate Table I")
    add_common(p_t1)
    p_t1.set_defaults(func=cmd_table1)

    p_ls = sub.add_parser("list", help="list workloads and schemes")
    p_ls.set_defaults(func=cmd_list)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
