"""Command-line interface.

    python -m repro run --scheme nomad --workload cact
    python -m repro run --scheme nomad --workload cact --guard
    python -m repro run --scheme nomad --workload cact --timeline t.json
    python -m repro timeline t.json
    python -m repro compare --workload cact --ops 6000
    python -m repro sweep --schemes tdc,nomad --pcshrs 8,32 --jobs 4
    python -m repro replay ~/.cache/repro-nomad/bundles/bundle-.../
    python -m repro table1
    python -m repro list

Everything prints plain-text tables (or ``--json`` structured output);
grids go through the :mod:`repro.campaign` layer, which fans out over
worker processes and serves repeats from the persistent result store.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import List, Optional

from repro.campaign import (
    GridSpec,
    ResultStore,
    default_store_dir,
    run_campaign,
    speedup_matrix,
)
from repro.config.schemes import BackendTopology, NomadConfig
from repro.harness.experiments import experiment_table1
from repro.harness.reporting import format_table
from repro.harness.runner import RunConfig, run_workload
from repro.system.builder import SCHEME_REGISTRY
from repro.workloads.presets import CLASS_OF, PRESETS


def _result_row(res) -> dict:
    return {
        "scheme": res.scheme,
        "workload": res.workload,
        "ipc": res.ipc,
        "dc_access_time": res.dc_access_time,
        "os_stall": res.os_stall_ratio,
        "ddr_gbps": res.ddr_bandwidth_gbps,
        "hbm_gbps": res.hbm_bandwidth_gbps,
    }


def _emit_json(payload) -> None:
    print(json.dumps(payload, indent=2, sort_keys=True))


def _autoconfigure_obs(component: str, args) -> None:
    """Install observability for a CLI entry point.

    An explicit ``--obs-dir`` is also exported as ``REPRO_OBS_DIR`` so
    subprocesses this command spawns (the ephemeral runners of
    ``local_service``) inherit the same sinks.
    """
    from repro import obs

    obs_dir = getattr(args, "obs_dir", None)
    if obs_dir:
        obs_dir = str(Path(obs_dir).absolute())
        os.environ[obs.ENV_DIR] = obs_dir
    obs.autoconfigure(component, obs_dir)


def _reject_unknown(schemes=(), workloads=()) -> Optional[str]:
    """One-line description of any unknown scheme/workload, else None."""
    bad = [f"scheme {s!r}" for s in schemes if s not in SCHEME_REGISTRY]
    bad += [f"workload {w!r}" for w in workloads if w not in PRESETS]
    if not bad:
        return None
    return (f"error: unknown {', '.join(bad)} "
            f"(run `repro list` to see what is available)")


def cmd_run(args) -> int:
    problem = _reject_unknown([args.scheme], [args.workload])
    if problem:
        print(problem, file=sys.stderr)
        return 2
    nomad_cfg = None
    if args.pcshrs is not None or args.distributed:
        nomad_cfg = NomadConfig(
            num_pcshrs=args.pcshrs or 16,
            topology=(BackendTopology.DISTRIBUTED if args.distributed
                      else BackendTopology.CENTRALIZED),
        )
    cfg = RunConfig(
        scheme=args.scheme,
        workload=args.workload,
        num_mem_ops=args.ops,
        num_cores=args.cores,
        dc_megabytes=args.dc_mb,
        seed=args.seed,
        nomad_cfg=nomad_cfg,
    )
    guard = True if getattr(args, "guard", False) else None

    telemetry = None
    if args.timeline or args.metrics_out:
        from repro.telemetry import Telemetry, TelemetryConfig

        telemetry = Telemetry(TelemetryConfig(
            sample_every=args.sample_every,
            timeline_path=args.timeline,
        ))
    from repro.guard.errors import GuardError

    machine = None
    try:
        if args.profile:
            import cProfile
            import pstats

            from repro.harness.runner import clear_cache
            from repro.workloads.synthetic import clear_trace_cache

            # Memoized results/traces would hide the work being profiled.
            clear_cache()
            clear_trace_cache()
            profiler = cProfile.Profile()
            profiler.enable()
            res = run_workload(cfg, guard=guard, telemetry=telemetry)
            profiler.disable()
            profiler.dump_stats(args.profile)
            stats = pstats.Stats(profiler)
            stats.sort_stats("cumulative").print_stats(20)
            print(f"profile written to {args.profile} (binary pstats)")
        elif args.metrics_out:
            # The metrics dump needs the machine back, not just the result.
            from repro.harness.runner import prime, simulate

            res, machine = simulate(cfg, guard=guard, telemetry=telemetry)
            if guard is None:
                prime(cfg, res)
        else:
            res = run_workload(cfg, guard=guard, telemetry=telemetry)
    except GuardError as exc:
        print(f"guard failure: {exc}", file=sys.stderr)
        bundle = getattr(exc, "bundle_path", None)
        if bundle:
            print(f"diagnostic bundle: {bundle}", file=sys.stderr)
            print(f"reproduce with: python -m repro replay {bundle}",
                  file=sys.stderr)
        return 1
    if args.metrics_out and machine is not None:
        from pathlib import Path

        metrics_path = Path(args.metrics_out)
        if metrics_path.parent != Path(""):
            metrics_path.parent.mkdir(parents=True, exist_ok=True)
        metrics_path.write_text(
            json.dumps(machine.metrics(), indent=1, sort_keys=True)
        )
    if args.json:
        payload = {"config": cfg.to_dict(), "result": res.to_dict()}
        if telemetry is not None and telemetry.summary is not None:
            payload["telemetry"] = telemetry.summary
        _emit_json(payload)
        return 0
    print(format_table([_result_row(res)], title="run result"))
    if res.tag_mgmt_latency is not None:
        print(f"\ntag management latency: {res.tag_mgmt_latency:.0f} cycles")
    if res.buffer_hit_ratio is not None:
        print(f"page-copy-buffer hit ratio: {res.buffer_hit_ratio:.1%}")
    if args.timeline:
        print(f"timeline written to {args.timeline} "
              f"(summarize with: python -m repro timeline {args.timeline})")
    if args.metrics_out:
        print(f"metrics written to {args.metrics_out}")
    return 0


COMPARE_SCHEMES = ("baseline", "tid", "tdc", "nomad", "ideal")


def cmd_compare(args) -> int:
    problem = _reject_unknown(workloads=[args.workload])
    if problem:
        print(problem, file=sys.stderr)
        return 2
    base = RunConfig(
        scheme="baseline", workload=args.workload, num_mem_ops=args.ops,
        num_cores=args.cores, dc_megabytes=args.dc_mb, seed=args.seed,
    )
    matrix = speedup_matrix(COMPARE_SCHEMES, [args.workload], base)
    rows = []
    for scheme in COMPARE_SCHEMES:
        res, rel = matrix[(scheme, args.workload)]
        row = _result_row(res)
        row["ipc_rel"] = rel
        rows.append(row)
    if args.json:
        _emit_json({"config": base.to_dict(), "rows": rows})
        return 0
    print(format_table(
        rows,
        columns=["scheme", "ipc", "ipc_rel", "dc_access_time", "os_stall",
                 "ddr_gbps", "hbm_gbps"],
        title=f"schemes on {args.workload!r} ({CLASS_OF[args.workload]} class)",
    ))
    return 0


def _csv(text: str) -> List[str]:
    return [t.strip() for t in text.split(",") if t.strip()]


def _csv_ints(text: str) -> List[int]:
    return [int(t) for t in _csv(text)]


def cmd_sweep(args) -> int:
    schemes = _csv(args.schemes)
    workloads = _csv(args.workloads) if args.workloads else sorted(PRESETS)
    problem = _reject_unknown(schemes, workloads)
    if problem:
        print(problem, file=sys.stderr)
        return 2

    axes = []
    if args.pcshrs:
        axes.append(("num_pcshrs", _csv_ints(args.pcshrs)))
    if args.seeds:
        axes.append(("seed", _csv_ints(args.seeds)))
    base = RunConfig(
        scheme=schemes[0], workload=workloads[0], num_mem_ops=args.ops,
        num_cores=args.cores, dc_megabytes=args.dc_mb, seed=args.seed,
    )
    grid = GridSpec(schemes=schemes, workloads=workloads, base=base, axes=axes)

    store = None
    if not args.no_store:
        store = ResultStore(args.store or default_store_dir())

    if args.distributed or args.resume:
        if store is None:
            print("error: --distributed needs the result store "
                  "(drop --no-store); the store is the shared state "
                  "between broker, runners, and --resume",
                  file=sys.stderr)
            return 2
        _autoconfigure_obs("coordinator", args)
        from repro.service import (
            BrokerError,
            BrokerUnreachable,
            local_service,
            run_distributed_campaign,
        )

        kwargs = dict(
            store=store,
            campaign_id=args.resume or args.campaign_id,
            resume=bool(args.resume),
            timeout=args.timeout, retries=args.retries,
            guard=True if args.guard else None,
            telemetry=True if args.telemetry else None,
            progress=None if args.no_progress else True,
        )
        grid_arg = None if args.resume else grid
        try:
            if args.broker:
                campaign = run_distributed_campaign(
                    grid_arg, args.broker, jobs=args.jobs, **kwargs
                )
            else:
                with local_service(
                    store.root, runners=args.runners,
                    jobs_per_runner=args.jobs,
                ) as url:
                    campaign = run_distributed_campaign(
                        grid_arg, url,
                        jobs=max(1, args.runners * args.jobs), **kwargs
                    )
        except (BrokerError, BrokerUnreachable) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    else:
        campaign = run_campaign(
            grid, jobs=args.jobs, store=store,
            timeout=args.timeout, retries=args.retries,
            guard=True if args.guard else None,
            telemetry=True if args.telemetry else None,
            progress=None if args.no_progress else True,
        )

    campaign_id = getattr(campaign, "campaign_id", None)
    if args.json:
        payload = campaign.to_dict()
        if campaign_id:
            payload["campaign_id"] = campaign_id
        _emit_json(payload)
        return 0 if campaign.ok else 1

    rows = []
    for rec in campaign.records:
        row = {
            "scheme": rec.config.scheme,
            "workload": rec.config.workload,
            "seed": rec.config.seed,
            "status": rec.status,
            "source": rec.source or "-",
        }
        if rec.config.nomad_cfg is not None:
            row["pcshrs"] = rec.config.nomad_cfg.num_pcshrs
        if rec.result is not None:
            row["ipc"] = rec.result.ipc
            row["dc_access_time"] = rec.result.dc_access_time
        else:
            row["error"] = rec.error
            if rec.failure_kind:
                row["kind"] = rec.failure_kind
        if rec.telemetry is not None:
            frac = rec.telemetry.get("overlap_fraction")
            if frac is not None:
                row["overlap"] = frac
        rows.append(row)
    columns = ["scheme", "workload", "seed"]
    if any("pcshrs" in r for r in rows):
        columns.append("pcshrs")
    columns += ["status", "source", "ipc", "dc_access_time"]
    if any("overlap" in r for r in rows):
        columns.append("overlap")
    if any(r.get("kind") for r in rows):
        columns.append("kind")
    if any(r.get("error") for r in rows):
        columns.append("error")
    print(format_table(rows, columns=columns,
                       title=f"sweep: {len(rows)} runs, --jobs {args.jobs}"))
    print()
    print(campaign.summary.describe())
    if campaign_id:
        print(f"campaign id: {campaign_id} "
              f"(resume with: repro sweep --distributed "
              f"--resume {campaign_id})")
    return 0 if campaign.ok else 1


def cmd_broker(args) -> int:
    from repro.service import serve_broker

    _autoconfigure_obs("broker", args)
    serve_broker(args.host, args.port, args.store or default_store_dir(),
                 lease_s=args.lease, token=args.token)
    return 0


def cmd_runner(args) -> int:
    from repro.service import BrokerUnreachable, runner_loop

    _autoconfigure_obs("runner", args)
    try:
        done = runner_loop(
            args.broker, jobs=args.jobs, runner_id=args.runner_id,
            poll_s=args.poll, exit_when_idle=args.exit_when_idle,
            max_batches=args.max_batches, verbose=args.verbose,
            give_up_after_s=args.give_up,
        )
    except BrokerUnreachable as exc:
        # One operator-readable line, no traceback: the address is in
        # the message ("broker unreachable at HOST:PORT ...").
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.verbose:
        print(f"runner finished: {done} batches")
    return 0


def cmd_serve_dashboard(args) -> int:
    from repro.service.dashboard import serve_dashboard

    serve_dashboard(args.broker, host=args.host, port=args.port)
    return 0


def cmd_results(args) -> int:
    from repro.service.index import ResultIndex, parse_duration, parse_where

    store = ResultStore(args.store or default_store_dir())
    index = ResultIndex(store.root)
    synced = index.sync_from_store(store)
    try:
        where = parse_where(args.where or [])
        since = parse_duration(args.since) if args.since else None
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    statuses: List[str] = []
    if args.quarantined:
        statuses.append("quarantined")
    if args.failed:
        statuses += ["failed", "timeout"]
    status = statuses or None

    if args.count:
        n = index.count(where, status=status, since=since)
        if args.json:
            _emit_json({"count": n})
        else:
            print(n)
        return 0

    rows = index.query(where, status=status, limit=args.limit, since=since)
    if args.json:
        from repro.service.scrub import load_scrub_report

        # Operators auditing a repair see exactly what changed: rows
        # this invocation's sync re-added, cumulative repair counters,
        # and the persisted report of the last `repro scrub`.
        repairs = dict(index.repair_counts)
        repairs["synced_now"] = synced
        _emit_json({
            "count": len(rows),
            "rows": rows,
            "repairs": repairs,
            "last_scrub": load_scrub_report(store.root),
        })
        return 0
    if not rows:
        print("no matching rows (is the store populated? try "
              "`repro sweep` first, or check --store)")
        return 0
    table = []
    for row in rows:
        entry = {
            "key": row["key"][:12],
            "scheme": row["scheme"],
            "workload": row["workload"],
            "seed": row["seed"],
            "status": row["status"],
        }
        if row.get("ipc") is not None:
            entry["ipc"] = row["ipc"]
            entry["dc_access_time"] = row["dc_access_time"]
        if row.get("failure_kind"):
            entry["kind"] = row["failure_kind"]
        table.append(entry)
    columns = ["key", "scheme", "workload", "seed", "status"]
    if any("ipc" in r for r in table):
        columns += ["ipc", "dc_access_time"]
    if any("kind" in r for r in table):
        columns.append("kind")
    print(format_table(table, columns=columns,
                       title=f"result index: {len(rows)} rows "
                             f"({store.root})"))
    return 0


def cmd_scrub(args) -> int:
    from repro.service.index import ResultIndex
    from repro.service.scrub import scrub_store

    store = ResultStore(args.store or default_store_dir())
    index = ResultIndex(store.root)
    report = scrub_store(store, index, repair=not args.audit)
    if args.json:
        _emit_json(report)
    else:
        print(f"scrub {store.root}: {report['checked']} records checked, "
              f"{report['ok']} ok, "
              f"{len(report['corrupt']) + len(report['quarantined_corrupt'])}"
              f" corrupt, {report['synced_rows']} index rows repaired")
        for entry in report["corrupt"] + report["quarantined_corrupt"]:
            moved = entry.get("moved_to")
            action = f" -> {moved}" if moved else " (audit only)"
            print(f"  corrupt: {entry['path']}: {entry['reason']}{action}")
    return 0 if report["clean"] else 1


def cmd_chaos(args) -> int:
    """Seeded chaos convergence check (the CI chaos-smoke entry point).

    Runs the grid serially into a reference store, then through the
    faulted broker/runner harness -- network faults plus a broker
    kill+restart and a runner kill -- and requires the two stores to be
    byte-identical and a final scrub to come back clean.
    """
    import shutil as _shutil
    import tempfile as _tempfile

    from repro.campaign.executor import run_campaign as _run_campaign
    from repro.harness.runner import clear_cache
    from repro.service.chaos import (
        KILL_BROKER,
        KILL_RUNNER,
        NETWORK_KINDS,
        FaultPlan,
        FaultSpec,
        run_chaos_campaign,
        stores_identical,
    )
    from repro.service.index import ResultIndex
    from repro.service.scrub import scrub_store

    schemes = _csv(args.schemes)
    workloads = _csv(args.workloads)
    problem = _reject_unknown(schemes, workloads)
    if problem:
        print(problem, file=sys.stderr)
        return 2
    _autoconfigure_obs("chaos", args)
    base = RunConfig(
        scheme=schemes[0], workload=workloads[0], num_mem_ops=args.ops,
        num_cores=args.cores, dc_megabytes=args.dc_mb,
    )
    grid = GridSpec(schemes=schemes, workloads=workloads, base=base,
                    axes=[("seed", _csv_ints(args.seeds))])
    configs = grid.expand()

    workdir = args.store or _tempfile.mkdtemp(prefix="repro-chaos-")
    chaos_root = Path(workdir) / "chaos-store"
    serial_root = Path(workdir) / "serial-store"
    for root in (chaos_root, serial_root):
        if root.exists():
            _shutil.rmtree(root)

    if not args.json:
        print(f"chaos: {len(configs)} configs, seed {args.seed}, "
              f"stores under {workdir}")
    serial = _run_campaign(configs, jobs=1, store=ResultStore(serial_root),
                           progress=None)
    if not serial.ok:
        print("error: serial reference campaign failed", file=sys.stderr)
        return 1
    # The serial reference populated the in-process memo; drop it so
    # the chaos campaign's prescan cannot resolve the grid locally --
    # the faulted broker/runner path must actually run and ingest.
    clear_cache()

    kinds = list(NETWORK_KINDS) + [KILL_RUNNER, KILL_BROKER]
    plan = FaultPlan.seeded(args.seed, kinds=kinds)
    plan.specs.append(FaultSpec(kind=KILL_BROKER, path="broker",
                                at=max(1, args.kill_broker_at)))
    result, report = run_chaos_campaign(
        configs, chaos_root, plan=plan, runners=args.runners,
        lease_s=args.lease, max_wait_s=args.max_wait,
    )

    identical, diffs = stores_identical(chaos_root, serial_root)
    store = ResultStore(chaos_root)
    scrub = scrub_store(store, ResultIndex(store.root))
    ok = (identical and scrub["clean"]
          and len(result.records) == len(configs))
    if args.json:
        _emit_json({
            "ok": ok,
            "configs": len(configs),
            "records": len(result.records),
            "identical": identical,
            "differences": diffs,
            "scrub_clean": scrub["clean"],
            "report": report,
        })
        return 0 if ok else 1
    fired = ", ".join(f[0] for f in report["plan"]["fired"]) or "none"
    print(f"chaos: faults fired: {fired}")
    print(f"chaos: broker restarts {report['broker_restarts']}, "
          f"runner kills {report['runner_kills']}, "
          f"requeues {report['requeues']}, "
          f"duplicate completes {report['duplicate_completes']}")
    if not identical:
        for diff in diffs:
            print(f"  store divergence: {diff}", file=sys.stderr)
    print(f"chaos: {len(result.records)}/{len(configs)} records, "
          f"store byte-identical to serial: {identical}, "
          f"scrub clean: {scrub['clean']}")
    return 0 if ok else 1


def cmd_table1(args) -> int:
    base = RunConfig(scheme="unthrottled", workload="cact",
                     num_mem_ops=args.ops, num_cores=args.cores,
                     dc_megabytes=args.dc_mb)
    rows = experiment_table1(base)
    if args.json:
        _emit_json({"config": base.to_dict(), "rows": rows})
        return 0
    print(format_table(rows, title="Table I (measured)"))
    return 0


def cmd_bench(args) -> int:
    from repro.harness import bench

    if args.obs:
        measured = bench.run_obs_bench(quick=args.quick)
    else:
        measured = bench.run_bench(quick=args.quick,
                                   profile=not args.no_profile,
                                   sweep=args.sweep)

    if args.update:
        bench.update_report(args.file, measured)
        print(f"updated 'current' entries in {args.file}")

    problems: List[str] = []
    committed = None
    try:
        committed = bench.load_report(args.file)
    except FileNotFoundError:
        if args.check or args.update:
            print(f"error: no committed report at {args.file}", file=sys.stderr)
            return 2
    if args.check:
        problems = bench.check_regression(committed, measured)

    if args.json:
        payload = {"measured": measured}
        if problems:
            payload["problems"] = problems
        _emit_json(payload)
    else:
        rows = []
        for name, entry in measured["scenarios"].items():
            row = {"scenario": name, "runs_per_sec": entry["runs_per_sec"]}
            if args.sweep:
                snap_total = entry["snapshot_forks"] + entry["snapshot_builds"]
                row["snapshot_forks"] = (
                    f"{entry['snapshot_forks']}/{snap_total} "
                    f"({entry['snapshot_hit_rate']:.0%})"
                )
            elif "events_per_sec" in entry:
                row["events_per_sec"] = entry["events_per_sec"]
            row["normalized"] = entry["normalized"]
            if committed is not None:
                block = committed.get("scenarios", {}).get(name, {})
                base = block.get("baseline")
                if base and base.get("normalized"):
                    row["speedup_vs_baseline"] = (
                        entry["normalized"] / base["normalized"]
                    )
            rows.append(row)
        if args.obs:
            title = "service sweep with observability off vs fully on"
        elif args.sweep:
            title = ("sweep benchmark (campaign runs/sec; baseline = "
                     "snapshot forking off)")
        else:
            title = ("engine benchmark (normalized = runs/sec per "
                     "normalizer op/sec)")
        print(format_table(rows, title=title))
        if args.obs:
            frac = measured.get("obs_overhead_frac", 0.0)
            noise = measured.get("obs_noise_frac", 0.0)
            print(f"obs overhead: {frac:+.1%} wall clock "
                  f"(budget {bench.OBS_OVERHEAD_FAIL_FRAC:.0%}, "
                  f"rep noise {noise:.1%})")
        for p in problems:
            print(p)

    if any(p.startswith("FAIL") for p in problems):
        return 1
    return 0


def cmd_obs(args) -> int:
    from repro.obs import cli as obs_cli

    try:
        if args.obs_command == "tail":
            return obs_cli.cmd_tail(
                args.path, follow=args.follow, level=args.level,
                component=args.component, as_json=args.json,
            )
        if args.obs_command == "scrape":
            return obs_cli.cmd_scrape(args.broker, diff_s=args.diff)
        return obs_cli.cmd_merge(args.obs_dir, out_path=args.out)
    except BrokenPipeError:
        # Downstream closed the pipe (`repro obs tail ... | head`); exit
        # quietly like any well-behaved filter.  Redirect stdout to
        # devnull so interpreter shutdown doesn't re-raise on flush.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def cmd_timeline(args) -> int:
    from repro.telemetry.timeline import (
        describe_summary,
        load_trace,
        summarize_trace,
    )
    from repro.telemetry.trace_schema import validate_trace

    try:
        doc = load_trace(args.trace)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read trace {args.trace}: {exc}", file=sys.stderr)
        return 2
    problems = validate_trace(doc)
    if problems:
        print(f"error: {args.trace} fails schema validation:", file=sys.stderr)
        for p in problems:
            print(f"  {p}", file=sys.stderr)
        return 2
    summary = summarize_trace(doc)
    if args.json:
        _emit_json(summary)
    else:
        print(describe_summary(summary))
    return 0


def cmd_replay(args) -> int:
    from repro.guard.bundle import replay_bundle
    from repro.guard.errors import GuardError

    try:
        report = replay_bundle(args.bundle)
    except GuardError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        _emit_json(report.to_dict())
    else:
        print(report.describe())
    return 0 if report.reproduced else 1


def cmd_list(_args) -> int:
    rows = [
        {
            "workload": name,
            "class": p.klass,
            "footprint_ratio": p.footprint_ratio,
            "page_select": p.page_select,
            "bursty": p.bursty,
        }
        for name, p in PRESETS.items()
    ]
    print(format_table(rows, title="Table I workload presets"))
    print("\nschemes:", ", ".join(sorted(SCHEME_REGISTRY)))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="NOMAD (HPCA'23) reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p):
        p.add_argument("--ops", type=int, default=6000,
                       help="memory ops per core (default 6000)")
        p.add_argument("--cores", type=int, default=4)
        p.add_argument("--dc-mb", type=int, default=64,
                       help="DRAM cache capacity in MB")
        p.add_argument("--seed", type=int, default=1)
        p.add_argument("--json", action="store_true",
                       help="structured JSON output instead of tables")

    # Scheme/workload names are validated in the command functions (one
    # clear line + a `repro list` hint, exit 2) rather than via argparse
    # choices= whose error dumps the whole usage string.
    p_run = sub.add_parser("run", help="run one (scheme, workload)")
    p_run.add_argument("--scheme", required=True)
    p_run.add_argument("--workload", required=True)
    p_run.add_argument("--pcshrs", type=int, default=None)
    p_run.add_argument("--distributed", action="store_true",
                       help="distributed back-ends (NOMAD only)")
    p_run.add_argument("--guard", action="store_true",
                       help="paranoid mode: run invariant checkers + the "
                            "forward-progress watchdog; crashes leave a "
                            "replayable diagnostic bundle")
    p_run.add_argument("--profile", default=None, metavar="PATH",
                       help="cProfile the run; dump binary pstats to PATH "
                            "and print the top 20 by cumulative time")
    p_run.add_argument("--timeline", default=None, metavar="PATH",
                       help="record telemetry and write a Perfetto "
                            "trace-event JSON timeline to PATH")
    p_run.add_argument("--sample-every", type=int, default=5000,
                       metavar="N", help="telemetry sampling period in "
                                         "cycles (default 5000; 0 = off)")
    p_run.add_argument("--metrics-out", default=None, metavar="PATH",
                       help="dump the full flat component-metrics JSON "
                            "(every StatGroup counter) to PATH")
    add_common(p_run)
    p_run.set_defaults(func=cmd_run)

    p_cmp = sub.add_parser("compare", help="all schemes on one workload")
    p_cmp.add_argument("--workload", required=True)
    add_common(p_cmp)
    p_cmp.set_defaults(func=cmd_compare)

    p_sw = sub.add_parser(
        "sweep", help="run a scheme x workload x parameter grid (campaign)"
    )
    p_sw.add_argument("--schemes", default="baseline,tid,tdc,nomad,ideal",
                      help="comma list of schemes")
    p_sw.add_argument("--workloads", default=None,
                      help="comma list of workloads (default: all presets)")
    p_sw.add_argument("--pcshrs", default=None,
                      help="comma list -> NOMAD num_pcshrs sweep axis")
    p_sw.add_argument("--seeds", default=None,
                      help="comma list -> seed sweep axis")
    p_sw.add_argument("--jobs", type=int, default=1,
                      help="worker processes (default 1 = serial)")
    p_sw.add_argument("--timeout", type=float, default=None,
                      help="stall watchdog seconds (kill hung workers)")
    p_sw.add_argument("--retries", type=int, default=1,
                      help="extra attempts for crashed/hung runs")
    p_sw.add_argument("--store", default=None,
                      help="result-store directory "
                           "(default: $REPRO_STORE or ~/.cache/repro-nomad)")
    p_sw.add_argument("--no-store", action="store_true",
                      help="disable the persistent result store")
    p_sw.add_argument("--guard", action="store_true",
                      help="paranoid mode for every run; deterministic "
                           "failures are quarantined in the store")
    p_sw.add_argument("--telemetry", action="store_true",
                      help="observe every run (campaign categories, no "
                           "dram spans); records carry trace summaries")
    p_sw.add_argument("--no-progress", action="store_true",
                      help="suppress the live progress/heartbeat lines "
                           "on stderr")
    p_sw.add_argument("--distributed", action="store_true",
                      help="run through the broker/runner service instead "
                           "of a local process pool")
    p_sw.add_argument("--broker", default=None, metavar="URL",
                      help="existing broker to submit to (default: spin up "
                           "an ephemeral localhost broker + runners)")
    p_sw.add_argument("--runners", type=int, default=2,
                      help="runner processes for the ephemeral local "
                           "service (default 2; ignored with --broker)")
    p_sw.add_argument("--campaign-id", default=None,
                      help="explicit campaign id (default: generated)")
    p_sw.add_argument("--resume", default=None, metavar="ID",
                      help="re-drive campaign ID from its persisted "
                           "manifest; already-stored and quarantined "
                           "configs are not re-run (implies --distributed)")
    p_sw.add_argument("--obs-dir", default=None, metavar="DIR",
                      help="distributed only: write structured logs and "
                           "service-trace spans under DIR (exported as "
                           "REPRO_OBS_DIR so ephemeral runners inherit it)")
    add_common(p_sw)
    p_sw.set_defaults(func=cmd_sweep)

    p_br = sub.add_parser(
        "broker", help="serve the campaign broker (queue + result ingest)"
    )
    p_br.add_argument("--host", default="127.0.0.1")
    p_br.add_argument("--port", type=int, default=8765)
    p_br.add_argument("--store", default=None,
                      help="result-store directory the broker ingests into "
                           "(default: $REPRO_STORE or ~/.cache/repro-nomad)")
    p_br.add_argument("--lease", type=float, default=60.0,
                      help="batch lease seconds; a runner silent this long "
                           "has its batches requeued (default 60)")
    p_br.add_argument("--token", default=None,
                      help="shared secret required (as X-Repro-Token) on "
                           "every mutating endpoint; default "
                           "$REPRO_BROKER_TOKEN, empty = open (loopback "
                           "only!).  Runners and coordinators pick the "
                           "same variable up automatically")
    p_br.add_argument("--obs-dir", default=None, metavar="DIR",
                      help="structured logs + /metrics + trace spans under "
                           "DIR (default: $REPRO_OBS_DIR; REPRO_OBS=1 for "
                           "stderr logs only)")
    p_br.set_defaults(func=cmd_broker)

    p_rn = sub.add_parser(
        "runner", help="pull-based worker: claim batches from a broker"
    )
    p_rn.add_argument("--broker", required=True,
                      help="broker URL or host:port")
    p_rn.add_argument("--jobs", type=int, default=1,
                      help="worker processes per batch (default 1)")
    p_rn.add_argument("--runner-id", default=None,
                      help="stable id (default: hostname-pid)")
    p_rn.add_argument("--poll", type=float, default=1.0,
                      help="idle poll interval seconds (default 1)")
    p_rn.add_argument("--exit-when-idle", type=float, default=None,
                      metavar="S", help="exit after S seconds with no "
                                        "work (default: poll forever)")
    p_rn.add_argument("--max-batches", type=int, default=None,
                      help="stop after N batches (testing)")
    p_rn.add_argument("--verbose", action="store_true",
                      help="log claims/completions to stdout")
    p_rn.add_argument("--give-up", type=float, default=600.0, metavar="S",
                      help="exit 2 after the broker has been unreachable "
                           "for S continuous seconds (default 600; a "
                           "SIGTERM always drains the in-flight batch "
                           "first and exits 0)")
    p_rn.add_argument("--obs-dir", default=None, metavar="DIR",
                      help="structured logs + trace spans under DIR "
                           "(default: $REPRO_OBS_DIR)")
    p_rn.set_defaults(func=cmd_runner)

    p_dash = sub.add_parser(
        "serve-dashboard",
        help="serve the live campaign dashboard for a broker",
    )
    p_dash.add_argument("--broker", required=True,
                        help="broker URL the page polls (CORS-enabled); "
                             "the broker also serves it itself at "
                             "/dashboard")
    p_dash.add_argument("--host", default="127.0.0.1")
    p_dash.add_argument("--port", type=int, default=8800)
    p_dash.set_defaults(func=cmd_serve_dashboard)

    p_res = sub.add_parser(
        "results", help="query the result index (SQLite over the store)"
    )
    p_res.add_argument("--where", action="append", default=[],
                       metavar="COL=VAL",
                       help="filter, repeatable (e.g. --where scheme=nomad "
                            "--where seed=2)")
    p_res.add_argument("--quarantined", action="store_true",
                       help="only quarantined (deterministic-failure) rows")
    p_res.add_argument("--failed", action="store_true",
                       help="only transient failed/timeout rows")
    p_res.add_argument("--since", default=None, metavar="DURATION",
                       help="only rows updated within DURATION "
                            "(e.g. 90s, 15m, 2h, 1d)")
    p_res.add_argument("--count", action="store_true",
                       help="print only the matching row count")
    p_res.add_argument("--limit", type=int, default=None)
    p_res.add_argument("--store", default=None,
                       help="result-store directory "
                            "(default: $REPRO_STORE or ~/.cache/repro-nomad)")
    p_res.add_argument("--json", action="store_true",
                       help="structured JSON output instead of tables")
    p_res.set_defaults(func=cmd_results)

    p_scrub = sub.add_parser(
        "scrub",
        help="verify store records (keys + checksums), repair the index",
    )
    p_scrub.add_argument("store", nargs="?", default=None,
                         help="store directory (default: $REPRO_STORE or "
                              "~/.cache/repro-nomad)")
    p_scrub.add_argument("--audit", action="store_true",
                         help="report damage but move/repair nothing")
    p_scrub.add_argument("--json", action="store_true",
                         help="emit the full report as JSON")
    p_scrub.set_defaults(func=cmd_scrub)

    p_chaos = sub.add_parser(
        "chaos",
        help="seeded service fault-injection campaign; proves the store "
             "converges byte-identical to a serial run",
    )
    p_chaos.add_argument("--seed", type=int, default=0,
                         help="fault-schedule seed (default 0)")
    p_chaos.add_argument("--schemes", default="baseline,tdc,nomad")
    p_chaos.add_argument("--workloads", default="sop")
    p_chaos.add_argument("--seeds", default="1,2,3,4",
                         help="seed axis of the grid (default 1,2,3,4)")
    p_chaos.add_argument("--ops", type=int, default=300)
    p_chaos.add_argument("--cores", type=int, default=2)
    p_chaos.add_argument("--dc-mb", type=int, default=8)
    p_chaos.add_argument("--runners", type=int, default=2,
                         help="in-process runner threads (default 2)")
    p_chaos.add_argument("--lease", type=float, default=3.0,
                         help="broker lease seconds; short so killed "
                              "runners requeue fast (default 3)")
    p_chaos.add_argument("--kill-broker-at", type=int, default=2,
                         help="also kill+restart the broker once N "
                              "batches are done (default 2)")
    p_chaos.add_argument("--max-wait", type=float, default=300.0,
                         help="campaign convergence deadline (default 300)")
    p_chaos.add_argument("--store", default=None,
                         help="work directory for the chaos + serial "
                              "stores (default: a fresh temp dir)")
    p_chaos.add_argument("--obs-dir", default=None, metavar="DIR",
                         help="structured logs + trace spans under DIR "
                              "(default: $REPRO_OBS_DIR)")
    p_chaos.add_argument("--json", action="store_true")
    p_chaos.set_defaults(func=cmd_chaos)

    p_t1 = sub.add_parser("table1", help="regenerate Table I")
    add_common(p_t1)
    p_t1.set_defaults(func=cmd_table1)

    p_bench = sub.add_parser(
        "bench", help="measure engine throughput (perf-regression harness)"
    )
    p_bench.add_argument("--quick", action="store_true",
                         help="CI smoke size only (skip the full scenario)")
    p_bench.add_argument("--file", default="BENCH_engine.json",
                         help="committed report path (default BENCH_engine.json)")
    p_bench.add_argument("--check", action="store_true",
                         help="compare against the committed report; exit 1 "
                              "on a >25%% normalized-throughput regression")
    p_bench.add_argument("--update", action="store_true",
                         help="rewrite the committed report's 'current' "
                              "entries (baselines stay frozen)")
    p_bench.add_argument("--no-profile", action="store_true",
                         help="skip the cProfile phase breakdown")
    p_bench.add_argument("--sweep", action="store_true",
                         help="measure campaign sweep throughput (machine-"
                              "snapshot amortization) instead of the engine "
                              "scenarios")
    p_bench.add_argument("--obs", action="store_true",
                         help="measure the distributed sweep with "
                              "observability off vs fully on; with --check, "
                              "fail if the overhead exceeds the budget")
    p_bench.add_argument("--json", action="store_true",
                         help="structured JSON output instead of tables")
    p_bench.set_defaults(func=cmd_bench)

    p_obs = sub.add_parser(
        "obs", help="observability tools: tail logs, scrape /metrics, "
                    "merge service traces"
    )
    obs_sub = p_obs.add_subparsers(dest="obs_command", required=True)
    p_obs_tail = obs_sub.add_parser(
        "tail", help="print structured logs from an obs dir (or one file)"
    )
    p_obs_tail.add_argument("path", help="obs dir, logs dir, or .jsonl file")
    p_obs_tail.add_argument("-f", "--follow", action="store_true",
                            help="keep polling for new records")
    p_obs_tail.add_argument("--level", default="debug",
                            choices=["debug", "info", "warning", "error"],
                            help="minimum level to show (default debug)")
    p_obs_tail.add_argument("--component", default=None,
                            help="only this component (broker, runner, ...)")
    p_obs_tail.add_argument("--json", action="store_true",
                            help="raw JSON records instead of text lines")
    p_obs_tail.set_defaults(func=cmd_obs)
    p_obs_scrape = obs_sub.add_parser(
        "scrape", help="fetch a broker's Prometheus /metrics exposition"
    )
    p_obs_scrape.add_argument("broker", help="broker URL or host:port")
    p_obs_scrape.add_argument("--diff", type=float, default=None, metavar="S",
                              help="scrape twice S seconds apart and print "
                                   "only the series that moved")
    p_obs_scrape.set_defaults(func=cmd_obs)
    p_obs_merge = obs_sub.add_parser(
        "merge", help="merge per-process service traces into one Perfetto "
                      "file (validated against the trace schema)"
    )
    p_obs_merge.add_argument("obs_dir", help="obs dir or its traces/ subdir")
    p_obs_merge.add_argument("--out", default=None, metavar="PATH",
                             help="write the merged trace JSON to PATH "
                                  "(summarize with: repro timeline PATH)")
    p_obs_merge.set_defaults(func=cmd_obs)

    p_tl = sub.add_parser(
        "timeline", help="validate + summarize a telemetry trace file"
    )
    p_tl.add_argument("trace", help="trace JSON written by run --timeline")
    p_tl.add_argument("--json", action="store_true",
                      help="structured JSON summary instead of text")
    p_tl.set_defaults(func=cmd_timeline)

    p_replay = sub.add_parser(
        "replay", help="re-run a guard diagnostic bundle deterministically"
    )
    p_replay.add_argument("bundle", help="bundle directory or bundle.json path")
    p_replay.add_argument("--json", action="store_true",
                          help="structured JSON output instead of text")
    p_replay.set_defaults(func=cmd_replay)

    p_ls = sub.add_parser("list", help="list workloads and schemes")
    p_ls.set_defaults(func=cmd_list)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
