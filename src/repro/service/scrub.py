"""Store verification and repair (``repro scrub STORE``).

The content-addressed store is self-describing: every record's file
name is the sha256 of its own ``{config, version}`` and every payload
carries an ``integrity`` checksum over its content.  Scrub exploits
both to find damage no matter how it happened -- torn writes (invalid
JSON), bit flips (integrity mismatch), renamed or misplaced files
(content-key mismatch), hand-edited payloads -- then repairs:

1. each damaged file is moved to ``<store>/corrupt/`` (out of the
   address space, so ``get``/prescan miss and the config is simply
   recomputed by the next campaign);
2. its SQLite index row is dropped (:meth:`ResultIndex.forget`);
3. the index is reconciled with the directory via
   :meth:`ResultIndex.sync_from_store` -- which also adopts healthy
   records the index never saw.

The report is returned *and* persisted to
``<store>/service/scrub_report.json`` so ``repro results --json`` can
surface what the last repair changed.
"""

from __future__ import annotations

import json
import shutil
import time
from pathlib import Path
from typing import List, Optional

from repro import obs
from repro.campaign.store import (
    ResultStore,
    atomic_write_json,
    content_key,
    payload_integrity,
)

SCRUB_REPORT = "scrub_report.json"

_LOG = obs.get_logger("scrub")


def scrub_report_path(store_root) -> Path:
    return Path(store_root) / "service" / SCRUB_REPORT


def load_scrub_report(store_root) -> Optional[dict]:
    """The last persisted scrub report, or None."""
    try:
        payload = json.loads(scrub_report_path(store_root).read_text())
    except (OSError, ValueError):
        return None
    return payload if isinstance(payload, dict) else None


def _verdict(path: Path, payload, expect_field: str,
             report: dict) -> Optional[str]:
    """Why *path* is damaged, or None if it is healthy."""
    if not isinstance(payload, dict):
        return "not a JSON object"
    cfg = payload.get("config")
    version = payload.get("version")
    if not isinstance(cfg, dict) or not isinstance(version, str):
        return "missing config/version"
    key = content_key(cfg, version)
    if key != path.stem:
        return f"content-key mismatch (payload hashes to {key[:12]}...)"
    if expect_field not in payload:
        return f"missing {expect_field!r} payload"
    integrity = payload.get("integrity")
    if integrity is None:
        # Pre-integrity-stamp record: key-verified but not bit-proof.
        report["missing_integrity"] += 1
        return None
    if integrity != payload_integrity(payload):
        return "integrity checksum mismatch"
    return None


def scrub_store(store: ResultStore, index=None,
                repair: bool = True) -> dict:
    """Verify every record in *store*; quarantine damage, fix the index.

    With ``repair=False`` nothing is moved or forgotten -- pure audit.
    Returns the report dict (also persisted beside the journal); the
    interesting keys are ``clean`` (bool), ``corrupt`` (result records
    that failed), ``quarantined_corrupt`` (failure records that
    failed), and ``synced_rows`` (index rows re-added from disk).
    """
    root = Path(store.root)
    report: dict = {
        "checked": 0,
        "ok": 0,
        "missing_integrity": 0,
        "corrupt": [],
        "quarantined_corrupt": [],
        "moved": 0,
        "forgotten_rows": 0,
        "synced_rows": 0,
        "repair": bool(repair),
    }
    corrupt_dir = root / "corrupt"

    def sweep(paths: List[Path], expect_field: str, bucket: str) -> None:
        for path in paths:
            report["checked"] += 1
            reason = None
            try:
                payload = json.loads(path.read_text())
            except (OSError, ValueError):
                payload, reason = None, "unreadable or torn (invalid JSON)"
            if reason is None:
                reason = _verdict(path, payload, expect_field, report)
            if reason is None:
                report["ok"] += 1
                continue
            entry = {
                "path": str(path.relative_to(root)),
                "key": path.stem,
                "reason": reason,
            }
            _LOG.warning(
                "scrub.corrupt", path=entry["path"], reason=reason,
                repair=bool(repair),
            )
            if repair:
                corrupt_dir.mkdir(parents=True, exist_ok=True)
                dest = corrupt_dir / path.name
                n = 1
                while dest.exists():
                    dest = corrupt_dir / f"{path.stem}.{n}{path.suffix}"
                    n += 1
                shutil.move(str(path), str(dest))
                entry["moved_to"] = str(dest.relative_to(root))
                report["moved"] += 1
                if index is not None:
                    index.forget(path.stem)
                    report["forgotten_rows"] += 1
            report[bucket].append(entry)

    result_paths = [
        p for p in sorted(root.glob("*/*.json"))
        if len(p.parent.name) == 2
    ]
    sweep(result_paths, "result", "corrupt")
    qdir = root / "quarantine"
    sweep(
        sorted(qdir.glob("*.json")) if qdir.exists() else [],
        "failure", "quarantined_corrupt",
    )

    if index is not None and repair:
        report["synced_rows"] = index.sync_from_store(store)
    report["clean"] = not report["corrupt"] \
        and not report["quarantined_corrupt"]
    report["at"] = time.time()
    atomic_write_json(scrub_report_path(root), report)
    _LOG.info(
        "scrub.done", store=str(root), checked=report["checked"],
        ok=report["ok"], moved=report["moved"], clean=report["clean"],
    )
    return report
