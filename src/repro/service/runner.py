"""Pull-based campaign runner (``python -m repro runner``).

A runner owns no queue state: it claims leased batches from the broker,
executes them through the *existing* :func:`repro.campaign.run_campaign`
machinery -- so a distributed run inherits the pool's crash/hang retry
logic, the deterministic-failure confirmation pass, and PR 5's
same-snapshot-key batching (the broker groups batches by snapshot key,
and every fork amortizes inside this runner's worker processes) -- then
streams the resulting records back and moves on.

Liveness is heartbeats: while a batch runs, a timer thread renews the
runner's leases every third of the lease period (so a single run longer
than the lease cannot get the batch requeued mid-run), and campaign
``progress`` events are additionally forwarded as telemetry heartbeats
(throughput, snapshot/trace cache hit deltas, recent overlap
fractions).  A runner that dies mid-batch simply stops
heartbeating; the broker expires the lease and requeues the batch
elsewhere.  All broker I/O retries with the shared jittered-exponential
:class:`~repro.campaign.pool.Backoff` before giving up.
"""

from __future__ import annotations

import contextlib
import os
import signal
import socket
import threading
import time
from typing import Callable, Optional

from repro import obs
from repro.campaign.executor import run_campaign
from repro.harness.runner import cache_counts, cache_delta
from repro.service.protocol import (
    BrokerClient,
    BrokerUnreachable,
    record_to_item,
)
from repro.telemetry.heartbeat import HeartbeatStats, make_heartbeat

_LOG = obs.get_logger("runner")


def default_runner_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}"


class _trace_cache_pointed_at:
    """Point the disk trace-cache layer at the batch's shared dir.

    Restores the previous setting on exit: runner loops can run as
    threads inside a larger process (tests, embedded local services),
    and the trace-cache layer is process-global state.
    """

    def __init__(self, meta: dict):
        self.trace_dir = (meta or {}).get("trace_dir")
        self.prev = None

    def __enter__(self):
        if self.trace_dir:
            from repro.workloads.synthetic import (
                configure_trace_cache,
                trace_cache_stats,
            )

            self.prev = trace_cache_stats()["disk_dir"] or None
            configure_trace_cache(disk_dir=self.trace_dir)
        return self

    def __exit__(self, *exc):
        if self.trace_dir:
            from repro.workloads.synthetic import configure_trace_cache

            configure_trace_cache(disk_dir=self.prev)
        return False


def execute_batch(batch: dict, jobs: int = 1,
                  on_event: Optional[Callable[[str, dict], None]] = None):
    """Run one claimed batch; returns ``(items, cache_stats_delta)``.

    The batch's configs go through :func:`run_campaign` with *no*
    result store (the broker owns the store; a runner only computes),
    so quarantine classification happens here -- a deterministic
    failure is reported with status ``quarantined`` and the broker does
    the actual ``put_failure``.
    """
    from repro.harness.runner import RunConfig

    meta = dict(batch.get("meta") or {})
    configs = [RunConfig.from_dict(c) for c in batch["configs"]]
    before = cache_counts()
    with _trace_cache_pointed_at(meta):
        campaign = run_campaign(
            configs,
            jobs=jobs,
            store=None,
            timeout=meta.get("timeout"),
            retries=int(meta.get("retries", 1)),
            guard=meta.get("guard"),
            telemetry=meta.get("telemetry"),
            trace_dir=meta.get("trace_dir"),
            progress=on_event,
        )
    # The summary's snapshot/trace counters are this process's
    # cumulative counts plus any pool-worker deltas; subtracting the
    # pre-batch snapshot yields exactly this batch's contribution.
    summary_counts = {
        "snapshot": {
            k: int(campaign.summary.snapshot.get(k, 0))
            for k in before["snapshot"]
        },
        "trace": {
            k: int(campaign.summary.trace.get(k, 0))
            for k in before["trace"]
        },
    }
    delta = cache_delta(before, summary_counts)
    indices = batch["indices"]
    items = [
        record_to_item(rec, indices[rec.index]) for rec in campaign.records
    ]
    return items, delta


def runner_loop(
    broker: str,
    jobs: int = 1,
    runner_id: Optional[str] = None,
    poll_s: float = 1.0,
    exit_when_idle: Optional[float] = None,
    max_batches: Optional[int] = None,
    client: Optional[BrokerClient] = None,
    verbose: bool = False,
    stop: Optional[threading.Event] = None,
    give_up_after_s: Optional[float] = 600.0,
    install_signal_handlers: bool = True,
) -> int:
    """Claim-execute-report until stopped; returns batches completed.

    ``exit_when_idle`` (seconds) ends the loop after the broker has had
    no work for that long -- CI and embedded local services use it;
    a long-lived fleet runner omits it and polls forever.
    ``max_batches`` bounds the run for tests.

    Graceful degradation: SIGTERM (when handlers can be installed --
    main thread only) or an externally set ``stop`` event *drains* --
    the in-flight batch finishes and its records are reported before
    the loop returns, so nothing is recomputed elsewhere.  A broker
    that stays unreachable for ``give_up_after_s`` of continuous
    failed claims raises :class:`BrokerUnreachable` instead of backing
    off forever (``None`` disables the limit).
    """
    own_client = client is None
    client = client or BrokerClient(broker)
    rid = runner_id or default_runner_id()
    hb = HeartbeatStats()
    done = 0
    batch_seconds_total = 0.0
    idle_since: Optional[float] = None
    unreachable_since: Optional[float] = None
    stop = stop or threading.Event()

    def _say(msg: str) -> None:
        if verbose:
            print(f"runner {rid}: {msg}", flush=True)

    def _obs_counters() -> dict:
        # getattr: injected test/chaos clients need not carry the counter.
        return {
            "backoff_retries": getattr(client, "retries_total", 0),
            "batch_seconds_total": batch_seconds_total,
            "batches_done": done,
        }

    def _on_sigterm(signum, frame):
        _say("SIGTERM: draining in-flight batch, then exiting")
        _LOG.info("runner.drain", runner_id=rid, reason="SIGTERM")
        stop.set()

    prev_handler = None
    handler_installed = False
    if install_signal_handlers:
        try:
            prev_handler = signal.signal(signal.SIGTERM, _on_sigterm)
            handler_installed = True
        except ValueError:
            pass  # not the main thread (embedded/test runner loops)

    if own_client:
        # Fail fast with the one-line operator error before settling
        # into the claim loop -- `repro runner` against a dead broker
        # must not look like a healthy idle runner.
        client.probe()

    try:
        while (max_batches is None or done < max_batches) \
                and not stop.is_set():
            try:
                grant = client.claim(rid, max_batches=1)
            except BrokerUnreachable:
                if exit_when_idle is not None:
                    # An embedded/CI runner whose broker went away is
                    # done.
                    _say("broker unreachable; exiting")
                    _LOG.warning("broker.unreachable", runner_id=rid)
                    return done
                now = time.monotonic()
                if unreachable_since is None:
                    unreachable_since = now
                if (give_up_after_s is not None
                        and now - unreachable_since >= give_up_after_s):
                    raise
                continue  # claim() already backed off between attempts
            unreachable_since = None
            batches = grant.get("batches", [])
            if not batches:
                now = time.monotonic()
                if idle_since is None:
                    idle_since = now
                if (exit_when_idle is not None
                        and now - idle_since >= exit_when_idle):
                    _say(f"idle for {exit_when_idle}s; exiting")
                    return done
                stop.wait(poll_s)
                continue
            idle_since = None
            lease_s = float(grant.get("lease_s") or 60.0)
            for batch in batches:
                _say(f"claimed batch {batch['batch_id']} "
                     f"({len(batch['configs'])} configs)")
                _LOG.info(
                    "batch.claim", runner_id=rid,
                    campaign=batch["campaign_id"],
                    batch_id=batch["batch_id"],
                    configs=len(batch["configs"]),
                    attempt=batch.get("attempt"),
                )
                t0 = time.monotonic()
                last_progress: dict = {}

                def on_event(kind: str, info: dict) -> None:
                    # Forward campaign progress as a broker heartbeat;
                    # a dropped heartbeat is fine (lease grace absorbs
                    # it).
                    last_progress.update(info)
                    hb.observe(completed=info.get("completed", 0))
                    client.heartbeat(rid, make_heartbeat(
                        rid, info, cache_counts(), hb,
                        obs_counters=_obs_counters(),
                    ))

                # Progress events only fire when a run *completes*, so
                # a single run longer than the lease would starve the
                # broker of heartbeats and get the batch requeued (and
                # re-executed elsewhere) mid-run.  A timer thread keeps
                # the lease warm regardless of run length.
                stop_renewal = threading.Event()

                def _renew_lease() -> None:
                    interval = max(0.1, lease_s / 3.0)
                    while not stop_renewal.wait(interval):
                        client.heartbeat(rid, make_heartbeat(
                            rid, dict(last_progress), cache_counts(), hb,
                            obs_counters=_obs_counters(),
                        ))

                renewal = threading.Thread(
                    target=_renew_lease, name=f"lease-renewal-{rid}",
                    daemon=True,
                )
                renewal.start()
                # The batch-run span covers execution AND the complete
                # report: while it is active the client stamps
                # X-Repro-Trace on /complete, which is how the broker
                # parents its ingest span onto this one.
                trace_meta = (batch.get("meta") or {}).get("trace") or {}
                tracer = (
                    obs.service_tracer("runner")
                    if trace_meta.get("trace_id") else None
                )
                span_cm = (
                    tracer.span(
                        "batch-run", str(trace_meta["trace_id"]),
                        parent=(trace_meta.get("claim_span")
                                or trace_meta.get("span_id")),
                        args={
                            "campaign_id": batch["campaign_id"],
                            "batch_id": batch["batch_id"],
                            "runner_id": rid,
                            "configs": len(batch["configs"]),
                        },
                    )
                    if tracer is not None else contextlib.nullcontext()
                )
                with span_cm:
                    try:
                        items, delta = execute_batch(
                            batch, jobs=jobs, on_event=on_event
                        )
                    finally:
                        stop_renewal.set()
                        renewal.join(timeout=10)
                    for item in items:
                        overlap = (item.get("telemetry") or {}).get(
                            "overlap_fraction"
                        )
                        if overlap is not None:
                            hb.observe_overlap(overlap)
                    # Even when stop was requested mid-batch (SIGTERM
                    # drain), the finished batch is reported before the
                    # loop exits -- the work is never thrown away.
                    answer = client.complete(
                        rid, batch["campaign_id"], batch["batch_id"],
                        items, cache_stats=delta,
                    )
                batch_s = time.monotonic() - t0
                batch_seconds_total += batch_s
                done += 1
                _say(f"batch {batch['batch_id']} done: "
                     f"{len(items)} records "
                     f"in {batch_s:.2f}s "
                     f"(accepted={answer.get('accepted')})")
                _LOG.info(
                    "batch.done", runner_id=rid,
                    campaign=batch["campaign_id"],
                    batch_id=batch["batch_id"],
                    items=len(items), seconds=round(batch_s, 3),
                    accepted=answer.get("accepted"),
                )
        if stop.is_set():
            _say(f"stopped after draining; {done} batch(es) completed")
        return done
    finally:
        if handler_installed:
            signal.signal(signal.SIGTERM, prev_handler)
