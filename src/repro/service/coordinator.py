"""Queue-backed campaign execution (``repro sweep --distributed``).

The coordinator is ``run_campaign``'s distributed twin, built from the
same campaign primitives:

1. expand the grid (or, for ``--resume``, reload the persisted
   manifest), :func:`~repro.campaign.executor.prescan` against the
   shared :class:`ResultStore` -- quarantined and already-stored
   configs resolve locally and are **not** re-enqueued, which is what
   makes campaigns resumable across broker and runner restarts;
2. plan batches with the pool's snapshot-key grouping
   (:func:`~repro.campaign.executor._plan_batches`) so each runner
   amortizes machine forks, give every batch a content-addressed id,
   and submit to the broker (idempotent -- re-submitting pending work
   dedupes);
3. poll broker status, forwarding progress events, until every
   submitted batch is done;
4. pull the records back, merge by grid index, and return an ordinary
   :class:`~repro.campaign.CampaignResult` -- callers cannot tell the
   difference from a pool campaign (and the results are bit-identical;
   CI pins that).

:func:`local_service` spins up an in-process broker plus N runner
subprocesses on localhost, so ``repro sweep --distributed`` works with
no pre-existing service -- the CI smoke job and the tests drive the
same path with an external broker.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
import uuid
from contextlib import contextmanager, nullcontext as _null_cm
from typing import Iterable, List, Optional, Union

from repro import obs
from repro.campaign.executor import (
    CampaignResult,
    RunRecord,
    _as_campaign_telemetry,
    _as_progress,
    _plan_batches,
    prescan,
    summarize_records,
)
from repro.campaign.grid import GridSpec
from repro.harness.runner import RunConfig
from repro.service.protocol import (
    BrokerClient,
    BrokerError,
    BrokerUnreachable,
    batch_id_for,
)
from repro.system.machine import MachineResult

_LOG = obs.get_logger("coordinator")


def new_campaign_id() -> str:
    return f"c{uuid.uuid4().hex[:12]}"


def _record_from_item(index: int, cfg: RunConfig, item: dict) -> RunRecord:
    result = item.get("result")
    return RunRecord(
        index=index,
        config=cfg,
        status=item.get("status", "failed"),
        result=MachineResult.from_dict(result) if result else None,
        source=item.get("source", ""),
        error=item.get("error", ""),
        attempts=int(item.get("attempts", 0)),
        failure_kind=item.get("failure_kind", ""),
        bundle_path=item.get("bundle_path", ""),
        traceback=item.get("traceback", ""),
        telemetry=item.get("telemetry"),
    )


def run_distributed_campaign(
    grid: Union[GridSpec, Iterable[RunConfig], None],
    broker: str,
    store,
    campaign_id: Optional[str] = None,
    resume: bool = False,
    jobs: int = 2,
    timeout: Optional[float] = None,
    retries: int = 1,
    guard=None,
    telemetry=None,
    progress=None,
    poll_s: float = 0.25,
    max_wait_s: Optional[float] = None,
    client: Optional[BrokerClient] = None,
) -> CampaignResult:
    """Drain *grid* through a broker's runner fleet.

    ``store`` must be the same store directory the broker ingests into
    (a shared filesystem on multi-host setups): the prescan against it
    is both the cache layer and the resume mechanism.  ``jobs`` is the
    expected fleet-wide worker-slot count -- it only tunes batch
    chunking, not any local parallelism.  With ``resume=True`` the grid
    may be ``None``; the config list is reloaded from the campaign's
    persisted manifest.  ``client`` overrides the default
    :class:`BrokerClient` (the chaos harness injects fault-wired ones).

    An unreachable broker fails fast (one probe, no retry storm) before
    any work is planned; a broker that goes away *mid-drain* is ridden
    out -- the journal-backed broker comes back with its queue intact,
    so the coordinator just keeps polling until ``max_wait_s``.
    """
    t0 = time.monotonic()
    client = client or BrokerClient(broker)
    client.probe()
    cid = campaign_id or new_campaign_id()

    tel_cfg = _as_campaign_telemetry(telemetry)
    guard_cfg = None
    if guard is not None and guard is not False:
        from repro.guard import GuardConfig

        guard_cfg = guard if isinstance(guard, GuardConfig) else GuardConfig()
    on_event = _as_progress(progress)

    if resume:
        manifest = client.manifest(cid)
        configs = [
            RunConfig.from_dict(c) for c in manifest.get("configs", [])
        ]
        if not configs:
            raise BrokerError(f"campaign {cid!r} has an empty manifest")
    elif grid is None:
        raise ValueError("run_distributed_campaign needs a grid or resume=True")
    else:
        configs = grid.expand() if isinstance(grid, GridSpec) else list(grid)

    # One trace id per campaign: every broker/runner span of this
    # submission hangs off the campaign span opened here.  The span is
    # closed on the success path; a coordinator crash leaves it open and
    # merge_service_traces closes it as truncated.
    tracer = obs.service_tracer("coordinator")
    campaign_span = None
    trace_meta = None
    if tracer is not None:
        trace_id = obs.new_trace_id()
        campaign_span = tracer.span(
            "campaign", trace_id,
            args={"campaign_id": cid, "configs": len(configs)},
        ).begin()
        trace_meta = {"trace_id": trace_id,
                      "span_id": campaign_span.span_id}

    records: List[Optional[RunRecord]] = [None] * len(configs)
    pending = prescan(
        configs, records, store,
        skip_caches=guard_cfg is not None or tel_cfg is not None,
    )

    submitted: List[str] = []
    if pending:
        groups = _plan_batches(
            pending, configs, jobs,
            batching=guard_cfg is None and tel_cfg is None,
        )
        meta = {
            "timeout": timeout,
            "retries": retries,
            "guard": guard_cfg.to_dict() if guard_cfg is not None else None,
            "telemetry": tel_cfg.to_dict() if tel_cfg is not None else None,
        }
        if trace_meta is not None:
            meta["trace"] = dict(trace_meta)
        store_root = getattr(store, "root", None)
        if store_root and guard_cfg is None and tel_cfg is None:
            meta["trace_dir"] = os.path.join(str(store_root), "traces")
        batches = []
        for group in groups:
            payloads = [configs[i].to_dict() for i in group]
            batches.append({
                "batch_id": batch_id_for(cid, payloads),
                "indices": list(group),
                "configs": payloads,
            })
        submitted = [b["batch_id"] for b in batches]
        _LOG.info(
            "campaign.plan", campaign=cid, configs=len(configs),
            pending=len(pending), batches=len(batches),
        )
        enqueue_cm = (
            tracer.span(
                "enqueue", trace_meta["trace_id"],
                parent=trace_meta["span_id"],
                args={"campaign_id": cid, "batches": len(batches)},
            )
            if tracer is not None else _null_cm()
        )
        with enqueue_cm:
            client.enqueue(
                cid, batches, meta,
                manifest=[c.to_dict() for c in configs],
            )

        # Drain: poll until every batch this submission covers is done.
        last_done = -1
        last_beat = time.monotonic()
        while True:
            try:
                status = client.status(cid)
            except BrokerUnreachable:
                # A restarting broker (crash recovery, redeploy) is a
                # transient outage, not a failed campaign: it replays
                # its journal and picks up where it stopped.  Keep
                # polling until the overall deadline says otherwise.
                if (max_wait_s is not None
                        and time.monotonic() - t0 > max_wait_s):
                    raise
                time.sleep(poll_s)
                continue
            campaign = status.get("campaigns", {}).get(cid, {})
            done = int(campaign.get("done", 0))
            total = int(campaign.get("batches", len(submitted)))
            if on_event is not None:
                now = time.monotonic()
                if done != last_done or now - last_beat >= 2.0:
                    runs_done = int(campaign.get("runs_done", 0))
                    on_event("done" if done != last_done else "heartbeat", {
                        "completed": runs_done,
                        "outstanding": max(0, len(pending) - runs_done),
                        "total": len(pending),
                    })
                    last_done = done
                    last_beat = now
            if done >= total:
                break
            if (max_wait_s is not None
                    and time.monotonic() - t0 > max_wait_s):
                raise BrokerError(
                    f"campaign {cid!r} did not converge within "
                    f"{max_wait_s}s ({done}/{total} batches)"
                )
            time.sleep(poll_s)

        for item in client.records(cid):
            i = int(item["index"])
            if records[i] is None:  # don't clobber prescan resolutions
                records[i] = _record_from_item(i, configs[i], item)

    done_records = [r for r in records if r is not None]
    broker_caches = {}
    try:
        status = client.status(cid)
        broker_caches = (
            status.get("campaigns", {}).get(cid, {}).get("cache_counts", {})
        )
    except BrokerError:
        pass
    summary = summarize_records(
        done_records, time.monotonic() - t0, store, broker_caches
    )
    _LOG.info(
        "campaign.done", campaign=cid, records=len(done_records),
        seconds=round(time.monotonic() - t0, 3),
    )
    if campaign_span is not None:
        campaign_span.end(records=len(done_records))
    result = CampaignResult(done_records, summary)
    result.campaign_id = cid  # type: ignore[attr-defined]
    return result


@contextmanager
def local_service(
    store_root,
    runners: int = 2,
    jobs_per_runner: int = 1,
    lease_s: float = 60.0,
    exit_when_idle: float = 10.0,
):
    """An ephemeral localhost service: in-process broker + runner procs.

    Yields the broker URL.  Runner subprocesses inherit this process's
    ``sys.path`` (via ``PYTHONPATH``) so source checkouts work without
    installation; they exit on their own once the broker goes away or
    the queue stays empty for ``exit_when_idle`` seconds.
    """
    from repro.service.broker import Broker, BrokerServer

    broker = Broker(store_root, lease_s=lease_s)
    server = BrokerServer(broker).start()
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [p for p in sys.path if p] +
        ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    procs: List[subprocess.Popen] = []
    try:
        for _ in range(max(1, runners)):
            procs.append(subprocess.Popen(
                [
                    sys.executable, "-m", "repro", "runner",
                    "--broker", server.url,
                    "--jobs", str(jobs_per_runner),
                    "--exit-when-idle", str(exit_when_idle),
                    "--poll", "0.2",
                ],
                env=env,
            ))
        yield server.url
    finally:
        for proc in procs:
            proc.terminate()
        for proc in procs:
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()
        server.shutdown()
