"""Distributed campaign service: broker, pull-based runners, index.

The service layer scales :func:`repro.campaign.run_campaign` past one
host's process pool, with zero new dependencies (stdlib ``http.server``,
``urllib``, ``sqlite3``):

* :class:`~repro.service.broker.Broker` -- owns a durable work queue of
  serialized :class:`RunConfig` batches, leases them to runners, and
  ingests results into the content-addressed
  :class:`~repro.campaign.store.ResultStore` plus a queryable SQLite
  :class:`~repro.service.index.ResultIndex`;
* :func:`~repro.service.runner.runner_loop` -- a pull-based worker
  (``python -m repro runner``) that claims batches, executes them
  through the existing ``run_campaign`` machinery (same snapshot-fork
  and trace-cache amortization), and streams records + telemetry
  heartbeats back;
* :func:`~repro.service.coordinator.run_distributed_campaign` -- the
  queue-backed executor path behind ``repro sweep --distributed``,
  resumable via the store (``--resume``);
* :mod:`~repro.service.dashboard` -- a self-contained live HTML page
  (``repro serve-dashboard`` or the broker's ``/dashboard``).

Everything speaks the JSON protocol in :mod:`repro.service.protocol`
and is fully testable with broker + runners on localhost.
"""

from repro.service.broker import Broker, BrokerServer, serve_broker
from repro.service.coordinator import local_service, run_distributed_campaign
from repro.service.index import ResultIndex
from repro.service.protocol import (
    PROTOCOL_VERSION,
    BrokerClient,
    BrokerError,
    BrokerUnreachable,
    batch_id_for,
)
from repro.service.runner import runner_loop

__all__ = [
    "PROTOCOL_VERSION",
    "Broker",
    "BrokerClient",
    "BrokerError",
    "BrokerServer",
    "BrokerUnreachable",
    "ResultIndex",
    "batch_id_for",
    "local_service",
    "run_distributed_campaign",
    "runner_loop",
    "serve_broker",
]
