"""Distributed campaign service: broker, pull-based runners, index.

The service layer scales :func:`repro.campaign.run_campaign` past one
host's process pool, with zero new dependencies (stdlib ``http.server``,
``urllib``, ``sqlite3``):

* :class:`~repro.service.broker.Broker` -- owns a durable work queue of
  serialized :class:`RunConfig` batches, leases them to runners, and
  ingests results into the content-addressed
  :class:`~repro.campaign.store.ResultStore` plus a queryable SQLite
  :class:`~repro.service.index.ResultIndex`;
* :func:`~repro.service.runner.runner_loop` -- a pull-based worker
  (``python -m repro runner``) that claims batches, executes them
  through the existing ``run_campaign`` machinery (same snapshot-fork
  and trace-cache amortization), and streams records + telemetry
  heartbeats back;
* :func:`~repro.service.coordinator.run_distributed_campaign` -- the
  queue-backed executor path behind ``repro sweep --distributed``,
  resumable via the store (``--resume``);
* :mod:`~repro.service.dashboard` -- a self-contained live HTML page
  (``repro serve-dashboard`` or the broker's ``/dashboard``);
* :mod:`~repro.service.journal` -- append-only, fsynced log of batch
  state transitions; a restarted broker replays it and resumes
  mid-campaign with no coordinator prescan;
* :mod:`~repro.service.chaos` -- seeded fault injection (network,
  HTTP, disk, process) proving convergence under every schedule
  (``repro chaos``);
* :mod:`~repro.service.scrub` -- store verification + index repair
  (``repro scrub``).

Everything speaks the JSON protocol in :mod:`repro.service.protocol`
and is fully testable with broker + runners on localhost.
"""

from repro.service.broker import Broker, BrokerServer, serve_broker
from repro.service.chaos import (
    ChaosKill,
    FaultPlan,
    FaultSpec,
    FaultyFS,
    faulty_fs,
    run_chaos_campaign,
    stores_identical,
)
from repro.service.coordinator import local_service, run_distributed_campaign
from repro.service.index import ResultIndex
from repro.service.journal import Journal
from repro.service.protocol import (
    PROTOCOL_VERSION,
    BrokerClient,
    BrokerError,
    BrokerUnreachable,
    batch_id_for,
)
from repro.service.runner import runner_loop
from repro.service.scrub import load_scrub_report, scrub_store

__all__ = [
    "PROTOCOL_VERSION",
    "Broker",
    "BrokerClient",
    "BrokerError",
    "BrokerServer",
    "BrokerUnreachable",
    "ChaosKill",
    "FaultPlan",
    "FaultSpec",
    "FaultyFS",
    "Journal",
    "ResultIndex",
    "batch_id_for",
    "faulty_fs",
    "load_scrub_report",
    "local_service",
    "run_chaos_campaign",
    "run_distributed_campaign",
    "runner_loop",
    "scrub_store",
    "serve_broker",
    "stores_identical",
]
