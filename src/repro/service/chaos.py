"""Deterministic fault injection for the distributed campaign service.

PR 3's ``repro.guard.chaos`` proved the engine's invariant checkers by
injecting the exact corruptions they exist to catch.  This module does
the same for the service layer: every fault the broker/runner/client
stack claims to survive is injected here, on a seeded schedule, and the
proof is convergence -- after any schedule, the campaign's result store
must be byte-identical to a serial run's, with zero lost and zero
double-ingested grid slots.

Fault sites
-----------

``client``
    Wired into :meth:`BrokerClient._request` (the ``fault_plan``
    constructor arg): request **drop** (never sent), **delay** /
    **reorder** (held while concurrent requests overtake), **dup**
    (same payload delivered twice -- exercises idempotent enqueue and
    at-most-once complete), **reset** (request delivered, response
    lost -- forces a retry of an already-applied call), and
    **kill_runner** (:class:`ChaosKill` raised at the call site; the
    runner dies mid-protocol and its lease must expire and requeue).

``server``
    Wired into the broker HTTP handler: injected **HTTP 500** before
    the request is processed, and **response truncation** (the body is
    cut short; the client sees a JSON parse error and retries).

``fs``
    Wired into the store's filesystem shim
    (:func:`repro.campaign.store.install_fs`): **ENOSPC** (write
    raises), **torn write** (only a prefix reaches disk), **bit flip**
    (one bit corrupted in flight).  Categories: ``store`` (result and
    quarantine records) and ``meta`` (journal, manifests).

``process``
    Fired by the harness supervisor on observed progress:
    **kill_broker** (the broker is dropped and a fresh one is rebuilt
    purely from its on-disk journal -- the crash-recovery path).

All schedules are seeded (:meth:`FaultPlan.seeded`) and every firing is
recorded, so a failing schedule replays exactly.
"""

from __future__ import annotations

import errno
import json
import random
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro import obs
from repro.campaign.pool import Backoff
from repro.campaign.store import install_fs

_LOG = obs.get_logger("chaos")

# -- fault kinds -------------------------------------------------------------

CLIENT_DROP = "drop"
CLIENT_DELAY = "delay"
CLIENT_DUP = "dup"
CLIENT_REORDER = "reorder"
CLIENT_RESET = "conn_reset"
KILL_RUNNER = "kill_runner"
SERVER_500 = "http_500"
SERVER_TRUNCATE = "truncate"
FS_ENOSPC = "enospc"
FS_TORN = "torn_write"
FS_BITFLIP = "bit_flip"
KILL_BROKER = "kill_broker"

#: Which injection site each fault kind fires at.
SITE_OF = {
    CLIENT_DROP: "client",
    CLIENT_DELAY: "client",
    CLIENT_DUP: "client",
    CLIENT_REORDER: "client",
    CLIENT_RESET: "client",
    KILL_RUNNER: "client",
    SERVER_500: "server",
    SERVER_TRUNCATE: "server",
    FS_ENOSPC: "fs",
    FS_TORN: "fs",
    FS_BITFLIP: "fs",
    KILL_BROKER: "process",
}

ALL_KINDS = tuple(SITE_OF)
NETWORK_KINDS = (CLIENT_DROP, CLIENT_DELAY, CLIENT_DUP, CLIENT_REORDER,
                 CLIENT_RESET, SERVER_500, SERVER_TRUNCATE)


class ChaosKill(Exception):
    """An injected process death, raised at a protocol call site.

    Deliberately *not* a :class:`BrokerError`: nothing in the retry or
    heartbeat machinery may swallow it -- the runner must actually die.
    """


@dataclass
class FaultSpec:
    """One scheduled fault: *kind* at the *at*-th matching operation.

    ``path`` narrows the match (an endpoint path for client/server
    sites, a category -- ``store``/``meta`` -- for fs, ``broker`` for
    process); empty matches every operation at the site.  ``at`` is
    1-based and compares against the per-(site, path) operation counter
    (for the ``process`` site: against the observed done-batch count).
    ``param`` tunes the fault (delay seconds).  ``fired_at`` records
    the counter value at firing -- ``None`` means still pending.
    """

    kind: str
    path: str = ""
    at: int = 1
    param: float = 0.0
    fired_at: Optional[int] = None

    @property
    def site(self) -> str:
        return SITE_OF[self.kind]

    def to_dict(self) -> dict:
        return {"kind": self.kind, "path": self.path, "at": self.at,
                "param": self.param, "fired_at": self.fired_at}


class FaultPlan:
    """A seeded, thread-safe schedule of one-shot faults.

    Each operation at a site bumps two counters -- (site, path) and
    (site, "") -- and any pending spec whose threshold the matching
    counter has reached fires exactly once.  ``fired`` logs every
    firing in order, so a convergence failure names the exact schedule
    that produced it.
    """

    def __init__(self, specs: Iterable[Union[FaultSpec, dict]] = (),
                 seed: int = 0):
        self.specs: List[FaultSpec] = [
            s if isinstance(s, FaultSpec) else FaultSpec(**s) for s in specs
        ]
        self.seed = seed
        self._counts: Dict[Tuple[str, str], int] = {}
        self._lock = threading.Lock()
        self.fired: List[Tuple[str, str, str, int]] = []

    @classmethod
    def seeded(cls, seed: int, kinds: Sequence[str] = NETWORK_KINDS,
               max_at: int = 5) -> "FaultPlan":
        """One spec per kind, with target path and trigger op drawn
        from ``random.Random(seed)`` -- the deterministic schedule
        generator behind the convergence suite and ``repro chaos``."""
        rng = random.Random(seed)
        client_paths = ["/claim", "/complete", "/heartbeat", "/status"]
        server_paths = ["/claim", "/complete", "/status"]
        specs = []
        for kind in kinds:
            site = SITE_OF[kind]
            if kind == KILL_RUNNER:
                # Die right before reporting a finished batch: the
                # worst client-side moment (work done, not delivered).
                path = "/complete"
            elif site == "client":
                path = rng.choice(client_paths)
            elif site == "server":
                path = rng.choice(server_paths)
            elif site == "fs":
                path = "store"
            else:
                path = "broker"
            specs.append(FaultSpec(kind=kind, path=path,
                                   at=rng.randint(1, max_at)))
        return cls(specs, seed=seed)

    # -- matching ----------------------------------------------------------

    def _match(self, site: str, path: str,
               role: Optional[str] = None) -> List[FaultSpec]:
        with self._lock:
            key = (site, path)
            self._counts[key] = self._counts.get(key, 0) + 1
            n_path = self._counts[key]
            if path:
                skey = (site, "")
                self._counts[skey] = self._counts.get(skey, 0) + 1
                n_site = self._counts[skey]
            else:
                n_site = n_path
            out = []
            for spec in self.specs:
                if spec.site != site or spec.fired_at is not None:
                    continue
                if spec.path and spec.path != path:
                    continue
                if spec.kind == KILL_RUNNER and role != "runner":
                    continue  # never kill the coordinator by accident
                n = n_path if spec.path else n_site
                if n >= spec.at:
                    spec.fired_at = n
                    self.fired.append((spec.kind, site, path, n))
                    out.append(spec)
            return out

    # -- site hooks --------------------------------------------------------

    def client_actions(self, path: str, role: str = "runner") -> dict:
        """Consulted by :meth:`BrokerClient._request` before each send.

        Returns action flags (``drop``/``delay``/``dup``/``reset``);
        a due ``kill_runner`` raises :class:`ChaosKill` instead.
        """
        actions: dict = {}
        for spec in self._match("client", path, role=role):
            if spec.kind == KILL_RUNNER:
                raise ChaosKill(f"chaos: runner killed before {path}")
            if spec.kind == CLIENT_DROP:
                actions["drop"] = True
            elif spec.kind == CLIENT_DELAY:
                actions["delay"] = max(
                    actions.get("delay", 0.0), spec.param or 0.05
                )
            elif spec.kind == CLIENT_REORDER:
                actions["delay"] = max(
                    actions.get("delay", 0.0), spec.param or 0.25
                )
            elif spec.kind == CLIENT_DUP:
                actions["dup"] = True
            elif spec.kind == CLIENT_RESET:
                actions["reset"] = True
        return actions

    def server_actions(self, path: str) -> dict:
        """Consulted by the broker HTTP handler per request."""
        actions: dict = {}
        for spec in self._match("server", path):
            if spec.kind == SERVER_500:
                actions["http_500"] = True
            elif spec.kind == SERVER_TRUNCATE:
                actions["truncate"] = True
        return actions

    def fs_actions(self, category: str) -> List[str]:
        """Consulted by :class:`FaultyFS` per write; returns due kinds."""
        return [spec.kind for spec in self._match("fs", category)]

    def due(self, site: str, path: str, progress: int) -> List[FaultSpec]:
        """Progress-triggered faults (the ``process`` site): fire every
        pending matching spec whose ``at`` the observed *progress*
        (done-batch count) has reached."""
        with self._lock:
            out = []
            for spec in self.specs:
                if spec.site != site or spec.fired_at is not None:
                    continue
                if spec.path and spec.path != path:
                    continue
                if progress >= spec.at:
                    spec.fired_at = progress
                    self.fired.append((spec.kind, site, path, progress))
                    out.append(spec)
            return out

    def outstanding(self) -> List[FaultSpec]:
        return [s for s in self.specs if s.fired_at is None]

    def report(self) -> dict:
        return {
            "seed": self.seed,
            "specs": [s.to_dict() for s in self.specs],
            "fired": [list(f) for f in self.fired],
            "outstanding": [s.kind for s in self.outstanding()],
        }


# -- filesystem faults -------------------------------------------------------

class FaultyFS:
    """A :func:`repro.campaign.store.install_fs` shim that injects disk
    faults on a :class:`FaultPlan`'s schedule.

    Writes under ``<root>/service/`` are category ``meta`` (journal,
    manifests); everything else is ``store`` (result + quarantine
    records).  ENOSPC raises from ``write`` (the atomic-write path
    cleans up its temp file and the caller sees ``OSError``); torn
    writes persist only the first half of the payload; bit flips
    corrupt one byte mid-buffer -- both survive to the destination
    file, which is exactly what ``repro scrub`` exists to catch.
    """

    def __init__(self, plan: FaultPlan, real=None):
        from repro.campaign.store import _RealFS

        self.plan = plan
        self.real = real or _RealFS()
        self.injected: List[Tuple[str, str]] = []

    @staticmethod
    def _category(path: Optional[Path]) -> str:
        if path is not None and "service" in Path(path).parts:
            return "meta"
        return "store"

    def write(self, fh, data: bytes, path: Optional[Path] = None) -> int:
        category = self._category(path)
        for kind in self.plan.fs_actions(category):
            self.injected.append((kind, str(path)))
            if kind == FS_ENOSPC:
                raise OSError(errno.ENOSPC, "chaos: no space left on device")
            if kind == FS_TORN:
                data = data[: max(1, len(data) // 2)]
            elif kind == FS_BITFLIP:
                mid = len(data) // 2
                data = data[:mid] + bytes([data[mid] ^ 0x01]) + data[mid + 1:]
        return self.real.write(fh, data, path=path)

    def fsync(self, fileno: int) -> None:
        self.real.fsync(fileno)

    def replace(self, src, dst) -> None:
        self.real.replace(src, dst)

    def fsync_dir(self, path: Path) -> None:
        self.real.fsync_dir(path)


@contextmanager
def faulty_fs(plan: FaultPlan):
    """Route every store/journal/manifest write through a
    :class:`FaultyFS` for the duration of the block."""
    fs = FaultyFS(plan)
    prev = install_fs(fs)
    try:
        yield fs
    finally:
        install_fs(prev)


# -- store comparison --------------------------------------------------------

def store_file_map(root: Union[str, Path]) -> Dict[str, bytes]:
    """``relative-path -> raw bytes`` for every record in a store.

    Covers result shards (``xx/<key>.json``) and quarantine records;
    excludes service metadata, the index, traces, and scrub output --
    convergence is about the *data*, not the bookkeeping.
    """
    root = Path(root)
    out: Dict[str, bytes] = {}
    if not root.exists():
        return out
    for path in sorted(root.glob("*/*.json")):
        parent = path.parent.name
        if len(parent) == 2 or parent == "quarantine":
            out[str(path.relative_to(root))] = path.read_bytes()
    return out


def stores_identical(a: Union[str, Path],
                     b: Union[str, Path]) -> Tuple[bool, List[str]]:
    """Byte-compare two stores; returns ``(identical, differences)``."""
    ma, mb = store_file_map(a), store_file_map(b)
    diffs = []
    for rel in sorted(set(ma) | set(mb)):
        if rel not in ma:
            diffs.append(f"only in {b}: {rel}")
        elif rel not in mb:
            diffs.append(f"only in {a}: {rel}")
        elif ma[rel] != mb[rel]:
            diffs.append(f"bytes differ: {rel}")
    return not diffs, diffs


# -- in-process chaos harness ------------------------------------------------

def run_chaos_campaign(
    configs,
    store_root: Union[str, Path],
    plan: Optional[FaultPlan] = None,
    runners: int = 2,
    jobs: int = 1,
    lease_s: float = 3.0,
    poll_s: float = 0.05,
    max_wait_s: float = 180.0,
    campaign_id: Optional[str] = None,
):
    """Drive *configs* through a faulted broker + runner fleet.

    Everything runs in one process -- broker behind a real HTTP server,
    runners as threads with fault-wired clients, the coordinator via
    the normal :func:`run_distributed_campaign` path -- so schedules
    are fast and fully deterministic.  Two fault classes get special
    machinery from a supervisor thread:

    * ``kill_broker``: the HTTP server is torn down and the broker
      object *discarded*; a brand-new broker is built from nothing but
      the on-disk journal and rebound to the same port.  From the
      journal's point of view this is indistinguishable from SIGKILL
      (per-append fsync means there is nothing in memory worth
      flushing), and runners/coordinator must ride out the outage on
      their retry loops.
    * ``kill_runner``: :class:`ChaosKill` kills the runner thread at a
      protocol call site; the supervisor respawns a replacement and the
      dead runner's lease expires and requeues.

    Returns ``(CampaignResult, report_dict)``.
    """
    from repro.campaign.store import ResultStore
    from repro.service.broker import Broker, BrokerServer
    from repro.service.coordinator import run_distributed_campaign
    from repro.service.protocol import BrokerClient
    from repro.service.runner import runner_loop

    store_root = Path(store_root)
    fault_plan = plan if plan is not None else FaultPlan([])
    backoff = Backoff(base=0.05, cap=0.4)

    state: dict = {"broker": None, "server": None, "port": 0,
                   "restarts": 0, "kills": 0}
    state_lock = threading.Lock()
    stop = threading.Event()

    def start_broker() -> None:
        broker = Broker(store_root, lease_s=lease_s)
        server = BrokerServer(
            broker, port=state["port"], fault_plan=fault_plan
        ).start()
        with state_lock:
            state["broker"], state["server"] = broker, server
            state["port"] = server.port

    start_broker()
    url = state["server"].url

    def make_client(role: str) -> BrokerClient:
        return BrokerClient(
            url, timeout=15.0, backoff=backoff, max_tries=10,
            fault_plan=fault_plan, fault_role=role,
        )

    threads: Dict[int, threading.Thread] = {}
    spawned = [0]

    def runner_main(idx: int, generation: int) -> None:
        rid = f"chaos-r{idx}g{generation}"
        try:
            runner_loop(
                url, jobs=jobs, runner_id=rid, poll_s=poll_s,
                client=make_client("runner"), stop=stop,
                give_up_after_s=None, install_signal_handlers=False,
            )
        except ChaosKill:
            with state_lock:
                state["kills"] += 1
            _LOG.warning("chaos.runner_killed", runner_id=rid)

    def spawn_runner(idx: int) -> None:
        spawned[0] += 1
        t = threading.Thread(
            target=runner_main, args=(idx, spawned[0]),
            name=f"chaos-runner-{idx}", daemon=True,
        )
        t.start()
        threads[idx] = t

    def supervise() -> None:
        while not stop.wait(0.05):
            broker = state["broker"]
            with broker._lock:
                done = sum(
                    1 for c in broker._campaigns.values()
                    for b in c.batches.values() if b.state == "done"
                )
            for spec in fault_plan.due("process", "broker", done):
                if spec.kind != KILL_BROKER:
                    continue
                old_server, old_broker = state["server"], state["broker"]
                old_server.shutdown()
                old_broker.journal.close()
                with state_lock:
                    state["restarts"] += 1
                _LOG.warning(
                    "chaos.broker_restart", restarts=state["restarts"],
                    done_batches=done,
                )
                start_broker()
            for idx, t in list(threads.items()):
                if not t.is_alive():
                    spawn_runner(idx)

    for i in range(max(1, runners)):
        spawn_runner(i)
    supervisor = threading.Thread(
        target=supervise, name="chaos-supervisor", daemon=True
    )
    supervisor.start()

    try:
        result = run_distributed_campaign(
            list(configs), url, ResultStore(store_root),
            campaign_id=campaign_id or f"chaos-{fault_plan.seed}",
            jobs=max(1, runners), poll_s=poll_s, max_wait_s=max_wait_s,
            client=make_client("coordinator"),
        )
    finally:
        stop.set()
        supervisor.join(timeout=10)
        for t in threads.values():
            t.join(timeout=10)
        state["server"].shutdown()
        state["broker"].journal.close()

    broker = state["broker"]
    duplicates = sum(
        c.duplicate_completes for c in broker._campaigns.values()
    )
    report = {
        "plan": fault_plan.report(),
        "broker_restarts": state["restarts"],
        "runner_kills": state["kills"],
        "requeues": broker.requeues,
        "duplicate_completes": duplicates,
        "journal": broker.journal.stats(),
    }
    return result, report
