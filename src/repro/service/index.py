"""SQLite index over the content-addressed result store.

The :class:`~repro.campaign.store.ResultStore` is a directory of
``<key>.json`` blobs -- perfect for cache hits, useless for questions
like "every NOMAD run with 32 PCSHRs, sorted by IPC".  The index keeps
one row per store key in ``<store>/index.db`` with the config knobs
flattened into columns, selected headline metrics, and a status
(``ok`` / ``failed`` / ``timeout`` / ``quarantined``), so
``repro results --where scheme=nomad`` is a SQL query instead of a
directory walk.

The store stays the source of truth: rows are written through from
``ResultStore.put``/``put_failure`` (when attached) or by the broker as
records stream in, and :meth:`ResultIndex.sync_from_store` reconciles
the index with whatever is on disk -- so an index built (or rebuilt)
from the directory always agrees with the directory.  Dropping
``index.db`` loses nothing but query speed.

A schema-version row invalidates the whole file on mismatch, mirroring
the store's simulator-version stamp.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

SCHEMA_VERSION = 1

# Flat, queryable columns and where each value comes from.
_CONFIG_COLUMNS = (
    ("scheme", "TEXT"),
    ("workload", "TEXT"),
    ("seed", "INTEGER"),
    ("num_mem_ops", "INTEGER"),
    ("num_cores", "INTEGER"),
    ("dc_megabytes", "INTEGER"),
    ("prewarm", "INTEGER"),
)
_METRIC_COLUMNS = (
    ("ipc", "REAL"),
    ("dc_access_time", "REAL"),
    ("os_stall_ratio", "REAL"),
    ("runtime_cycles", "INTEGER"),
    ("instructions", "INTEGER"),
)

#: Keys accepted by ``--where`` / ``query(where=...)``.
QUERYABLE = tuple(
    [name for name, _ in _CONFIG_COLUMNS]
    + [name for name, _ in _METRIC_COLUMNS]
    + ["status", "failure_kind", "version", "key"]
)

_INT_COLUMNS = frozenset(
    name for name, kind in (*_CONFIG_COLUMNS, *_METRIC_COLUMNS)
    if kind == "INTEGER"
)
_REAL_COLUMNS = frozenset(
    name for name, kind in (*_CONFIG_COLUMNS, *_METRIC_COLUMNS)
    if kind == "REAL"
)


def _coerce(column: str, value: str):
    if column in _INT_COLUMNS:
        return int(value)
    if column in _REAL_COLUMNS:
        return float(value)
    return value


def parse_where(pairs: Sequence[str]) -> Dict[str, object]:
    """``["scheme=nomad", "seed=2"]`` -> typed filter dict.

    Raises ``ValueError`` for unknown columns or malformed pairs, with
    the allowed column list in the message (CLI surfaces it verbatim).
    """
    out: Dict[str, object] = {}
    for pair in pairs:
        if "=" not in pair:
            raise ValueError(
                f"bad --where {pair!r}: expected column=value"
            )
        column, value = pair.split("=", 1)
        column = column.strip()
        if column not in QUERYABLE:
            raise ValueError(
                f"unknown --where column {column!r}; one of: "
                + ", ".join(QUERYABLE)
            )
        try:
            out[column] = _coerce(column, value.strip())
        except ValueError:
            raise ValueError(
                f"bad --where value {value!r} for numeric column {column!r}"
            )
    return out


_DURATION_UNITS = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0}


def parse_duration(text: str) -> float:
    """``"90"``/``"90s"``/``"15m"``/``"2h"``/``"1d"`` -> seconds.

    Raises ``ValueError`` with the accepted forms in the message so the
    CLI can surface it verbatim (``repro results --since 15m``).
    """
    raw = text.strip().lower()
    unit = 1.0
    if raw and raw[-1] in _DURATION_UNITS:
        unit = _DURATION_UNITS[raw[-1]]
        raw = raw[:-1]
    try:
        seconds = float(raw) * unit
    except ValueError:
        raise ValueError(
            f"bad duration {text!r}: expected NUMBER[s|m|h|d], "
            f"e.g. 90s, 15m, 2h, 1d"
        )
    if seconds < 0:
        raise ValueError(f"bad duration {text!r}: must be non-negative")
    return seconds


class ResultIndex:
    """Queryable SQLite mirror of a result-store directory."""

    def __init__(self, root: Union[str, Path],
                 db_name: str = "index.db"):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.db_path = self.root / db_name
        #: Cumulative repair activity this process: rows re-added by
        #: ``sync_from_store`` and rows dropped by ``forget`` (scrub).
        #: Surfaced by ``repro results --json`` so operators can see
        #: what a repair changed.
        self.repair_counts: Dict[str, int] = {
            "synced_rows": 0, "forgotten_rows": 0,
        }
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(
            self.db_path, check_same_thread=False, isolation_level=None
        )
        self._conn.row_factory = sqlite3.Row
        self._init_schema()

    # -- schema ------------------------------------------------------------

    def _init_schema(self) -> None:
        with self._lock:
            cur = self._conn.execute(
                "SELECT name FROM sqlite_master WHERE type='table' "
                "AND name='meta'"
            )
            if cur.fetchone() is not None:
                row = self._conn.execute(
                    "SELECT v FROM meta WHERE k='schema_version'"
                ).fetchone()
                if row is not None and int(row["v"]) == SCHEMA_VERSION:
                    return
                # Any mismatch: the index is a cache -- drop and rebuild.
                self._conn.executescript(
                    "DROP TABLE IF EXISTS results; DROP TABLE IF EXISTS meta;"
                )
            columns = ",\n  ".join(
                f"{name} {kind}"
                for name, kind in (*_CONFIG_COLUMNS, *_METRIC_COLUMNS)
            )
            self._conn.executescript(
                f"""
                CREATE TABLE results (
                  key TEXT PRIMARY KEY,
                  version TEXT NOT NULL,
                  status TEXT NOT NULL,
                  failure_kind TEXT NOT NULL DEFAULT '',
                  error TEXT NOT NULL DEFAULT '',
                  {columns},
                  knobs TEXT,
                  metrics TEXT,
                  updated_at REAL
                );
                CREATE INDEX idx_results_scheme ON results(scheme);
                CREATE INDEX idx_results_workload ON results(workload);
                CREATE INDEX idx_results_status ON results(status);
                CREATE TABLE meta (k TEXT PRIMARY KEY, v TEXT);
                """
            )
            self._conn.execute(
                "INSERT INTO meta (k, v) VALUES ('schema_version', ?)",
                (str(SCHEMA_VERSION),),
            )

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    # -- ingest ------------------------------------------------------------

    @staticmethod
    def _config_values(cfg: dict) -> Tuple:
        return (
            cfg.get("scheme"),
            cfg.get("workload"),
            cfg.get("seed"),
            cfg.get("num_mem_ops"),
            cfg.get("num_cores"),
            cfg.get("dc_megabytes"),
            int(bool(cfg.get("prewarm", True))),
        )

    @staticmethod
    def _knobs(cfg: dict) -> str:
        nested = {
            k: cfg.get(k)
            for k in ("nomad_cfg", "tdc_cfg", "tid_cfg")
            if cfg.get(k) is not None
        }
        return json.dumps(nested, sort_keys=True)

    def _upsert(self, key: str, version: str, status: str, cfg: dict,
                failure_kind: str = "", error: str = "",
                result: Optional[dict] = None,
                preserve_ok: bool = False) -> None:
        metric_values = tuple(
            (result or {}).get(name) for name, _ in _METRIC_COLUMNS
        )
        all_names = [
            "version", "status", "failure_kind", "error",
            *(name for name, _ in _CONFIG_COLUMNS),
            *(name for name, _ in _METRIC_COLUMNS),
            "knobs", "metrics", "updated_at",
        ]
        params = (
            key, version, status, failure_kind, error,
            *self._config_values(cfg), *metric_values,
            self._knobs(cfg),
            json.dumps(result, sort_keys=True) if result else None,
            time.time(),
        )
        sql = (
            f"INSERT INTO results (key, {', '.join(all_names)}) "
            f"VALUES ({', '.join('?' * len(params))})"
        )
        if preserve_ok:
            # Failure ingests must never downgrade a key the store
            # already holds a good result for (e.g. a guarded or
            # telemetry re-run of a stored config flaking out): the
            # conflict update is a no-op against an 'ok' row.
            updates = ", ".join(f"{n} = excluded.{n}" for n in all_names)
            sql += (
                f" ON CONFLICT(key) DO UPDATE SET {updates}"
                f" WHERE results.status != 'ok'"
            )
        else:
            sql = sql.replace("INSERT INTO", "INSERT OR REPLACE INTO", 1)
        with self._lock:
            self._conn.execute(sql, params)

    def ingest_result(self, key: str, cfg: dict, result: dict,
                      version: str) -> None:
        """Record a completed run (status ``ok``)."""
        self._upsert(key, version, "ok", cfg, result=result)

    def ingest_failure(self, key: str, cfg: dict, failure: dict,
                       version: str, status: str = "quarantined") -> None:
        """Record a quarantined (or transiently failed) run; an
        existing ``ok`` row for the key is never downgraded."""
        self._upsert(
            key, version, status, cfg,
            failure_kind=str(failure.get("failure_kind", "")),
            error=str(failure.get("error", "")),
            preserve_ok=True,
        )

    def forget(self, key: str) -> None:
        with self._lock:
            cur = self._conn.execute(
                "DELETE FROM results WHERE key = ?", (key,)
            )
            if cur.rowcount > 0:
                self.repair_counts["forgotten_rows"] += cur.rowcount

    # -- sync --------------------------------------------------------------

    def sync_from_store(self, store) -> int:
        """Reconcile with the store directory; returns rows added.

        Only keys missing from the index are read (store entries are
        immutable once written), so repeated syncs are cheap.  Rows the
        directory no longer backs are left alone for results, but a
        quarantine row whose file vanished is downgraded by the next
        explicit ingest.
        """
        with self._lock:
            known = {
                row["key"]
                for row in self._conn.execute("SELECT key FROM results")
            }
        added = 0
        for key, payload in store.iter_entries():
            if key in known:
                continue
            self.ingest_result(
                key, payload.get("config") or {},
                payload.get("result") or {},
                version=str(payload.get("version", "")),
            )
            added += 1
        for key, payload in store.iter_failures():
            if key in known:
                continue
            self.ingest_failure(
                key, payload.get("config") or {},
                payload.get("failure") or {},
                version=str(payload.get("version", "")),
            )
            added += 1
        self.repair_counts["synced_rows"] += added
        return added

    # -- query -------------------------------------------------------------

    def _select(self, where: Optional[Dict[str, object]],
                status: Optional[Sequence[str]],
                version: Optional[str],
                since: Optional[float] = None) -> Tuple[str, List[object]]:
        clauses: List[str] = []
        params: List[object] = []
        for column, value in (where or {}).items():
            if column not in QUERYABLE:
                raise ValueError(f"unknown query column {column!r}")
            clauses.append(f"{column} = ?")
            params.append(value)
        if status:
            clauses.append(
                "status IN (%s)" % ", ".join("?" * len(status))
            )
            params.extend(status)
        if version is not None:
            clauses.append("version = ?")
            params.append(version)
        if since is not None:
            # Rows touched within the last `since` seconds.
            clauses.append("updated_at >= ?")
            params.append(time.time() - float(since))
        sql = " AND ".join(clauses)
        return (f" WHERE {sql}" if sql else ""), params

    def query(
        self,
        where: Optional[Dict[str, object]] = None,
        status: Optional[Sequence[str]] = None,
        version: Optional[str] = None,
        limit: Optional[int] = None,
        order_by: str = "scheme, workload, seed, key",
        since: Optional[float] = None,
    ) -> List[Dict[str, object]]:
        """Matching rows as plain dicts (``metrics``/``knobs`` decoded)."""
        clause, params = self._select(where, status, version, since)
        sql = f"SELECT * FROM results{clause} ORDER BY {order_by}"
        if limit is not None:
            sql += " LIMIT ?"
            params.append(int(limit))
        with self._lock:
            rows = self._conn.execute(sql, params).fetchall()
        out = []
        for row in rows:
            d = dict(row)
            for blob in ("metrics", "knobs"):
                if d.get(blob):
                    try:
                        d[blob] = json.loads(d[blob])
                    except ValueError:
                        d[blob] = None
            out.append(d)
        return out

    def count(
        self,
        where: Optional[Dict[str, object]] = None,
        status: Optional[Sequence[str]] = None,
        version: Optional[str] = None,
        since: Optional[float] = None,
    ) -> int:
        clause, params = self._select(where, status, version, since)
        with self._lock:
            row = self._conn.execute(
                f"SELECT COUNT(*) AS n FROM results{clause}", params
            ).fetchone()
        return int(row["n"])

    def stats(self) -> Dict[str, object]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT status, COUNT(*) AS n FROM results GROUP BY status"
            ).fetchall()
        by_status = {row["status"]: int(row["n"]) for row in rows}
        return {
            "rows": sum(by_status.values()),
            "by_status": by_status,
            "repairs": dict(self.repair_counts),
            "db": str(self.db_path),
            "schema_version": SCHEMA_VERSION,
        }
