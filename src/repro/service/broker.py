"""The campaign broker: durable work queue + result ingestion.

One broker serves many campaigns and many pull-based runners:

* **enqueue** -- a coordinator submits batches of serialized
  :class:`RunConfig` payloads (grouped by machine-snapshot key so one
  runner amortizes forks across a batch) plus a campaign *manifest*
  (the full config list) that is persisted under
  ``<store>/service/campaigns/`` for ``--resume``;
* **claim/lease** -- runners pull batches and hold a lease; a runner
  that stops heartbeating (crashed, wedged, partitioned) has its leases
  expired and the batches requeued, so a campaign converges as long as
  *some* runner survives.  Batch identity is content-addressed
  (:func:`~repro.service.protocol.batch_id_for`), and a batch completes
  at most once -- a lease that expires mid-run cannot produce duplicate
  records;
* **complete** -- records stream in asynchronously and are ingested
  immediately into the content-addressed
  :class:`~repro.campaign.store.ResultStore` (results), its quarantine
  (deterministic failures, reusing the PR 3 taxonomy), and the SQLite
  :class:`~repro.service.index.ResultIndex` -- the store is the durable
  source of truth for result *data*;
* **journal** -- every batch state transition
  (enqueued/leased/completed/requeued) is additionally fsynced to an
  append-only per-campaign :class:`~repro.service.journal.Journal`
  before the broker acknowledges it, and replayed on startup: a broker
  killed mid-campaign restarts with its queue position, leases, and
  done-counts intact -- no coordinator prescan, no re-execution of
  completed batches;
* **status** -- one JSON snapshot (campaign progress, per-runner
  throughput and cache hit rates, overlap-fraction trend) feeding both
  the coordinator's poll loop and the live dashboard.

The queue logic lives in :class:`Broker`, pure in-memory + store I/O
with an injectable clock (unit-testable without sockets);
:class:`BrokerServer` wraps it in a threading stdlib HTTP server.
"""

from __future__ import annotations

import hmac
import json
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Callable, Deque, Dict, List, Optional, Union
from urllib.parse import parse_qs, urlparse

from repro import obs
from repro.campaign.executor import CACHED, COMPLETED, QUARANTINED
from repro.campaign.store import ResultStore, atomic_write_json
from repro.harness.runner import RunConfig, merge_cache_counts
from repro.obs.metrics import CONTENT_TYPE as METRICS_CONTENT_TYPE
from repro.obs.trace import TRACE_HEADER, parse_trace_header
from repro.service.index import ResultIndex
from repro.service.journal import Journal, slim_item
from repro.service.protocol import PROTOCOL_VERSION, BrokerError, check_protocol
from repro.system.machine import MachineResult

QUEUED = "queued"
LEASED = "leased"
DONE = "done"

_LOG = obs.get_logger("broker")

#: Endpoint paths used as metric label values; anything else is "other"
#: so a scanner probing random paths cannot blow up label cardinality.
_ENDPOINTS = frozenset({
    "/enqueue", "/claim", "/complete", "/heartbeat",
    "/status", "/records", "/campaign", "/dashboard", "/", "/metrics",
})


def _now_us() -> int:
    return int(time.time() * 1e6)

#: Overlap-fraction samples kept per campaign for the dashboard trend.
OVERLAP_TREND_CAP = 256


@dataclass
class _Batch:
    batch_id: str
    campaign_id: str
    indices: List[int]
    configs: List[dict]
    state: str = QUEUED
    lease_runner: str = ""
    lease_expiry: float = 0.0
    attempts: int = 0
    requeues: int = 0
    #: A /complete is ingesting this batch's items right now.  Guards
    #: against duplicate completions double-ingesting and against the
    #: lease expiring out from under an in-flight ingest.
    completing: bool = False


@dataclass
class _Campaign:
    campaign_id: str
    meta: Dict[str, object]
    created_at: float
    batches: Dict[str, _Batch] = field(default_factory=dict)
    queue: Deque[str] = field(default_factory=deque)
    records: Dict[int, dict] = field(default_factory=dict)
    overlap_trend: Deque[List[float]] = field(
        default_factory=lambda: deque(maxlen=OVERLAP_TREND_CAP)
    )
    cache_counts: Dict[str, Dict[str, int]] = field(default_factory=dict)
    runs_done: int = 0
    duplicate_completes: int = 0


@dataclass
class _Runner:
    runner_id: str
    first_seen: float
    last_seen: float
    batches_done: int = 0
    runs_done: int = 0
    stats: Dict[str, object] = field(default_factory=dict)


class Broker:
    """Queue + lease + ingestion state machine (transport-agnostic)."""

    def __init__(
        self,
        store_root: Union[str, Path],
        lease_s: float = 60.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.store = ResultStore(store_root)
        self.index = ResultIndex(store_root)
        self.store.attach_index(self.index)
        self.lease_s = lease_s
        self.clock = clock
        self.started_at = clock()
        self.requeues = 0
        self._lock = threading.RLock()
        self._campaigns: Dict[str, _Campaign] = {}
        self._runners: Dict[str, _Runner] = {}
        self.metrics = self._build_metrics()
        self.journal = Journal(
            store_root, fsync_observer=self.m_journal_fsync.observe
        )
        self.replayed_campaigns = self._replay_journal()
        if self.replayed_campaigns:
            _LOG.info(
                "journal.replayed",
                campaigns=self.replayed_campaigns,
                corrupt_lines=self.journal.corrupt_lines,
            )

    def _build_metrics(self) -> "obs.MetricsRegistry":
        """The /metrics registry.  Always on: a handful of dict updates
        per request is noise next to the HTTP round trip, and a scrape
        must work without any observability configuration."""
        reg = obs.MetricsRegistry()
        self.m_requests = reg.counter(
            "repro_broker_requests_total",
            "HTTP requests handled, by endpoint and status code",
            labels=("endpoint", "code"),
        )
        self.m_rejects = reg.counter(
            "repro_broker_rejects_total",
            "Requests rejected before dispatch (auth, routing, parse)",
            labels=("reason",),
        )
        self.m_request_latency = reg.histogram(
            "repro_broker_request_seconds",
            "Wall-clock request handling latency",
            labels=("endpoint",),
        )
        self.m_lease_expiries = reg.counter(
            "repro_broker_lease_expiries_total",
            "Leases expired and requeued (runner presumed dead)",
        )
        self.m_dup_completes = reg.counter(
            "repro_broker_duplicate_completes_total",
            "Late or retried /complete calls dropped by at-most-once",
        )
        self.m_batches_enqueued = reg.counter(
            "repro_broker_batches_enqueued_total",
            "Batches accepted onto the queue",
        )
        self.m_runs_ingested = reg.counter(
            "repro_broker_runs_ingested_total",
            "Run records ingested into the store/index",
        )
        self.m_journal_fsync = reg.histogram(
            "repro_broker_journal_fsync_seconds",
            "Durability cost of one journal append (write+flush+fsync)",
        )
        self.m_ingest_latency = reg.histogram(
            "repro_broker_ingest_seconds",
            "Store/index ingestion latency per run record",
        )
        reg.gauge_func(
            "repro_broker_queue_depth",
            self._queue_depth_samples,
            "Batches per state across all campaigns",
            labels=("state",),
        )
        reg.gauge_func(
            "repro_broker_campaigns", lambda: len(self._campaigns),
            "Campaigns known to this broker",
        )
        reg.gauge_func(
            "repro_broker_runners", lambda: len(self._runners),
            "Runners that have ever checked in",
        )
        # Runner-side counters ship through the heartbeat channel
        # (runner.stats) and are re-exported here, labelled per runner.
        reg.counter_func(
            "repro_runner_runs_done_total",
            lambda: self._runner_samples(lambda r: r.runs_done),
            "Run records reported by each runner",
            labels=("runner",),
        )
        reg.counter_func(
            "repro_runner_batches_done_total",
            lambda: self._runner_samples(lambda r: r.batches_done),
            "Batches completed by each runner",
            labels=("runner",),
        )
        reg.gauge_func(
            "repro_runner_runs_per_sec",
            lambda: self._runner_samples(
                lambda r: float(r.stats.get("runs_per_sec") or 0.0)
            ),
            "Rolling throughput from each runner's heartbeats",
            labels=("runner",),
        )
        reg.counter_func(
            "repro_runner_cache_events_total",
            self._runner_cache_samples,
            "Fork/trace cache hits and misses per runner (cumulative)",
            labels=("runner", "cache", "kind"),
        )
        reg.counter_func(
            "repro_runner_backoff_retries_total",
            lambda: self._runner_obs_samples("backoff_retries"),
            "Broker-request retry sleeps taken by each runner",
            labels=("runner",),
        )
        reg.counter_func(
            "repro_runner_batch_seconds_total",
            lambda: self._runner_obs_samples("batch_seconds_total"),
            "Wall-clock seconds each runner has spent executing batches",
            labels=("runner",),
        )
        return reg

    def _queue_depth_samples(self):
        with self._lock:
            depth = {QUEUED: 0, LEASED: 0, DONE: 0}
            for campaign in self._campaigns.values():
                for batch in campaign.batches.values():
                    depth[batch.state] += 1
        return [((state,), n) for state, n in sorted(depth.items())]

    def _runner_samples(self, fn):
        with self._lock:
            return [((rid,), fn(r)) for rid, r in self._runners.items()]

    def _runner_obs_samples(self, key: str):
        with self._lock:
            out = []
            for rid, r in self._runners.items():
                stats = r.stats.get("obs") or {}
                if isinstance(stats, dict) and key in stats:
                    out.append(((rid,), float(stats[key])))
        return out

    def _runner_cache_samples(self):
        with self._lock:
            out = []
            for rid, r in self._runners.items():
                cache = r.stats.get("cache") or {}
                if not isinstance(cache, dict):
                    continue
                for section, counts in cache.items():
                    if not isinstance(counts, dict):
                        continue
                    for kind in ("hits", "misses"):
                        if kind in counts:
                            out.append(
                                ((rid, section, kind), float(counts[kind]))
                            )
        return out

    # -- manifests (the durable half of the queue) -------------------------

    def _manifest_path(self, campaign_id: str) -> Path:
        return (
            Path(self.store.root) / "service" / "campaigns"
            / f"{campaign_id}.json"
        )

    def _persist_manifest(self, campaign_id: str, meta: dict,
                          manifest: List[dict]) -> None:
        atomic_write_json(self._manifest_path(campaign_id), {
            "campaign_id": campaign_id,
            "meta": meta,
            "configs": manifest,
            "created_at": time.time(),
        })

    def load_manifest(self, campaign_id: str) -> dict:
        path = self._manifest_path(campaign_id)
        try:
            payload = json.loads(path.read_text())
        except OSError:
            raise BrokerError(f"unknown campaign {campaign_id!r}")
        except ValueError:
            raise BrokerError(f"corrupted manifest for {campaign_id!r}")
        if payload.get("campaign_id") != campaign_id:
            raise BrokerError(f"manifest mismatch for {campaign_id!r}")
        return payload

    def known_campaigns(self) -> List[str]:
        root = Path(self.store.root) / "service" / "campaigns"
        if not root.exists():
            return []
        return sorted(p.stem for p in root.glob("*.json"))

    # -- journal replay (the crash-recovery path) --------------------------

    def _replay_journal(self) -> int:
        """Rebuild queue/lease/done state from the on-disk journal.

        Called once from ``__init__``: a restarted broker resumes every
        campaign exactly where the journal left it -- completed batches
        stay done (no re-execution), queued batches keep their order,
        and leased batches get a fresh lease (their runner may still be
        alive and heartbeating; if it died, normal expiry requeues
        them).  No coordinator prescan or re-enqueue is needed.
        """
        replayed = self.journal.replay()
        now = self.clock()
        for cid in sorted(replayed):
            campaign = _Campaign(campaign_id=cid, meta={}, created_at=now)
            order: List[str] = []
            for entry in replayed[cid]:
                op = entry.get("op")
                if op == "enqueue":
                    bid = str(entry.get("batch_id", ""))
                    if not bid or bid in campaign.batches:
                        continue
                    campaign.batches[bid] = _Batch(
                        batch_id=bid,
                        campaign_id=cid,
                        indices=[int(i) for i in entry.get("indices", [])],
                        configs=list(entry.get("configs", [])),
                    )
                    order.append(bid)
                    if entry.get("meta"):
                        campaign.meta.update(entry["meta"])
                    continue
                batch = campaign.batches.get(str(entry.get("batch_id", "")))
                if batch is None:
                    continue
                if op == "lease" and batch.state != DONE:
                    batch.state = LEASED
                    batch.lease_runner = str(entry.get("runner_id", ""))
                    batch.lease_expiry = now + self.lease_s
                    batch.attempts = max(
                        batch.attempts + 1, int(entry.get("attempt", 0))
                    )
                elif op == "requeue" and batch.state != DONE:
                    batch.state = QUEUED
                    batch.lease_runner = ""
                    batch.requeues += 1
                elif op == "reenqueue" and batch.state == DONE:
                    # A coordinator resubmitted this batch after its
                    # store backing vanished (partial store copy);
                    # un-complete it so it runs again.
                    batch.state = QUEUED
                    batch.lease_runner = ""
                    batch.requeues += 1
                    for idx in batch.indices:
                        if idx in campaign.records:
                            del campaign.records[idx]
                            campaign.runs_done = max(
                                0, campaign.runs_done - 1
                            )
                elif op == "complete" and batch.state != DONE:
                    batch.state = DONE
                    batch.lease_runner = ""
                    items = list(entry.get("items", []))
                    campaign.runs_done += len(items)
                    for item in items:
                        try:
                            campaign.records[int(item["index"])] = dict(item)
                        except (KeyError, TypeError, ValueError):
                            continue
                    merge_cache_counts(
                        campaign.cache_counts, entry.get("cache_stats") or {}
                    )
            campaign.queue.extend(
                bid for bid in order if campaign.batches[bid].state == QUEUED
            )
            self._campaigns[cid] = campaign
        return len(replayed)

    # -- queue -------------------------------------------------------------

    def enqueue(self, campaign_id: str, batches: List[dict], meta: dict,
                manifest: Optional[List[dict]] = None) -> dict:
        if not campaign_id:
            raise BrokerError("enqueue needs a campaign_id")
        with self._lock:
            campaign = self._campaigns.get(campaign_id)
            if campaign is None:
                campaign = _Campaign(
                    campaign_id=campaign_id,
                    meta=dict(meta or {}),
                    created_at=self.clock(),
                )
                self._campaigns[campaign_id] = campaign
            elif meta:
                campaign.meta.update(meta)
            accepted = skipped = 0
            for spec in batches:
                batch_id = str(spec["batch_id"])
                if batch_id in campaign.batches:
                    existing = campaign.batches[batch_id]
                    # A coordinator only resubmits a batch it believes
                    # needs running.  If the batch is DONE but its
                    # results are no longer backed by the store (e.g. a
                    # partial store copy lost files after the journal
                    # recorded the completion), un-complete it so the
                    # work actually happens again; otherwise the
                    # journal would pin the loss forever.
                    if (existing.state == DONE
                            and not existing.completing
                            and not self._batch_backed(campaign, existing)):
                        try:
                            self.journal.append(
                                campaign_id, "reenqueue",
                                batch_id=batch_id,
                            )
                        except OSError:
                            skipped += 1
                            continue
                        self._reset_done_batch(campaign, existing)
                        accepted += 1
                        continue
                    skipped += 1
                    continue
                batch = _Batch(
                    batch_id=batch_id,
                    campaign_id=campaign_id,
                    indices=[int(i) for i in spec["indices"]],
                    configs=list(spec["configs"]),
                )
                if len(batch.indices) != len(batch.configs):
                    raise BrokerError(
                        f"batch {batch_id}: {len(batch.indices)} indices "
                        f"vs {len(batch.configs)} configs"
                    )
                # Journal before the in-memory commit: if the append
                # fails the batch is simply not accepted (the client
                # retries the whole enqueue, which dedupes); if we
                # crash after it, replay recreates exactly this state.
                self.journal.append(
                    campaign_id, "enqueue",
                    batch_id=batch_id,
                    indices=batch.indices,
                    configs=batch.configs,
                    meta=dict(meta or {}),
                )
                campaign.batches[batch_id] = batch
                campaign.queue.append(batch_id)
                accepted += 1
        if manifest is not None:
            self._persist_manifest(campaign_id, dict(meta or {}), manifest)
        if accepted:
            self.m_batches_enqueued.inc(accepted)
        _LOG.info(
            "enqueue", campaign=campaign_id,
            accepted=accepted, skipped=skipped,
            batches=len(self._campaigns[campaign_id].batches),
        )
        return {"accepted": accepted, "skipped": skipped,
                "batches": len(self._campaigns[campaign_id].batches)}

    def _batch_backed(self, campaign: _Campaign, batch: _Batch) -> bool:
        """Whether every item of a DONE batch is still store-backed.

        Completed/cached items must be retrievable from the result
        store, quarantined ones from the quarantine; failed/timeout
        items pin nothing, so a resubmission of them means "retry".
        """
        for pos, idx in enumerate(batch.indices):
            item = campaign.records.get(idx)
            if item is None:
                return False
            status = item.get("status", "")
            try:
                cfg = RunConfig.from_dict(
                    item.get("config") or batch.configs[pos]
                )
            except (KeyError, TypeError, ValueError, IndexError):
                return False
            if status in (COMPLETED, CACHED):
                if self.store.get(cfg) is None:
                    return False
            elif status == QUARANTINED:
                if self.store.get_failure(cfg) is None:
                    return False
            else:
                return False
        return True

    def _reset_done_batch(self, campaign: _Campaign, batch: _Batch) -> None:
        """Flip a DONE batch back to QUEUED (mirrors replay's
        ``reenqueue`` handler)."""
        batch.state = QUEUED
        batch.lease_runner = ""
        batch.requeues += 1
        for idx in batch.indices:
            if idx in campaign.records:
                del campaign.records[idx]
                campaign.runs_done = max(0, campaign.runs_done - 1)
        campaign.queue.append(batch.batch_id)

    def _expire_leases(self) -> None:
        now = self.clock()
        with self._lock:
            for campaign in self._campaigns.values():
                for batch in campaign.batches.values():
                    if (batch.state == LEASED and not batch.completing
                            and now >= batch.lease_expiry):
                        try:
                            self.journal.append(
                                campaign.campaign_id, "requeue",
                                batch_id=batch.batch_id,
                                runner_id=batch.lease_runner,
                            )
                        except OSError:
                            # Leave the batch leased; the next expiry
                            # sweep retries the append.
                            continue
                        _LOG.warning(
                            "lease.expired",
                            campaign=campaign.campaign_id,
                            batch_id=batch.batch_id,
                            runner_id=batch.lease_runner,
                            attempts=batch.attempts,
                        )
                        batch.state = QUEUED
                        batch.lease_runner = ""
                        batch.requeues += 1
                        self.requeues += 1
                        self.m_lease_expiries.inc()
                        campaign.queue.append(batch.batch_id)

    def claim(self, runner_id: str, max_batches: int = 1) -> dict:
        if not runner_id:
            raise BrokerError("claim needs a runner_id")
        self._expire_leases()
        now = self.clock()
        t0_us = _now_us()
        granted: List[dict] = []
        with self._lock:
            self._touch_runner(runner_id)
            # Oldest campaign first: finish what was started before
            # spreading onto newer submissions.
            for campaign in sorted(
                self._campaigns.values(), key=lambda c: c.created_at
            ):
                while campaign.queue and len(granted) < max_batches:
                    batch_id = campaign.queue.popleft()
                    batch = campaign.batches[batch_id]
                    if batch.state != QUEUED:
                        continue  # stale queue entry (e.g. done meanwhile)
                    # Journal the lease before granting it (heartbeat
                    # renewals are deliberately not journaled -- replay
                    # just issues a fresh full lease).  On append
                    # failure the batch goes back to the queue head.
                    try:
                        self.journal.append(
                            campaign.campaign_id, "lease",
                            batch_id=batch_id, runner_id=runner_id,
                            attempt=batch.attempts + 1,
                        )
                    except OSError:
                        campaign.queue.appendleft(batch_id)
                        raise
                    batch.state = LEASED
                    batch.lease_runner = runner_id
                    batch.lease_expiry = now + self.lease_s
                    batch.attempts += 1
                    granted.append({
                        "campaign_id": campaign.campaign_id,
                        "batch_id": batch.batch_id,
                        "indices": list(batch.indices),
                        "configs": list(batch.configs),
                        "meta": dict(campaign.meta),
                        "attempt": batch.attempts,
                    })
                if len(granted) >= max_batches:
                    break
        if granted:
            _LOG.info(
                "claim.grant", runner_id=runner_id,
                batches=[g["batch_id"] for g in granted],
            )
            tracer = obs.service_tracer("broker")
            if tracer is not None:
                # One retrospective span per grant, parented on the
                # campaign span the coordinator shipped in the meta.
                t1_us = _now_us()
                for grant in granted:
                    trace_meta = (grant.get("meta") or {}).get("trace") or {}
                    trace_id = trace_meta.get("trace_id")
                    if not trace_id:
                        continue
                    span_id = tracer.span_at(
                        "claim", str(trace_id), t0_us, t1_us,
                        parent=trace_meta.get("span_id"),
                        args={
                            "campaign_id": grant["campaign_id"],
                            "batch_id": grant["batch_id"],
                            "runner_id": runner_id,
                            "attempt": grant["attempt"],
                        },
                    )
                    # The runner parents its batch-run span on the claim
                    # span; ship the id inside the grant's meta copy.
                    meta = dict(grant["meta"])
                    meta["trace"] = dict(trace_meta, claim_span=span_id)
                    grant["meta"] = meta
        return {"batches": granted, "lease_s": self.lease_s}

    def complete(self, runner_id: str, campaign_id: str, batch_id: str,
                 items: List[dict],
                 cache_stats: Optional[dict] = None,
                 trace_ctx: Optional[tuple] = None) -> dict:
        t0_us = _now_us()
        with self._lock:
            campaign = self._campaigns.get(campaign_id)
            if campaign is None:
                raise BrokerError(f"unknown campaign {campaign_id!r}")
            batch = campaign.batches.get(batch_id)
            if batch is None:
                raise BrokerError(
                    f"unknown batch {batch_id!r} in campaign {campaign_id!r}"
                )
            if batch.state == DONE or batch.completing:
                # An expired lease's original runner finishing late, or
                # a retried /complete: the first completion won.  Drop
                # it -- never double-ingest.
                campaign.duplicate_completes += 1
                self.m_dup_completes.inc()
                _LOG.info(
                    "complete.duplicate", campaign=campaign_id,
                    batch_id=batch_id, runner_id=runner_id,
                )
                return {"accepted": False, "reason": "already complete"}
            batch.completing = True
            trace_meta = campaign.meta.get("trace") or {}
        # Store/index ingestion outside the queue lock (file and SQLite
        # I/O with its own locking; claims must not stall behind it) but
        # BEFORE the batch flips to DONE: the coordinator breaks its
        # drain loop the moment /status counts every batch done and
        # immediately fetches /records, so each item must be visible by
        # the time the done count includes this batch.  The journal
        # entry lands after ingest and before the flip: a crash in
        # between replays as done (items already durable in the store),
        # a crash before it replays as leased (requeue + idempotent
        # re-ingest).
        try:
            for item in items:
                t_item = time.perf_counter()
                self._ingest_item(campaign, item)
                self.m_ingest_latency.observe(time.perf_counter() - t_item)
            self.journal.append(
                campaign_id, "complete",
                batch_id=batch_id, runner_id=runner_id,
                items=[slim_item(i) for i in items],
                cache_stats=dict(cache_stats or {}),
            )
        except BaseException:
            # Leave the batch leased: the lease expires, the batch
            # requeues, and a re-run's ingest converges (store writes
            # are idempotent by content address).
            with self._lock:
                batch.completing = False
            raise
        with self._lock:
            runner = self._touch_runner(runner_id)
            batch.state = DONE
            batch.completing = False
            batch.lease_runner = ""
            runner.batches_done += 1
            runner.runs_done += len(items)
            campaign.runs_done += len(items)
            merge_cache_counts(campaign.cache_counts, cache_stats)
            # runner.stats["cache"] is owned by heartbeats (the runner
            # process's cumulative counters); merging the per-batch
            # delta here too would double-count hits and misses.
        self.m_runs_ingested.inc(len(items))
        _LOG.info(
            "complete", campaign=campaign_id, batch_id=batch_id,
            runner_id=runner_id, items=len(items),
        )
        tracer = obs.service_tracer("broker")
        if tracer is not None:
            # Parent the ingest span on the runner's batch-run span
            # (from the X-Repro-Trace header) when it was propagated;
            # fall back to the campaign root from the enqueue meta.
            trace_id = parent = None
            if trace_ctx:
                trace_id, parent = trace_ctx
            elif trace_meta.get("trace_id"):
                trace_id = str(trace_meta["trace_id"])
                parent = trace_meta.get("span_id")
            if trace_id:
                tracer.span_at(
                    "ingest", trace_id, t0_us, _now_us(), parent=parent,
                    args={
                        "campaign_id": campaign_id,
                        "batch_id": batch_id,
                        "runner_id": runner_id,
                        "items": len(items),
                    },
                )
        return {"accepted": True}

    def _ingest_item(self, campaign: _Campaign, item: dict) -> None:
        index = int(item["index"])
        status = item.get("status", "")
        cfg = RunConfig.from_dict(item["config"])
        if status in (COMPLETED, CACHED) and item.get("result"):
            self.store.put(cfg, MachineResult.from_dict(item["result"]))
        elif status == QUARANTINED:
            self.store.put_failure(cfg, {
                "failure_kind": item.get("failure_kind", ""),
                "error": item.get("error", ""),
                "bundle_path": item.get("bundle_path", ""),
                "traceback": item.get("traceback", ""),
            })
        else:  # failed / timeout: indexed for `repro results --failed`,
            # but not pinned -- a resume retries these.
            self.index.ingest_failure(
                self.store.key(cfg), cfg.to_dict(),
                {"failure_kind": item.get("failure_kind", ""),
                 "error": item.get("error", "")},
                version=self.store.version,
                status=status or "failed",
            )
        telemetry = item.get("telemetry") or {}
        overlap = telemetry.get("overlap_fraction")
        with self._lock:
            campaign.records[index] = item
            if overlap is not None:
                campaign.overlap_trend.append(
                    [round(self.clock() - self.started_at, 3), overlap]
                )

    def heartbeat(self, runner_id: str, stats: dict) -> dict:
        self._expire_leases()
        now = self.clock()
        renewed = 0
        with self._lock:
            runner = self._touch_runner(runner_id)
            if stats:
                runner.stats.update(stats)
            for campaign in self._campaigns.values():
                for batch in campaign.batches.values():
                    if batch.state == LEASED and batch.lease_runner == runner_id:
                        batch.lease_expiry = now + self.lease_s
                        renewed += 1
        return {"renewed": renewed, "lease_s": self.lease_s}

    def _touch_runner(self, runner_id: str) -> _Runner:
        now = self.clock()
        runner = self._runners.get(runner_id)
        if runner is None:
            runner = _Runner(runner_id, first_seen=now, last_seen=now)
            self._runners[runner_id] = runner
        runner.last_seen = now
        return runner

    # -- introspection -----------------------------------------------------

    def campaign_status(self, campaign: _Campaign) -> dict:
        states = {QUEUED: 0, LEASED: 0, DONE: 0}
        for batch in campaign.batches.values():
            states[batch.state] += 1
        by_status: Dict[str, int] = {}
        for item in campaign.records.values():
            s = item.get("status", "?")
            by_status[s] = by_status.get(s, 0) + 1
        return {
            "batches": len(campaign.batches),
            "queued": states[QUEUED],
            "leased": states[LEASED],
            "done": states[DONE],
            "runs_done": campaign.runs_done,
            "records_by_status": by_status,
            "duplicate_completes": campaign.duplicate_completes,
            "cache_counts": {
                k: dict(v) for k, v in campaign.cache_counts.items()
            },
            "overlap_trend": [list(p) for p in campaign.overlap_trend],
            "age_s": round(self.clock() - campaign.created_at, 3),
        }

    def status(self, campaign_id: Optional[str] = None) -> dict:
        self._expire_leases()
        now = self.clock()
        with self._lock:
            campaigns = {
                cid: self.campaign_status(c)
                for cid, c in self._campaigns.items()
                if campaign_id is None or cid == campaign_id
            }
            runners = {}
            for rid, r in self._runners.items():
                elapsed = max(1e-9, r.last_seen - r.first_seen)
                runners[rid] = {
                    "last_seen_s": round(now - r.last_seen, 3),
                    "batches_done": r.batches_done,
                    "runs_done": r.runs_done,
                    "runs_per_sec": (
                        round(r.runs_done / elapsed, 3) if r.runs_done else 0.0
                    ),
                    "stats": dict(r.stats),
                }
        return {
            "campaigns": campaigns,
            "runners": runners,
            "requeues": self.requeues,
            "uptime_s": round(now - self.started_at, 3),
            "store": self.store.stats(),
            "index": self.index.stats(),
            "journal": self.journal.stats(),
            "replayed_campaigns": self.replayed_campaigns,
            "lease_s": self.lease_s,
        }

    def records(self, campaign_id: str) -> List[dict]:
        with self._lock:
            campaign = self._campaigns.get(campaign_id)
            if campaign is None:
                raise BrokerError(f"unknown campaign {campaign_id!r}")
            items = [
                dict(campaign.records[i]) for i in sorted(campaign.records)
            ]
        # Items restored from the journal are slim (no result payload);
        # rehydrate them from the content-addressed store, which held
        # the data across the restart.
        for item in items:
            if item.get("result") or item.get("status") not in (
                COMPLETED, CACHED
            ):
                continue
            try:
                cfg = RunConfig.from_dict(item["config"])
            except (KeyError, TypeError, ValueError):
                continue
            result = self.store.get(cfg)
            if result is not None:
                item["result"] = result.to_dict()
        return items


# ---------------------------------------------------------------------------
# HTTP front-end
# ---------------------------------------------------------------------------

class _BrokerHandler(BaseHTTPRequestHandler):
    # Set by BrokerServer:
    broker: Broker = None  # type: ignore[assignment]
    token: Optional[str] = None
    fault_plan = None  # Optional[repro.service.chaos.FaultPlan]
    protocol_version = "HTTP/1.1"

    def log_message(self, fmt, *args):  # noqa: N802 - stdlib name
        # Routed through the structured logger (a no-op unless obs is
        # configured) instead of discarded: CI logs stay readable, but
        # an operator with REPRO_OBS_DIR set gets every access line.
        _LOG.debug(
            "http.access",
            message=fmt % args,
            remote=self.client_address[0],
        )

    # -- chaos (server-side fault injection) -------------------------------

    def _chaos_preempt(self, path: str) -> bool:
        """Consult the fault plan once per request.  Returns True when
        an injected 500 already answered (the request body is never
        read, so the connection must close); arms response truncation
        for :meth:`_reply` otherwise."""
        self._chaos_truncate = False
        if self.fault_plan is None:
            return False
        actions = self.fault_plan.server_actions(path)
        if actions.get("truncate"):
            self._chaos_truncate = True
        if actions.get("http_500"):
            self.close_connection = True
            self._reply({"error": "chaos: injected HTTP 500"}, code=500)
            return True
        return False

    # -- plumbing ----------------------------------------------------------

    def _reply(self, payload: dict, code: int = 200,
               content_type: str = "application/json",
               cors: bool = False) -> None:
        if content_type == "application/json":
            payload = dict(payload)
            payload["protocol"] = PROTOCOL_VERSION
            body = json.dumps(payload).encode()
        else:
            body = payload  # type: ignore[assignment]
        if getattr(self, "_chaos_truncate", False) and code == 200:
            # Truncated body with a matching Content-Length: the client
            # reads a short, unparseable JSON document and retries.
            self._chaos_truncate = False
            body = body[: max(1, len(body) // 2)]
            self.close_connection = True
        self._reply_code = code
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if getattr(self, "_cid", None):
            self.send_header("X-Repro-Correlation", self._cid)
        if cors:
            # Only the read-only dashboard poll endpoint is cross-origin
            # (an externally served page polling /status); everything
            # else stays same-origin so a stray web page cannot drive a
            # localhost broker.
            self.send_header("Access-Control-Allow-Origin", "*")
        self.end_headers()
        self.wfile.write(body)

    def _authorized(self) -> bool:
        if not self.token:
            return True
        supplied = self.headers.get("X-Repro-Token", "")
        return hmac.compare_digest(supplied, self.token)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b"{}"
        try:
            payload = json.loads(raw.decode() or "{}")
        except ValueError:
            raise BrokerError("request body is not valid JSON")
        return check_protocol(payload, side="client")

    def _dispatch(self, fn, cors: bool = False) -> None:
        try:
            self._reply(fn(), cors=cors)
        except BrokerError as exc:
            self._reply({"error": str(exc)}, code=400, cors=cors)
        except Exception as exc:  # pragma: no cover - defensive
            self._reply(
                {"error": f"{type(exc).__name__}: {exc}"}, code=500,
                cors=cors,
            )

    # -- routes ------------------------------------------------------------

    def _observed(self, method: str, handler) -> None:
        """Instrumentation envelope shared by GET and POST.

        Every request gets a correlation id (bound into the structured
        log context and echoed back in ``X-Repro-Correlation``), a
        latency observation, and a ``requests_total`` count by endpoint
        and final status code.
        """
        path = urlparse(self.path).path
        endpoint = path if path in _ENDPOINTS else "other"
        self._cid = obs.new_correlation_id()
        self._reply_code = 0
        t0 = time.perf_counter()
        with obs.bind(correlation_id=self._cid, http=f"{method} {path}"):
            try:
                handler()
            finally:
                metrics_attrs = self.broker
                metrics_attrs.m_request_latency.observe(
                    time.perf_counter() - t0, endpoint=endpoint
                )
                metrics_attrs.m_requests.inc(
                    endpoint=endpoint, code=str(self._reply_code or 500)
                )

    def do_POST(self):  # noqa: N802 - stdlib name
        self._observed("POST", self._handle_post)

    def do_GET(self):  # noqa: N802 - stdlib name
        self._observed("GET", self._handle_get)

    def _handle_post(self):
        path = urlparse(self.path).path
        if self._chaos_preempt(path):
            return
        if not self._authorized():
            self.broker.m_rejects.inc(reason="unauthorized")
            _LOG.warning("http.unauthorized", path=path)
            return self._reply(
                {"error": "missing or invalid X-Repro-Token"}, code=401
            )
        try:
            body = self._read_json()
        except BrokerError as exc:
            self.broker.m_rejects.inc(reason="bad_json")
            _LOG.warning("http.bad_json", path=path, error=str(exc))
            return self._reply({"error": str(exc)}, code=400)
        broker = self.broker
        if path == "/enqueue":
            self._dispatch(lambda: broker.enqueue(
                str(body.get("campaign_id", "")),
                list(body.get("batches", [])),
                dict(body.get("meta") or {}),
                body.get("manifest"),
            ))
        elif path == "/claim":
            self._dispatch(lambda: broker.claim(
                str(body.get("runner_id", "")),
                int(body.get("max_batches", 1)),
            ))
        elif path == "/complete":
            trace_ctx = parse_trace_header(self.headers.get(TRACE_HEADER))
            self._dispatch(lambda: broker.complete(
                str(body.get("runner_id", "")),
                str(body.get("campaign_id", "")),
                str(body.get("batch_id", "")),
                list(body.get("items", [])),
                dict(body.get("cache_stats") or {}),
                trace_ctx=trace_ctx,
            ))
        elif path == "/heartbeat":
            self._dispatch(lambda: broker.heartbeat(
                str(body.get("runner_id", "")),
                dict(body.get("stats") or {}),
            ))
        else:
            self.broker.m_rejects.inc(reason="not_found")
            _LOG.info("http.not_found", path=path, method="POST")
            self._reply({"error": f"no such endpoint {path}"}, code=404)

    def _handle_get(self):
        parsed = urlparse(self.path)
        if self._chaos_preempt(parsed.path):
            return
        params = {k: v[0] for k, v in parse_qs(parsed.query).items()}
        broker = self.broker
        if parsed.path == "/metrics":
            self._reply(
                broker.metrics.render().encode(),
                content_type=METRICS_CONTENT_TYPE,
            )
        elif parsed.path == "/status":
            self._dispatch(
                lambda: broker.status(params.get("campaign_id")),
                cors=True,
            )
        elif parsed.path == "/records":
            self._dispatch(lambda: {
                "items": broker.records(params.get("campaign_id", ""))
            })
        elif parsed.path == "/campaign":
            self._dispatch(
                lambda: broker.load_manifest(params.get("campaign_id", ""))
            )
        elif parsed.path in ("/", "/dashboard"):
            from repro.service.dashboard import render_dashboard

            self._reply(
                render_dashboard(broker_url="").encode(),
                content_type="text/html; charset=utf-8",
            )
        else:
            self.broker.m_rejects.inc(reason="not_found")
            _LOG.info("http.not_found", path=parsed.path, method="GET")
            self._reply({"error": f"no such endpoint {parsed.path}"},
                        code=404)


class BrokerServer:
    """A :class:`Broker` behind a threading stdlib HTTP server.

    ``token`` gates every mutating (POST) endpoint behind an
    ``X-Repro-Token`` header; ``None`` falls back to
    ``$REPRO_BROKER_TOKEN`` (empty/unset = open, fine for the loopback
    default -- set it whenever binding a routable interface).
    :class:`~repro.service.protocol.BrokerClient` reads the same
    environment variable, so an exported token secures coordinator,
    runners, and broker together.
    """

    def __init__(self, broker: Broker, host: str = "127.0.0.1",
                 port: int = 0, token: Optional[str] = None,
                 fault_plan=None):
        self.broker = broker
        if token is None:
            token = os.environ.get("REPRO_BROKER_TOKEN") or None
        self.token = token
        handler = type(
            "BoundBrokerHandler", (_BrokerHandler,),
            {"broker": broker, "token": token, "fault_plan": fault_plan},
        )
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self.host, self.port = self._httpd.server_address[:2]
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "BrokerServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="broker-http", daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        self._httpd.serve_forever()

    def shutdown(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "BrokerServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown()


def serve_broker(host: str, port: int, store_root: Union[str, Path],
                 lease_s: float = 60.0,
                 token: Optional[str] = None) -> None:
    """Blocking entry point behind ``python -m repro broker``."""
    obs.install_signal_dump()
    broker = Broker(store_root, lease_s=lease_s)
    server = BrokerServer(broker, host=host, port=port, token=token)
    auth = "on (X-Repro-Token)" if server.token else "off"
    print(f"broker listening on {server.url} "
          f"(store {broker.store.root}, lease {lease_s:.0f}s, auth {auth})")
    if not server.token and host not in ("127.0.0.1", "localhost", "::1"):
        print("warning: non-loopback bind without a token -- anything "
              "that can reach this port can enqueue and complete work; "
              "set REPRO_BROKER_TOKEN (or pass --token)")
    print(f"dashboard: {server.url}/dashboard")
    _LOG.info("broker.start", url=server.url, store=str(broker.store.root),
              lease_s=lease_s, auth=bool(server.token))
    try:
        with obs.crash_dump("broker"):
            server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        _LOG.info("broker.stop")
        server.shutdown()
