"""JSON wire protocol between coordinator, broker, and runners.

Plain HTTP with JSON bodies -- stdlib only (``urllib`` client,
``http.server`` server), no websockets, no pickle across the wire
(configs and results travel as their ``to_dict`` forms, the same
payloads the process pool already ships).

Endpoints (all relative to the broker base URL):

========================  =====  =========================================
``/enqueue``              POST   submit campaign batches (+ manifest)
``/claim``                POST   runner pulls leased batches
``/complete``             POST   runner streams a finished batch's records
``/heartbeat``            POST   runner liveness + telemetry (renews leases)
``/status``               GET    campaigns/runners progress snapshot
``/records``              GET    a campaign's records (coordinator merge)
``/campaign``             GET    a campaign's persisted manifest (resume)
``/dashboard``            GET    the self-contained live dashboard page
========================  =====  =========================================

Every request and response body carries ``{"protocol": 1}``; both sides
reject mismatches loudly rather than mis-parsing each other.  Transport
errors retry with the campaign pool's jittered exponential
:class:`~repro.campaign.pool.Backoff` -- the same policy crashed pool
workers get -- before surfacing as :class:`BrokerUnreachable`.
"""

from __future__ import annotations

import hashlib
import http.client
import json
import os
import socket
import time
import urllib.error
import urllib.parse
import urllib.request
from typing import Callable, Dict, List, Optional, Sequence

from repro.campaign.pool import Backoff
from repro.obs.log import get_logger
from repro.obs.trace import TRACE_HEADER, current_trace_header

PROTOCOL_VERSION = 1

_LOG = get_logger("protocol")

#: Reconnect policy for runner->broker and coordinator->broker calls.
CLIENT_BACKOFF = Backoff(base=0.2, cap=5.0)


class BrokerError(RuntimeError):
    """The broker answered, but with an application-level error."""


class BrokerUnreachable(BrokerError):
    """No (valid) answer after exhausting the reconnect budget."""


class _ChaosDropped(ConnectionError):
    """An injected request drop (never sent); retried like a real one."""


def batch_id_for(campaign_id: str, configs: Sequence[dict]) -> str:
    """Deterministic batch identity: campaign + canonical config JSON.

    Stable across coordinator restarts, so a resumed submission of the
    same pending work dedupes against batches already queued, leased,
    or done -- the broker's zero-duplication guarantee hangs off this.
    """
    canonical = json.dumps(
        {"campaign": campaign_id, "configs": list(configs)},
        sort_keys=True, separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode()).hexdigest()[:20]


def normalize_broker_url(broker: str) -> str:
    """Accept ``HOST:PORT``, ``:PORT``, or a full ``http://`` URL."""
    broker = broker.strip().rstrip("/")
    if broker.startswith(("http://", "https://")):
        return broker
    if broker.startswith(":"):
        broker = f"127.0.0.1{broker}"
    return f"http://{broker}"


def check_protocol(payload: dict, side: str) -> dict:
    got = payload.get("protocol")
    if got != PROTOCOL_VERSION:
        raise BrokerError(
            f"protocol version mismatch: {side} speaks {got!r}, "
            f"this side speaks {PROTOCOL_VERSION}"
        )
    return payload


class BrokerClient:
    """Thin JSON-over-HTTP client used by runners and the coordinator."""

    def __init__(
        self,
        broker: str,
        timeout: float = 30.0,
        backoff: Optional[Backoff] = None,
        max_tries: int = 6,
        sleep: Callable[[float], None] = time.sleep,
        token: Optional[str] = None,
        fault_plan=None,
        fault_role: str = "runner",
        deadline_s: Optional[float] = None,
    ):
        self.base_url = normalize_broker_url(broker)
        self.timeout = timeout
        # Module-level lookup at construction (not def) time, so tests
        # and operators can swap protocol.CLIENT_BACKOFF globally.
        self.backoff = backoff if backoff is not None else CLIENT_BACKOFF
        self.max_tries = max_tries
        self._sleep = sleep
        # Matches the broker's default: one exported REPRO_BROKER_TOKEN
        # secures coordinator, runners, and broker together.
        if token is None:
            token = os.environ.get("REPRO_BROKER_TOKEN") or None
        self.token = token
        #: Optional :class:`repro.service.chaos.FaultPlan`; when set,
        #: every request consults it for injected drop/delay/dup/reset
        #: faults (and ChaosKill, which propagates).
        self.fault_plan = fault_plan
        self.fault_role = fault_role
        #: Total wall-clock budget for one request's retry loop.  The
        #: attempt budget (``max_tries``) bounds the count; this bounds
        #: the time, so a dead broker surfaces as BrokerUnreachable no
        #: later than ``deadline_s`` after the first attempt.
        self.deadline_s = deadline_s
        #: Backoff sleeps taken across this client's lifetime; runners
        #: ship it broker-ward in heartbeats, the broker re-exports it
        #: as ``repro_runner_backoff_retries_total``.
        self.retries_total = 0

    # -- transport ---------------------------------------------------------

    def _netloc(self) -> str:
        return urllib.parse.urlsplit(self.base_url).netloc

    def _send(self, url: str, data: Optional[bytes],
              headers: dict) -> dict:
        req = urllib.request.Request(url, data=data, headers=headers)
        with urllib.request.urlopen(req, timeout=self.timeout) as resp:
            return json.loads(resp.read().decode())

    def _request(self, path: str, payload: Optional[dict] = None,
                 params: Optional[dict] = None, retry: bool = True) -> dict:
        url = self.base_url + path
        if params:
            url += "?" + urllib.parse.urlencode(params)
        data = None
        headers = {"Accept": "application/json"}
        if self.token:
            headers["X-Repro-Token"] = self.token
        # Propagate the active service span (if any) so the broker can
        # parent its ingest span on the runner's batch-run span.
        trace_header = current_trace_header()
        if trace_header:
            headers[TRACE_HEADER] = trace_header
        if payload is not None:
            body = dict(payload)
            body["protocol"] = PROTOCOL_VERSION
            data = json.dumps(body).encode()
            headers["Content-Type"] = "application/json"
        tries = self.max_tries if retry else 1
        deadline = (
            time.monotonic() + self.deadline_s
            if retry and self.deadline_s is not None else None
        )
        last_error = "no attempt made"
        attempt = 0
        while attempt < tries:
            attempt += 1
            try:
                actions = (
                    self.fault_plan.client_actions(path, self.fault_role)
                    if self.fault_plan is not None else None
                )
                if actions:
                    if actions.get("delay"):
                        # Holds this request while concurrently issued
                        # ones overtake it -- delay and reorder faults.
                        self._sleep(float(actions["delay"]))
                    if actions.get("drop"):
                        raise _ChaosDropped("chaos: request dropped")
                answer = self._send(url, data, headers)
                if actions and actions.get("dup"):
                    # Duplicate delivery of the same payload; the
                    # broker must dedupe (idempotent enqueue, at-most-
                    # once complete), so the extra answer is discarded.
                    try:
                        self._send(url, data, headers)
                    except Exception:
                        pass
                if actions and actions.get("reset"):
                    # The request *was* delivered; losing the response
                    # forces a retry of an already-applied call.
                    raise ConnectionResetError("chaos: connection reset")
                check_protocol(answer, side="broker")
                if answer.get("error"):
                    raise BrokerError(str(answer["error"]))
                return answer
            except urllib.error.HTTPError as exc:
                try:
                    detail = json.loads(exc.read().decode()).get("error", "")
                except Exception:
                    detail = ""
                if exc.code >= 500 and retry:
                    # 5xx is the broker (or a proxy) failing, not an
                    # application answer -- retryable, like a reset.
                    last_error = f"HTTP {exc.code} {detail}".strip()
                else:
                    # 4xx is an application answer: surface it without
                    # retrying.
                    raise BrokerError(
                        f"broker rejected {path}: HTTP {exc.code} {detail}"
                    ) from exc
            except (urllib.error.URLError, ConnectionError, socket.timeout,
                    TimeoutError, json.JSONDecodeError,
                    http.client.HTTPException) as exc:
                last_error = f"{type(exc).__name__}: {exc}"
            if attempt < tries:
                if deadline is not None and time.monotonic() >= deadline:
                    break
                self.retries_total += 1
                _LOG.debug(
                    "request.retry", path=path, attempt=attempt,
                    error=last_error,
                )
                self.backoff.sleep(attempt, sleep=self._sleep)
        raise BrokerUnreachable(
            f"broker unreachable at {self._netloc()} after {attempt} "
            f"attempt(s): {last_error}"
        )

    # -- API ---------------------------------------------------------------

    def enqueue(self, campaign_id: str, batches: List[dict], meta: dict,
                manifest: Optional[List[dict]] = None) -> dict:
        return self._request("/enqueue", {
            "campaign_id": campaign_id,
            "batches": batches,
            "meta": meta,
            "manifest": manifest,
        })

    def claim(self, runner_id: str, max_batches: int = 1) -> dict:
        return self._request("/claim", {
            "runner_id": runner_id,
            "max_batches": max_batches,
        })

    def complete(self, runner_id: str, campaign_id: str, batch_id: str,
                 items: List[dict],
                 cache_stats: Optional[dict] = None) -> dict:
        return self._request("/complete", {
            "runner_id": runner_id,
            "campaign_id": campaign_id,
            "batch_id": batch_id,
            "items": items,
            "cache_stats": cache_stats or {},
        })

    def heartbeat(self, runner_id: str, payload: dict,
                  retry: bool = False) -> Optional[dict]:
        """Best-effort by default: a missed heartbeat must never crash
        a runner mid-batch (the lease grace absorbs it)."""
        try:
            return self._request(
                "/heartbeat",
                {"runner_id": runner_id, "stats": payload},
                retry=retry,
            )
        except BrokerUnreachable:
            if retry:
                raise
            return None

    def status(self, campaign_id: Optional[str] = None) -> dict:
        params = {"campaign_id": campaign_id} if campaign_id else None
        return self._request("/status", params=params)

    def records(self, campaign_id: str) -> List[dict]:
        answer = self._request(
            "/records", params={"campaign_id": campaign_id}
        )
        return list(answer.get("items", []))

    def manifest(self, campaign_id: str) -> dict:
        return self._request(
            "/campaign", params={"campaign_id": campaign_id}
        )

    def ping(self) -> bool:
        try:
            self._request("/status", retry=False)
            return True
        except BrokerError:
            return False

    def probe(self, retry: bool = True) -> dict:
        """A reachability check with the normal (bounded) retry budget.

        Raises :class:`BrokerUnreachable` with the one-line operator
        message (``broker unreachable at HOST:PORT ...``) -- the CLI
        surfaces it verbatim and exits 2 instead of spinning forever or
        dumping a traceback.
        """
        return self._request("/status", retry=retry)


# -- record <-> item helpers ------------------------------------------------

def record_to_item(record, grid_index: int) -> Dict[str, object]:
    """A :class:`~repro.campaign.executor.RunRecord` as a wire item.

    ``grid_index`` is the position in the *campaign's* grid (the
    record's own ``.index`` is local to the runner's claimed batch).
    """
    item = record.to_dict()
    item["index"] = grid_index
    return item
