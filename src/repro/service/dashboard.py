"""Live campaign dashboard: one self-contained HTML page.

No build step, no JS dependencies: the page carries its own CSS/JS and
polls the broker's ``/status`` JSON endpoint every couple of seconds.
It renders campaign progress (batches + per-status record counts),
per-runner throughput and snapshot/trace-cache hit rates from the
telemetry heartbeats, and the overlap-fraction trend as an inline SVG
sparkline -- the paper's non-blocking claim, live, while a sweep runs.

Served two ways:

* the broker itself answers ``GET /dashboard`` (same origin, zero
  setup);
* ``python -m repro serve-dashboard --broker URL`` hosts the page on a
  separate port (the broker CORS-enables the read-only ``/status``
  endpoint -- and only that one -- so a dashboard host can sit
  anywhere that can reach the broker).
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

# Single-accent page: one categorical slot for data marks, status red
# reserved for failures (with a text label, never color alone); all
# text wears text tokens.  Light/dark are both specified.
_PAGE = """<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>repro campaign service</title>
<style>
  :root {
    color-scheme: light;
    --surface-1: #fcfcfb; --surface-2: #f1f0ee;
    --text-primary: #0b0b0b; --text-secondary: #52514e;
    --line: #dddcd8;
    --series-1: #2a78d6; --status-bad: #e34948; --status-warn: #eda100;
  }
  @media (prefers-color-scheme: dark) {
    :root {
      color-scheme: dark;
      --surface-1: #1a1a19; --surface-2: #232322;
      --text-primary: #ffffff; --text-secondary: #c3c2b7;
      --line: #3a3936;
      --series-1: #3987e5; --status-bad: #e66767; --status-warn: #c98500;
    }
  }
  body { margin: 0; padding: 24px; background: var(--surface-1);
         color: var(--text-primary);
         font: 14px/1.5 system-ui, -apple-system, sans-serif; }
  h1 { font-size: 18px; margin: 0 0 4px; }
  .sub { color: var(--text-secondary); margin-bottom: 20px; }
  .cards { display: flex; flex-wrap: wrap; gap: 16px; margin-bottom: 20px; }
  .card { background: var(--surface-2); border-radius: 8px;
          padding: 14px 18px; min-width: 130px; }
  .card .label { color: var(--text-secondary); font-size: 12px; }
  .card .value { font-size: 24px; font-variant-numeric: tabular-nums; }
  table { border-collapse: collapse; width: 100%; margin-bottom: 24px; }
  th { text-align: left; color: var(--text-secondary); font-weight: 500;
       font-size: 12px; border-bottom: 1px solid var(--line);
       padding: 6px 10px 6px 0; }
  td { padding: 6px 10px 6px 0; border-bottom: 1px solid var(--line);
       font-variant-numeric: tabular-nums; }
  .meter { background: var(--line); border-radius: 4px; height: 8px;
           width: 160px; display: inline-block; vertical-align: middle; }
  .meter > div { background: var(--series-1); border-radius: 4px;
                 height: 8px; }
  .bad { color: var(--status-bad); }
  .warn { color: var(--status-warn); }
  .section { font-size: 15px; font-weight: 600; margin: 18px 0 8px; }
  #spark { background: var(--surface-2); border-radius: 8px; }
  .err { color: var(--status-bad); margin: 12px 0; display: none; }
  .muted { color: var(--text-secondary); }
</style>
</head>
<body>
<h1>repro campaign service</h1>
<div class="sub">broker <span id="broker-url"></span> ·
  uptime <span id="uptime">–</span> ·
  lease requeues <span id="requeues">0</span></div>
<div class="err" id="error"></div>
<div class="cards" id="cards"></div>
<div class="section">Campaigns</div>
<table id="campaigns">
  <thead><tr><th>campaign</th><th>batches</th><th>progress</th>
  <th>records</th><th>failed</th><th>quarantined</th><th>age</th></tr></thead>
  <tbody></tbody>
</table>
<div class="section">Runners</div>
<table id="runners">
  <thead><tr><th>runner</th><th>last seen</th><th>batches</th><th>runs</th>
  <th>runs/s</th><th>snapshot fork rate</th><th>trace hit rate</th></tr></thead>
  <tbody></tbody>
</table>
<div class="section">Overlap fraction (latest campaign, most recent runs)</div>
<svg id="spark" width="640" height="96" viewBox="0 0 640 96"
     role="img" aria-label="overlap fraction trend"></svg>
<div class="muted" id="spark-note">no overlap samples yet — run a sweep
with <code>--telemetry</code> to populate this trend</div>
<script>
"use strict";
const BROKER = __BROKER_URL__;  // empty = same origin as this page
document.getElementById("broker-url").textContent = BROKER || "(this origin)";

function fmtRate(counts) {
  if (!counts) return "–";
  const h = counts.hits || 0, m = counts.misses || 0;
  if (h + m === 0) return "–";
  return Math.round(100 * h / (h + m)) + "%";
}
function fmtAge(s) {
  if (s == null) return "–";
  if (s < 90) return s.toFixed(0) + "s";
  if (s < 5400) return (s / 60).toFixed(1) + "m";
  return (s / 3600).toFixed(1) + "h";
}
function el(tag, text, cls) {
  const e = document.createElement(tag);
  if (text !== undefined && text !== null) e.textContent = String(text);
  if (cls) e.className = cls;
  return e;
}
function meter(frac) {
  const wrap = el("div", null, "meter");
  const fill = el("div");
  fill.style.width = Math.round(100 * Math.max(0, Math.min(1, frac))) + "%";
  wrap.appendChild(fill);
  return wrap;
}

function renderCards(status) {
  const campaigns = Object.values(status.campaigns || {});
  const runs = campaigns.reduce((a, c) => a + (c.runs_done || 0), 0);
  const queued = campaigns.reduce((a, c) => a + (c.queued || 0), 0);
  const leased = campaigns.reduce((a, c) => a + (c.leased || 0), 0);
  const cards = [
    ["campaigns", campaigns.length],
    ["runners", Object.keys(status.runners || {}).length],
    ["runs ingested", runs],
    ["batches queued", queued],
    ["batches leased", leased],
    ["store entries", (status.store || {}).entries ?? "–"],
  ];
  const box = document.getElementById("cards");
  box.replaceChildren(...cards.map(([label, value]) => {
    const card = el("div", null, "card");
    card.appendChild(el("div", label, "label"));
    card.appendChild(el("div", value, "value"));
    return card;
  }));
}

function renderCampaigns(status) {
  const body = document.querySelector("#campaigns tbody");
  body.replaceChildren();
  for (const [cid, c] of Object.entries(status.campaigns || {})) {
    const by = c.records_by_status || {};
    const failed = (by.failed || 0) + (by.timeout || 0);
    const row = document.createElement("tr");
    row.appendChild(el("td", cid));
    row.appendChild(el("td", `${c.done}/${c.batches}`));
    const prog = document.createElement("td");
    prog.appendChild(meter(c.batches ? c.done / c.batches : 0));
    row.appendChild(prog);
    row.appendChild(el("td", c.runs_done || 0));
    row.appendChild(el("td", failed ? `✗ ${failed}` : "0",
                       failed ? "bad" : ""));
    row.appendChild(el("td", by.quarantined || 0,
                       by.quarantined ? "warn" : ""));
    row.appendChild(el("td", fmtAge(c.age_s)));
    body.appendChild(row);
  }
}

function renderRunners(status) {
  const body = document.querySelector("#runners tbody");
  body.replaceChildren();
  for (const [rid, r] of Object.entries(status.runners || {})) {
    const cache = (r.stats || {}).cache || {};
    const row = document.createElement("tr");
    row.appendChild(el("td", rid));
    row.appendChild(el("td", fmtAge(r.last_seen_s) + " ago"));
    row.appendChild(el("td", r.batches_done));
    row.appendChild(el("td", r.runs_done));
    row.appendChild(el("td", (r.runs_per_sec || 0).toFixed(2)));
    row.appendChild(el("td", fmtRate(cache.snapshot)));
    row.appendChild(el("td", fmtRate(cache.trace)));
    body.appendChild(row);
  }
}

function renderSpark(status) {
  const svg = document.getElementById("spark");
  const note = document.getElementById("spark-note");
  const campaigns = Object.entries(status.campaigns || {});
  let trend = [];
  for (const [, c] of campaigns) {
    if ((c.overlap_trend || []).length > trend.length)
      trend = c.overlap_trend;
  }
  svg.replaceChildren();
  if (trend.length < 2) { note.style.display = ""; return; }
  note.style.display = "none";
  const W = 640, H = 96, pad = 10;
  const ys = trend.map(p => p[1]);
  const pts = trend.map((p, i) => {
    const x = pad + (W - 2 * pad) * (i / (trend.length - 1));
    const y = H - pad - (H - 2 * pad) * Math.max(0, Math.min(1, p[1]));
    return `${x.toFixed(1)},${y.toFixed(1)}`;
  });
  const line = document.createElementNS("http://www.w3.org/2000/svg",
                                        "polyline");
  line.setAttribute("points", pts.join(" "));
  line.setAttribute("fill", "none");
  line.setAttribute("stroke", "var(--series-1)");
  line.setAttribute("stroke-width", "2");
  line.setAttribute("stroke-linejoin", "round");
  svg.appendChild(line);
  const last = ys[ys.length - 1];
  const label = document.createElementNS("http://www.w3.org/2000/svg",
                                         "text");
  label.setAttribute("x", W - pad);
  label.setAttribute("y", 16);
  label.setAttribute("text-anchor", "end");
  label.setAttribute("fill", "var(--text-secondary)");
  label.setAttribute("font-size", "12");
  label.textContent = `latest ${last.toFixed(3)} · n=${ys.length}`;
  svg.appendChild(label);
}

async function tick() {
  const err = document.getElementById("error");
  try {
    const resp = await fetch((BROKER || "") + "/status");
    const status = await resp.json();
    err.style.display = "none";
    document.getElementById("uptime").textContent = fmtAge(status.uptime_s);
    document.getElementById("requeues").textContent = status.requeues || 0;
    renderCards(status);
    renderCampaigns(status);
    renderRunners(status);
    renderSpark(status);
  } catch (e) {
    err.textContent = "broker unreachable: " + e;
    err.style.display = "";
  }
}
tick();
setInterval(tick, 2000);
</script>
</body>
</html>
"""


def render_dashboard(broker_url: str = "") -> str:
    """The dashboard page, pointed at *broker_url* (empty = same
    origin, i.e. the page is served by the broker itself)."""
    return _PAGE.replace("__BROKER_URL__", json.dumps(broker_url.rstrip("/")))


def serve_dashboard(broker_url: str, host: str = "127.0.0.1",
                    port: int = 8800) -> None:
    """Blocking entry behind ``python -m repro serve-dashboard``."""
    page = render_dashboard(broker_url).encode()

    class _Handler(BaseHTTPRequestHandler):
        def log_message(self, fmt, *args):  # noqa: N802 - stdlib name
            pass

        def do_GET(self):  # noqa: N802 - stdlib name
            self.send_response(200)
            self.send_header("Content-Type", "text/html; charset=utf-8")
            self.send_header("Content-Length", str(len(page)))
            self.end_headers()
            self.wfile.write(page)

    httpd = ThreadingHTTPServer((host, port), _Handler)
    shown = host if host != "0.0.0.0" else "127.0.0.1"  # noqa: S104
    print(f"dashboard on http://{shown}:{httpd.server_address[1]} "
          f"(polling {broker_url}/status)")
    try:
        httpd.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        httpd.server_close()
