"""Append-only journal of broker batch state transitions.

The broker's queue/lease/done state was memory-only: a restart kept
completed *results* (the store is the source of truth for data) but
lost queue position, forcing the coordinator to re-prescan and
re-enqueue.  The journal makes the queue itself crash-consistent.

One JSONL file per campaign under ``<store>/service/journal/``; each
line is a single state transition:

========== ===========================================================
``enqueue``   batch accepted (carries indices + configs, so replay
              does not depend on the manifest)
``lease``     batch leased to a runner (logged on claim, not on the
              much-chattier heartbeat renewals)
``requeue``   a lease expired and the batch went back on the queue
``complete``  batch done; carries slim items (results themselves live
              in the content-addressed store and are rehydrated from
              it on demand)
========== ===========================================================

Every line ends with a ``crc`` (CRC-32 of the canonical JSON of the
entry minus the crc field) and is flushed + fsynced before the broker
commits the transition in memory, so the journal can only ever be
*ahead* of acknowledged state, never behind.  Replay tolerates a torn
or corrupt tail line (the classic crash shape: power died mid-append)
by skipping and counting it -- everything acknowledged before the tear
is intact by construction.
"""

from __future__ import annotations

import json
import threading
import time
import zlib
from pathlib import Path
from typing import Callable, Dict, IO, List, Optional, Union

from repro import obs

_LOG = obs.get_logger("journal")

#: Fields stripped from complete-items before journaling.  Results and
#: telemetry are bulky and already durable in the content-addressed
#: store; the journal only needs enough to rebuild the record map.
SLIM_DROP = ("result", "telemetry", "traceback")


def _crc(entry: dict) -> int:
    canonical = json.dumps(
        {k: v for k, v in entry.items() if k != "crc"},
        sort_keys=True, separators=(",", ":"),
    )
    return zlib.crc32(canonical.encode()) & 0xFFFFFFFF


def slim_item(item: dict) -> dict:
    """An item with bulky store-backed fields dropped (for ``complete``
    entries); :meth:`repro.service.broker.Broker.records` rehydrates
    results from the store when serving them."""
    return {k: v for k, v in item.items() if k not in SLIM_DROP}


class Journal:
    """Per-campaign append-only transition log with fsync-per-append."""

    def __init__(self, store_root: Union[str, Path],
                 fsync_observer: Optional[Callable[[float], None]] = None):
        self.root = Path(store_root) / "service" / "journal"
        self._lock = threading.Lock()
        self._handles: Dict[str, IO[bytes]] = {}
        self._closed = False
        self.appends = 0
        self.corrupt_lines = 0
        #: Called with the seconds one append's write+flush+fsync took
        #: (the broker feeds its fsync-latency histogram with this).
        self.fsync_observer = fsync_observer

    def path_for(self, campaign_id: str) -> Path:
        return self.root / f"{campaign_id}.jsonl"

    # -- append ------------------------------------------------------------

    def append(self, campaign_id: str, op: str, **fields) -> None:
        """Durably log one transition before the broker commits it.

        The handle is kept open per campaign ('ab'), so steady-state
        cost is one write + one fsync per transition.
        """
        entry = {"op": op, **fields}
        entry["crc"] = _crc(entry)
        line = json.dumps(entry, sort_keys=True,
                          separators=(",", ":")).encode() + b"\n"
        with self._lock:
            if self._closed:
                # A closed journal belongs to a dead broker (shutdown or
                # the chaos harness's kill).  Refusing the append -- not
                # resurrecting the file -- is what keeps a killed
                # broker's in-flight handler from writing entries the
                # successor already replayed past: the caller's error
                # path leaves the batch leased, the lease expires, and
                # the re-run converges idempotently.
                raise OSError("journal is closed")
            fh = self._handles.get(campaign_id)
            if fh is None or fh.closed:
                self.root.mkdir(parents=True, exist_ok=True)
                fh = open(self.path_for(campaign_id), "ab")
                self._handles[campaign_id] = fh
            from repro.campaign.store import _FS

            t0 = time.perf_counter()
            _FS.write(fh, line, path=self.path_for(campaign_id))
            fh.flush()
            _FS.fsync(fh.fileno())
            self.appends += 1
            if self.fsync_observer is not None:
                self.fsync_observer(time.perf_counter() - t0)
        _LOG.debug("journal.append", campaign=campaign_id, op=op,
                   bytes=len(line))

    def close(self) -> None:
        with self._lock:
            self._closed = True
            for fh in self._handles.values():
                try:
                    fh.close()
                except OSError:
                    pass
            self._handles.clear()

    # -- replay ------------------------------------------------------------

    def replay(self, campaign_id: Optional[str] = None
               ) -> Dict[str, List[dict]]:
        """``{campaign_id: [entries...]}`` from disk, oldest first.

        Torn/corrupt lines (bad JSON, CRC mismatch, missing op) are
        skipped and counted in :attr:`corrupt_lines` -- a crash
        mid-append must not take the whole campaign's history with it.
        """
        out: Dict[str, List[dict]] = {}
        if not self.root.exists():
            return out
        paths = (
            [self.path_for(campaign_id)] if campaign_id is not None
            else sorted(self.root.glob("*.jsonl"))
        )
        for path in paths:
            try:
                raw = path.read_bytes()
            except OSError:
                continue
            entries: List[dict] = []
            for line in raw.splitlines():
                if not line.strip():
                    continue
                try:
                    entry = json.loads(line.decode())
                    if (not isinstance(entry, dict) or "op" not in entry
                            or entry.get("crc") != _crc(entry)):
                        raise ValueError("bad journal entry")
                except (ValueError, UnicodeDecodeError):
                    self.corrupt_lines += 1
                    continue
                entries.append(entry)
            if entries:
                out[path.stem] = entries
        if out:
            _LOG.info(
                "journal.replay", campaigns=len(out),
                entries=sum(len(v) for v in out.values()),
                corrupt_lines=self.corrupt_lines,
            )
        return out

    def stats(self) -> Dict[str, object]:
        files = (
            sorted(self.root.glob("*.jsonl")) if self.root.exists() else []
        )
        return {
            "campaigns": len(files),
            "appends": self.appends,
            "corrupt_lines": self.corrupt_lines,
            "bytes": sum(p.stat().st_size for p in files),
            "root": str(self.root),
        }
