"""Event-driven synchronization primitives.

The NOMAD front-end treats cache-frame management as a critical section
guarded by one mutex (Algorithms 1 and 2); with several cores taking DC
tag misses concurrently, queueing on this mutex is what stretches the
observed tag-management latency from the base 400 cycles up to several
thousand (Section IV-A).  ``Mutex`` reproduces that queueing exactly:
FIFO grant order, zero-cost hand-off.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.engine.simulator import Simulator


class Mutex:
    """FIFO mutex; ``acquire`` calls back when the lock is granted."""

    def __init__(self, sim: Simulator, name: str = "mutex"):
        self.sim = sim
        self.name = name
        self._locked = False
        self._waiters: deque = deque()
        self.acquisitions = 0
        self.contended_acquisitions = 0

    def acquire(self, granted: Callable[[], None]) -> None:
        """Request the lock; ``granted()`` runs when it is held.

        The callback fires synchronously when the lock is free, otherwise
        at the simulated time of a later :meth:`release`.
        """
        self.acquisitions += 1
        if not self._locked:
            self._locked = True
            granted()
        else:
            self.contended_acquisitions += 1
            self._waiters.append(granted)

    def release(self) -> None:
        """Free the lock, handing it to the next waiter (if any)."""
        if not self._locked:
            raise RuntimeError(f"{self.name}: release of an unheld mutex")
        if self._waiters:
            waiter = self._waiters.popleft()
            # Stay locked; the waiter now holds it.  Fire in a fresh event
            # so the releaser's call stack unwinds first.
            self.sim.schedule(0, waiter)
        else:
            self._locked = False

    @property
    def locked(self) -> bool:
        return self._locked

    @property
    def queue_depth(self) -> int:
        return len(self._waiters)
