"""Event-driven synchronization primitives.

The NOMAD front-end treats cache-frame management as a critical section
guarded by one mutex (Algorithms 1 and 2); with several cores taking DC
tag misses concurrently, queueing on this mutex is what stretches the
observed tag-management latency from the base 400 cycles up to several
thousand (Section IV-A).  ``Mutex`` reproduces that queueing exactly:
FIFO grant order, zero-cost hand-off.

For diagnosability the mutex tracks who holds it (an ``owner`` label
passed to :meth:`acquire`, defaulting to the callback's qualname), since
a misbalanced release otherwise names only the mutex -- useless when
the tag miss handler and the eviction daemon share one lock.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from repro.engine.simulator import Simulator


def _callable_label(fn: Callable) -> str:
    label = getattr(fn, "__qualname__", None)
    if label:
        return label
    return type(fn).__name__


class Mutex:
    """FIFO mutex; ``acquire`` calls back when the lock is granted."""

    def __init__(self, sim: Simulator, name: str = "mutex"):
        self.sim = sim
        self.name = name
        self._locked = False
        self._waiters: deque = deque()
        self.acquisitions = 0
        self.contended_acquisitions = 0
        # Holder bookkeeping for error messages and guard snapshots.
        self._holder: Optional[str] = None
        self._holder_since = 0
        self._last_holder: Optional[str] = None
        self._last_release_time: Optional[int] = None

    def acquire(self, granted: Callable[[], None],
                owner: Optional[str] = None) -> None:
        """Request the lock; ``granted()`` runs when it is held.

        The callback fires synchronously when the lock is free, otherwise
        at the simulated time of a later :meth:`release`.  ``owner``
        labels the acquirer in diagnostics (defaults to the callback's
        qualified name).
        """
        label = owner if owner is not None else _callable_label(granted)
        self.acquisitions += 1
        if not self._locked:
            self._locked = True
            self._holder = label
            self._holder_since = self.sim.now
            granted()
        else:
            self.contended_acquisitions += 1
            self._waiters.append((granted, label))

    def release(self) -> None:
        """Free the lock, handing it to the next waiter (if any)."""
        if not self._locked:
            if self._last_holder is not None:
                history = (
                    f"last held by {self._last_holder!r} "
                    f"(released at t={self._last_release_time})"
                )
            else:
                history = "never acquired"
            raise RuntimeError(
                f"{self.name}: release of an unheld mutex "
                f"at t={self.sim.now} ({history})"
            )
        self._last_holder = self._holder
        self._last_release_time = self.sim.now
        if self._waiters:
            waiter, label = self._waiters.popleft()
            # Stay locked; the waiter now holds it.  Fire in a fresh event
            # so the releaser's call stack unwinds first.
            self._holder = label
            self._holder_since = self.sim.now
            self.sim.schedule(0, waiter)
        else:
            self._locked = False
            self._holder = None

    @property
    def locked(self) -> bool:
        return self._locked

    @property
    def holder(self) -> Optional[str]:
        """Label of the current holder (None while free)."""
        return self._holder

    @property
    def queue_depth(self) -> int:
        return len(self._waiters)
