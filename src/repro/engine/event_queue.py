"""A deterministic discrete-event queue.

Events are ordered by (time, sequence number), so two events scheduled for
the same cycle fire in scheduling order.  Determinism matters here: the
paper's contention effects (mutex queueing in the NOMAD front-end, PCSHR
allocation races) must be reproducible run-to-run for the experiment
harness to produce stable tables.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Tuple


@dataclass(order=True)
class Event:
    """One scheduled callback.  Cancellation is a tombstone flag."""

    time: int
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        self.cancelled = True


class EventQueue:
    """Min-heap of :class:`Event` with stable same-cycle ordering."""

    def __init__(self):
        self._heap: list = []
        self._seq = 0

    def push(self, time: int, callback: Callable[[], None]) -> Event:
        if time < 0:
            raise ValueError(f"cannot schedule at negative time {time}")
        event = Event(time, self._seq, callback)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Optional[Event]:
        """Pop the next live event, skipping tombstones; None when empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> Optional[int]:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def __len__(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)

    @property
    def empty(self) -> bool:
        return self.peek_time() is None
