"""A deterministic discrete-event queue.

Events are ordered by (time, sequence number), so two events scheduled for
the same cycle fire in scheduling order.  Determinism matters here: the
paper's contention effects (mutex queueing in the NOMAD front-end, PCSHR
allocation races) must be reproducible run-to-run for the experiment
harness to produce stable tables.

Hot-path layout: the heap holds ``(time, seq, event)`` tuples so heap
sifting compares plain ints and never calls back into Python-level
``__lt__`` (``seq`` is unique, so the event object itself is never
compared).  Cancellation stays a tombstone on the :class:`Event` handle,
but a live-event counter is maintained on push/pop/cancel so ``len()``
is O(1).  The simulator's run loop reads ``_heap``/``_live`` directly;
any change to this layout must be mirrored there.
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional


class Event:
    """One scheduled callback.  Cancellation is a tombstone flag."""

    __slots__ = ("time", "seq", "callback", "cancelled", "_queue")

    def __init__(self, time: int, seq: int, callback: Callable[[], None], queue):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        # Back-reference for the live counter; cleared once the event is
        # popped (cancelling an already-fired event must not decrement).
        self._queue = queue

    def cancel(self) -> None:
        if self.cancelled:
            return
        self.cancelled = True
        queue = self._queue
        if queue is not None:
            queue._live -= 1
            self._queue = None


class EventQueue:
    """Min-heap of :class:`Event` with stable same-cycle ordering."""

    def __init__(self):
        self._heap: list = []
        self._seq = 0
        self._live = 0

    def push(self, time: int, callback: Callable[[], None]) -> Event:
        if time < 0:
            raise ValueError(f"cannot schedule at negative time {time}")
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, seq, callback, self)
        heapq.heappush(self._heap, (time, seq, event))
        self._live += 1
        return event

    def pop(self) -> Optional[Event]:
        """Pop the next live event, skipping tombstones; None when empty."""
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)[2]
            if not event.cancelled:
                self._live -= 1
                event._queue = None
                return event
        return None

    def peek_time(self) -> Optional[int]:
        heap = self._heap
        while heap:
            entry = heap[0]
            if not entry[2].cancelled:
                return entry[0]
            heapq.heappop(heap)
        return None

    def __len__(self) -> int:
        return self._live

    @property
    def empty(self) -> bool:
        return self._live == 0
