"""Discrete-event simulation kernel."""

from repro.engine.event_queue import Event, EventQueue
from repro.engine.simulator import Component, Simulator

__all__ = ["Component", "Event", "EventQueue", "Simulator"]
