"""The simulator: global clock, event dispatch, component registry."""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional

from repro.common.stats import StatGroup
from repro.engine.event_queue import Event, EventQueue


class Simulator:
    """Owns simulated time and the event queue.

    Components call :meth:`schedule` with a *delay* relative to ``now``.
    The run loop advances ``now`` to each event's timestamp; there is no
    per-cycle ticking, so idle stretches cost nothing.
    """

    def __init__(self):
        self.now = 0
        self._queue = EventQueue()
        self._components: List["Component"] = []
        self._stopped = False
        self.events_processed = 0  # cumulative across run() calls
        # Optional paranoid-mode hook (duck-typed: anything exposing
        # before_event/after_event, see repro.guard.Guard).  The engine
        # never imports the guard package; None keeps the fast loops.
        self._guard = None

    def attach_guard(self, guard) -> None:
        """Install (or with ``None`` remove) the run-loop guard hooks."""
        self._guard = guard

    def register(self, component: "Component") -> None:
        self._components.append(component)

    @property
    def components(self) -> List["Component"]:
        return list(self._components)

    def schedule(self, delay: int, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to fire ``delay`` cycles from now.

        Body mirrors :meth:`EventQueue.push` (layout contract in the
        queue docstring) so every scheduled event pays one call frame,
        not two.
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        queue = self._queue
        time = self.now + delay
        seq = queue._seq
        queue._seq = seq + 1
        event = Event(time, seq, callback, queue)
        heapq.heappush(queue._heap, (time, seq, event))
        queue._live += 1
        return event

    def schedule_at(self, time: int, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at an absolute time >= now."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past ({time} < {self.now})")
        queue = self._queue
        seq = queue._seq
        queue._seq = seq + 1
        event = Event(time, seq, callback, queue)
        heapq.heappush(queue._heap, (time, seq, event))
        queue._live += 1
        return event

    def stop(self) -> None:
        """Request the run loop to exit after the current event."""
        self._stopped = True

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Drain the event queue; returns the number of events processed.

        ``until`` bounds simulated time (events after it stay queued);
        ``max_events`` bounds work, guarding against runaway feedback loops
        in a buggy component.
        """
        if self._guard is not None:
            return self._run_guarded(until, max_events)
        processed = 0
        self._stopped = False
        # This loop dispatches every event of every run, so it works on
        # the EventQueue internals directly (tuple heap entries, the live
        # counter) instead of paying a peek+pop call pair per event; the
        # queue docstring pins the layout contract.
        queue = self._queue
        heap = queue._heap
        heappop = heapq.heappop
        if until is None and max_events is None:
            # The common, unbounded call: drop the two bound checks from
            # the loop.  Popping before the cancelled check is equivalent
            # to peeking here because a cancelled head is discarded either
            # way and a live head is popped next anyway.
            while heap and not self._stopped:
                entry = heappop(heap)
                event = entry[2]
                if event.cancelled:
                    continue
                queue._live -= 1
                event._queue = None
                self.now = entry[0]
                event.callback()
                processed += 1
            self.events_processed += processed
            return processed
        while not self._stopped:
            if max_events is not None and processed >= max_events:
                break
            if not heap:
                break
            entry = heap[0]
            event = entry[2]
            if event.cancelled:
                heappop(heap)
                continue
            time = entry[0]
            if until is not None and time > until:
                self.now = until
                break
            heappop(heap)
            queue._live -= 1
            event._queue = None
            self.now = time
            event.callback()
            processed += 1
        self.events_processed += processed
        return processed

    def _run_guarded(self, until: Optional[int], max_events: Optional[int]) -> int:
        """The guarded dispatch loop: identical pop order to the fast
        loops (so guarded runs stay bit-identical), with the guard's
        per-event hooks around each callback.  ``events_processed`` is
        maintained per event here, so a guard exception leaves an exact
        count for the crash bundle and its replay.
        """
        guard = self._guard
        before = guard.before_event
        after = guard.after_event
        processed = 0
        self._stopped = False
        queue = self._queue
        heap = queue._heap
        heappop = heapq.heappop
        while not self._stopped:
            if max_events is not None and processed >= max_events:
                break
            if not heap:
                break
            entry = heap[0]
            event = entry[2]
            if event.cancelled:
                heappop(heap)
                continue
            time = entry[0]
            if until is not None and time > until:
                self.now = until
                break
            heappop(heap)
            queue._live -= 1
            event._queue = None
            self.now = time
            before(time, entry[1], event.callback)
            event.callback()
            processed += 1
            self.events_processed += 1
            after()
        return processed

    @property
    def pending_events(self) -> int:
        return len(self._queue)


class Component:
    """Base class for simulated hardware/OS components.

    Provides the owning simulator, a :class:`StatGroup`, and scheduling
    sugar.  Subclasses register themselves so the harness can walk the
    component tree when collecting statistics.
    """

    def __init__(self, sim: Simulator, name: str):
        self.sim = sim
        self.name = name
        self.stats = StatGroup(name)
        sim.register(self)

    @property
    def now(self) -> int:
        return self.sim.now

    def schedule(self, delay: int, callback: Callable[[], None]) -> Event:
        return self.sim.schedule(delay, callback)

    def guard_state(self) -> dict:
        """Flat snapshot of diagnostic state for stall reports and crash
        bundles (see ``repro.guard``).  Components with interesting
        internal state override this; values should be scalars."""
        return {}

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"
