"""The simulator: global clock, event dispatch, component registry."""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.common.stats import StatGroup
from repro.engine.event_queue import Event, EventQueue


class Simulator:
    """Owns simulated time and the event queue.

    Components call :meth:`schedule` with a *delay* relative to ``now``.
    The run loop advances ``now`` to each event's timestamp; there is no
    per-cycle ticking, so idle stretches cost nothing.
    """

    def __init__(self):
        self.now = 0
        self._queue = EventQueue()
        self._components: List["Component"] = []
        self._stopped = False

    def register(self, component: "Component") -> None:
        self._components.append(component)

    @property
    def components(self) -> List["Component"]:
        return list(self._components)

    def schedule(self, delay: int, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to fire ``delay`` cycles from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        return self._queue.push(self.now + delay, callback)

    def schedule_at(self, time: int, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at an absolute time >= now."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past ({time} < {self.now})")
        return self._queue.push(time, callback)

    def stop(self) -> None:
        """Request the run loop to exit after the current event."""
        self._stopped = True

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Drain the event queue; returns the number of events processed.

        ``until`` bounds simulated time (events after it stay queued);
        ``max_events`` bounds work, guarding against runaway feedback loops
        in a buggy component.
        """
        processed = 0
        self._stopped = False
        while not self._stopped:
            if max_events is not None and processed >= max_events:
                break
            next_time = self._queue.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                self.now = until
                break
            event = self._queue.pop()
            if event is None:
                break
            self.now = event.time
            event.callback()
            processed += 1
        return processed

    @property
    def pending_events(self) -> int:
        return len(self._queue)


class Component:
    """Base class for simulated hardware/OS components.

    Provides the owning simulator, a :class:`StatGroup`, and scheduling
    sugar.  Subclasses register themselves so the harness can walk the
    component tree when collecting statistics.
    """

    def __init__(self, sim: Simulator, name: str):
        self.sim = sim
        self.name = name
        self.stats = StatGroup(name)
        sim.register(self)

    @property
    def now(self) -> int:
        return self.sim.now

    def schedule(self, delay: int, callback: Callable[[], None]) -> Event:
        return self.sim.schedule(delay, callback)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"
