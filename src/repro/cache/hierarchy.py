"""The three-level SRAM hierarchy in front of the DRAM cache.

Private L1/L2 per core and a shared, inclusive L3 (Table II).  Lookups
are functional with composed hit latencies; only LLC misses enter the
event-driven world (the DRAM cache schemes), which keeps the Python
simulation fast where the paper's effects do not live.

Lines are keyed by ``(core_id << 48) | virtual_line`` so the shared L3
capacity is contended between cores while address spaces stay private.
Each line remembers the *translated* address it was filled from so dirty
evictions route to the correct DRAM device; when the OS evicts a page
from the DRAM cache it flushes that page's lines here first
(Algorithm 2, line 3), which we expose as :meth:`invalidate_page`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.cache.mshr import MSHRFile
from repro.cache.sram_cache import SRAMCache
from repro.common.types import CACHE_LINE_SIZE, MemAccess
from repro.config.system import SystemConfig
from repro.engine.simulator import Component, Simulator

_CORE_SHIFT = 48
LINES_PER_PAGE = 4096 // CACHE_LINE_SIZE


def line_key(core_id: int, vaddr: int) -> int:
    """Stable hierarchy key for a core's virtual cache line."""
    return (core_id << _CORE_SHIFT) | (vaddr >> 6)


class CacheHierarchy(Component):
    """L1/L2 private + shared L3 with an LLC-side MSHR file."""

    def __init__(
        self,
        sim: Simulator,
        cfg: SystemConfig,
        miss_handler: Callable[[MemAccess, Callable[[int], None]], None],
        writeback_handler: Callable[[int], None],
    ):
        super().__init__(sim, "hierarchy")
        self.cfg = cfg
        self.num_cores = cfg.num_cores
        self.l1 = [SRAMCache(cfg.l1) for _ in range(cfg.num_cores)]
        self.l2 = [SRAMCache(cfg.l2) for _ in range(cfg.num_cores)]
        self.l3 = SRAMCache(cfg.l3)
        self.mshrs = MSHRFile(cfg.l3.mshrs)
        self.miss_handler = miss_handler
        self.writeback_handler = writeback_handler
        self.response_latency = cfg.l1.latency  # fill-to-use return path
        self._llc_misses = self.stats.counter("llc_misses")
        self._llc_accesses = self.stats.counter("llc_accesses")
        self._pending_issue: Dict[int, MemAccess] = {}
        self._pending_dirty: set = set()

    # -- access path ----------------------------------------------------

    def access(
        self,
        access: MemAccess,
        now: int,
        on_complete: Callable[[int], None],
    ) -> Optional[int]:
        """Look up the hierarchy at time ``now`` (may be ahead of sim.now).

        Returns the completion time for SRAM hits (synchronous, no event
        scheduled).  Returns ``None`` for LLC misses; ``on_complete(t)``
        fires when the line arrives.
        """
        core = access.core_id
        key = line_key(core, access.addr)
        is_write = access.is_write

        if self.l1[core].lookup(key, is_write):
            return now + self.cfg.l1.latency
        lat = self.cfg.l1.latency + self.cfg.l2.latency
        if self.l2[core].lookup(key, is_write):
            self._fill_level(self.l1[core], key, self._paddr_of(self.l2[core], key), core)
            return now + lat
        lat += self.cfg.l3.latency
        self._llc_accesses.inc()
        if self.l3.lookup(key, is_write):
            paddr = self._paddr_of(self.l3, key)
            self._fill_level(self.l2[core], key, paddr, core)
            self._fill_level(self.l1[core], key, paddr, core)
            return now + lat

        # LLC miss: enter the event-driven world.
        self._llc_misses.inc()
        if is_write:
            self._pending_dirty.add(key)
        outcome = self.mshrs.allocate(key, now, on_complete)
        if outcome == "new":
            self._pending_issue[key] = access
            issue_at = now + lat
            self.sim.schedule_at(issue_at, lambda k=key: self._issue_miss(k))
        elif outcome == "queued" and key not in self._pending_issue:
            # Remember the access so the miss can be issued when an MSHR
            # frees up (drained in _on_fill).
            self._pending_issue[key] = access
        return None

    def _issue_miss(self, key: int) -> None:
        access = self._pending_issue.pop(key)
        self.miss_handler(access, lambda t, k=key, a=access: self._on_fill(k, a, t))

    def _on_fill(self, key: int, access: MemAccess, finish_time: int) -> None:
        """The DRAM cache scheme delivered the line; fill and notify."""
        paddr = access.paddr if access.paddr is not None else access.addr
        core = access.core_id
        dirty = access.is_write or key in self._pending_dirty
        self._pending_dirty.discard(key)
        self._insert_inclusive(core, key, paddr, dirty=dirty)
        done = finish_time + self.response_latency
        for waiter in self.mshrs.retire(key, finish_time):
            waiter(done)
        for promoted in self.mshrs.drain_overflow(self.sim.now):
            self._issue_miss(promoted)

    # -- fills, evictions, invalidation ----------------------------------

    def _paddr_of(self, cache: SRAMCache, key: int) -> int:
        line = cache._sets[cache._set_index(key)].get(key)
        return line.paddr if line is not None else 0

    def _fill_level(self, cache: SRAMCache, key: int, paddr: int, core: int) -> None:
        victim = cache.insert(key, paddr)
        if victim is not None and victim.dirty:
            self._spill(victim, core)

    def _insert_inclusive(self, core: int, key: int, paddr: int, dirty: bool) -> None:
        victim = self.l3.insert(key, paddr, dirty=False)
        if victim is not None:
            self._back_invalidate(victim)
        self._fill_level(self.l2[core], key, paddr, core)
        l1_victim = self.l1[core].insert(key, paddr, dirty=dirty)
        if l1_victim is not None and l1_victim.dirty:
            self._spill(l1_victim, core)

    def _spill(self, victim, core: int) -> None:
        """Push a dirty victim one level down; L3 victims go to DRAM."""
        if self.l2[core].contains(victim.key):
            self.l2[core].lookup(victim.key, is_write=True)
            return
        if self.l3.contains(victim.key):
            self.l3.lookup(victim.key, is_write=True)
            return
        self.writeback_handler(victim.paddr)

    def _back_invalidate(self, victim) -> None:
        """Inclusive L3 eviction: drop upper-level copies, merge dirt."""
        key = victim.key
        core = key >> _CORE_SHIFT
        dirty = victim.dirty
        if core < self.num_cores:
            l1_line = self.l1[core].invalidate(key)
            if l1_line is not None and l1_line.dirty:
                dirty = True
            l2_line = self.l2[core].invalidate(key)
            if l2_line is not None and l2_line.dirty:
                dirty = True
        if dirty:
            self.writeback_handler(victim.paddr)

    def invalidate_page(self, core_id: int, vpn: int) -> List[int]:
        """Flush one page's lines from all levels (DC eviction flush).

        Returns the translated addresses of dirty lines that were flushed
        (the caller writes them to the DRAM cache before copying the page
        out, mirroring the paper's one-shot flush of aligned frames).
        """
        dirty_addrs: List[int] = []
        base = (core_id << _CORE_SHIFT) | (vpn * LINES_PER_PAGE)
        for i in range(LINES_PER_PAGE):
            key = base + i
            dirty = False
            paddr = 0
            for cache in (self.l1[core_id], self.l2[core_id], self.l3):
                line = cache.invalidate(key)
                if line is not None:
                    paddr = line.paddr
                    dirty = dirty or line.dirty
            if dirty:
                dirty_addrs.append(paddr)
        return dirty_addrs

    def retarget_page(self, core_id: int, vpn: int, new_page_base: int) -> None:
        """Point a page's cached lines at a new translated base address.

        Used when a page's translation changes while its SRAM lines stay
        valid (e.g., data teleported by the Ideal scheme).
        """
        base = (core_id << _CORE_SHIFT) | (vpn * LINES_PER_PAGE)
        for i in range(LINES_PER_PAGE):
            key = base + i
            addr = new_page_base + i * CACHE_LINE_SIZE
            for cache in (self.l1[core_id], self.l2[core_id], self.l3):
                cache.update_paddr(key, addr)
