"""The three-level SRAM hierarchy in front of the DRAM cache.

Private L1/L2 per core and a shared, inclusive L3 (Table II).  Lookups
are functional with composed hit latencies; only LLC misses enter the
event-driven world (the DRAM cache schemes), which keeps the Python
simulation fast where the paper's effects do not live.

Lines are keyed by ``(core_id << 48) | virtual_line`` so the shared L3
capacity is contended between cores while address spaces stay private.
Each line remembers the *translated* address it was filled from so dirty
evictions route to the correct DRAM device; when the OS evicts a page
from the DRAM cache it flushes that page's lines here first
(Algorithm 2, line 3), which we expose as :meth:`invalidate_page`.
"""

from __future__ import annotations

from functools import partial
from typing import Callable, Dict, List, Optional

from repro.cache.mshr import MSHREntry, MSHRFile
from repro.cache.sram_cache import CacheLine, SRAMCache
from repro.common.types import CACHE_LINE_SIZE, MemAccess
from repro.config.system import SystemConfig
from repro.engine.simulator import Component, Simulator

_CORE_SHIFT = 48
LINES_PER_PAGE = 4096 // CACHE_LINE_SIZE


def line_key(core_id: int, vaddr: int) -> int:
    """Stable hierarchy key for a core's virtual cache line."""
    return (core_id << _CORE_SHIFT) | (vaddr >> 6)


class CacheHierarchy(Component):
    """L1/L2 private + shared L3 with an LLC-side MSHR file."""

    # Telemetry tracer hook (repro.telemetry); instance attr when armed.
    _tel = None

    def __init__(
        self,
        sim: Simulator,
        cfg: SystemConfig,
        miss_handler: Callable[[MemAccess, Callable[[int], None]], None],
        writeback_handler: Callable[[int], None],
    ):
        super().__init__(sim, "hierarchy")
        self.cfg = cfg
        self.num_cores = cfg.num_cores
        self.l1 = [SRAMCache(cfg.l1) for _ in range(cfg.num_cores)]
        self.l2 = [SRAMCache(cfg.l2) for _ in range(cfg.num_cores)]
        self.l3 = SRAMCache(cfg.l3)
        self.mshrs = MSHRFile(cfg.l3.mshrs)
        self.miss_handler = miss_handler
        self.writeback_handler = writeback_handler
        self.response_latency = cfg.l1.latency  # fill-to-use return path
        # Hot-path counters are plain ints, flushed into the StatGroup
        # whenever it is read (see StatGroup.set_sync).
        self.llc_miss_count = 0
        self.llc_access_count = 0
        self.stats.counter("llc_misses")
        self.stats.counter("llc_accesses")
        self.stats.set_sync(self._sync_stats)
        # Composed hit latencies per level (Table II), bound once.
        self._l1_latency = cfg.l1.latency
        self._l2_latency = cfg.l1.latency + cfg.l2.latency
        self._l3_latency = cfg.l1.latency + cfg.l2.latency + cfg.l3.latency
        self._pending_issue: Dict[int, MemAccess] = {}
        self._pending_dirty: set = set()
        self._schedule_at = sim.schedule_at

    def _sync_stats(self) -> None:
        self.stats._stats["llc_misses"].value = self.llc_miss_count
        self.stats._stats["llc_accesses"].value = self.llc_access_count

    def guard_state(self) -> dict:
        return {
            "llc_accesses": self.llc_access_count,
            "llc_misses": self.llc_miss_count,
            "mshr_outstanding": len(self.mshrs._entries),
            "mshr_overflow": len(self.mshrs._overflow),
            "pending_issue": len(self._pending_issue),
            "pending_dirty": len(self._pending_dirty),
        }

    # -- access path ----------------------------------------------------

    def access(
        self,
        access: MemAccess,
        now: int,
        on_complete: Callable[[int], None],
    ) -> Optional[int]:
        """Look up the hierarchy at time ``now`` (may be ahead of sim.now).

        Returns the completion time for SRAM hits (synchronous, no event
        scheduled).  Returns ``None`` for LLC misses; ``on_complete(t)``
        fires when the line arrives.
        """
        core = access.core_id
        key = (core << _CORE_SHIFT) | (access.addr >> 6)  # line_key() inlined
        is_write = access.is_write

        # The three probes inline SRAMCache.lookup (which stays the
        # reference implementation -- keep the two in sync).  All
        # hierarchy levels use LRU, so the touch is an unconditional
        # delete-and-reinsert at the back of the set dict.  Keys here are
        # nonnegative ints below 2**61 - 1, for which hash(k) == k, so
        # ``key % num_sets`` picks the same set as SRAMCache._set_index.
        l1 = self.l1[core]
        cache_set = l1._sets[key % l1.num_sets]
        line = cache_set.get(key)
        if line is not None:
            del cache_set[key]
            cache_set[key] = line
            if is_write:
                line.dirty = True
            l1.hits += 1
            return now + self._l1_latency
        l1.misses += 1

        l2 = self.l2[core]
        cache_set = l2._sets[key % l2.num_sets]
        line = cache_set.get(key)
        if line is not None:
            del cache_set[key]
            cache_set[key] = line
            if is_write:
                line.dirty = True
            l2.hits += 1
            self._fill_level(l1, key, line.paddr, core)
            return now + self._l2_latency
        l2.misses += 1

        self.llc_access_count += 1
        l3 = self.l3
        cache_set = l3._sets[key % l3.num_sets]
        line = cache_set.get(key)
        if line is not None:
            del cache_set[key]
            cache_set[key] = line
            if is_write:
                line.dirty = True
            l3.hits += 1
            paddr = line.paddr
            self._fill_level(l2, key, paddr, core)
            self._fill_level(l1, key, paddr, core)
            return now + self._l3_latency
        l3.misses += 1

        # LLC miss: enter the event-driven world.  MSHRFile.allocate is
        # inlined (merge / queue / new -- keep in sync with mshr.py).
        self.llc_miss_count += 1
        if is_write:
            self._pending_dirty.add(key)
        mshrs = self.mshrs
        entries = mshrs._entries
        entry = entries.get(key)
        if entry is not None:
            entry.waiters.append(on_complete)
            mshrs.merges += 1
        elif len(entries) >= mshrs.capacity:
            mshrs._overflow.append((key, now, on_complete))
            mshrs.overflow_events += 1
            # Remember the access so the miss can be issued when an MSHR
            # frees up (drained in _on_fill).
            if key not in self._pending_issue:
                self._pending_issue[key] = access
        else:
            entries[key] = MSHREntry(key, now, [on_complete])
            mshrs.allocations += 1
            self._pending_issue[key] = access
            issue_at = now + self._l3_latency
            self._schedule_at(issue_at, partial(self._issue_miss, key))
            if self._tel is not None:
                self._tel.mshr_begin(key, now)
        return None

    def _issue_miss(self, key: int) -> None:
        access = self._pending_issue.pop(key)
        # partial over a lambda: the fill callback fires once per miss,
        # and partial dispatches without an intermediate Python frame.
        self.miss_handler(access, partial(self._on_fill, key, access))

    def _on_fill(self, key: int, access: MemAccess, finish_time: int) -> None:
        """The DRAM cache scheme delivered the line; fill and notify."""
        paddr = access.paddr if access.paddr is not None else access.addr
        core = access.core_id
        dirty = access.is_write or key in self._pending_dirty
        self._pending_dirty.discard(key)
        self._insert_inclusive(core, key, paddr, dirty=dirty)
        done = finish_time + self.response_latency
        mshrs = self.mshrs
        if self._tel is not None:
            self._tel.mshr_end(key, finish_time)
        # MSHRFile.retire inlined; overflow drain skipped when empty.
        for waiter in mshrs._entries.pop(key).waiters:
            waiter(done)
        if mshrs._overflow:
            for promoted in mshrs.drain_overflow(self.sim.now):
                self._issue_miss(promoted)
                if self._tel is not None:
                    self._tel.mshr_begin(promoted, self.sim.now)

    # -- fills, evictions, invalidation ----------------------------------

    def _paddr_of(self, cache: SRAMCache, key: int) -> int:
        line = cache._sets[cache._set_index(key)].get(key)
        return line.paddr if line is not None else 0

    def _fill_level(self, cache: SRAMCache, key: int, paddr: int, core: int) -> None:
        victim = cache.insert(key, paddr)
        if victim is not None and victim.dirty:
            self._spill(victim, core)

    def _insert_inclusive(self, core: int, key: int, paddr: int, dirty: bool) -> None:
        # One of these per LLC miss; the three SRAMCache.insert calls
        # are inlined (keep in sync with sram_cache.py; see access() for
        # why ``key %`` replaces ``hash(key) %``).
        l3 = self.l3
        cache_set = l3._sets[key % l3.num_sets]
        line = cache_set.get(key)
        if line is not None:
            line.paddr = paddr
            del cache_set[key]
            cache_set[key] = line
        else:
            victim = None
            if len(cache_set) >= l3.ways:
                victim = cache_set.pop(next(iter(cache_set)))
            cache_set[key] = CacheLine(key, paddr, False)
            if victim is not None:
                self._back_invalidate(victim)

        l2 = self.l2[core]
        cache_set = l2._sets[key % l2.num_sets]
        line = cache_set.get(key)
        if line is not None:
            line.paddr = paddr
            del cache_set[key]
            cache_set[key] = line
        else:
            victim = None
            if len(cache_set) >= l2.ways:
                victim = cache_set.pop(next(iter(cache_set)))
            cache_set[key] = CacheLine(key, paddr, False)
            if victim is not None and victim.dirty:
                self._spill(victim, core)

        l1 = self.l1[core]
        cache_set = l1._sets[key % l1.num_sets]
        line = cache_set.get(key)
        if line is not None:
            if dirty:
                line.dirty = True
            line.paddr = paddr
            del cache_set[key]
            cache_set[key] = line
        else:
            victim = None
            if len(cache_set) >= l1.ways:
                victim = cache_set.pop(next(iter(cache_set)))
            cache_set[key] = CacheLine(key, paddr, dirty)
            if victim is not None and victim.dirty:
                self._spill(victim, core)

    def _spill(self, victim, core: int) -> None:
        """Push a dirty victim one level down; L3 victims go to DRAM."""
        if self.l2[core].contains(victim.key):
            self.l2[core].lookup(victim.key, is_write=True)
            return
        if self.l3.contains(victim.key):
            self.l3.lookup(victim.key, is_write=True)
            return
        self.writeback_handler(victim.paddr)

    def _back_invalidate(self, victim) -> None:
        """Inclusive L3 eviction: drop upper-level copies, merge dirt."""
        key = victim.key
        core = key >> _CORE_SHIFT
        dirty = victim.dirty
        if core < self.num_cores:
            # SRAMCache.invalidate inlined (two pops per L3 eviction).
            l1 = self.l1[core]
            l1_line = l1._sets[key % l1.num_sets].pop(key, None)
            if l1_line is not None and l1_line.dirty:
                dirty = True
            l2 = self.l2[core]
            l2_line = l2._sets[key % l2.num_sets].pop(key, None)
            if l2_line is not None and l2_line.dirty:
                dirty = True
        if dirty:
            self.writeback_handler(victim.paddr)

    def invalidate_page(self, core_id: int, vpn: int) -> List[int]:
        """Flush one page's lines from all levels (DC eviction flush).

        Returns the translated addresses of dirty lines that were flushed
        (the caller writes them to the DRAM cache before copying the page
        out, mirroring the paper's one-shot flush of aligned frames).
        """
        dirty_addrs: List[int] = []
        base = (core_id << _CORE_SHIFT) | (vpn * LINES_PER_PAGE)
        l1, l2, l3 = self.l1[core_id], self.l2[core_id], self.l3
        # 64 keys x 3 levels per eviction; SRAMCache.invalidate inlined.
        levels = (
            (l1._sets, l1.num_sets),
            (l2._sets, l2.num_sets),
            (l3._sets, l3.num_sets),
        )
        for key in range(base, base + LINES_PER_PAGE):
            dirty = False
            paddr = 0
            for sets, num_sets in levels:
                line = sets[key % num_sets].pop(key, None)
                if line is not None:
                    paddr = line.paddr
                    dirty = dirty or line.dirty
            if dirty:
                dirty_addrs.append(paddr)
        return dirty_addrs

    def retarget_page(self, core_id: int, vpn: int, new_page_base: int) -> None:
        """Point a page's cached lines at a new translated base address.

        Used when a page's translation changes while its SRAM lines stay
        valid (e.g., data teleported by the Ideal scheme).
        """
        base = (core_id << _CORE_SHIFT) | (vpn * LINES_PER_PAGE)
        for i in range(LINES_PER_PAGE):
            key = base + i
            addr = new_page_base + i * CACHE_LINE_SIZE
            for cache in (self.l1[core_id], self.l2[core_id], self.l3):
                cache.update_paddr(key, addr)
