"""SRAM cache hierarchy: L1/L2 private caches, shared L3, MSHRs."""

from repro.cache.hierarchy import CacheHierarchy
from repro.cache.mshr import MSHREntry, MSHRFile
from repro.cache.replacement import FIFOPolicy, LRUPolicy, ReplacementPolicy
from repro.cache.sram_cache import CacheLine, SRAMCache

__all__ = [
    "CacheHierarchy",
    "CacheLine",
    "FIFOPolicy",
    "LRUPolicy",
    "MSHREntry",
    "MSHRFile",
    "ReplacementPolicy",
    "SRAMCache",
]
