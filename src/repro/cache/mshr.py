"""Miss status/information holding registers.

MSHRs are the classical non-blocking-cache mechanism (Kroft '81;
Farkas & Jouppi '94) that the paper's HW-based baseline relies on and
that NOMAD's PCSHRs generalize to the page granularity.  An entry tracks
one outstanding line miss; subsequent accesses to the same line merge
into the entry instead of issuing duplicate memory requests.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple


class MSHREntry:
    """One outstanding miss and its merged waiters.

    Plain slots class: one of these is allocated per LLC miss, which at
    the miss rates the paper studies means one per handful of simulated
    cycles.
    """

    __slots__ = ("key", "issue_time", "waiters")

    def __init__(
        self,
        key: Hashable,
        issue_time: int,
        waiters: Optional[List[Callable[[int], None]]] = None,
    ):
        self.key = key
        self.issue_time = issue_time
        self.waiters = [] if waiters is None else waiters

    def add_waiter(self, callback: Callable[[int], None]) -> None:
        self.waiters.append(callback)


class MSHRFile:
    """A bounded set of MSHR entries with merge and overflow queueing.

    ``lookup``/``allocate`` implement the classic flow; when all entries
    are busy, new misses wait in an overflow queue and are allocated as
    entries retire -- modelling the structural stall a full MSHR file
    causes (it bounds a cache's memory-level parallelism, which is
    exactly the effect Figs. 12-14 study for PCSHRs).
    """

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError(f"MSHR capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._entries: Dict[Hashable, MSHREntry] = {}
        self._overflow: List[Tuple[Hashable, int, Callable[[int], None]]] = []
        self.merges = 0
        self.allocations = 0
        self.overflow_events = 0

    def lookup(self, key: Hashable) -> Optional[MSHREntry]:
        return self._entries.get(key)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    def outstanding(self) -> int:
        return len(self._entries)

    def allocate(
        self, key: Hashable, now: int, waiter: Callable[[int], None]
    ) -> str:
        """Register a miss; returns ``"new"``, ``"merged"`` or ``"queued"``.

        ``"new"``  -- caller must issue the memory request for ``key``.
        ``"merged"`` -- an entry already tracks ``key``; waiter attached.
        ``"queued"`` -- file full; the miss waits and the caller will be
        handed the key back from :meth:`retire` via ``"new"`` semantics
        (the drained waiter is returned by :meth:`drain_overflow`).
        """
        entry = self._entries.get(key)
        if entry is not None:
            entry.add_waiter(waiter)
            self.merges += 1
            return "merged"
        if self.full:
            self._overflow.append((key, now, waiter))
            self.overflow_events += 1
            return "queued"
        self._entries[key] = MSHREntry(key, now, [waiter])
        self.allocations += 1
        return "new"

    def retire(self, key: Hashable, now: int) -> List[Callable[[int], None]]:
        """Complete the miss for ``key``; returns its waiters to notify."""
        entry = self._entries.pop(key)
        return entry.waiters

    def drain_overflow(self, now: int) -> Sequence[Hashable]:
        """Promote queued misses into free entries.

        Returns the keys that became ``"new"`` misses (the caller must
        issue their memory requests).  Queued duplicates of the same key
        merge into the first promotion.
        """
        if not self._overflow:
            return ()
        promoted: List[Hashable] = []
        remaining: List[Tuple[Hashable, int, Callable[[int], None]]] = []
        for key, queued_at, waiter in self._overflow:
            entry = self._entries.get(key)
            if entry is not None:
                entry.add_waiter(waiter)
                self.merges += 1
            elif not self.full:
                self._entries[key] = MSHREntry(key, now, [waiter])
                self.allocations += 1
                promoted.append(key)
            else:
                remaining.append((key, queued_at, waiter))
        self._overflow = remaining
        return promoted
