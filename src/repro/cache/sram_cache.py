"""A functional set-associative SRAM cache.

State (contents, dirty bits) is updated at lookup time; timing is
composed by the hierarchy from the per-level hit latencies of Table II.
Lines are keyed by a caller-chosen hashable (the hierarchy uses
``(core_id, virtual_line)``), and each line remembers the translated
burst address it was filled from so dirty evictions can be routed to the
right DRAM device.

Every core memory op probes up to three levels, so this is the hottest
data structure in the simulator.  Replacement order is therefore folded
into the (insertion-ordered) set dicts themselves instead of a parallel
policy structure: the first key of a set dict is the victim; an LRU
touch re-inserts the line at the back, a FIFO touch does nothing.  This
produces bit-identical victim choices to the previous
``ReplacementPolicy`` objects (which tracked exactly the same order in a
separate ``OrderedDict``) at half the bookkeeping.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional

from repro.config.system import CacheConfig


class CacheLine:
    __slots__ = ("key", "paddr", "dirty")

    def __init__(self, key: Hashable, paddr: int, dirty: bool = False):
        self.key = key
        self.paddr = paddr  # translated byte address of the line at fill time
        self.dirty = dirty

    def __repr__(self) -> str:
        return f"CacheLine(key={self.key!r}, paddr={self.paddr:#x}, dirty={self.dirty})"


class SRAMCache:
    """One cache level; sets are insertion-ordered dicts (front = victim)."""

    def __init__(self, cfg: CacheConfig, policy: str = "lru"):
        self.cfg = cfg
        self.num_sets = cfg.num_sets
        if self.num_sets <= 0:
            raise ValueError(f"{cfg.name}: zero sets (size too small for ways)")
        if policy not in ("lru", "fifo"):
            raise ValueError(f"unknown replacement policy {policy!r}")
        self.ways = cfg.ways
        self._sets: List[Dict[Hashable, CacheLine]] = [
            dict() for _ in range(self.num_sets)
        ]
        self._reorder_on_touch = policy == "lru"
        self.hits = 0
        self.misses = 0

    def _set_index(self, key: Hashable) -> int:
        return hash(key) % self.num_sets

    def lookup(self, key: Hashable, is_write: bool = False) -> bool:
        """Probe for ``key``; updates recency and dirty state on hit."""
        cache_set = self._sets[hash(key) % self.num_sets]
        line = cache_set.get(key)
        if line is None:
            self.misses += 1
            return False
        if self._reorder_on_touch:
            del cache_set[key]
            cache_set[key] = line
        if is_write:
            line.dirty = True
        self.hits += 1
        return True

    def contains(self, key: Hashable) -> bool:
        """Probe without updating recency or counters."""
        return key in self._sets[hash(key) % self.num_sets]

    def insert(
        self, key: Hashable, paddr: int, dirty: bool = False
    ) -> Optional[CacheLine]:
        """Fill ``key``; returns the evicted victim line (if any)."""
        cache_set = self._sets[hash(key) % self.num_sets]
        line = cache_set.get(key)
        if line is not None:
            line.dirty = line.dirty or dirty
            line.paddr = paddr
            if self._reorder_on_touch:
                del cache_set[key]
                cache_set[key] = line
            return None
        victim: Optional[CacheLine] = None
        if len(cache_set) >= self.ways:
            victim = cache_set.pop(next(iter(cache_set)))
        cache_set[key] = CacheLine(key, paddr, dirty)
        return victim

    def invalidate(self, key: Hashable) -> Optional[CacheLine]:
        """Remove ``key``; returns the line (caller handles dirty data)."""
        return self._sets[hash(key) % self.num_sets].pop(key, None)

    def invalidate_matching(self, predicate) -> List[CacheLine]:
        """Remove every line whose key satisfies ``predicate``.

        Used by the DC eviction flush (Algorithm 2, line 3).  This is a
        full scan and therefore only called on the page-eviction path.
        """
        removed: List[CacheLine] = []
        for cache_set in self._sets:
            doomed = [k for k in cache_set if predicate(k)]
            for key in doomed:
                removed.append(cache_set.pop(key))
        return removed

    def update_paddr(self, key: Hashable, paddr: int) -> None:
        line = self._sets[hash(key) % self.num_sets].get(key)
        if line is not None:
            line.paddr = paddr

    @property
    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
