"""A functional set-associative SRAM cache.

State (contents, dirty bits) is updated at lookup time; timing is
composed by the hierarchy from the per-level hit latencies of Table II.
Lines are keyed by a caller-chosen hashable (the hierarchy uses
``(core_id, virtual_line)``), and each line remembers the translated
burst address it was filled from so dirty evictions can be routed to the
right DRAM device.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

from repro.cache.replacement import make_policy
from repro.config.system import CacheConfig


@dataclass
class CacheLine:
    key: Hashable
    paddr: int  # translated byte address of the line at fill time
    dirty: bool = False


class SRAMCache:
    """One cache level; sets are dicts, victim order by policy object."""

    def __init__(self, cfg: CacheConfig, policy: str = "lru"):
        self.cfg = cfg
        self.num_sets = cfg.num_sets
        if self.num_sets <= 0:
            raise ValueError(f"{cfg.name}: zero sets (size too small for ways)")
        self.ways = cfg.ways
        self._sets: List[Dict[Hashable, CacheLine]] = [dict() for _ in range(self.num_sets)]
        self._policies = [make_policy(policy) for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0

    def _set_index(self, key: Hashable) -> int:
        return hash(key) % self.num_sets

    def lookup(self, key: Hashable, is_write: bool = False) -> bool:
        """Probe for ``key``; updates recency and dirty state on hit."""
        idx = self._set_index(key)
        line = self._sets[idx].get(key)
        if line is None:
            self.misses += 1
            return False
        self._policies[idx].touch(key)
        if is_write:
            line.dirty = True
        self.hits += 1
        return True

    def contains(self, key: Hashable) -> bool:
        """Probe without updating recency or counters."""
        return key in self._sets[self._set_index(key)]

    def insert(
        self, key: Hashable, paddr: int, dirty: bool = False
    ) -> Optional[CacheLine]:
        """Fill ``key``; returns the evicted victim line (if any)."""
        idx = self._set_index(key)
        cache_set = self._sets[idx]
        if key in cache_set:
            line = cache_set[key]
            line.dirty = line.dirty or dirty
            line.paddr = paddr
            self._policies[idx].touch(key)
            return None
        victim: Optional[CacheLine] = None
        if len(cache_set) >= self.ways:
            victim_key = self._policies[idx].evict()
            victim = cache_set.pop(victim_key)
        cache_set[key] = CacheLine(key, paddr, dirty)
        self._policies[idx].insert(key)
        return victim

    def invalidate(self, key: Hashable) -> Optional[CacheLine]:
        """Remove ``key``; returns the line (caller handles dirty data)."""
        idx = self._set_index(key)
        line = self._sets[idx].pop(key, None)
        if line is not None:
            self._policies[idx].remove(key)
        return line

    def invalidate_matching(self, predicate) -> List[CacheLine]:
        """Remove every line whose key satisfies ``predicate``.

        Used by the DC eviction flush (Algorithm 2, line 3).  This is a
        full scan and therefore only called on the page-eviction path.
        """
        removed: List[CacheLine] = []
        for idx, cache_set in enumerate(self._sets):
            doomed = [k for k in cache_set if predicate(k)]
            for key in doomed:
                removed.append(cache_set.pop(key))
                self._policies[idx].remove(key)
        return removed

    def update_paddr(self, key: Hashable, paddr: int) -> None:
        line = self._sets[self._set_index(key)].get(key)
        if line is not None:
            line.paddr = paddr

    @property
    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
