"""Replacement policies for set-associative structures.

Used by the SRAM caches (LRU), the TiD DRAM cache sets (LRU), and -- for
the FIFO-vs-LRU ablation the paper motivates in Section III-C2 -- a FIFO
policy usable anywhere an LRU one is.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, Optional


class ReplacementPolicy:
    """Tracks the victim-selection order of one set."""

    def touch(self, key: Hashable) -> None:
        """Record a reference to ``key``."""
        raise NotImplementedError

    def insert(self, key: Hashable) -> None:
        """Record the allocation of ``key``."""
        raise NotImplementedError

    def evict(self) -> Hashable:
        """Choose and remove the victim."""
        raise NotImplementedError

    def remove(self, key: Hashable) -> None:
        """Explicitly remove ``key`` (invalidation)."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError


class LRUPolicy(ReplacementPolicy):
    """Least-recently-used, via an ordered dict (front = LRU)."""

    def __init__(self):
        self._order: "OrderedDict[Hashable, None]" = OrderedDict()

    def touch(self, key: Hashable) -> None:
        self._order.move_to_end(key)

    def insert(self, key: Hashable) -> None:
        if key in self._order:
            raise KeyError(f"{key!r} already tracked")
        self._order[key] = None

    def evict(self) -> Hashable:
        if not self._order:
            raise IndexError("evict from empty set")
        key, _ = self._order.popitem(last=False)
        return key

    def remove(self, key: Hashable) -> None:
        del self._order[key]

    def __len__(self) -> int:
        return len(self._order)


class FIFOPolicy(ReplacementPolicy):
    """First-in-first-out: references do not reorder the queue."""

    def __init__(self):
        self._order: "OrderedDict[Hashable, None]" = OrderedDict()

    def touch(self, key: Hashable) -> None:
        if key not in self._order:
            raise KeyError(f"{key!r} not tracked")

    def insert(self, key: Hashable) -> None:
        if key in self._order:
            raise KeyError(f"{key!r} already tracked")
        self._order[key] = None

    def evict(self) -> Hashable:
        if not self._order:
            raise IndexError("evict from empty set")
        key, _ = self._order.popitem(last=False)
        return key

    def remove(self, key: Hashable) -> None:
        del self._order[key]

    def __len__(self) -> int:
        return len(self._order)


def make_policy(name: str) -> ReplacementPolicy:
    """Factory by name: ``"lru"`` or ``"fifo"``."""
    if name == "lru":
        return LRUPolicy()
    if name == "fifo":
        return FIFOPolicy()
    raise ValueError(f"unknown replacement policy {name!r}")
