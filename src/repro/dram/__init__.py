"""DRAM device models: banks, row buffers, channels, traffic accounting.

The model is a first-order bank/bus occupancy simulator in the spirit of
DRAMsim3's role in the paper: it reproduces row-buffer hit/miss/conflict
latencies, per-channel data-bus bandwidth limits, and bank-level
parallelism, with one event per 64-byte burst.  Command-level details
(refresh, tFAW, write-to-read turnarounds) are abstracted into the
first-order timings; the effects the paper measures -- bandwidth
saturation, row-buffer hit rates, queueing delay -- are preserved.
"""

from repro.dram.address_map import AddressMap
from repro.dram.bank import Bank
from repro.dram.controller import ChannelController
from repro.dram.device import DRAMDevice
from repro.dram.timing import ResolvedTiming

__all__ = ["AddressMap", "Bank", "ChannelController", "DRAMDevice", "ResolvedTiming"]
