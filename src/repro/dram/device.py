"""A whole DRAM device: channels + address map + aggregate statistics."""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.common.types import TrafficClass
from repro.config.dram import DRAMTimingConfig
from repro.dram.address_map import AddressMap
from repro.dram.controller import ChannelController
from repro.dram.timing import ResolvedTiming
from repro.engine.simulator import Component, Simulator


class DRAMDevice(Component):
    """Multi-channel DRAM device (the HBM stack or the DDR4 DIMMs).

    ``access`` issues a single 64 B burst; ``access_range`` issues one
    burst per 64 B of a larger transfer (e.g., a 1 KB TiD line or a 4 KB
    page), optionally reporting per-burst completions -- that per-burst
    visibility is what lets the NOMAD back-end maintain its B vector and
    service critical-data-first requests from the page copy buffer.
    """

    def __init__(self, sim: Simulator, name: str, cfg: DRAMTimingConfig, cpu_ghz: float):
        super().__init__(sim, name)
        self.cfg = cfg
        self.timing = ResolvedTiming.from_config(cfg, cpu_ghz)
        self.address_map = AddressMap(cfg)
        self.channels: List[ChannelController] = [
            ChannelController(sim, f"{name}.ch{i}", self.timing, cfg.banks_per_channel)
            for i in range(cfg.num_channels)
        ]
        self._accesses = self.stats.counter("accesses")

    def access(
        self,
        addr: int,
        is_write: bool,
        traffic_class: TrafficClass,
        callback: Optional[Callable[[], None]] = None,
    ) -> int:
        """One 64 B burst at ``addr``; returns completion time."""
        decoded = self.address_map.decode(addr)
        self._accesses.inc()
        return self.channels[decoded.channel].enqueue(
            decoded.bank, decoded.row, is_write, traffic_class, callback
        )

    def access_range(
        self,
        addr: int,
        size: int,
        is_write: bool,
        traffic_class: TrafficClass,
        per_burst: Optional[Callable[[int], None]] = None,
        on_complete: Optional[Callable[[int], None]] = None,
    ) -> int:
        """Transfer ``size`` bytes starting at ``addr`` (64 B bursts).

        ``per_burst(burst_index)`` is invoked *at* each burst's completion
        (the simulator clock reads the completion time); ``on_complete(
        last_completion_time)`` fires once everything has transferred.
        Returns the last completion time (already known at issue since
        service is computed on enqueue).
        """
        num_bursts = max(1, size // 64)
        last_end = self.now
        for i in range(num_bursts):
            burst_addr = addr + i * 64
            if per_burst is not None:
                end = self.access(
                    burst_addr,
                    is_write,
                    traffic_class,
                    callback=_burst_notifier(per_burst, i),
                )
            else:
                end = self.access(burst_addr, is_write, traffic_class)
            if end > last_end:
                last_end = end
        if on_complete is not None:
            self.sim.schedule_at(last_end, lambda t=last_end: on_complete(t))
        return last_end

    # -- aggregate statistics ------------------------------------------

    @property
    def row_hit_rate(self) -> float:
        hits = sum(ch.stats.get("row_hits").value for ch in self.channels)
        total = hits
        total += sum(ch.stats.get("row_closed").value for ch in self.channels)
        total += sum(ch.stats.get("row_conflicts").value for ch in self.channels)
        return hits / total if total else 0.0

    def bytes_by_class(self) -> dict:
        out: dict = {}
        for ch in self.channels:
            for tc, b in ch.stats.get("bytes").bytes_by_class.items():
                out[tc] = out.get(tc, 0) + b
        return out

    def total_bytes(self) -> int:
        return sum(self.bytes_by_class().values())

    def bandwidth_gbps(self, elapsed_cycles: int, cycles_per_second: float) -> float:
        if elapsed_cycles <= 0:
            return 0.0
        return self.total_bytes() / (elapsed_cycles / cycles_per_second) / 1e9


def _burst_notifier(per_burst: Callable[[int], None], index: int):
    def _notify():
        per_burst(index)

    return _notify
