"""A whole DRAM device: channels + address map + aggregate statistics."""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.common.types import TrafficClass
from repro.config.dram import DRAMTimingConfig
from repro.dram.address_map import AddressMap
from repro.dram.controller import ChannelController
from repro.dram.timing import ResolvedTiming
from repro.engine.simulator import Component, Simulator


class DRAMDevice(Component):
    """Multi-channel DRAM device (the HBM stack or the DDR4 DIMMs).

    ``access`` issues a single 64 B burst; ``access_range`` issues one
    burst per 64 B of a larger transfer (e.g., a 1 KB TiD line or a 4 KB
    page), optionally reporting per-burst completions -- that per-burst
    visibility is what lets the NOMAD back-end maintain its B vector and
    service critical-data-first requests from the page copy buffer.
    """

    # Telemetry tracer hook (repro.telemetry); instance attr when armed.
    _tel = None

    def __init__(self, sim: Simulator, name: str, cfg: DRAMTimingConfig, cpu_ghz: float):
        super().__init__(sim, name)
        self.cfg = cfg
        self.timing = ResolvedTiming.from_config(cfg, cpu_ghz)
        self.address_map = AddressMap(cfg)
        self.channels: List[ChannelController] = [
            ChannelController(sim, f"{name}.ch{i}", self.timing, cfg.banks_per_channel)
            for i in range(cfg.num_channels)
        ]
        # Address-map geometry cached for the inlined decode in access().
        self._num_channels = self.address_map.num_channels
        self._banks_per_channel = self.address_map.banks_per_channel
        self._bursts_per_row = self.address_map.bursts_per_row
        self._enqueues = [ch.enqueue for ch in self.channels]
        self._schedule = sim.schedule
        self.access_count = 0
        self.stats.counter("accesses")
        self.stats.set_sync(self._sync_stats)

    def _sync_stats(self) -> None:
        self.stats._stats["accesses"].value = self.access_count

    def guard_state(self) -> dict:
        return {
            "accesses": self.access_count,
            "reads": sum(ch.reads for ch in self.channels),
            "writes": sum(ch.writes for ch in self.channels),
            "max_bus_free_at": max(ch.bus_free_at for ch in self.channels),
        }

    def access(
        self,
        addr: int,
        is_write: bool,
        traffic_class: TrafficClass,
        callback: Optional[Callable[[], None]] = None,
    ) -> int:
        """One 64 B burst at ``addr``; returns completion time.

        Every simulated byte moves through here, so both AddressMap.decode
        and ChannelController.enqueue are inlined (each stays the
        reference implementation -- keep them in sync).
        """
        burst = addr >> 6
        local = burst // self._num_channels
        row_global = local // self._bursts_per_row
        self.access_count += 1
        ch = self.channels[burst % self._num_channels]
        bank = ch.banks[row_global % self._banks_per_channel]
        row = row_global // self._banks_per_channel

        # Bank.access inlined (row-buffer state machine, open-page policy).
        now = self.sim.now
        ready_at = bank.ready_at
        svc = now if now > ready_at else ready_at
        open_row = bank.open_row
        if open_row == row:
            ch.row_hits += 1
            column = svc
        elif open_row is None:
            ch.row_closed += 1
            column = svc + ch._trcd  # activate at `svc`
            bank.activated_at = svc
        else:
            ch.row_conflicts += 1
            # Respect tRAS before precharging the currently open row.
            precharge = bank.activated_at + ch._tras
            if svc > precharge:
                precharge = svc
            activate = precharge + ch._trp
            column = activate + ch._trcd
            bank.activated_at = activate
        bank.open_row = row
        tburst = ch._tburst
        bank.ready_at = column + tburst
        data_ready = column + ch._tcas

        bus_free = ch.bus_free_at
        start = data_ready if data_ready > bus_free else bus_free
        end = start + tburst
        ch.bus_free_at = end

        if self._tel is not None:
            self._tel.dram_span(
                self.name,
                burst % self._num_channels,
                row_global % self._banks_per_channel,
                svc, end, is_write, traffic_class,
            )

        if is_write:
            ch.writes += 1
        else:
            ch.reads += 1
        by_class = ch.bytes_by_class
        by_class[traffic_class] = by_class.get(traffic_class, 0) + 64
        latency = end - now
        ch._lat_count += 1
        ch._lat_total += latency
        if ch._lat_min is None or latency < ch._lat_min:
            ch._lat_min = latency
        if ch._lat_max is None or latency > ch._lat_max:
            ch._lat_max = latency

        if callback is not None:
            self._schedule(latency, callback)
        return end

    def access_range(
        self,
        addr: int,
        size: int,
        is_write: bool,
        traffic_class: TrafficClass,
        per_burst: Optional[Callable[[int], None]] = None,
        on_complete: Optional[Callable[[int], None]] = None,
    ) -> int:
        """Transfer ``size`` bytes starting at ``addr`` (64 B bursts).

        ``per_burst(burst_index)`` is invoked *at* each burst's completion
        (the simulator clock reads the completion time); ``on_complete(
        last_completion_time)`` fires once everything has transferred.
        Returns the last completion time (already known at issue since
        service is computed on enqueue).
        """
        num_bursts = max(1, size // 64)
        last_end = self.now
        for i in range(num_bursts):
            burst_addr = addr + i * 64
            if per_burst is not None:
                end = self.access(
                    burst_addr,
                    is_write,
                    traffic_class,
                    callback=_burst_notifier(per_burst, i),
                )
            else:
                end = self.access(burst_addr, is_write, traffic_class)
            if end > last_end:
                last_end = end
        if on_complete is not None:
            self.sim.schedule_at(last_end, lambda t=last_end: on_complete(t))
        return last_end

    # -- aggregate statistics ------------------------------------------

    @property
    def row_hit_rate(self) -> float:
        hits = sum(ch.row_hits for ch in self.channels)
        total = hits
        total += sum(ch.row_closed for ch in self.channels)
        total += sum(ch.row_conflicts for ch in self.channels)
        return hits / total if total else 0.0

    def bytes_by_class(self) -> dict:
        out: dict = {}
        for ch in self.channels:
            for tc, b in ch.bytes_by_class.items():
                out[tc] = out.get(tc, 0) + b
        return out

    def total_bytes(self) -> int:
        return sum(self.bytes_by_class().values())

    def bandwidth_gbps(self, elapsed_cycles: int, cycles_per_second: float) -> float:
        if elapsed_cycles <= 0:
            return 0.0
        return self.total_bytes() / (elapsed_cycles / cycles_per_second) / 1e9


def _burst_notifier(per_burst: Callable[[int], None], index: int):
    def _notify():
        per_burst(index)

    return _notify
