"""Physical address to (channel, bank, row) decomposition.

Channels interleave at the 64-byte burst granularity (so a 4 KB page fill
spreads across every channel of the device), banks interleave at the row
granularity within a channel.  This is the standard high-parallelism
mapping and is what makes NOMAD's FIFO cache-frame allocation spread page
copies uniformly over distributed back-ends (Section III-F).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.dram import DRAMTimingConfig

_BURST_SHIFT = 6  # 64-byte bursts


@dataclass(frozen=True)
class DecodedAddress:
    channel: int
    bank: int
    row: int


class AddressMap:
    """Decodes byte addresses for one DRAM device."""

    def __init__(self, cfg: DRAMTimingConfig):
        self.cfg = cfg
        self.num_channels = cfg.num_channels
        self.banks_per_channel = cfg.banks_per_channel
        self.bursts_per_row = cfg.row_size_bytes >> _BURST_SHIFT
        if self.bursts_per_row <= 0:
            raise ValueError(f"row size {cfg.row_size_bytes} smaller than a burst")

    def decode(self, addr: int) -> DecodedAddress:
        burst = addr >> _BURST_SHIFT
        channel = burst % self.num_channels
        local = burst // self.num_channels
        row_global = local // self.bursts_per_row
        bank = row_global % self.banks_per_channel
        row = row_global // self.banks_per_channel
        return DecodedAddress(channel, bank, row)

    def channel_of(self, addr: int) -> int:
        return (addr >> _BURST_SHIFT) % self.num_channels
