"""Datasheet nanosecond timings resolved into CPU-cycle integers."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config.dram import DRAMTimingConfig


@dataclass(frozen=True)
class ResolvedTiming:
    """All DRAM timings in CPU cycles for a given core frequency.

    The per-outcome access latencies (row hit / closed / conflict) are
    precomputed once at construction so the per-burst hot path reads a
    stored int instead of re-summing components through a property call.
    """

    trcd: int
    trp: int
    tcas: int
    tburst: int
    tras: int
    row_hit_latency: int = field(init=False)
    row_closed_latency: int = field(init=False)
    row_conflict_latency: int = field(init=False)

    def __post_init__(self):
        # Column command to end of data, per row-buffer outcome.
        object.__setattr__(self, "row_hit_latency", self.tcas + self.tburst)
        object.__setattr__(
            self, "row_closed_latency", self.trcd + self.tcas + self.tburst
        )
        object.__setattr__(
            self,
            "row_conflict_latency",
            self.trp + self.trcd + self.tcas + self.tburst,
        )

    @classmethod
    def from_config(cls, cfg: DRAMTimingConfig, cpu_ghz: float) -> "ResolvedTiming":
        return cls(
            trcd=cfg.cycles(cfg.trcd_ns, cpu_ghz),
            trp=cfg.cycles(cfg.trp_ns, cpu_ghz),
            tcas=cfg.cycles(cfg.tcas_ns, cpu_ghz),
            tburst=cfg.cycles(cfg.burst_ns, cpu_ghz),
            tras=cfg.cycles(cfg.tras_ns, cpu_ghz),
        )
