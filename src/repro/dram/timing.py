"""Datasheet nanosecond timings resolved into CPU-cycle integers."""

from __future__ import annotations

from dataclasses import dataclass

from repro.config.dram import DRAMTimingConfig


@dataclass(frozen=True)
class ResolvedTiming:
    """All DRAM timings in CPU cycles for a given core frequency."""

    trcd: int
    trp: int
    tcas: int
    tburst: int
    tras: int

    @classmethod
    def from_config(cls, cfg: DRAMTimingConfig, cpu_ghz: float) -> "ResolvedTiming":
        return cls(
            trcd=cfg.cycles(cfg.trcd_ns, cpu_ghz),
            trp=cfg.cycles(cfg.trp_ns, cpu_ghz),
            tcas=cfg.cycles(cfg.tcas_ns, cpu_ghz),
            tburst=cfg.cycles(cfg.burst_ns, cpu_ghz),
            tras=cfg.cycles(cfg.tras_ns, cpu_ghz),
        )

    @property
    def row_hit_latency(self) -> int:
        """Column command to end of data for an open-row access."""
        return self.tcas + self.tburst

    @property
    def row_closed_latency(self) -> int:
        return self.trcd + self.tcas + self.tburst

    @property
    def row_conflict_latency(self) -> int:
        return self.trp + self.trcd + self.tcas + self.tburst
