"""Per-bank row-buffer state machine."""

from __future__ import annotations

from typing import Optional


class Bank:
    """One DRAM bank: an open row and the time it can accept a command.

    ``access`` classifies the reference (hit / closed / conflict), applies
    the activation/precharge penalty, and returns the cycle at which the
    column data transfer may begin, leaving the row open (open-page
    policy).
    """

    __slots__ = ("open_row", "ready_at", "activated_at")

    def __init__(self):
        self.open_row: Optional[int] = None
        self.ready_at = 0
        self.activated_at = 0

    def access(self, row: int, now: int, timing) -> tuple:
        """Returns ``(data_ready_time, outcome)``.

        ``outcome`` is one of ``"hit"``, ``"closed"``, ``"conflict"``.
        ``data_ready_time`` is when the burst can start on the data bus
        (bank-side constraint only; the controller also arbitrates the
        shared bus).
        """
        start = max(now, self.ready_at)
        if self.open_row == row:
            outcome = "hit"
            column = start
        elif self.open_row is None:
            outcome = "closed"
            column = start + timing.trcd  # activate at `start`
            self.activated_at = start
        else:
            outcome = "conflict"
            # Respect tRAS before precharging the currently open row.
            precharge = max(start, self.activated_at + timing.tras)
            activate = precharge + timing.trp
            column = activate + timing.trcd
            self.activated_at = activate
        self.open_row = row
        # Back-to-back column commands to an open row pipeline at the
        # burst rate (tCCD ~= tburst); tCAS is pure latency.
        self.ready_at = column + timing.tburst
        data_ready = column + timing.tcas
        return data_ready, outcome
