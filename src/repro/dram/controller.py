"""One memory controller per DRAM channel.

The controller combines the bank-side ready time with the shared data
bus: a burst occupies the bus for ``tburst`` cycles, so a saturated
channel naturally queues requests and per-request latency grows -- the
effect behind the paper's Excess/Tight/Loose/Few RMHB classes.

Requests complete with a single scheduled event; service times are
computed at enqueue (first-come-first-served with open-page row-buffer
state).  FR-FCFS reordering is approximated: sequential streams (page
copies, line fills) arrive in row order and therefore still enjoy the
row-buffer hits an FR-FCFS scheduler would create.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.common.types import TrafficClass
from repro.dram.bank import Bank
from repro.dram.timing import ResolvedTiming
from repro.engine.simulator import Component, Simulator


class ChannelController(Component):
    """Schedules bursts onto one channel's banks and data bus."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        timing: ResolvedTiming,
        num_banks: int,
    ):
        super().__init__(sim, name)
        self.timing = timing
        self.banks = [Bank() for _ in range(num_banks)]
        self.bus_free_at = 0
        self._row_hits = self.stats.counter("row_hits")
        self._row_closed = self.stats.counter("row_closed")
        self._row_conflicts = self.stats.counter("row_conflicts")
        self._reads = self.stats.counter("reads")
        self._writes = self.stats.counter("writes")
        self._bw = self.stats.bandwidth("bytes")
        self._latency = self.stats.mean("burst_latency")

    def enqueue(
        self,
        bank_index: int,
        row: int,
        is_write: bool,
        traffic_class: TrafficClass,
        callback: Optional[Callable[[], None]] = None,
    ) -> int:
        """Schedule one 64 B burst; returns its completion time.

        ``callback`` (if given) fires at completion.
        """
        now = self.now
        bank = self.banks[bank_index]
        data_ready, outcome = bank.access(row, now, self.timing)
        start = max(data_ready, self.bus_free_at)
        end = start + self.timing.tburst
        self.bus_free_at = end

        if outcome == "hit":
            self._row_hits.inc()
        elif outcome == "closed":
            self._row_closed.inc()
        else:
            self._row_conflicts.inc()
        if is_write:
            self._writes.inc()
        else:
            self._reads.inc()
        self._bw.record(traffic_class, 64)
        self._latency.add(end - now)

        if callback is not None:
            self.sim.schedule(end - now, callback)
        return end

    @property
    def row_hit_rate(self) -> float:
        total = self._row_hits.value + self._row_closed.value + self._row_conflicts.value
        return self._row_hits.value / total if total else 0.0
