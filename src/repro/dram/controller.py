"""One memory controller per DRAM channel.

The controller combines the bank-side ready time with the shared data
bus: a burst occupies the bus for ``tburst`` cycles, so a saturated
channel naturally queues requests and per-request latency grows -- the
effect behind the paper's Excess/Tight/Loose/Few RMHB classes.

Requests complete with a single scheduled event; service times are
computed at enqueue (first-come-first-served with open-page row-buffer
state).  FR-FCFS reordering is approximated: sequential streams (page
copies, line fills) arrive in row order and therefore still enjoy the
row-buffer hits an FR-FCFS scheduler would create.

``enqueue`` is the single hottest method of a run (one call per 64 B
burst), so it inlines the :class:`~repro.dram.bank.Bank` row-buffer
state machine and accumulates statistics in plain int attributes that
are flushed into the :class:`StatGroup` only when it is read (see
:meth:`StatGroup.set_sync`).  ``Bank.access`` remains the reference
implementation of the state machine; keep the two in sync.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.common.types import TrafficClass
from repro.dram.bank import Bank
from repro.dram.timing import ResolvedTiming
from repro.engine.simulator import Component, Simulator


class ChannelController(Component):
    """Schedules bursts onto one channel's banks and data bus."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        timing: ResolvedTiming,
        num_banks: int,
    ):
        super().__init__(sim, name)
        self.timing = timing
        self.banks = [Bank() for _ in range(num_banks)]
        self.bus_free_at = 0
        # Timing components bound to locals of the instance; enqueue never
        # dereferences the timing object.
        self._trcd = timing.trcd
        self._trp = timing.trp
        self._tcas = timing.tcas
        self._tburst = timing.tburst
        self._tras = timing.tras
        # Hot-path counters (flushed lazily into self.stats).
        self.row_hits = 0
        self.row_closed = 0
        self.row_conflicts = 0
        self.reads = 0
        self.writes = 0
        self.bytes_by_class: Dict[TrafficClass, int] = {}
        self._lat_count = 0
        self._lat_total = 0
        self._lat_min: Optional[int] = None
        self._lat_max: Optional[int] = None
        self.stats.counter("row_hits")
        self.stats.counter("row_closed")
        self.stats.counter("row_conflicts")
        self.stats.counter("reads")
        self.stats.counter("writes")
        self.stats.bandwidth("bytes")
        self.stats.mean("burst_latency")
        self.stats.set_sync(self._sync_stats)

    def _sync_stats(self) -> None:
        stats = self.stats._stats
        stats["row_hits"].value = self.row_hits
        stats["row_closed"].value = self.row_closed
        stats["row_conflicts"].value = self.row_conflicts
        stats["reads"].value = self.reads
        stats["writes"].value = self.writes
        bw = stats["bytes"]
        for tc, b in self.bytes_by_class.items():
            bw.bytes_by_class[tc] = b
        lat = stats["burst_latency"]
        lat.count = self._lat_count
        lat.total = self._lat_total
        lat.min = self._lat_min
        lat.max = self._lat_max

    def enqueue(
        self,
        bank_index: int,
        row: int,
        is_write: bool,
        traffic_class: TrafficClass,
        callback: Optional[Callable[[], None]] = None,
    ) -> int:
        """Schedule one 64 B burst; returns its completion time.

        ``callback`` (if given) fires at completion.
        """
        now = self.sim.now
        bank = self.banks[bank_index]

        # Bank.access inlined (row-buffer state machine, open-page policy).
        ready_at = bank.ready_at
        start = now if now > ready_at else ready_at
        open_row = bank.open_row
        if open_row == row:
            self.row_hits += 1
            column = start
        elif open_row is None:
            self.row_closed += 1
            column = start + self._trcd  # activate at `start`
            bank.activated_at = start
        else:
            self.row_conflicts += 1
            # Respect tRAS before precharging the currently open row.
            precharge = bank.activated_at + self._tras
            if start > precharge:
                precharge = start
            activate = precharge + self._trp
            column = activate + self._trcd
            bank.activated_at = activate
        bank.open_row = row
        bank.ready_at = column + self._tburst
        data_ready = column + self._tcas

        bus_free = self.bus_free_at
        start = data_ready if data_ready > bus_free else bus_free
        end = start + self._tburst
        self.bus_free_at = end

        if is_write:
            self.writes += 1
        else:
            self.reads += 1
        by_class = self.bytes_by_class
        by_class[traffic_class] = by_class.get(traffic_class, 0) + 64
        latency = end - now
        self._lat_count += 1
        self._lat_total += latency
        if self._lat_min is None or latency < self._lat_min:
            self._lat_min = latency
        if self._lat_max is None or latency > self._lat_max:
            self._lat_max = latency

        if callback is not None:
            self.sim.schedule(latency, callback)
        return end

    @property
    def row_hit_rate(self) -> float:
        total = self.row_hits + self.row_closed + self.row_conflicts
        return self.row_hits / total if total else 0.0
