"""CPU models: trace format and the ROB-occupancy out-of-order core."""

from repro.cpu.core import Core
from repro.cpu.trace import TraceOp, ops_from_arrays

__all__ = ["Core", "TraceOp", "ops_from_arrays"]
