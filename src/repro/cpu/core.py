"""A ROB-occupancy out-of-order core model.

The model dispatches the trace in program order at ``width`` instructions
per cycle and enforces three stall sources, which are exactly the ones
the paper's evaluation decomposes:

1. **ROB-window stalls** -- a load stays "in flight" until its data
   return; a younger instruction more than ``rob_size`` instructions
   ahead cannot dispatch until the load completes.  Independent misses
   within the window overlap, which is the memory-level parallelism that
   non-blocking DRAM caches (TiD, NOMAD) exploit and blocking ones (TDC)
   forfeit.
2. **Dependence stalls** -- trace ops flagged ``dependent`` stall
   dispatch until their data arrive (serialized pointer chasing).
3. **OS stalls** -- the DRAM cache scheme may suspend the thread (page
   walks, DC tag miss handlers, TDC's blocking page copies).  These are
   reported separately because Fig. 11's "application stall cycles" are
   precisely the OS suspensions.

The core runs *ahead* of the simulator clock while unblocked: SRAM hits
resolve synchronously and only TLB misses and LLC misses synchronize
with the event queue, which keeps the Python event count proportional to
DRAM-level activity rather than instruction count.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterator, Optional

from repro.common.types import AccessType, MemAccess
from repro.config.system import CoreConfig
from repro.engine.simulator import Component, Simulator

_LOAD = AccessType.LOAD
_STORE = AccessType.STORE


class Core(Component):
    """One simulated core executing a single-threaded trace."""

    def __init__(
        self,
        sim: Simulator,
        core_id: int,
        cfg: CoreConfig,
        scheme,
        trace: Iterator,
        on_finish: Optional[Callable[["Core"], None]] = None,
    ):
        super().__init__(sim, f"core{core_id}")
        self.core_id = core_id
        self.cfg = cfg
        self.width = cfg.width
        self.rob_size = cfg.rob_size
        self.scheme = scheme
        self.trace = iter(trace)
        self._next_op = self.trace.__next__  # bound once; called per op
        self.on_finish = on_finish
        self._bind_fastpaths()

        # Dispatch-clock state (may run ahead of sim.now).
        self.dispatch_cycles = 0
        self._slack = 0  # instructions dispatched in the current cycle
        self.inst_count = 0
        self.mem_ops = 0
        self.loads = 0
        self.stores = 0

        # In-flight loads: [inst_index, completion_time_or_None] entries.
        self.outstanding: deque = deque()
        self._pending_op = None
        self._d_candidate: Optional[int] = None
        self._idx_candidate = 0
        self._slack_next = 0
        self._waiting = False  # blocked on a load completion
        self._dep_wait = None  # entry of a dependent load being waited on
        self._draining = False
        self.done = False
        self.finish_time: Optional[int] = None

        # Store buffer: missed stores in flight; dispatch stalls when full.
        self.store_buffer = cfg.store_buffer
        self.outstanding_stores = 0
        self._store_blocked = False

        # Stall accounting (cycles).
        self.window_stall_cycles = 0
        self.store_stall_cycles = 0
        self.dep_stall_cycles = 0
        self.os_stall_cycles = 0
        self.tlb_stall_cycles = 0
        self.tlb_misses = 0
        self.tag_miss_count = 0

    def _bind_fastpaths(self) -> None:
        """Bind the two per-op scheme calls once.  Real schemes expose
        .tlbs / .hierarchy; test doubles may only implement the
        tlb_lookup / hierarchy_access methods, so fall back to those.
        Re-run after unpickling (see ``__setstate__``)."""
        scheme = self.scheme
        core_id = self.core_id
        tlbs = getattr(scheme, "tlbs", None)
        if tlbs is not None:
            self._tlb = tlbs[core_id]
            self._tlb_lookup = tlbs[core_id].lookup
        else:
            self._tlb = None
            self._tlb_lookup = lambda vpn: scheme.tlb_lookup(core_id, vpn)
        hier = getattr(scheme, "hierarchy", None)
        self._hier_access = hier.access if hier is not None else scheme.hierarchy_access
        self._translate = scheme.translate_addr

    # Attributes derived from the trace or rebindable from the scheme;
    # dropped from snapshots (iterators and lambdas do not pickle, and
    # the trace itself is re-materialized from (spec, seed) on restore).
    _TRANSIENT = (
        "trace", "_next_op", "_tlb", "_tlb_lookup", "_hier_access", "_translate",
    )

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        for name in self._TRANSIENT:
            state.pop(name, None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self.trace = None
        self._next_op = None
        self._bind_fastpaths()

    def attach_trace(self, trace: Iterator) -> None:
        """Give a restored core its (re-materialized) trace back."""
        self.trace = iter(trace)
        self._next_op = self.trace.__next__

    # -- public API -------------------------------------------------------

    def start(self) -> None:
        self.sim.schedule(0, self._advance)

    def guard_state(self) -> dict:
        return {
            "inst_count": self.inst_count,
            "mem_ops": self.mem_ops,
            "done": self.done,
            "waiting": self._waiting,
            "draining": self._draining,
            "outstanding_loads": len(self.outstanding),
            "outstanding_stores": self.outstanding_stores,
            "store_blocked": self._store_blocked,
            "dispatch_cycles": self.dispatch_cycles,
        }

    @property
    def ipc(self) -> float:
        if not self.finish_time:
            return 0.0
        return self.inst_count / self.finish_time

    def stall_breakdown(self) -> dict:
        total = self.finish_time or 1
        return {
            "os": self.os_stall_cycles / total,
            "window": self.window_stall_cycles / total,
            "store": self.store_stall_cycles / total,
            "dep": self.dep_stall_cycles / total,
            "tlb": self.tlb_stall_cycles / total,
        }

    # -- dispatch engine ----------------------------------------------------

    def _advance(self) -> None:
        """Dispatch trace ops until blocked or exhausted."""
        if self.done or self._dep_wait is not None:
            return
        self._waiting = False
        # Loop-invariant attributes bound once per activation (the loop
        # body runs once per trace op).
        width = self.width
        rob_size = self.rob_size
        outstanding = self.outstanding
        next_op = self._next_op
        tlb_lookup = self._tlb_lookup
        # L1-TLB-hit fast path bound here; mirrors the top of TLB.lookup
        # (which stays the reference implementation -- keep in sync).
        tlb = self._tlb
        if tlb is not None:
            tlb_l1 = tlb._l1
            l1_get = tlb_l1.get
            l1_move = tlb_l1.move_to_end
            l2_move = tlb._l2.move_to_end
        while True:
            if self._pending_op is None:
                try:
                    item = next_op()
                except StopIteration:
                    self._finish_dispatch()
                    return
                self._pending_op = item
                gap = item[0]
                total = self._slack + gap + 1
                self._d_candidate = self.dispatch_cycles + total // width
                self._slack_next = total % width
                self._idx_candidate = self.inst_count + gap + 1

            d = self._d_candidate
            idx = self._idx_candidate

            # ROB window: retire loads that are rob_size older than idx.
            window_limit = idx - rob_size
            blocked = False
            while outstanding and outstanding[0][0] <= window_limit:
                head = outstanding[0]
                if head[1] is None:
                    self._waiting = True
                    blocked = True
                    break
                if head[1] > d:
                    self.window_stall_cycles += head[1] - d
                    d = head[1]
                outstanding.popleft()
            if blocked:
                self._d_candidate = d
                return

            if self.outstanding_stores >= self.store_buffer:
                self._d_candidate = d
                self._store_blocked = True
                self._waiting = True
                return

            _, addr, is_write, dependent = self._pending_op
            vpn = addr >> 12
            if tlb is not None:
                pte = l1_get(vpn)
                if pte is not None:
                    l1_move(vpn)
                    l2_move(vpn)
                    tlb.l1_hits += 1
                    if not self._issue_and_handle_dep(
                        pte, 0, d, addr, is_write, idx, dependent
                    ):
                        return
                    continue
            tlb_result = tlb_lookup(vpn)
            if tlb_result is None:
                self.tlb_misses += 1
                pte, walk, needs_os = self.scheme.peek_translate(self.core_id, vpn)
                if needs_os:
                    # A DC tag miss: the OS suspends the thread, so we
                    # must synchronize with simulated time first.
                    self._d_candidate = d
                    if d > self.sim.now:
                        self.sim.schedule_at(d, self._tlb_miss_now)
                    else:
                        self._tlb_miss_now()
                    return
                # Plain walk: overlapped by the hardware walker; charge
                # it as extra latency on this access only.
                self.tlb_stall_cycles += walk
                if not self._issue_and_handle_dep(
                    pte, walk, d, addr, is_write, idx, dependent
                ):
                    return
                continue

            pte, extra_lat = tlb_result
            if not self._issue_and_handle_dep(pte, extra_lat, d, addr, is_write, idx, dependent):
                return

    def _tlb_miss_now(self) -> None:
        """Runs at sim.now == dispatch time of the TLB-missing op."""
        if self.done:
            return
        d = self._d_candidate
        _, addr, is_write, dependent = self._pending_op
        vpn = addr >> 12
        self.scheme.translate_miss(
            self.core_id,
            vpn,
            d,
            lambda ready, pte: self._translation_done(ready, pte),
            addr=addr,
        )

    def _translation_done(self, ready: int, pte) -> None:
        """The walk (and any OS miss handling) finished at ``ready``."""
        d = self._d_candidate
        walk = self.scheme.walk_latency
        self.tlb_stall_cycles += min(ready - d, walk)
        os_part = ready - d - walk
        if os_part > 0:
            self.os_stall_cycles += os_part
            self.tag_miss_count += 1
        _, addr, is_write, dependent = self._pending_op
        idx = self._idx_candidate
        # The OS suspension pushed the dispatch clock itself.
        self._d_candidate = ready
        if self._issue_and_handle_dep(pte, 0, ready, addr, is_write, idx, dependent):
            self._advance()

    def _issue_and_handle_dep(
        self, pte, extra_lat, d, addr, is_write, idx, dependent
    ) -> bool:
        """Issue one op into the hierarchy; False pauses dispatch.

        Runs once per memory op (the former separate ``_issue`` helper
        is folded in to drop a call frame).
        """
        issue_time = d + extra_lat
        access = MemAccess(
            addr,
            _STORE if is_write else _LOAD,
            self.core_id,
            issue_time,
        )
        access.paddr = self._translate(pte, addr)
        self.mem_ops += 1
        entry = None
        if is_write:
            self.stores += 1
            callback: Callable[[int], None] = self._store_done
        else:
            self.loads += 1
            entry = [idx, None]
            self.outstanding.append(entry)
            callback = self._make_load_done(entry)
        completion = self._hier_access(access, issue_time, callback)
        if is_write and completion is None:
            self.outstanding_stores += 1
        # Commit dispatch-state for this op.
        self.dispatch_cycles = d
        self.inst_count = idx
        self._slack = self._slack_next
        self._pending_op = None
        self._d_candidate = None
        if completion is not None and entry is not None:
            entry[1] = completion

        if not dependent or is_write:
            return True
        if completion is None:
            # ``entry`` is the load appended above.
            self._dep_wait = entry
            return False
        if completion > self.dispatch_cycles:
            self.dep_stall_cycles += completion - self.dispatch_cycles
            self.dispatch_cycles = completion
        return True

    def _store_done(self, t: int) -> None:
        """A missed store drained; unblock dispatch if the buffer was full."""
        self.outstanding_stores -= 1
        if self._store_blocked:
            self._store_blocked = False
            d = self._d_candidate
            if d is not None and t > d:
                self.store_stall_cycles += t - d
                self._d_candidate = t
            self._advance()
        elif self._draining:
            self._try_finish()

    def _make_load_done(self, entry) -> Callable[[int], None]:
        def _done(t: int) -> None:
            entry[1] = t
            if self._dep_wait is entry:
                self._dep_wait = None
                if t > self.dispatch_cycles:
                    self.dep_stall_cycles += t - self.dispatch_cycles
                    self.dispatch_cycles = t
                self._advance()
            elif self._waiting:
                self._advance()
            elif self._draining:
                self._try_finish()

        return _done

    # -- completion -------------------------------------------------------

    def _finish_dispatch(self) -> None:
        self._draining = True
        self._try_finish()

    def _try_finish(self) -> None:
        if self.done:
            return
        if any(entry[1] is None for entry in self.outstanding):
            return
        end = self.dispatch_cycles
        for entry in self.outstanding:
            if entry[1] > end:
                end = entry[1]
        self.outstanding.clear()
        self.done = True
        self.finish_time = max(end, self.sim.now)
        if self.on_finish is not None:
            self.on_finish(self)


def _ignore(_t: int) -> None:
    """Completion sink for stores (retired via the store buffer)."""
