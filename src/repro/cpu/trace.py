"""Instruction-trace format consumed by the core model.

A trace is an iterable of ``(gap, addr, is_write, dependent)`` tuples:

* ``gap`` -- the number of non-memory instructions preceding this memory
  operation (they dispatch at the core's full width),
* ``addr`` -- the virtual byte address accessed,
* ``is_write`` -- store vs load,
* ``dependent`` -- True when a consumer follows the load immediately, so
  the core must stall until the data returns (models serialized
  pointer-chasing; False allows the access to overlap within the ROB
  window).

Workload generators produce numpy chunks; :func:`ops_from_arrays`
flattens them into the tuple stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Tuple

TraceTuple = Tuple[int, int, bool, bool]


@dataclass(frozen=True)
class TraceOp:
    """A friendlier record form of one trace tuple (used in tests/examples)."""

    gap: int
    addr: int
    is_write: bool = False
    dependent: bool = False

    def as_tuple(self) -> TraceTuple:
        return (self.gap, self.addr, self.is_write, self.dependent)


def ops_from_arrays(gaps, addrs, writes, deps) -> Iterator[TraceTuple]:
    """Yield trace tuples from parallel numpy arrays (one chunk)."""
    for i in range(len(gaps)):
        yield (int(gaps[i]), int(addrs[i]), bool(writes[i]), bool(deps[i]))


def chain_chunks(chunks: Iterable) -> Iterator[TraceTuple]:
    """Flatten an iterable of ``(gaps, addrs, writes, deps)`` chunks."""
    for gaps, addrs, writes, deps in chunks:
        yield from ops_from_arrays(gaps, addrs, writes, deps)


def total_instructions(trace: Iterable[TraceTuple]) -> int:
    """Instruction count of a fully materialized trace (gap + 1 each)."""
    return sum(gap + 1 for gap, _, _, _ in trace)
