"""Parametric synthetic memory-trace generator.

A workload is described by a :class:`WorkloadSpec`:

* ``footprint_pages`` -- working-set size (drives DC miss rate),
* ``mem_ratio``       -- memory instructions per instruction (drives
  LLC MPMS together with locality),
* page selection      -- ``stream`` (sequential sweep), ``zipf``
  (power-law reuse: hot pages stay DC-resident) or ``uniform``,
* ``mean_run_lines``  -- consecutive 64 B lines touched per page visit
  (spatial locality; 64 = whole page, the regime where 4 KB OS-managed
  caching shines, ~16 = the 1 KB-locality regime where TiD wins, as the
  paper observes for bfs),
* ``write_frac`` / ``dep_frac`` -- store mix and serialized
  (pointer-chasing) load fraction,
* burstiness          -- alternate dense/sparse phases (libq, gems).

Traces are produced in numpy chunks and flattened lazily, so arbitrarily
long traces stream in O(chunk) memory.  Generation is deterministic per
(spec, seed, core).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, replace
from typing import Iterator, Optional, Tuple

import numpy as np

from repro.common.types import PAGE_SIZE

_LINES_PER_PAGE = 64
# Scatter hot Zipf pages across the address space with a fixed bijection
# (multiplication by an odd constant mod footprint is invertible).
_SCATTER_PRIME = 2654435761


@dataclass(frozen=True)
class WorkloadSpec:
    """Everything that defines a synthetic benchmark."""

    name: str
    footprint_pages: int
    mem_ratio: float = 0.2
    page_select: str = "stream"  # stream | zipf | uniform
    zipf_skew: float = 2.0  # larger = hotter hot set (zipf mode)
    mean_run_lines: int = 48
    write_frac: float = 0.25
    dep_frac: float = 0.1
    bursty: bool = False
    burst_phase_ops: int = 2048
    burst_idle_multiplier: int = 6
    # Fraction of page visits that go to a *cold* streaming region
    # (each cold page is touched once and never again).  This decouples
    # a workload's fill rate (RMHB) from its reuse structure: zipf
    # workloads keep a resident hot set while the cold tail sets the
    # miss-handling bandwidth.
    cold_frac: float = 0.0
    # Streaming temporal reuse (stencil-style): fraction of visits that
    # go back to one of the last ``reuse_window`` streamed pages.  The
    # window is sized past the L3 but well within DC residency, so these
    # re-accesses are exactly the traffic a DRAM cache accelerates.
    reuse_frac: float = 0.0
    reuse_window: int = 256
    num_mem_ops: int = 50_000

    def scaled(self, **overrides) -> "WorkloadSpec":
        """A copy with some fields replaced (e.g., shorter traces)."""
        return replace(self, **overrides)


class SyntheticWorkload:
    """Iterable of trace tuples for one core."""

    CHUNK_VISITS = 512

    def __init__(self, spec: WorkloadSpec, seed: int = 1, core_id: int = 0):
        if spec.footprint_pages <= 0:
            raise ValueError(f"{spec.name}: footprint must be positive")
        if not 0 < spec.mem_ratio <= 1:
            raise ValueError(f"{spec.name}: mem_ratio must be in (0, 1]")
        if not 1 <= spec.mean_run_lines <= _LINES_PER_PAGE:
            raise ValueError(f"{spec.name}: mean_run_lines must be in [1, 64]")
        self.spec = spec
        self.core_id = core_id
        # crc32, not hash(): str hash is salted per interpreter, and the
        # campaign layer needs bit-identical traces across worker
        # processes and sessions for result-store hits to be sound.
        name_tag = zlib.crc32(spec.name.encode()) & 0xFFFF
        self._rng = np.random.default_rng((seed, core_id, name_tag))
        # Streams start at page 0 so the warmup plan (the trailing
        # dc-share of pages) lines up with the reuse window.
        self._stream_pos = 0 if spec.page_select == "stream" else int(
            self._rng.integers(0, spec.footprint_pages)
        )
        self._cold_pos = spec.footprint_pages  # cold pages live past the hot set
        self._ops_emitted = 0

    # -- page/run sampling ---------------------------------------------------

    def _sample_pages(self, n: int) -> np.ndarray:
        spec = self.spec
        if spec.page_select == "stream":
            if spec.reuse_frac > 0:
                reuse = self._rng.random(n) < spec.reuse_frac
                steps = (~reuse).astype(np.int64)
                # Stream position just before each visit.
                pos = self._stream_pos + np.cumsum(steps) - steps
                back = self._rng.integers(1, spec.reuse_window + 1, size=n)
                pages = np.where(reuse, pos - back, pos) % spec.footprint_pages
                self._stream_pos = int(
                    (self._stream_pos + steps.sum()) % spec.footprint_pages
                )
                return pages
            pages = (self._stream_pos + np.arange(n)) % spec.footprint_pages
            self._stream_pos = int((self._stream_pos + n) % spec.footprint_pages)
            return pages
        if spec.page_select == "uniform":
            return self._rng.integers(0, spec.footprint_pages, size=n)
        if spec.page_select == "zipf":
            # Inverse-CDF power law over page ranks, then scatter ranks
            # across the footprint so hot pages are not contiguous.
            u = self._rng.random(n)
            ranks = np.floor(spec.footprint_pages * u ** spec.zipf_skew).astype(np.int64)
            return (ranks * _SCATTER_PRIME) % spec.footprint_pages
        raise ValueError(f"unknown page_select {spec.page_select!r}")

    def _sample_runs(self, n: int) -> np.ndarray:
        mean = self.spec.mean_run_lines
        if mean >= _LINES_PER_PAGE:
            return np.full(n, _LINES_PER_PAGE, dtype=np.int64)
        runs = self._rng.geometric(1.0 / mean, size=n)
        return np.clip(runs, 1, _LINES_PER_PAGE)

    # -- chunk assembly --------------------------------------------------------

    def _make_chunk(self, max_ops: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        spec = self.spec
        n = self.CHUNK_VISITS
        pages = self._sample_pages(n)
        if spec.cold_frac > 0:
            cold = self._rng.random(n) < spec.cold_frac
            k = int(cold.sum())
            if k:
                pages = pages.copy()
                pages[cold] = self._cold_pos + np.arange(k)
                self._cold_pos += k
        runs = self._sample_runs(n)
        total = int(runs.sum())
        starts = (self._rng.integers(0, _LINES_PER_PAGE, size=n)) % (
            _LINES_PER_PAGE - runs + 1
        )
        page_rep = np.repeat(pages, runs)
        ends = np.cumsum(runs)
        within = np.arange(total) - np.repeat(ends - runs, runs)
        lines = np.repeat(starts, runs) + within
        addrs = page_rep * PAGE_SIZE + lines * 64

        mean_gap = (1.0 - spec.mem_ratio) / spec.mem_ratio
        if mean_gap > 0:
            gaps = self._rng.geometric(1.0 / (mean_gap + 1.0), size=total) - 1
        else:
            gaps = np.zeros(total, dtype=np.int64)
        if spec.bursty:
            op_index = self._ops_emitted + np.arange(total)
            idle = (op_index // spec.burst_phase_ops) % 2 == 1
            gaps = np.where(idle, gaps * spec.burst_idle_multiplier, gaps)
        writes = self._rng.random(total) < spec.write_frac
        deps = (~writes) & (self._rng.random(total) < spec.dep_frac)

        if total > max_ops:
            addrs, gaps, writes, deps = (
                a[:max_ops] for a in (addrs, gaps, writes, deps)
            )
            total = max_ops
        self._ops_emitted += total
        return gaps, addrs, writes, deps

    # -- iteration ---------------------------------------------------------------

    def __iter__(self) -> Iterator[Tuple[int, int, bool, bool]]:
        # ``ndarray.tolist()`` converts each chunk to native ints/bools in
        # C, and ``zip`` assembles the op tuples without a Python-level
        # loop body -- element-for-element identical to the old
        # ``(int(gaps[i]), ...)`` path, an order of magnitude faster.
        remaining = self.spec.num_mem_ops
        while remaining > 0:
            gaps, addrs, writes, deps = self._make_chunk(remaining)
            remaining -= len(gaps)
            yield from zip(
                gaps.tolist(), addrs.tolist(), writes.tolist(), deps.tolist()
            )

    def materialize(self) -> list:
        """The whole trace as a list of ``(gap, addr, write, dep)`` tuples.

        Consumes this generator's RNG stream; call on a fresh instance.
        """
        return list(self)

    def __len__(self) -> int:
        return self.spec.num_mem_ops


# -- trace memoization ---------------------------------------------------------
#
# A scheme comparison re-runs the same (spec, seed, core) trace once per
# scheme; generation is deterministic, so the materialized op list can be
# shared.  Two layers:
#
# * an in-process insertion-ordered LRU (traces are a few MB each, so
#   the bound is small but configurable), and
# * an optional on-disk layer (``configure_trace_cache(disk_dir=...)``)
#   so campaign pool workers stop regenerating identical numpy traces
#   N-workers x M-schemes times.  Disk entries are compressed npz
#   column arrays keyed by a versioned content hash of (spec, seed,
#   core) and written atomically (tmp + rename), so concurrent workers
#   can share a directory without locking.

_TRACE_CACHE: "dict[tuple, list]" = {}
_TRACE_CACHE_MAX = 32
_TRACE_DISK_DIR: Optional[str] = None
# Bump when the trace tuple layout or generation algorithm changes;
# stale disk entries then simply never match.
TRACE_CACHE_VERSION = 1

_TRACE_STATS = {
    "hits": 0,  # in-memory LRU hits
    "misses": 0,  # full generations
    "disk_hits": 0,  # served from the on-disk layer
    "disk_writes": 0,
    "evictions": 0,
}

_UNSET = object()


def configure_trace_cache(maxsize=_UNSET, disk_dir=_UNSET) -> None:
    """Re-bound the in-memory trace LRU and/or (un)install the disk layer.

    Omitted arguments keep their current setting.  ``disk_dir=None``
    disables the disk layer; ``maxsize=0`` makes the memory layer
    pass-through.  Counters are preserved (use :func:`clear_trace_cache`
    to reset them).
    """
    global _TRACE_CACHE_MAX, _TRACE_DISK_DIR
    if maxsize is not _UNSET:
        _TRACE_CACHE_MAX = int(maxsize)
        while len(_TRACE_CACHE) > _TRACE_CACHE_MAX:
            del _TRACE_CACHE[next(iter(_TRACE_CACHE))]
            _TRACE_STATS["evictions"] += 1
    if disk_dir is not _UNSET:
        _TRACE_DISK_DIR = str(disk_dir) if disk_dir else None


def trace_cache_stats() -> dict:
    """Counters + bounds of both trace-cache layers."""
    out = dict(_TRACE_STATS)
    out["size"] = len(_TRACE_CACHE)
    out["maxsize"] = _TRACE_CACHE_MAX
    out["disk_dir"] = _TRACE_DISK_DIR or ""
    return out


def _disk_key(spec: WorkloadSpec, seed: int, core_id: int) -> str:
    import dataclasses
    import hashlib
    import json

    doc = {
        "version": TRACE_CACHE_VERSION,
        "spec": dataclasses.asdict(spec),
        "seed": seed,
        "core_id": core_id,
    }
    return hashlib.sha256(
        json.dumps(doc, sort_keys=True).encode()
    ).hexdigest()[:32]


def _disk_load(path) -> Optional[list]:
    try:
        with np.load(path) as data:
            cols = [data[c].tolist() for c in ("gaps", "addrs", "writes", "deps")]
    except Exception:
        return None  # missing, truncated, or stale-format entry
    return list(zip(*cols))


def _disk_store(path, trace: list) -> None:
    import os
    import tempfile

    gaps, addrs, writes, deps = zip(*trace) if trace else ((), (), (), ())
    os.makedirs(os.path.dirname(path), exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=os.path.dirname(path), suffix=".tmp.npz"
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            np.savez_compressed(
                fh,
                gaps=np.asarray(gaps, dtype=np.int64),
                addrs=np.asarray(addrs, dtype=np.int64),
                writes=np.asarray(writes, dtype=bool),
                deps=np.asarray(deps, dtype=bool),
            )
        os.replace(tmp, path)
    except Exception:
        try:
            os.unlink(tmp)
        except OSError:
            pass


def _memo_insert(key: tuple, trace: list) -> None:
    if _TRACE_CACHE_MAX <= 0:
        return
    if len(_TRACE_CACHE) >= _TRACE_CACHE_MAX:
        del _TRACE_CACHE[next(iter(_TRACE_CACHE))]
        _TRACE_STATS["evictions"] += 1
    _TRACE_CACHE[key] = trace


def materialized_trace(spec: WorkloadSpec, seed: int, core_id: int) -> list:
    """Memoized ``SyntheticWorkload(spec, seed, core_id).materialize()``.

    The returned list is shared between callers and must not be mutated.
    Lookup order: in-memory LRU, then the disk layer (if configured),
    then generation (which writes through to both layers).
    """
    import os

    key = (spec, seed, core_id)
    trace = _TRACE_CACHE.get(key)
    if trace is not None:
        # LRU touch: move to the back of the insertion order.
        del _TRACE_CACHE[key]
        _TRACE_CACHE[key] = trace
        _TRACE_STATS["hits"] += 1
        return trace
    path = None
    if _TRACE_DISK_DIR is not None:
        path = os.path.join(
            _TRACE_DISK_DIR, f"{_disk_key(spec, seed, core_id)}.npz"
        )
        trace = _disk_load(path)
        if trace is not None:
            _TRACE_STATS["disk_hits"] += 1
            _memo_insert(key, trace)
            return trace
    trace = SyntheticWorkload(spec, seed=seed, core_id=core_id).materialize()
    _TRACE_STATS["misses"] += 1
    _memo_insert(key, trace)
    if path is not None:
        _disk_store(path, trace)
        _TRACE_STATS["disk_writes"] += 1
    return trace


def clear_trace_cache() -> None:
    """Drop all memoized traces and reset the counters (the disk layer's
    files are left alone; tests manage their own directories)."""
    _TRACE_CACHE.clear()
    for name in _TRACE_STATS:
        _TRACE_STATS[name] = 0
