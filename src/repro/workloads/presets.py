"""The 15 Table I benchmarks as synthetic workload presets.

Footprints are expressed relative to each core's *share* of the DRAM
cache (``dc_pages / num_cores``), because each core runs a private
single-threaded program (as in the paper's rate-mode methodology) and
the fully-associative DC is shared.  Ratios above 1 put a core's working
set beyond its share -- sustained fill traffic (Excess/Tight); ratios
below 1 with reuse settle into the cache (Few).

The parameters were tuned so the measured RMHB ordering and LLC-MPMS
structure reproduce Table I's classes; see EXPERIMENTS.md for the
measured values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.workloads.synthetic import (
    SyntheticWorkload,
    WorkloadSpec,
    _SCATTER_PRIME,
)

WORKLOAD_CLASSES = ("excess", "tight", "loose", "few")


@dataclass(frozen=True)
class PresetEntry:
    """A Table I row: relative footprint + access behaviour."""

    name: str
    klass: str
    footprint_ratio: float
    mem_ratio: float
    page_select: str
    mean_run_lines: int
    write_frac: float = 0.25
    dep_frac: float = 0.1
    zipf_skew: float = 2.0
    bursty: bool = False
    cold_frac: float = 0.0
    reuse_frac: float = 0.0


# Parameters calibrated (tools/calibrate.py) so measured RMHB under the
# ideal configuration reproduces Table I's class ordering against the
# scaled machine's 25.6 GB/s off-package peak; see EXPERIMENTS.md.
_PRESET_LIST: List[PresetEntry] = [
    # -- Excess: RMHB above the off-package bandwidth ------------------
    PresetEntry("cact", "excess", 3.0, 0.45, "stream", 56, write_frac=0.10,
                dep_frac=0.08, reuse_frac=0.50),
    PresetEntry("sssp", "excess", 1.1, 0.25, "zipf", 16, zipf_skew=1.2,
                dep_frac=0.35, cold_frac=0.42),
    PresetEntry("bwav", "excess", 2.2, 0.30, "stream", 56, dep_frac=0.10,
                reuse_frac=0.45),
    # -- Tight: RMHB near the off-package bandwidth --------------------
    PresetEntry("les", "tight", 1.9, 0.12, "stream", 64, bursty=True,
                dep_frac=0.10, reuse_frac=0.38),
    PresetEntry("libq", "tight", 1.7, 0.055, "stream", 48, bursty=True,
                dep_frac=0.22, reuse_frac=0.35),
    PresetEntry("gems", "tight", 1.7, 0.064, "stream", 56, bursty=True,
                dep_frac=0.24, reuse_frac=0.28),
    PresetEntry("bfs", "tight", 0.9, 0.11, "zipf", 16, zipf_skew=1.5,
                dep_frac=0.25, cold_frac=0.31),
    # -- Loose: roughly half the off-package bandwidth -----------------
    PresetEntry("lbm", "loose", 1.4, 0.018, "stream", 64, write_frac=0.45,
                dep_frac=0.20, reuse_frac=0.33),
    PresetEntry("mcf", "loose", 0.9, 0.30, "zipf", 3, zipf_skew=2.0,
                dep_frac=0.45, cold_frac=0.06),
    PresetEntry("cc", "loose", 0.9, 0.14, "zipf", 16, zipf_skew=2.0,
                dep_frac=0.20, cold_frac=0.13),
    PresetEntry("bc", "loose", 0.9, 0.30, "zipf", 4, zipf_skew=2.0,
                dep_frac=0.25, cold_frac=0.042),
    # -- Few: negligible miss-handling bandwidth -----------------------
    PresetEntry("ast", "few", 0.9, 0.06, "zipf", 24, zipf_skew=1.5,
                dep_frac=0.30, cold_frac=0.11),
    PresetEntry("pr", "few", 0.95, 0.35, "zipf", 1, zipf_skew=3.0,
                dep_frac=0.15, cold_frac=0.003),
    PresetEntry("sop", "few", 0.8, 0.18, "zipf", 8, zipf_skew=2.0,
                dep_frac=0.20, cold_frac=0.008),
    PresetEntry("tc", "few", 0.9, 0.12, "zipf", 2, zipf_skew=3.0,
                dep_frac=0.30, cold_frac=0.004),
]

PRESETS: Dict[str, PresetEntry] = {p.name: p for p in _PRESET_LIST}
CLASS_OF: Dict[str, str] = {p.name: p.klass for p in _PRESET_LIST}


def workloads_in_class(klass: str) -> List[str]:
    if klass not in WORKLOAD_CLASSES:
        raise ValueError(f"unknown class {klass!r}; one of {WORKLOAD_CLASSES}")
    return [p.name for p in _PRESET_LIST if p.klass == klass]


def workload(
    name: str,
    dc_pages: int = 16384,
    num_cores: int = 4,
    num_mem_ops: int = 50_000,
) -> WorkloadSpec:
    """Instantiate a Table I preset for a concrete machine size."""
    entry = PRESETS.get(name)
    if entry is None:
        raise KeyError(f"unknown workload {name!r}; choose from {sorted(PRESETS)}")
    share = max(1, dc_pages // num_cores)
    footprint = max(16, int(entry.footprint_ratio * share))
    return WorkloadSpec(
        name=entry.name,
        footprint_pages=footprint,
        mem_ratio=entry.mem_ratio,
        page_select=entry.page_select,
        zipf_skew=entry.zipf_skew,
        mean_run_lines=entry.mean_run_lines,
        write_frac=entry.write_frac,
        dep_frac=entry.dep_frac,
        bursty=entry.bursty,
        cold_frac=entry.cold_frac,
        reuse_frac=entry.reuse_frac,
        num_mem_ops=num_mem_ops,
    )


# Pages in this range are "dead" filler: they occupy FIFO frames during
# warmup (standing in for long-gone history) and are evicted first,
# putting the cache-frame queue into steady state from cycle zero.
_DEAD_PAGE_BASE = 1 << 24

# The warmup fills each core's whole DC share; the zero-cost warm
# eviction path then keeps the free count at the eviction threshold, so
# the timed region starts from the daemon's steady operating point.
_WARM_FILL_FRACTION = 1.0


def warm_plan(spec: WorkloadSpec, dc_share_pages: int) -> List[tuple]:
    """The paper's fast-forward warmup as ``(vpn, dirty)`` pairs.

    Fills ~94% of the core's DC share: streaming workloads get the pages
    just behind the stream start (their live reuse window plus FIFO
    history); reuse workloads get their hot set plus dead filler pages.
    Dirty bits are assigned deterministically at the workload's store
    ratio so steady-state eviction produces writeback traffic.
    """
    target = max(1, int(dc_share_pages * _WARM_FILL_FRACTION))

    def _dirty(vpn: int) -> bool:
        return (vpn * _SCATTER_PRIME) % 1000 < int(spec.write_frac * 1000)

    if spec.page_select == "stream":
        count = min(target, spec.footprint_pages)
        pages = [
            (spec.footprint_pages - count + i) % spec.footprint_pages
            for i in range(count)
        ]
    else:
        hot = list(dict.fromkeys(warm_pages(spec, dc_share_pages)))[:target]
        # Dead filler first, then hot pages coldest-to-hottest: the
        # hottest pages end up youngest in the FIFO queue (as steady
        # state would leave them, since they are refilled most often).
        pages = [_DEAD_PAGE_BASE + i for i in range(target - len(hot))]
        pages += list(reversed(hot))
    return [(vpn, _dirty(vpn)) for vpn in pages]


def warm_pages(spec: WorkloadSpec, dc_share_pages: int) -> List[int]:
    """Pages worth preloading into the DC before the timed region.

    Mirrors the paper's fast-forward warmup: workloads whose hot set
    fits their DC share start warm; streaming workloads start cold
    because cold *is* their steady state.
    """
    if spec.page_select == "stream":
        return []
    limit = min(spec.footprint_pages, dc_share_pages)
    if spec.page_select == "uniform":
        if spec.footprint_pages <= dc_share_pages:
            return list(range(spec.footprint_pages))
        return []
    # zipf: the hottest ranks, mapped through the scatter bijection.
    return [
        int((rank * _SCATTER_PRIME) % spec.footprint_pages)
        for rank in range(limit)
    ][:limit]
