"""Synthetic workload generators standing in for SPEC2006 / GAPBS traces.

The paper characterizes its 15 benchmarks entirely by required
miss-handling bandwidth (RMHB), LLC misses per microsecond (MPMS), and
memory footprint (Table I).  Each preset here is a synthetic trace
generator tuned so that the *class structure and ordering* of those
metrics match the paper's; absolute GB/s depend on the authors' testbed
and are not targeted (see DESIGN.md, substitutions).
"""

from repro.workloads.presets import (
    CLASS_OF,
    PRESETS,
    WORKLOAD_CLASSES,
    workload,
    workloads_in_class,
)
from repro.workloads.synthetic import SyntheticWorkload, WorkloadSpec

__all__ = [
    "CLASS_OF",
    "PRESETS",
    "SyntheticWorkload",
    "WORKLOAD_CLASSES",
    "WorkloadSpec",
    "workload",
    "workloads_in_class",
]
