"""Trace persistence: save/load memory traces as ``.npz`` archives.

Synthetic traces are deterministic per (spec, seed, core), but archived
traces make experiments portable across library versions and allow
replaying externally captured address streams (e.g., converted Pin or
DynamoRIO traces) through the simulator.

Format: one compressed npz with four parallel int64/bool arrays per
core: ``gaps_<i>``, ``addrs_<i>``, ``writes_<i>``, ``deps_<i>``, plus a
``meta`` array holding ``[num_cores]``.
"""

from __future__ import annotations

import pathlib
from typing import Iterable, List, Sequence, Tuple

import numpy as np

TraceTuple = Tuple[int, int, bool, bool]


def materialize(trace: Iterable[TraceTuple]):
    """Collect a trace iterator into numpy columns."""
    gaps, addrs, writes, deps = [], [], [], []
    for g, a, w, d in trace:
        gaps.append(g)
        addrs.append(a)
        writes.append(w)
        deps.append(d)
    return (
        np.asarray(gaps, dtype=np.int64),
        np.asarray(addrs, dtype=np.int64),
        np.asarray(writes, dtype=bool),
        np.asarray(deps, dtype=bool),
    )


def save_traces(path, traces: Sequence[Iterable[TraceTuple]]) -> None:
    """Write one trace per core to ``path`` (.npz)."""
    arrays = {"meta": np.asarray([len(traces)], dtype=np.int64)}
    for i, trace in enumerate(traces):
        gaps, addrs, writes, deps = materialize(trace)
        arrays[f"gaps_{i}"] = gaps
        arrays[f"addrs_{i}"] = addrs
        arrays[f"writes_{i}"] = writes
        arrays[f"deps_{i}"] = deps
    np.savez_compressed(pathlib.Path(path), **arrays)


class ArchivedTrace:
    """A re-iterable trace backed by arrays from an archive."""

    def __init__(self, gaps, addrs, writes, deps):
        if not (len(gaps) == len(addrs) == len(writes) == len(deps)):
            raise ValueError("trace columns must have equal length")
        self.gaps = gaps
        self.addrs = addrs
        self.writes = writes
        self.deps = deps

    def __iter__(self):
        for i in range(len(self.gaps)):
            yield (
                int(self.gaps[i]),
                int(self.addrs[i]),
                bool(self.writes[i]),
                bool(self.deps[i]),
            )

    def __len__(self) -> int:
        return len(self.gaps)


def load_traces(path) -> List[ArchivedTrace]:
    """Load the per-core traces stored by :func:`save_traces`."""
    with np.load(pathlib.Path(path)) as data:
        num_cores = int(data["meta"][0])
        return [
            ArchivedTrace(
                data[f"gaps_{i}"],
                data[f"addrs_{i}"],
                data[f"writes_{i}"],
                data[f"deps_{i}"],
            )
            for i in range(num_cores)
        ]
