"""repro.obs -- observability for the campaign service.

Three stdlib-only pillars, all opt-in and zero-cost when disabled:

* :mod:`repro.obs.log` -- structured JSON logging with bound context
  (correlation / campaign / batch ids) and a per-process flight recorder.
* :mod:`repro.obs.metrics` -- a lock-safe counter/gauge/histogram registry
  with a Prometheus text exposition writer (``GET /metrics`` on the broker).
* :mod:`repro.obs.trace` -- campaign-scoped distributed tracing propagated
  broker<->runner via the ``X-Repro-Trace`` header, merged into one
  Perfetto document by ``repro obs merge``.

Enable with ``REPRO_OBS_DIR=<dir>`` (file sinks + tracing), ``REPRO_OBS=1``
(stderr logs only), or programmatically with
``configure(ObsConfig(...))``.
"""

from .log import (
    ENV_DIR,
    ENV_ENABLE,
    ENV_LEVEL,
    LEVELS,
    Logger,
    ObsConfig,
    autoconfigure,
    bind,
    configure,
    context,
    crash_dump,
    current_config,
    dump_flight_recorder,
    enabled,
    get_logger,
    install_signal_dump,
    new_correlation_id,
)
from .metrics import (
    CONTENT_TYPE,
    DEFAULT_BUCKETS,
    MetricsRegistry,
    parse_exposition,
)
from .trace import (
    CAT_SERVICE,
    SERVICE_SCHEMA_VERSION,
    TRACE_HEADER,
    ServiceTracer,
    current_span,
    current_trace_header,
    format_trace_header,
    merge_service_traces,
    new_span_id,
    new_trace_id,
    parse_trace_header,
    service_tracer,
)

__all__ = [
    "ENV_DIR",
    "ENV_ENABLE",
    "ENV_LEVEL",
    "LEVELS",
    "Logger",
    "ObsConfig",
    "autoconfigure",
    "bind",
    "configure",
    "context",
    "crash_dump",
    "current_config",
    "dump_flight_recorder",
    "enabled",
    "get_logger",
    "install_signal_dump",
    "new_correlation_id",
    "CONTENT_TYPE",
    "DEFAULT_BUCKETS",
    "MetricsRegistry",
    "parse_exposition",
    "CAT_SERVICE",
    "SERVICE_SCHEMA_VERSION",
    "TRACE_HEADER",
    "ServiceTracer",
    "current_span",
    "current_trace_header",
    "format_trace_header",
    "merge_service_traces",
    "new_span_id",
    "new_trace_id",
    "parse_trace_header",
    "service_tracer",
]
