"""Structured JSON logging for the campaign service.

One process-global configuration (installed with :func:`configure` or the
environment-driven :func:`autoconfigure`) feeds every :class:`Logger` in the
process.  When no configuration is installed every log call is a single
``config is None`` branch -- the same zero-cost discipline the run telemetry
layer uses (``_tel is None``).

Records are one JSON object per line::

    {"ts": 1723100000.123, "level": "info", "component": "broker",
     "event": "claim.grant", "correlation_id": "a1b2c3", "campaign": "c...",
     "batch_id": "b...", ...}

Context fields (correlation id, campaign/batch/run ids, trace ids) are bound
with :func:`bind`, which stacks via ``contextvars`` so they survive into any
log call made below the ``with`` block -- including across the broker's
per-request handler threads.

Every emitted record is also appended to a bounded in-memory flight-recorder
ring; :func:`dump_flight_recorder` writes the ring (plus a config snapshot)
into a guard-style bundle directory for post-mortem debugging, and
:func:`install_signal_dump` wires that to ``SIGUSR1``.
"""

from __future__ import annotations

import contextlib
import json
import os
import signal
import sys
import tempfile
import threading
import time
import uuid
from collections import deque
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Any, Deque, Dict, IO, Iterator, Optional

__all__ = [
    "ObsConfig",
    "Logger",
    "configure",
    "autoconfigure",
    "enabled",
    "current_config",
    "get_logger",
    "bind",
    "context",
    "new_correlation_id",
    "dump_flight_recorder",
    "install_signal_dump",
    "crash_dump",
    "LEVELS",
]

LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}

ENV_ENABLE = "REPRO_OBS"          # "1"/"on" -> stderr sink, "0"/"off" -> force off
ENV_DIR = "REPRO_OBS_DIR"         # root dir: logs/<component>-<pid>.jsonl, traces/
ENV_LEVEL = "REPRO_OBS_LEVEL"     # debug | info | warning | error


@dataclass(frozen=True)
class ObsConfig:
    """Process-wide observability configuration.

    ``obs_dir`` is the root of the file sinks: structured logs go to
    ``<obs_dir>/logs/<component>-<pid>.jsonl`` and service-trace spans to
    ``<obs_dir>/traces/`` (one JSONL file per component+pid).  With no
    ``obs_dir`` the log sink is stderr and tracing is off.
    """

    component: str = "repro"
    obs_dir: Optional[str] = None
    level: str = "info"
    ring_size: int = 512

    @property
    def log_dir(self) -> Optional[str]:
        return os.path.join(self.obs_dir, "logs") if self.obs_dir else None

    @property
    def trace_dir(self) -> Optional[str]:
        return os.path.join(self.obs_dir, "traces") if self.obs_dir else None


class _State:
    """Mutable module-global: installed config, open sink, flight ring."""

    def __init__(self) -> None:
        self.config: Optional[ObsConfig] = None
        self.threshold: int = LEVELS["info"]
        self.sink: Optional[IO[str]] = None
        self.owns_sink: bool = False
        self.ring: Deque[Dict[str, Any]] = deque(maxlen=512)
        self.lock = threading.Lock()

    def write(self, record: Dict[str, Any]) -> None:
        with self.lock:
            self.ring.append(record)
            sink = self.sink
            if sink is not None:
                try:
                    sink.write(json.dumps(record, default=str) + "\n")
                    sink.flush()
                except (OSError, ValueError):
                    # A torn sink (disk full, closed fd at shutdown) must
                    # never take the service down with it.
                    pass


_STATE = _State()

# Context fields carried into every record logged below a bind() block.
_CTX: ContextVar[Optional[Dict[str, Any]]] = ContextVar("repro_obs_ctx", default=None)


def new_correlation_id() -> str:
    """A short unique id to stamp on one request / one unit of work."""
    return uuid.uuid4().hex[:12]


@contextlib.contextmanager
def bind(**fields: Any) -> Iterator[None]:
    """Bind context fields for the dynamic extent of the block."""
    current = _CTX.get() or {}
    token = _CTX.set({**current, **fields})
    try:
        yield
    finally:
        _CTX.reset(token)


def context() -> Dict[str, Any]:
    """The currently bound context fields (a copy)."""
    return dict(_CTX.get() or {})


class Logger:
    """A named emitter.  Cheap to construct; all state is module-global."""

    __slots__ = ("component",)

    def __init__(self, component: str) -> None:
        self.component = component

    def _log(self, level: str, event: str, fields: Dict[str, Any]) -> None:
        state = _STATE
        if state.config is None or LEVELS[level] < state.threshold:
            return
        record: Dict[str, Any] = {
            "ts": round(time.time(), 6),
            "level": level,
            "component": self.component,
            "pid": os.getpid(),
            "event": event,
        }
        ctx = _CTX.get()
        if ctx:
            record.update(ctx)
        if fields:
            record.update(fields)
        state.write(record)

    def debug(self, event: str, **fields: Any) -> None:
        self._log("debug", event, fields)

    def info(self, event: str, **fields: Any) -> None:
        self._log("info", event, fields)

    def warning(self, event: str, **fields: Any) -> None:
        self._log("warning", event, fields)

    def error(self, event: str, **fields: Any) -> None:
        self._log("error", event, fields)


def get_logger(component: str) -> Logger:
    """Loggers are valid whether or not obs is configured (no-op when off)."""
    return Logger(component)


def configure(config: Optional[ObsConfig]) -> Optional[ObsConfig]:
    """Install (or, with ``None``, tear down) the process configuration.

    Returns the previous configuration so tests can restore it.
    """
    state = _STATE
    with state.lock:
        previous = state.config
        if state.owns_sink and state.sink is not None:
            try:
                state.sink.close()
            except OSError:
                pass
        state.sink = None
        state.owns_sink = False
        state.config = config
        if config is None:
            state.threshold = LEVELS["info"]
        else:
            state.threshold = LEVELS.get(config.level, LEVELS["info"])
            state.ring = deque(state.ring, maxlen=max(1, config.ring_size))
            log_dir = config.log_dir
            if log_dir:
                os.makedirs(log_dir, exist_ok=True)
                path = os.path.join(
                    log_dir, f"{config.component}-{os.getpid()}.jsonl"
                )
                state.sink = open(path, "a", encoding="utf-8")
                state.owns_sink = True
            else:
                state.sink = sys.stderr
    # Service tracers hold per-config sinks; reset them on any reconfigure.
    from . import trace as _trace

    _trace.reset_tracers()
    return previous


def autoconfigure(component: str, obs_dir: Optional[str] = None) -> bool:
    """Configure from the environment; the CLI entry points call this.

    ``REPRO_OBS=0`` forces observability off, ``REPRO_OBS=1`` enables a
    stderr log sink, and ``REPRO_OBS_DIR=<dir>`` enables file sinks (logs
    *and* service traces).  An explicit ``obs_dir`` argument (from a
    ``--obs-dir`` flag) wins over the environment.  Returns whether
    observability ended up enabled.
    """
    flag = os.environ.get(ENV_ENABLE, "").strip().lower()
    if flag in ("0", "off", "false", "no"):
        configure(None)
        return False
    if obs_dir is None:
        obs_dir = os.environ.get(ENV_DIR) or None
    if obs_dir is None and flag not in ("1", "on", "true", "yes", "stderr"):
        # Nothing asked for: leave whatever is installed (tests may have
        # configured programmatically before calling a CLI helper).
        return enabled()
    level = os.environ.get(ENV_LEVEL, "info").strip().lower()
    if level not in LEVELS:
        level = "info"
    configure(ObsConfig(component=component, obs_dir=obs_dir, level=level))
    return True


def enabled() -> bool:
    return _STATE.config is not None


def current_config() -> Optional[ObsConfig]:
    return _STATE.config


# ---------------------------------------------------------------------------
# Flight recorder
# ---------------------------------------------------------------------------

def dump_flight_recorder(reason: str = "manual") -> Optional[str]:
    """Write the in-memory ring into a guard-style bundle directory.

    The bundle is ``obs-bundle-<component>-<pid>-<n>/flight.json`` under the
    configured ``obs_dir`` (or the system temp dir when logging to stderr).
    Returns the bundle path, or ``None`` when observability is disabled.
    """
    state = _STATE
    config = state.config
    if config is None:
        return None
    with state.lock:
        events = list(state.ring)
    root = config.obs_dir or tempfile.gettempdir()
    base = f"obs-bundle-{config.component}-{os.getpid()}"
    bundle = os.path.join(root, base)
    n = 0
    while os.path.exists(bundle):
        n += 1
        bundle = os.path.join(root, f"{base}-{n}")
    os.makedirs(bundle, exist_ok=True)
    payload = {
        "kind": "obs_flight_recorder",
        "reason": reason,
        "dumped_at": round(time.time(), 6),
        "component": config.component,
        "pid": os.getpid(),
        "config": {
            "obs_dir": config.obs_dir,
            "level": config.level,
            "ring_size": config.ring_size,
        },
        "events": events,
    }
    path = os.path.join(bundle, "flight.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, default=str)
        fh.write("\n")
    return bundle


def install_signal_dump() -> bool:
    """Dump the flight recorder on SIGUSR1 (main thread only; best effort)."""
    if not hasattr(signal, "SIGUSR1"):
        return False

    def _handler(signum: int, frame: Any) -> None:  # pragma: no cover - signal
        bundle = dump_flight_recorder(reason="SIGUSR1")
        if bundle:
            print(f"[obs] flight recorder dumped to {bundle}", file=sys.stderr)

    try:
        signal.signal(signal.SIGUSR1, _handler)
    except ValueError:
        # Not the main thread (e.g. broker embedded in a test harness).
        return False
    return True


@contextlib.contextmanager
def crash_dump(component: str) -> Iterator[None]:
    """Dump the flight recorder when the block exits via an exception."""
    try:
        yield
    except (KeyboardInterrupt, SystemExit):
        raise
    except BaseException:
        bundle = dump_flight_recorder(reason="crash")
        if bundle:
            print(
                f"[obs] {component} crashed; flight recorder dumped to {bundle}",
                file=sys.stderr,
            )
        raise
