"""Implementation of the ``repro obs`` subcommands: tail, scrape, merge.

Argument parsing lives in :mod:`repro.cli`; these functions do the work and
are unit-testable with a string buffer as ``out``.
"""

from __future__ import annotations

import json
import sys
import time
import urllib.request
from pathlib import Path
from typing import IO, Iterator, List, Optional

from .log import LEVELS
from .metrics import parse_exposition
from .trace import merge_service_traces

__all__ = ["iter_log_records", "format_record", "cmd_tail", "cmd_scrape", "cmd_merge"]


def _log_files(path: Path) -> List[Path]:
    """A log file, an obs dir (-> its logs/), or a logs dir itself."""
    if path.is_file():
        return [path]
    root = path
    if (root / "logs").is_dir():
        root = root / "logs"
    if root.is_dir():
        return sorted(root.glob("*.jsonl"))
    raise FileNotFoundError(f"no structured logs at {path}")


def iter_log_records(path: Path) -> Iterator[dict]:
    """All records across the selected files, merged by timestamp."""
    records: List[dict] = []
    for name in _log_files(path):
        with open(name, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn tail line
                if isinstance(record, dict):
                    records.append(record)
    records.sort(key=lambda r: r.get("ts", 0))
    return iter(records)


_SKIP_KEYS = ("ts", "level", "component", "event", "pid")


def format_record(record: dict) -> str:
    ts = record.get("ts", 0)
    stamp = time.strftime("%H:%M:%S", time.localtime(ts)) if ts else "--:--:--"
    level = str(record.get("level", "?")).upper()[:4]
    head = (
        f"{stamp} {level:<4} {record.get('component', '?')}"
        f"[{record.get('pid', '?')}] {record.get('event', '?')}"
    )
    rest = " ".join(
        f"{k}={record[k]}" for k in record if k not in _SKIP_KEYS
    )
    return f"{head} {rest}".rstrip()


def cmd_tail(
    path: str,
    follow: bool = False,
    level: str = "debug",
    component: Optional[str] = None,
    as_json: bool = False,
    out: Optional[IO[str]] = None,
    poll_s: float = 0.5,
) -> int:
    """Print structured logs, optionally following like ``tail -f``."""
    out = out if out is not None else sys.stdout
    threshold = LEVELS.get(level, LEVELS["debug"])
    root = Path(path)

    def _emit(record: dict) -> None:
        if LEVELS.get(str(record.get("level")), 0) < threshold:
            return
        if component and record.get("component") != component:
            return
        if as_json:
            out.write(json.dumps(record, default=str) + "\n")
        else:
            out.write(format_record(record) + "\n")

    seen = 0
    try:
        while True:
            records = list(iter_log_records(root))
            for record in records[seen:]:
                _emit(record)
            seen = len(records)
            out.flush()
            if not follow:
                break
            time.sleep(poll_s)
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass
    return 0


def _scrape(url: str, timeout: float = 10.0) -> str:
    if "://" not in url:
        url = f"http://{url}"
    if not url.rstrip("/").endswith("/metrics"):
        url = url.rstrip("/") + "/metrics"
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return resp.read().decode("utf-8")


def cmd_scrape(
    url: str,
    diff_s: Optional[float] = None,
    out: Optional[IO[str]] = None,
) -> int:
    """Scrape a broker's /metrics; with ``diff_s``, show what moved."""
    out = out if out is not None else sys.stdout
    first = _scrape(url)
    if diff_s is None:
        out.write(first)
        return 0
    time.sleep(diff_s)
    second = _scrape(url)
    before, _ = parse_exposition(first)
    after, _ = parse_exposition(second)
    moved = []
    for key, value in sorted(after.items()):
        delta = value - before.get(key, 0.0)
        if delta:
            name, labels = key
            label_text = ",".join(f"{k}={v}" for k, v in sorted(labels))
            suffix = f"{{{label_text}}}" if label_text else ""
            moved.append((f"{name}{suffix}", delta, value))
    out.write(f"# {len(moved)} series changed over {diff_s:g}s\n")
    for name, delta, value in moved:
        out.write(f"{name} +{delta:g} (now {value:g})\n")
    return 0


def cmd_merge(
    trace_dir: str,
    out_path: Optional[str] = None,
    out: Optional[IO[str]] = None,
) -> int:
    """Merge per-process service traces; validate; non-zero exit on problems."""
    out = out if out is not None else sys.stdout
    from repro.telemetry.trace_schema import validate_trace

    doc = merge_service_traces(trace_dir, out_path=out_path)
    events = doc["traceEvents"]
    other = doc["otherData"]
    problems = validate_trace(doc)
    spans = sum(1 for e in events if e.get("ph") == "b")
    out.write(
        f"merged {len(other['sources'])} file(s): {len(events)} events, "
        f"{spans} spans, {len(other['trace_ids'])} trace id(s)"
        + (f", {other['spans_truncated']} truncated" if other["spans_truncated"] else "")
        + (f" -> {out_path}" if out_path else "")
        + "\n"
    )
    if problems:
        for problem in problems:
            out.write(f"SCHEMA: {problem}\n")
        return 1
    return 0
