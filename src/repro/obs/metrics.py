"""Lock-safe metrics registry with a Prometheus text exposition writer.

Stdlib-only: counters, gauges, and histograms, each optionally labelled,
rendered in the Prometheus text format 0.0.4 so any scraper (or ``curl``)
can consume ``GET /metrics`` on the broker.

Design notes:

- Each family carries its own lock; ``inc``/``set``/``observe`` never take
  a registry-wide lock, so hot paths in the broker only contend with the
  scrape thread for the one family they touch.
- Callback families (:meth:`MetricsRegistry.counter_func` /
  :meth:`MetricsRegistry.gauge_func`) evaluate a function at render time.
  The callback is invoked *without* any metrics lock held, so it may take
  application locks (the broker's) without lock-order cycles.
- :func:`parse_exposition` is the inverse used by tests and by
  ``repro obs scrape --diff``.
"""

from __future__ import annotations

import re
import threading
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_BUCKETS",
    "CONTENT_TYPE",
    "parse_exposition",
]

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

# Latency buckets in seconds, tuned for sub-ms fsyncs up to multi-second
# batch ingests.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

LabelValues = Tuple[str, ...]


def _escape(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _fmt(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, bool):  # bool is an int subclass; be explicit
        return "1" if value else "0"
    if isinstance(value, int) or (isinstance(value, float) and value.is_integer()):
        return str(int(value))
    return repr(float(value))


def _label_str(names: Sequence[str], values: LabelValues) -> str:
    if not names:
        return ""
    parts = [f'{n}="{_escape(v)}"' for n, v in zip(names, values)]
    return "{" + ",".join(parts) + "}"


class _Family:
    kind = "untyped"

    def __init__(self, name: str, help_text: str, label_names: Sequence[str]) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name: {name!r}")
        for label in label_names:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name: {label!r}")
        self.name = name
        self.help = help_text
        self.label_names = tuple(label_names)
        self._lock = threading.Lock()

    def _key(self, labels: Dict[str, str]) -> LabelValues:
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"{self.name}: expected labels {self.label_names}, got {tuple(labels)}"
            )
        return tuple(str(labels[n]) for n in self.label_names)

    def header(self) -> List[str]:
        lines = []
        if self.help:
            lines.append(f"# HELP {self.name} {self.help}")
        lines.append(f"# TYPE {self.name} {self.kind}")
        return lines

    def render(self) -> List[str]:  # pragma: no cover - overridden
        raise NotImplementedError


class Counter(_Family):
    kind = "counter"

    def __init__(self, name: str, help_text: str, label_names: Sequence[str]) -> None:
        super().__init__(name, help_text, label_names)
        self._values: Dict[LabelValues, float] = {}

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        key = self._key(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def render(self) -> List[str]:
        lines = self.header()
        with self._lock:
            items = sorted(self._values.items())
        if not items and not self.label_names:
            items = [((), 0.0)]
        for key, value in items:
            lines.append(f"{self.name}{_label_str(self.label_names, key)} {_fmt(value)}")
        return lines


class Gauge(_Family):
    kind = "gauge"

    def __init__(self, name: str, help_text: str, label_names: Sequence[str]) -> None:
        super().__init__(name, help_text, label_names)
        self._values: Dict[LabelValues, float] = {}

    def set(self, value: float, **labels: str) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: str) -> float:
        key = self._key(labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def render(self) -> List[str]:
        lines = self.header()
        with self._lock:
            items = sorted(self._values.items())
        if not items and not self.label_names:
            items = [((), 0.0)]
        for key, value in items:
            lines.append(f"{self.name}{_label_str(self.label_names, key)} {_fmt(value)}")
        return lines


class _FuncFamily(_Family):
    """A family whose samples come from a callback evaluated at render time.

    The callback returns either a plain number (no labels) or an iterable of
    ``(label_values_tuple, value)`` pairs.  It runs without any metrics lock
    held so it is free to take application locks.
    """

    def __init__(
        self,
        name: str,
        help_text: str,
        label_names: Sequence[str],
        fn: Callable[[], object],
        kind: str,
    ) -> None:
        super().__init__(name, help_text, label_names)
        self.kind = kind
        self._fn = fn

    def render(self) -> List[str]:
        lines = self.header()
        try:
            result = self._fn()
        except Exception:  # a broken callback must not break the scrape
            return lines
        if isinstance(result, (int, float)):
            samples: Iterable[Tuple[LabelValues, float]] = [((), float(result))]
        else:
            samples = result  # type: ignore[assignment]
        for key, value in sorted(samples):
            key = tuple(str(k) for k in key)
            lines.append(f"{self.name}{_label_str(self.label_names, key)} {_fmt(value)}")
        return lines


class Histogram(_Family):
    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        label_names: Sequence[str],
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help_text, label_names)
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket")
        self._counts: Dict[LabelValues, List[int]] = {}
        self._sums: Dict[LabelValues, float] = {}
        self._totals: Dict[LabelValues, int] = {}

    def observe(self, value: float, **labels: str) -> None:
        key = self._key(labels)
        with self._lock:
            counts = self._counts.get(key)
            if counts is None:
                counts = [0] * len(self.buckets)
                self._counts[key] = counts
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    counts[i] += 1
            self._sums[key] = self._sums.get(key, 0.0) + value
            self._totals[key] = self._totals.get(key, 0) + 1

    def count(self, **labels: str) -> int:
        key = self._key(labels)
        with self._lock:
            return self._totals.get(key, 0)

    def sum(self, **labels: str) -> float:
        key = self._key(labels)
        with self._lock:
            return self._sums.get(key, 0.0)

    def render(self) -> List[str]:
        lines = self.header()
        with self._lock:
            keys = sorted(self._totals)
            counts = {k: list(self._counts[k]) for k in keys}
            sums = dict(self._sums)
            totals = dict(self._totals)
        for key in keys:
            for i, bound in enumerate(self.buckets):
                labels = dict(zip(self.label_names, key))
                label_items = list(labels.items()) + [("le", _fmt(bound))]
                names = [n for n, _ in label_items]
                values = tuple(v for _, v in label_items)
                lines.append(
                    f"{self.name}_bucket{_label_str(names, values)} {counts[key][i]}"
                )
            inf_items = list(zip(self.label_names, key)) + [("le", "+Inf")]
            names = [n for n, _ in inf_items]
            values = tuple(v for _, v in inf_items)
            lines.append(f"{self.name}_bucket{_label_str(names, values)} {totals[key]}")
            base = _label_str(self.label_names, key)
            lines.append(f"{self.name}_sum{base} {_fmt(sums[key])}")
            lines.append(f"{self.name}_count{base} {totals[key]}")
        return lines


class MetricsRegistry:
    """An ordered collection of metric families with a text renderer."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: Dict[str, _Family] = {}

    def _register(self, family: _Family) -> _Family:
        with self._lock:
            if family.name in self._families:
                raise ValueError(f"duplicate metric: {family.name}")
            self._families[family.name] = family
        return family

    def counter(self, name: str, help_text: str = "", labels: Sequence[str] = ()) -> Counter:
        return self._register(Counter(name, help_text, labels))  # type: ignore[return-value]

    def gauge(self, name: str, help_text: str = "", labels: Sequence[str] = ()) -> Gauge:
        return self._register(Gauge(name, help_text, labels))  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._register(Histogram(name, help_text, labels, buckets))  # type: ignore[return-value]

    def counter_func(
        self,
        name: str,
        fn: Callable[[], object],
        help_text: str = "",
        labels: Sequence[str] = (),
    ) -> None:
        self._register(_FuncFamily(name, help_text, labels, fn, "counter"))

    def gauge_func(
        self,
        name: str,
        fn: Callable[[], object],
        help_text: str = "",
        labels: Sequence[str] = (),
    ) -> None:
        self._register(_FuncFamily(name, help_text, labels, fn, "gauge"))

    def render(self) -> str:
        with self._lock:
            families = list(self._families.values())
        lines: List[str] = []
        for family in families:
            lines.extend(family.render())
        return "\n".join(lines) + "\n" if lines else ""


# ---------------------------------------------------------------------------
# Parsing (tests + `repro obs scrape --diff`)
# ---------------------------------------------------------------------------

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>[^\s]+)\s*$"
)
_LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


_ESCAPE_RE = re.compile(r"\\(.)")


def _unescape(value: str) -> str:
    # Single left-to-right pass: sequential str.replace would corrupt an
    # escaped backslash followed by a literal 'n' (\\n -> newline).
    return _ESCAPE_RE.sub(
        lambda m: "\n" if m.group(1) == "n" else m.group(1), value
    )


def parse_exposition(text: str) -> Tuple[Dict[Tuple[str, frozenset], float], Dict[str, str]]:
    """Parse Prometheus text exposition.

    Returns ``(samples, types)`` where ``samples`` maps
    ``(sample_name, frozenset(label_items))`` to the numeric value and
    ``types`` maps family names to their declared TYPE.
    """
    samples: Dict[Tuple[str, frozenset], float] = {}
    types: Dict[str, str] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 4 and parts[1] == "TYPE":
                types[parts[2]] = parts[3]
            continue
        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError(f"unparseable exposition line: {raw!r}")
        value_text = match.group("value")
        if value_text == "+Inf":
            value = float("inf")
        elif value_text == "-Inf":
            value = float("-inf")
        else:
            value = float(value_text)
        labels = {}
        label_blob = match.group("labels")
        if label_blob:
            for name, val in _LABEL_PAIR_RE.findall(label_blob):
                labels[name] = _unescape(val)
        samples[(match.group("name"), frozenset(labels.items()))] = value
    return samples, types


def counter_samples(
    samples: Dict[Tuple[str, frozenset], float],
    types: Dict[str, str],
) -> Dict[Tuple[str, frozenset], float]:
    """Filter a parsed exposition down to counter-typed samples.

    Histogram ``_bucket``/``_count``/``_sum`` series are cumulative too and
    are included (they must also be monotone between scrapes).
    """
    out = {}
    for (name, labels), value in samples.items():
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in types:
                base = name[: -len(suffix)]
                break
        kind = types.get(base)
        if kind == "counter" or (kind == "histogram"):
            out[(name, labels)] = value
    return out
