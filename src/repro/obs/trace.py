"""Cross-process service tracing in the Perfetto trace-event schema.

A *trace id* is minted once per campaign (by the coordinator) and rides in
campaign/batch metadata and in the ``X-Repro-Trace`` HTTP header, so the
broker and every runner can parent their spans onto the same campaign tree:

    campaign (coordinator)
      └─ enqueue (coordinator)
      └─ claim (broker, per batch)
           └─ batch-run (runner)
                └─ ingest (broker)

Each span is one ``b``/``e`` async event pair in the category ``service``
with its *own* event ``id`` (the span id) -- that keeps the schema's
balance check exact and lets :mod:`repro.telemetry.timeline` pair spans
without cross-process nesting assumptions.  The campaign-wide trace id and
the parent span id live in ``args``::

    {"ph": "b", "cat": "service", "id": "4f2a9c01", "name": "batch-run",
     "pid": 98765, "tid": 0, "ts": 1723100000123456,
     "args": {"trace_id": "c0ffee...", "span_id": "4f2a9c01",
              "parent_span_id": "ab34cd56", "component": "runner", ...}}

Every process appends its spans to ``<obs_dir>/traces/<component>-<pid>.jsonl``;
:func:`merge_service_traces` folds all of them into one schema-version-2
Perfetto document (``repro obs merge``).
"""

from __future__ import annotations

import glob
import json
import os
import threading
import time
import uuid
from contextvars import ContextVar
from pathlib import Path
from typing import Any, Dict, IO, List, Optional, Tuple, Union

__all__ = [
    "CAT_SERVICE",
    "TRACE_HEADER",
    "SERVICE_SCHEMA_VERSION",
    "new_trace_id",
    "new_span_id",
    "format_trace_header",
    "parse_trace_header",
    "current_trace_header",
    "current_span",
    "ServiceTracer",
    "Span",
    "service_tracer",
    "reset_tracers",
    "merge_service_traces",
]

CAT_SERVICE = "service"
TRACE_HEADER = "X-Repro-Trace"
SERVICE_SCHEMA_VERSION = 2

# Stable per-component offset so components sharing one OS process (the
# in-process broker of `local_service` or the chaos harness) still render
# as separate Perfetto process tracks.
_COMPONENT_SLOT = {"coordinator": 1, "broker": 2, "runner": 3}


def new_trace_id() -> str:
    return uuid.uuid4().hex[:16]


def new_span_id() -> str:
    return uuid.uuid4().hex[:8]


def format_trace_header(trace_id: str, span_id: str) -> str:
    return f"{trace_id}-{span_id}"


def parse_trace_header(value: Optional[str]) -> Optional[Tuple[str, str]]:
    """``"<trace_id>-<span_id>"`` -> ``(trace_id, span_id)`` or ``None``."""
    if not value:
        return None
    parts = value.strip().split("-")
    if len(parts) != 2 or not all(p and all(c in "0123456789abcdef" for c in p)
                                  for p in parts):
        return None
    return parts[0], parts[1]


# The active span of the current task/thread; BrokerClient reads this to
# stamp X-Repro-Trace on outgoing requests.
_ACTIVE: ContextVar[Optional[Tuple[str, str]]] = ContextVar(
    "repro_obs_span", default=None
)


def current_span() -> Optional[Tuple[str, str]]:
    return _ACTIVE.get()


def current_trace_header() -> Optional[str]:
    active = _ACTIVE.get()
    if active is None:
        return None
    return format_trace_header(*active)


def _now_us() -> int:
    return int(time.time() * 1e6)


class Span:
    """Context manager emitting one b/e pair and binding the active span."""

    __slots__ = ("tracer", "name", "trace_id", "span_id", "parent_span_id",
                 "args", "_token", "_t0")

    def __init__(
        self,
        tracer: "ServiceTracer",
        name: str,
        trace_id: str,
        parent_span_id: Optional[str],
        args: Optional[Dict[str, Any]],
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = new_span_id()
        self.parent_span_id = parent_span_id
        self.args = dict(args or {})

    def header(self) -> str:
        return format_trace_header(self.trace_id, self.span_id)

    def __enter__(self) -> "Span":
        self._t0 = _now_us()
        self._token = _ACTIVE.set((self.trace_id, self.span_id))
        self.tracer._emit_span_event("b", self, self._t0)
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        _ACTIVE.reset(self._token)
        end_args = {}
        if exc_type is not None:
            end_args["error"] = exc_type.__name__
        self.tracer._emit_span_event("e", self, _now_us(), extra=end_args)

    # For spans that outlive one lexical block (the coordinator's
    # campaign span).  begin()/end() do not touch the active-span
    # contextvar; a span left open by a crash is closed (and counted as
    # truncated) by merge_service_traces.
    def begin(self) -> "Span":
        self.tracer._emit_span_event("b", self, _now_us())
        return self

    def end(self, **extra: Any) -> None:
        self.tracer._emit_span_event("e", self, _now_us(), extra=extra)


class ServiceTracer:
    """Appends service span events to one JSONL file per component+pid."""

    def __init__(self, component: str, path: Union[str, Path]) -> None:
        self.component = component
        self.pid = os.getpid() * 8 + _COMPONENT_SLOT.get(component, 0)
        self.path = str(path)
        self._lock = threading.Lock()
        self._fh: Optional[IO[str]] = open(self.path, "a", encoding="utf-8")
        self.emit({
            "ph": "M",
            "name": "process_name",
            "pid": self.pid,
            "tid": 0,
            "args": {"name": f"repro-{component}-{os.getpid()}"},
        })

    def emit(self, event: Dict[str, Any]) -> None:
        with self._lock:
            fh = self._fh
            if fh is None:
                return
            try:
                fh.write(json.dumps(event, default=str) + "\n")
                fh.flush()
            except (OSError, ValueError):
                pass

    def _emit_span_event(
        self,
        ph: str,
        span: Span,
        ts: int,
        extra: Optional[Dict[str, Any]] = None,
    ) -> None:
        args: Dict[str, Any] = {
            "trace_id": span.trace_id,
            "span_id": span.span_id,
            "component": self.component,
        }
        if span.parent_span_id:
            args["parent_span_id"] = span.parent_span_id
        args.update(span.args)
        if extra:
            args.update(extra)
        self.emit({
            "ph": ph,
            "cat": CAT_SERVICE,
            "id": span.span_id,
            "name": span.name,
            "pid": self.pid,
            "tid": 0,
            "ts": ts,
            "args": args,
        })

    def span(
        self,
        name: str,
        trace_id: str,
        parent: Optional[str] = None,
        args: Optional[Dict[str, Any]] = None,
    ) -> Span:
        return Span(self, name, trace_id, parent, args)

    def span_at(
        self,
        name: str,
        trace_id: str,
        t0_us: int,
        t1_us: int,
        parent: Optional[str] = None,
        args: Optional[Dict[str, Any]] = None,
    ) -> str:
        """Emit a retrospective span (measured with perf timers elsewhere)."""
        span = Span(self, name, trace_id, parent, args)
        self._emit_span_event("b", span, t0_us)
        self._emit_span_event("e", span, max(t0_us, t1_us))
        return span.span_id

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                try:
                    self._fh.close()
                except OSError:
                    pass
                self._fh = None


_TRACERS: Dict[str, ServiceTracer] = {}
_TRACERS_LOCK = threading.Lock()


def service_tracer(component: str) -> Optional[ServiceTracer]:
    """The per-process tracer for *component*, or ``None`` when tracing is off.

    Tracing is on exactly when observability is configured with an
    ``obs_dir`` (file sinks).  The result is cached per component so the
    broker, runners, and coordinator each keep one open spans file.
    """
    from . import log as _log

    config = _log.current_config()
    if config is None:
        return None
    trace_dir = config.trace_dir
    if not trace_dir:
        return None
    with _TRACERS_LOCK:
        tracer = _TRACERS.get(component)
        if tracer is None:
            os.makedirs(trace_dir, exist_ok=True)
            path = os.path.join(trace_dir, f"{component}-{os.getpid()}.jsonl")
            tracer = ServiceTracer(component, path)
            _TRACERS[component] = tracer
        return tracer


def reset_tracers() -> None:
    """Close and drop all cached tracers (called on every reconfigure)."""
    with _TRACERS_LOCK:
        for tracer in _TRACERS.values():
            tracer.close()
        _TRACERS.clear()


# ---------------------------------------------------------------------------
# Merging
# ---------------------------------------------------------------------------

def merge_service_traces(
    trace_dir: Union[str, Path],
    out_path: Optional[Union[str, Path]] = None,
) -> dict:
    """Fold every per-process span file into one Perfetto document.

    Accepts either the ``traces/`` directory itself or an ``obs_dir`` root
    that contains one.  Spans left open by a crashed process are closed
    with a synthetic ``e`` event at the latest observed timestamp (and
    counted in ``otherData.spans_truncated``) so the merged document always
    passes :func:`repro.telemetry.trace_schema.validate_trace`.
    """
    root = Path(trace_dir)
    if (root / "traces").is_dir():
        root = root / "traces"
    files = sorted(glob.glob(str(root / "*.jsonl")))
    events: List[dict] = []
    for name in files:
        with open(name, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn tail line from a killed process
                if isinstance(event, dict):
                    events.append(event)

    # Sort: metadata first, then by timestamp.
    events.sort(key=lambda e: (0 if e.get("ph") == "M" else 1, e.get("ts", 0)))

    # Repair unbalanced spans from crashed processes.
    opens: Dict[Tuple[str, str], dict] = {}
    for event in events:
        ph = event.get("ph")
        if ph not in ("b", "e"):
            continue
        key = (str(event.get("cat")), str(event.get("id")))
        if ph == "b":
            opens[key] = event
        else:
            opens.pop(key, None)
    max_ts = max((e.get("ts", 0) for e in events), default=0)
    truncated = 0
    for (cat, span_id), begin in sorted(opens.items()):
        truncated += 1
        events.append({
            "ph": "e",
            "cat": cat,
            "id": span_id,
            "name": begin.get("name", "?"),
            "pid": begin.get("pid", 0),
            "tid": begin.get("tid", 0),
            "ts": max_ts,
            "args": {"truncated": True},
        })

    trace_ids = sorted({
        event.get("args", {}).get("trace_id")
        for event in events
        if isinstance(event.get("args"), dict) and event["args"].get("trace_id")
    })
    doc = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema_version": SERVICE_SCHEMA_VERSION,
            "kind": "service",
            "generator": "repro.obs",
            "sources": [os.path.basename(f) for f in files],
            "trace_ids": trace_ids,
            "spans_truncated": truncated,
        },
    }
    if out_path is not None:
        out = Path(out_path)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(doc, indent=2, default=str) + "\n")
    return doc
