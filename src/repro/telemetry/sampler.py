"""The time-series sampler.

A self-rescheduling simulator event snapshots a fixed probe set every
``sample_every`` cycles.  The probes are strictly read-only: plain
attribute reads, ``len()`` of live structures, and reads that go through
:meth:`repro.common.stats.StatGroup` accessors -- whose ``set_sync``
flush is idempotent by contract, so observing a run mid-flight cannot
change where it ends up (pinned by the telemetry golden tests).

Termination: the tick only reschedules itself while *other* events are
pending.  Events are only created by events, so an empty queue during
the tick means the run has drained (or deadlocked) -- either way the
sampler must get out of the way rather than keep the heap non-empty
forever.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.telemetry.config import TelemetryConfig


class Sampler:
    """Cycle-driven probe snapshots for one machine."""

    def __init__(self, config: TelemetryConfig):
        self.config = config
        self.samples: List[dict] = []
        self.dropped = 0
        self._machine = None

    # -- lifecycle -----------------------------------------------------

    def start(self, machine) -> None:
        self._machine = machine
        every = self.config.sample_every
        if every > 0:
            machine.sim.schedule_at(machine.sim.now + every, self._tick)

    def _tick(self) -> None:
        machine = self._machine
        if machine is None:
            return
        if len(self.samples) >= self.config.max_samples:
            self.dropped += 1
        else:
            self.samples.append(self.sample_now())
        sim = machine.sim
        # Reschedule only while other work is pending (see module doc).
        if sim.pending_events > 0:
            sim.schedule_at(sim.now + self.config.sample_every, self._tick)

    def final_sample(self) -> None:
        """One closing snapshot at the current time (run completion)."""
        if self._machine is None:
            return
        if len(self.samples) >= self.config.max_samples:
            self.dropped += 1
            return
        sample = self.sample_now()
        if self.samples and self.samples[-1]["t"] == sample["t"]:
            self.samples[-1] = sample
        else:
            self.samples.append(sample)

    # -- probes --------------------------------------------------------

    def sample_now(self) -> dict:
        """Snapshot the probe set (documented in docs/architecture.md)."""
        machine = self._machine
        sim = machine.sim
        scheme = machine.scheme
        now = sim.now
        insts = 0
        rob = []
        core_insts = []
        for core in machine.cores:
            insts += core.inst_count
            rob.append(len(core.outstanding))
            core_insts.append(core.inst_count)

        sample: Dict[str, object] = {
            "t": now,
            "instructions": insts,
            "ipc": insts / now if now else 0.0,
            "rob": rob,
            "core_insts": core_insts,
            "pending_events": sim.pending_events,
        }

        hierarchy = getattr(scheme, "hierarchy", None)
        if hierarchy is not None:
            sample["llc_accesses"] = hierarchy.llc_access_count
            sample["llc_misses"] = hierarchy.llc_miss_count
            sample["mshr_outstanding"] = len(hierarchy.mshrs._entries)
            sample["mshr_overflow"] = len(hierarchy.mshrs._overflow)

        frontend = getattr(scheme, "frontend", None)
        if frontend is not None:
            sample["free_frames"] = frontend.free_queue.num_free

        # NOMAD back-end(s): PCSHR + page-copy-buffer occupancy.  A
        # DistributedBackend exposes .backends; a Backend is itself the
        # single element.
        backend = getattr(scheme, "backend", None)
        if backend is not None:
            backends = getattr(backend, "backends", None) or [backend]
            active = free = queued = in_use = hits = misses = 0
            for b in backends:
                active += b.outstanding_copies
                free += len(b._free)
                queued += len(b._cmd_waiters)
                in_use += b.buffers.in_use
                hits += b.stats.get("data_hits").value
                misses += b.stats.get("data_misses").value
            sample["active_copies"] = active
            sample["free_pcshrs"] = free
            sample["queued_copy_cmds"] = queued
            sample["copy_buffers_in_use"] = in_use
            sample["dc_data_hits"] = hits
            sample["dc_data_misses"] = misses
            probes = hits + misses
            sample["dc_data_hit_rate"] = hits / probes if probes else 0.0

        # TDC's blocking copy manager has no PCSHRs; its in-flight fill
        # set is the comparable occupancy probe.
        data_manager = getattr(scheme, "data_manager", None)
        if data_manager is not None and hasattr(data_manager, "_busy_fills"):
            sample["active_copies"] = len(data_manager._busy_fills)

        # DC access time through the StatGroup read path (exercises the
        # set_sync flush mid-run -- idempotent by contract).
        if hasattr(scheme, "stats") and "dc_access_time" in scheme.stats:
            mean = scheme.stats.get("dc_access_time")
            sample["dc_access_time_mean"] = mean.mean

        for label in ("hbm", "ddr"):
            device = getattr(scheme, label, None)
            if device is None:
                continue
            sample[f"{label}_row_hit_rate"] = device.row_hit_rate
            sample[f"{label}_bytes"] = {
                tc.name: b for tc, b in device.bytes_by_class().items()
            }
        return sample

    # -- derived series (for the tracer's counter events) --------------

    def counter_series(self, cycles_per_second: float):
        """Yield ``(name, ts, {series: value})`` per-window counter rows.

        Gauges are emitted as-is; cumulative probes (instructions,
        bytes) are differenced into per-window rates.
        """
        prev: Optional[dict] = None
        for s in self.samples:
            t = s["t"]
            yield ("rob_occupancy", t,
                   {f"core{i}": v for i, v in enumerate(s["rob"])})
            gauges = {}
            for key in ("active_copies", "copy_buffers_in_use",
                        "mshr_outstanding", "free_frames",
                        "queued_copy_cmds"):
                if key in s:
                    gauges[key] = s[key]
            if gauges:
                yield ("occupancy", t, gauges)
            if prev is not None:
                dt = t - prev["t"]
                if dt > 0:
                    dinst = s["instructions"] - prev["instructions"]
                    yield ("ipc_window", t, {"ipc": dinst / dt})
                    seconds = dt / cycles_per_second
                    for label in ("hbm", "ddr"):
                        cur = s.get(f"{label}_bytes")
                        if cur is None:
                            continue
                        old = prev.get(f"{label}_bytes", {})
                        rates = {
                            tc: (b - old.get(tc, 0)) / seconds / 1e9
                            for tc, b in cur.items()
                        }
                        if rates:
                            yield (f"{label}_gbps", t, rates)
            prev = s
