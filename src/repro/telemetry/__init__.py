"""Opt-in run observability: time-series sampling + Perfetto traces.

Public surface:

* :class:`TelemetryConfig` / :class:`Telemetry` -- attached via
  ``Machine.run(telemetry=...)`` or ``repro run --timeline``;
* :func:`as_telemetry` -- normalize ``True`` / config / telemetry
  arguments (mirrors ``repro.guard.as_guard``);
* ``repro.telemetry.timeline`` -- offline trace summaries
  (``repro timeline``), overlap fraction;
* ``repro.telemetry.trace_schema`` -- document validation.

Zero-cost when off: components carry a ``_tel = None`` class attribute
and pay one always-false branch per hook site; no Telemetry object, no
overhead (pinned by ``repro bench --check``).
"""

from __future__ import annotations

from repro.telemetry.config import (
    ALL_CATEGORIES,
    DEFAULT_CAMPAIGN_CATEGORIES,
    TelemetryConfig,
)
from repro.telemetry.core import Telemetry, as_telemetry
from repro.telemetry.heartbeat import HeartbeatStats, make_heartbeat

__all__ = [
    "ALL_CATEGORIES",
    "DEFAULT_CAMPAIGN_CATEGORIES",
    "HeartbeatStats",
    "Telemetry",
    "TelemetryConfig",
    "as_telemetry",
    "make_heartbeat",
]
