"""Telemetry configuration.

One frozen dataclass describes everything an observed run records: the
sampling cadence, which trace categories are armed, the output path for
the Perfetto timeline, and the caps that bound memory on long runs.
Serializable both ways so campaign workers can reconstruct it from a
payload dict (mirroring :class:`repro.guard.GuardConfig`).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Optional, Tuple

# Trace categories (the installable hook groups).
CAT_PAGE_COPY = "page_copy"
CAT_OS = "os"
CAT_MSHR = "mshr"
CAT_DRAM = "dram"
CAT_COUNTER = "counter"

ALL_CATEGORIES: Tuple[str, ...] = (
    CAT_PAGE_COPY, CAT_OS, CAT_MSHR, CAT_DRAM, CAT_COUNTER
)

# The dram category emits one span per 64 B burst; it is the only
# category armed on a truly hot path, so campaign-wide telemetry
# defaults leave it off (see repro.campaign.executor).
DEFAULT_CAMPAIGN_CATEGORIES: Tuple[str, ...] = (
    CAT_PAGE_COPY, CAT_OS, CAT_MSHR, CAT_COUNTER
)


@dataclass(frozen=True)
class TelemetryConfig:
    """Knobs of one observed run.

    ``sample_every`` of 0 disables the time-series sampler; an empty
    ``categories`` tuple disables the span tracer.  Both off leaves a
    Telemetry object that still produces a (trivially empty) document,
    so callers never special-case.
    """

    sample_every: int = 5000  # cycles between probe snapshots (0 = off)
    timeline_path: Optional[str] = None  # write Perfetto JSON here
    categories: Tuple[str, ...] = ALL_CATEGORIES
    max_samples: int = 100_000  # sampler stops past this (counted)
    max_trace_events: int = 500_000  # per-category drops counted past this
    window: int = 32  # samples/events kept in the crash window

    def __post_init__(self):
        unknown = set(self.categories) - set(ALL_CATEGORIES)
        if unknown:
            raise ValueError(
                f"unknown telemetry categories {sorted(unknown)}; "
                f"valid: {list(ALL_CATEGORIES)}"
            )

    def to_dict(self) -> dict:
        d = {f.name: getattr(self, f.name) for f in fields(self)}
        d["categories"] = list(self.categories)
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "TelemetryConfig":
        known = {f.name for f in fields(cls)}
        unknown = set(d) - known
        if unknown:
            raise ValueError(
                f"TelemetryConfig.from_dict: unknown keys {sorted(unknown)}"
            )
        kwargs = dict(d)
        if "categories" in kwargs:
            kwargs["categories"] = tuple(kwargs["categories"])
        return cls(**kwargs)
