"""Validation of the emitted trace-event documents.

``validate_trace`` returns a list of problems (empty = valid).  Used by
``repro timeline`` before summarizing, by the telemetry tests, and by
the CI telemetry-smoke job -- the schema documented in
:mod:`repro.telemetry.tracer` is a published contract, so drift must
fail loudly rather than silently producing Perfetto-unloadable JSON.

Schema versions:

* **1** -- single-run simulation traces (:mod:`repro.telemetry.tracer`).
* **2** -- adds the ``service`` category for cross-process campaign
  spans (:mod:`repro.obs.trace`): async ``b``/``e`` events whose
  ``args`` must carry the campaign-wide ``trace_id`` and their own
  ``span_id`` (equal to the event ``id``, which is what keeps the
  balance check exact across interleaved processes).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

ALLOWED_PHASES = {"M", "b", "e", "n", "X", "C"}
KNOWN_SCHEMA_VERSIONS = {1, 2}

#: Category of cross-process service spans (schema version 2+).
CAT_SERVICE = "service"

# Keys required per phase, beyond the universal ones.
_NEEDS_TS = {"b", "e", "n", "X", "C"}
_NEEDS_CAT_ID = {"b", "e", "n"}


def validate_trace(doc: object, max_problems: int = 20) -> List[str]:
    """Check *doc* against the telemetry trace schema."""
    problems: List[str] = []

    def _fail(msg: str) -> bool:
        problems.append(msg)
        return len(problems) >= max_problems

    if not isinstance(doc, dict):
        return [f"document must be a JSON object, got {type(doc).__name__}"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-list 'traceEvents'"]
    other = doc.get("otherData")
    schema_version = 1
    if not isinstance(other, dict):
        problems.append("missing or non-dict 'otherData'")
    elif not isinstance(other.get("schema_version"), int):
        problems.append("otherData.schema_version missing or not an int")
    elif other["schema_version"] not in KNOWN_SCHEMA_VERSIONS:
        problems.append(
            f"otherData.schema_version {other['schema_version']} not in "
            f"{sorted(KNOWN_SCHEMA_VERSIONS)}"
        )
    else:
        schema_version = other["schema_version"]
    if "samples" in doc and not isinstance(doc["samples"], list):
        problems.append("'samples' present but not a list")

    balance: Dict[Tuple[str, str], int] = {}
    for i, event in enumerate(events):
        if len(problems) >= max_problems:
            problems.append("... (further problems suppressed)")
            break
        if not isinstance(event, dict):
            if _fail(f"event[{i}]: not an object"):
                continue
            continue
        ph = event.get("ph")
        if ph not in ALLOWED_PHASES:
            _fail(f"event[{i}]: ph {ph!r} not in {sorted(ALLOWED_PHASES)}")
            continue
        if not isinstance(event.get("name"), str):
            _fail(f"event[{i}] (ph={ph}): missing string 'name'")
        if not isinstance(event.get("pid"), int):
            _fail(f"event[{i}] (ph={ph}): missing int 'pid'")
        if ph in _NEEDS_TS and not isinstance(event.get("ts"), (int, float)):
            _fail(f"event[{i}] (ph={ph}): missing numeric 'ts'")
        if ph in _NEEDS_CAT_ID:
            if not isinstance(event.get("cat"), str):
                _fail(f"event[{i}] (ph={ph}): async event missing 'cat'")
            if "id" not in event:
                _fail(f"event[{i}] (ph={ph}): async event missing 'id'")
            else:
                key = (str(event.get("cat")), str(event["id"]))
                if ph == "b":
                    balance[key] = balance.get(key, 0) + 1
                elif ph == "e":
                    balance[key] = balance.get(key, 0) - 1
            if event.get("cat") == CAT_SERVICE:
                if schema_version < 2:
                    _fail(
                        f"event[{i}]: 'service' category requires "
                        f"schema_version >= 2"
                    )
                elif ph == "b":
                    args = event.get("args")
                    if not isinstance(args, dict) or not isinstance(
                        args.get("trace_id"), str
                    ):
                        _fail(
                            f"event[{i}] (service b): args.trace_id "
                            f"missing or not a string"
                        )
                    elif args.get("span_id") != str(event.get("id")):
                        _fail(
                            f"event[{i}] (service b): args.span_id must "
                            f"equal the event id"
                        )
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                _fail(f"event[{i}] (ph=X): missing non-negative 'dur'")
        if ph == "C":
            args = event.get("args")
            if not isinstance(args, dict) or not all(
                isinstance(v, (int, float)) for v in args.values()
            ):
                _fail(f"event[{i}] (ph=C): args must map names to numbers")

    unbalanced = [key for key, n in balance.items() if n != 0]
    if unbalanced:
        sample = ", ".join(f"{cat}/{sid}" for cat, sid in unbalanced[:5])
        problems.append(
            f"{len(unbalanced)} async span(s) with unbalanced b/e events "
            f"(e.g. {sample})"
        )
    return problems
