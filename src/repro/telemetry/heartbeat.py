"""Heartbeat payloads: campaign progress as transportable telemetry.

PR 4 gave pool campaigns live ``done``/``heartbeat`` progress events;
the service layer needs the same signal to travel: a runner forwards
each event to the broker as a small JSON payload that carries rolling
throughput, the amortization-cache counters, and the recent
overlap-fraction samples the dashboard trends.  This module is the one
place that payload shape is defined, so the stderr progress printer,
the runner transport, and the dashboard stay in agreement.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

#: Completion timestamps kept for the rolling throughput window.
THROUGHPUT_WINDOW = 64
#: Overlap samples carried per heartbeat.
OVERLAP_WINDOW = 32


class HeartbeatStats:
    """Rolling runner-side state folded into each heartbeat."""

    def __init__(self, clock: Callable[[], float] = time.monotonic):
        self._clock = clock
        self._completions: Deque[Tuple[float, int]] = deque(
            maxlen=THROUGHPUT_WINDOW
        )
        self._overlaps: Deque[float] = deque(maxlen=OVERLAP_WINDOW)
        self.runs_observed = 0

    def observe(self, completed: int) -> None:
        """Record a progress event's cumulative completion count."""
        self._completions.append((self._clock(), int(completed)))
        self.runs_observed = max(self.runs_observed, int(completed))

    def observe_overlap(self, overlap_fraction: float) -> None:
        self._overlaps.append(float(overlap_fraction))

    def runs_per_sec(self) -> float:
        """Throughput over the retained completion window."""
        if len(self._completions) < 2:
            return 0.0
        (t0, c0), (t1, c1) = self._completions[0], self._completions[-1]
        if t1 <= t0 or c1 <= c0:
            return 0.0
        return (c1 - c0) / (t1 - t0)

    def recent_overlaps(self) -> List[float]:
        return list(self._overlaps)


def make_heartbeat(
    runner_id: str,
    progress: Dict[str, object],
    cache_counts: Dict[str, Dict[str, int]],
    stats: Optional[HeartbeatStats] = None,
    obs_counters: Optional[Dict[str, float]] = None,
) -> Dict[str, object]:
    """The canonical heartbeat payload.

    ``progress`` is a campaign progress-event info dict
    (``completed``/``outstanding``/``total``); ``cache_counts`` the
    transportable :func:`repro.harness.runner.cache_counts` sections.
    ``obs_counters`` are cumulative runner-process observability
    counters (backoff retries, batch wall-clock seconds, batches done)
    that the broker re-exports per runner on ``/metrics``.
    """
    payload: Dict[str, object] = {
        "runner_id": runner_id,
        "completed": int(progress.get("completed", 0)),
        "outstanding": int(progress.get("outstanding", 0)),
        "total": int(progress.get("total", 0)),
        "cache": {k: dict(v) for k, v in (cache_counts or {}).items()},
    }
    if stats is not None:
        payload["runs_per_sec"] = round(stats.runs_per_sec(), 4)
        payload["overlap_recent"] = [
            round(v, 4) for v in stats.recent_overlaps()
        ]
    if obs_counters:
        payload["obs"] = {k: round(float(v), 4)
                          for k, v in obs_counters.items()}
    return payload


def hit_rate(counts: Dict[str, int]) -> Optional[float]:
    """``hits / (hits + misses)`` of one cache section, or None."""
    hits = int(counts.get("hits", 0))
    misses = int(counts.get("misses", 0))
    if hits + misses == 0:
        return None
    return hits / (hits + misses)
