"""The span tracer: Chrome/Perfetto trace-event JSON.

Components with an installed tracer call the ``*_begin``/``*_end``/
``*_span`` methods below from one-branch hook sites (``if self._tel is
not None``).  Every method is append-only and strictly read-only with
respect to simulation state, which is what keeps traced runs
bit-identical to untraced ones.

Emitted document (the stable schema, version 1; validated by
:mod:`repro.telemetry.trace_schema`):

* JSON object with ``traceEvents`` (list), ``otherData`` (run metadata,
  ``schema_version``), ``samples`` (the sampler's time series; Perfetto
  ignores unknown top-level keys), ``displayTimeUnit``;
* timestamps are **CPU cycles** (Perfetto renders them as microseconds;
  ``otherData.cycles_per_second`` converts);
* phases used: ``M`` metadata (process/thread names), ``b``/``e``/``n``
  nestable async spans (page copies keyed by PCSHR generation, MSHR
  hold times keyed by line key -- these overlap, so they need async
  tracks), ``X`` complete events (OS stalls per core, eviction-daemon
  batches, DRAM bank service), ``C`` counters (sampler series).

Track layout: one ``pid`` per subsystem (``cores/os``, ``page_copies``,
``mshr``, one per DRAM device, ``counters``), ``tid`` rows within it
(cores, the daemon, ``chX.bankY``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.telemetry.config import (
    CAT_COUNTER,
    CAT_DRAM,
    CAT_MSHR,
    CAT_OS,
    CAT_PAGE_COPY,
    TelemetryConfig,
)

SCHEMA_VERSION = 1

PID_OS = 1  # cores + OS routines (X spans, one tid per core + daemon)
PID_COPY = 2  # page-copy lifecycles (async spans)
PID_MSHR = 3  # MSHR hold times (async spans)
PID_COUNTER = 4  # sampler counter series
PID_DRAM_BASE = 10  # one pid per DRAM device, assigned in order


class Tracer:
    """In-memory trace-event sink for one run."""

    def __init__(self, config: Optional[TelemetryConfig] = None):
        self.config = config if config is not None else TelemetryConfig()
        self.events: List[dict] = []
        self.dropped: Dict[str, int] = {}
        self._next_id = 1
        # Open async spans: key -> stack of (id, name) for copies,
        # key -> (id, start) for MSHRs, label -> start for OS batches.
        self._open_copies: Dict[object, List[Tuple[int, str]]] = {}
        self._open_mshrs: Dict[int, int] = {}
        self._open_os: Dict[object, Tuple[str, int]] = {}
        self._dram_pids: Dict[str, int] = {}
        self._dram_tids: Dict[Tuple[int, int, int], int] = {}
        self._os_tids: Dict[str, int] = {}
        # Span counts per (category, name) for summaries/bundles.
        self.span_counts: Dict[str, int] = {}

    # -- bookkeeping ---------------------------------------------------

    def _emit(self, cat: str, event: dict) -> bool:
        if len(self.events) >= self.config.max_trace_events:
            self.dropped[cat] = self.dropped.get(cat, 0) + 1
            return False
        self.events.append(event)
        return True

    def _count(self, label: str) -> None:
        self.span_counts[label] = self.span_counts.get(label, 0) + 1

    def _os_tid(self, label: str) -> int:
        tid = self._os_tids.get(label)
        if tid is None:
            tid = len(self._os_tids)
            self._os_tids[label] = tid
        return tid

    # -- page-copy lifecycles (async spans) ----------------------------

    def copy_begin(self, key, name: str, ts: int, args: dict) -> None:
        """A page copy was accepted (PCSHR allocated / blocking copy
        started).  ``key`` identifies the in-flight copy until its
        matching :meth:`copy_end`; concurrent reuse nests (LIFO)."""
        span_id = self._next_id
        self._next_id += 1
        if not self._emit(CAT_PAGE_COPY, {
            "ph": "b", "cat": CAT_PAGE_COPY, "id": span_id, "name": name,
            "pid": PID_COPY, "tid": 0, "ts": ts, "args": args,
        }):
            return
        self._open_copies.setdefault(key, []).append((span_id, name))
        self._count(f"copy.{name}")

    def copy_instant(self, key, phase: str, ts: int) -> None:
        """A sub-phase transition inside an open copy (launch / drain)."""
        stack = self._open_copies.get(key)
        if not stack:
            return
        span_id, name = stack[-1]
        self._emit(CAT_PAGE_COPY, {
            "ph": "n", "cat": CAT_PAGE_COPY, "id": span_id, "name": phase,
            "pid": PID_COPY, "tid": 0, "ts": ts,
        })

    def copy_end(self, key, ts: int, args: Optional[dict] = None) -> None:
        stack = self._open_copies.get(key)
        if not stack:
            return  # begin was dropped (event cap) or never traced
        span_id, name = stack.pop()
        if not stack:
            del self._open_copies[key]
        event = {
            "ph": "e", "cat": CAT_PAGE_COPY, "id": span_id, "name": name,
            "pid": PID_COPY, "tid": 0, "ts": ts,
        }
        if args:
            event["args"] = args
        self.events.append(event)  # never drop an end: keep b/e balanced

    # -- OS spans (complete events on per-core rows) -------------------

    def os_span(self, tid_label: str, name: str, ts: int, dur: int,
                args: Optional[dict] = None) -> None:
        """One finished OS interval (tag-miss stall on a core row)."""
        event = {
            "ph": "X", "cat": CAT_OS, "name": name, "pid": PID_OS,
            "tid": self._os_tid(tid_label), "ts": ts, "dur": dur,
        }
        if args:
            event["args"] = args
        if self._emit(CAT_OS, event):
            self._count(f"os.{name}")

    def os_begin(self, key, name: str, tid_label: str, ts: int) -> None:
        """Open interval closed later by :meth:`os_end` (daemon batches)."""
        self._open_os[key] = (name, ts, tid_label)

    def os_end(self, key, ts: int, args: Optional[dict] = None) -> None:
        opened = self._open_os.pop(key, None)
        if opened is None:
            return
        name, t0, tid_label = opened
        self.os_span(tid_label, name, t0, ts - t0, args)

    # -- MSHR hold times (async spans) ---------------------------------

    def mshr_begin(self, key: int, ts: int) -> None:
        if key in self._open_mshrs:
            return  # defensive: one entry per key at a time
        span_id = self._next_id
        self._next_id += 1
        if self._emit(CAT_MSHR, {
            "ph": "b", "cat": CAT_MSHR, "id": span_id, "name": "mshr",
            "pid": PID_MSHR, "tid": 0, "ts": ts,
            "args": {"key": key},
        }):
            self._open_mshrs[key] = span_id
            self._count("mshr")

    def mshr_end(self, key: int, ts: int) -> None:
        span_id = self._open_mshrs.pop(key, None)
        if span_id is None:
            return
        self.events.append({
            "ph": "e", "cat": CAT_MSHR, "id": span_id, "name": "mshr",
            "pid": PID_MSHR, "tid": 0, "ts": ts,
        })

    # -- DRAM bank service (complete events per bank row) --------------

    def dram_span(self, device: str, channel: int, bank: int, ts: int,
                  end: int, is_write: bool, traffic_class) -> None:
        pid = self._dram_pids.get(device)
        if pid is None:
            pid = PID_DRAM_BASE + len(self._dram_pids)
            self._dram_pids[device] = pid
        tid_key = (pid, channel, bank)
        tid = self._dram_tids.get(tid_key)
        if tid is None:
            tid = len([k for k in self._dram_tids if k[0] == pid])
            self._dram_tids[tid_key] = tid
        name = ("wr." if is_write else "rd.") + traffic_class.name
        if self._emit(CAT_DRAM, {
            "ph": "X", "cat": CAT_DRAM, "name": name, "pid": pid,
            "tid": tid, "ts": ts, "dur": end - ts,
        }):
            self._count(f"dram.{device}")

    # -- counters (from sampler snapshots, at finalize) ----------------

    def counter(self, name: str, ts: int, values: Dict[str, float]) -> None:
        self._emit(CAT_COUNTER, {
            "ph": "C", "cat": CAT_COUNTER, "name": name, "pid": PID_COUNTER,
            "tid": 0, "ts": ts, "args": dict(values),
        })

    # -- finalize ------------------------------------------------------

    def close_open_spans(self, ts: int) -> int:
        """Close anything still open (bounded runs / crashes); returns
        the number of spans closed, each flagged ``truncated``."""
        closed = 0
        for key in list(self._open_copies):
            while self._open_copies.get(key):
                self.copy_end(key, ts, args={"truncated": True})
                closed += 1
        for key in list(self._open_mshrs):
            self.mshr_end(key, ts)
            closed += 1
        for key in list(self._open_os):
            self.os_end(key, ts, args={"truncated": True})
            closed += 1
        return closed

    def metadata_events(self) -> List[dict]:
        """Process/thread name metadata for every track in use."""
        out: List[dict] = []

        def _meta(name: str, pid: int, args: dict, tid: int = 0) -> None:
            out.append({"ph": "M", "name": name, "pid": pid, "tid": tid,
                        "args": args})

        _meta("process_name", PID_OS, {"name": "cores / OS"})
        for label, tid in self._os_tids.items():
            _meta("thread_name", PID_OS, {"name": label}, tid=tid)
        _meta("process_name", PID_COPY, {"name": "page copies"})
        _meta("process_name", PID_MSHR, {"name": "LLC MSHRs"})
        _meta("process_name", PID_COUNTER, {"name": "counters"})
        for device, pid in self._dram_pids.items():
            _meta("process_name", pid, {"name": device})
        for (pid, channel, bank), tid in self._dram_tids.items():
            _meta("thread_name", pid,
                  {"name": f"ch{channel}.bank{bank}"}, tid=tid)
        return out
