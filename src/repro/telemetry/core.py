"""The telemetry runtime: install hooks, collect, finalize, summarize.

A :class:`Telemetry` object is attached to one run via
``Machine.run(telemetry=...)`` (or ``repro run --timeline``).  It owns a
:class:`~repro.telemetry.sampler.Sampler` and a
:class:`~repro.telemetry.tracer.Tracer` and wires the tracer into the
components whose categories are armed, using the same duck-typed
one-branch pattern as ``repro.guard``: each hooked class carries a
``_tel = None`` class attribute; installation sets an instance
attribute, uninstallation deletes it, and an un-observed run pays one
always-false branch per hook site.

Strictly read-only by construction: hooks append to in-memory lists and
never schedule, mutate, or reorder simulation state, so an observed run
is bit-identical to a bare one (pinned by the telemetry golden tests).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Union

from repro.telemetry.config import (
    CAT_DRAM,
    CAT_MSHR,
    CAT_OS,
    CAT_PAGE_COPY,
    TelemetryConfig,
)
from repro.telemetry.sampler import Sampler
from repro.telemetry.tracer import SCHEMA_VERSION, Tracer


class Telemetry:
    """Observability state of one run."""

    def __init__(self, config: Optional[TelemetryConfig] = None):
        self.config = config if config is not None else TelemetryConfig()
        self.sampler = Sampler(self.config)
        self.tracer = Tracer(self.config) if self.config.categories else None
        self.machine = None
        self.document: Optional[dict] = None
        self.summary: Optional[dict] = None
        self._hooked: list = []

    # -- lifecycle -----------------------------------------------------

    def install(self, machine) -> None:
        """Bind to a machine: arm tracer hooks, start the sampler."""
        self.machine = machine
        scheme = machine.scheme
        tracer = self.tracer
        if tracer is not None:
            cats = set(self.config.categories)
            targets = []
            if CAT_PAGE_COPY in cats:
                backend = getattr(scheme, "backend", None)
                if backend is not None:
                    targets.extend(getattr(backend, "backends", None)
                                   or [backend])
                data_manager = getattr(scheme, "data_manager", None)
                if data_manager is not None:
                    targets.append(data_manager)
            if CAT_OS in cats:
                frontend = getattr(scheme, "frontend", None)
                if frontend is not None:
                    targets.append(frontend)
            if CAT_MSHR in cats:
                hierarchy = getattr(scheme, "hierarchy", None)
                if hierarchy is not None:
                    targets.append(hierarchy)
            if CAT_DRAM in cats:
                for label in ("hbm", "ddr"):
                    device = getattr(scheme, label, None)
                    if device is not None:
                        targets.append(device)
            for target in targets:
                target._tel = tracer
                self._hooked.append(target)
        self.sampler.start(machine)

    def uninstall(self) -> None:
        """Drop every instance hook (back to the class-level ``None``)."""
        for target in self._hooked:
            try:
                del target._tel
            except AttributeError:
                pass
        self._hooked = []

    # -- crash support -------------------------------------------------

    def last_window(self) -> dict:
        """What the machine was doing just now (for crash bundles)."""
        window = self.config.window
        tail = []
        if self.tracer is not None:
            for e in self.tracer.events[-window:]:
                ph = e.get("ph")
                label = f"t={e.get('ts')} {ph} {e.get('cat')}.{e.get('name')}"
                tail.append(label)
        return {
            "samples": [dict(s) for s in self.sampler.samples[-window:]],
            "num_samples": len(self.sampler.samples),
            "trace_tail": tail,
            "num_trace_events": (
                len(self.tracer.events) if self.tracer is not None else 0
            ),
            "span_counts": (
                dict(self.tracer.span_counts)
                if self.tracer is not None else {}
            ),
        }

    # -- finalize ------------------------------------------------------

    def finalize(self, machine, result) -> dict:
        """Close spans, build + (optionally) write the trace document,
        and compute the summary.  Returns the summary dict."""
        from repro.telemetry.timeline import summarize_trace

        self.sampler.final_sample()
        truncated = 0
        if self.tracer is not None:
            truncated = self.tracer.close_open_spans(machine.sim.now)
        self.document = self._build_document(machine, result, truncated)
        if self.config.timeline_path:
            path = Path(self.config.timeline_path)
            if path.parent != Path(""):
                path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(json.dumps(self.document))
        self.summary = summarize_trace(self.document)
        return self.summary

    def _build_document(self, machine, result, truncated: int) -> dict:
        cps = machine.cfg.cycles_per_second
        events = []
        tracer = self.tracer
        if tracer is not None:
            from repro.telemetry.config import CAT_COUNTER

            if CAT_COUNTER in self.config.categories:
                for name, ts, values in self.sampler.counter_series(cps):
                    tracer.counter(name, ts, values)
            events = tracer.metadata_events() + tracer.events
        other = {
            "schema_version": SCHEMA_VERSION,
            "tool": "repro.telemetry",
            "scheme": machine.scheme.scheme_name,
            "workload": machine.workload_name,
            "cycles_per_second": cps,
            "sample_every": self.config.sample_every,
            "num_samples": len(self.sampler.samples),
            "samples_dropped": self.sampler.dropped,
            "events_dropped": dict(tracer.dropped) if tracer else {},
            "spans_truncated": truncated,
            "categories": list(self.config.categories),
        }
        if result is not None:
            other["runtime_cycles"] = result.runtime_cycles
            other["ipc"] = result.ipc
            other["stall_breakdown"] = dict(result.stall_breakdown)
            other["page_fills"] = result.page_fills
            other["page_writebacks"] = result.page_writebacks
        return {
            "traceEvents": events,
            "displayTimeUnit": "ns",
            "otherData": other,
            "samples": self.sampler.samples,
        }


def as_telemetry(
    value: Union[None, bool, dict, TelemetryConfig, Telemetry]
) -> Optional[Telemetry]:
    """Normalize the ``telemetry=`` argument accepted across the stack.

    ``None``/``False`` -> off; ``True`` -> default config; a
    :class:`TelemetryConfig` (or its dict form) -> fresh
    :class:`Telemetry`; a :class:`Telemetry` passes through.
    """
    if value is None or value is False:
        return None
    if isinstance(value, Telemetry):
        return value
    if isinstance(value, TelemetryConfig):
        return Telemetry(value)
    if isinstance(value, dict):
        return Telemetry(TelemetryConfig.from_dict(value))
    if value is True:
        return Telemetry(TelemetryConfig())
    raise TypeError(
        f"telemetry must be None, bool, dict, TelemetryConfig, or "
        f"Telemetry, not {type(value).__name__}"
    )
