"""Offline trace analysis: ``repro timeline`` and campaign summaries.

``summarize_trace`` reduces one trace document to the numbers the paper
argues about:

* **copy latency percentiles** -- fill/writeback span durations,
* **top stall sources** -- OS intervals aggregated by name, plus the
  run's stall breakdown from ``otherData``,
* **overlap fraction** -- the non-blocking claim as a single number:

      overlap = 1 - sum_i |fill_i ∩ U| / sum_i |fill_i|

  where ``U`` is the union of OS tag-miss stall intervals across cores.
  A blocking design (TDC) executes the whole copy inside the stall, so
  every fill is fully covered and the fraction is ~0; NOMAD's stall ends
  at command acceptance, leaving almost the whole copy overlapped with
  execution, so the fraction approaches 1.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.telemetry.config import CAT_OS, CAT_PAGE_COPY


def load_trace(path: Union[str, Path]) -> dict:
    return json.loads(Path(path).read_text())


# -- interval arithmetic ------------------------------------------------


def merge_intervals(intervals: List[Tuple[int, int]]) -> List[Tuple[int, int]]:
    """Union of half-open intervals, sorted and coalesced."""
    out: List[Tuple[int, int]] = []
    for start, end in sorted(i for i in intervals if i[1] > i[0]):
        if out and start <= out[-1][1]:
            if end > out[-1][1]:
                out[-1] = (out[-1][0], end)
        else:
            out.append((start, end))
    return out


def _covered(span: Tuple[int, int], union: List[Tuple[int, int]]) -> int:
    """|span ∩ union| given a merged, sorted union."""
    total = 0
    lo, hi = span
    for start, end in union:
        if end <= lo:
            continue
        if start >= hi:
            break
        total += min(hi, end) - max(lo, start)
    return total


def overlap_fraction(
    fills: List[Tuple[int, int]], os_spans: List[Tuple[int, int]]
) -> Optional[float]:
    """1 - (fill time covered by OS stalls) / (total fill time)."""
    total = sum(end - start for start, end in fills if end > start)
    if total <= 0:
        return None
    union = merge_intervals(os_spans)
    covered = sum(_covered(span, union) for span in fills if span[1] > span[0])
    return 1.0 - covered / total


# -- span extraction ----------------------------------------------------


def _async_spans(events: List[dict], cat: str) -> Dict[str, List[Tuple[int, int, str]]]:
    """``{name: [(start, end, id)]}`` for balanced b/e pairs in *cat*."""
    open_spans: Dict[str, List[Tuple[int, str]]] = {}
    out: Dict[str, List[Tuple[int, int, str]]] = {}
    for event in events:
        if event.get("cat") != cat:
            continue
        ph = event.get("ph")
        key = str(event.get("id"))
        if ph == "b":
            open_spans.setdefault(key, []).append(
                (event["ts"], event.get("name", ""))
            )
        elif ph == "e":
            stack = open_spans.get(key)
            if not stack:
                continue
            start, name = stack.pop()
            out.setdefault(name, []).append((start, event["ts"], key))
    return out


def _percentiles(durations: List[int]) -> dict:
    if not durations:
        return {"count": 0}
    ordered = sorted(durations)
    n = len(ordered)

    def _pct(p: float) -> int:
        idx = min(n - 1, max(0, int(p / 100.0 * n + 0.5) - 1))
        return ordered[idx]

    return {
        "count": n,
        "mean": sum(ordered) / n,
        "p50": _pct(50),
        "p95": _pct(95),
        "p99": _pct(99),
        "max": ordered[-1],
    }


# -- the summary --------------------------------------------------------


def summarize_trace(doc: dict) -> dict:
    """Reduce a trace document to the ``repro timeline`` summary."""
    events = doc.get("traceEvents", [])
    other = doc.get("otherData", {}) or {}
    samples = doc.get("samples", []) or []

    by_phase: Dict[str, int] = {}
    by_category: Dict[str, int] = {}
    for event in events:
        ph = event.get("ph", "?")
        by_phase[ph] = by_phase.get(ph, 0) + 1
        cat = event.get("cat")
        if cat:
            by_category[cat] = by_category.get(cat, 0) + 1

    copies = _async_spans(events, CAT_PAGE_COPY)
    fill_spans = [(s, e) for s, e, _ in copies.get("fill", [])]
    wb_spans = [(s, e) for s, e, _ in copies.get("writeback", [])]

    os_stalls: Dict[str, dict] = {}
    tag_miss_spans: List[Tuple[int, int]] = []
    for event in events:
        if event.get("cat") != CAT_OS or event.get("ph") != "X":
            continue
        name = event.get("name", "?")
        ts, dur = event["ts"], event.get("dur", 0)
        agg = os_stalls.setdefault(name, {"count": 0, "total_cycles": 0})
        agg["count"] += 1
        agg["total_cycles"] += dur
        if name == "tag_miss":
            tag_miss_spans.append((ts, ts + dur))
    for agg in os_stalls.values():
        agg["mean"] = agg["total_cycles"] / agg["count"]

    sample_stats: dict = {"count": len(samples)}
    if samples:
        for key, fn, out_key in (
            ("active_copies", max, "peak_active_copies"),
            ("mshr_outstanding", max, "peak_mshr_outstanding"),
            ("copy_buffers_in_use", max, "peak_copy_buffers_in_use"),
            ("free_frames", min, "min_free_frames"),
        ):
            values = [s[key] for s in samples if key in s]
            if values:
                sample_stats[out_key] = fn(values)

    # Merged service traces (schema v2, repro.obs): per-span-name latency
    # percentiles for the campaign -> enqueue -> claim -> batch-run ->
    # ingest tree, plus which components contributed events.
    service_spans = {
        name: _percentiles([e - s for s, e, _ in spans])
        for name, spans in sorted(_async_spans(events, "service").items())
    }
    service_components: Dict[str, int] = {}
    for event in events:
        if event.get("cat") != "service" or event.get("ph") != "b":
            continue
        component = (event.get("args") or {}).get("component", "?")
        service_components[component] = service_components.get(component, 0) + 1

    return {
        "scheme": other.get("scheme"),
        "workload": other.get("workload"),
        "runtime_cycles": other.get("runtime_cycles"),
        "ipc": other.get("ipc"),
        "events": len(events),
        "by_phase": by_phase,
        "by_category": by_category,
        "copies": {
            "fills": len(fill_spans),
            "writebacks": len(wb_spans),
            "fill_latency": _percentiles([e - s for s, e in fill_spans]),
            "writeback_latency": _percentiles([e - s for s, e in wb_spans]),
        },
        "service_spans": service_spans,
        "service_components": service_components,
        "trace_ids": other.get("trace_ids") or [],
        "os_stalls": os_stalls,
        "stall_breakdown": other.get("stall_breakdown"),
        "overlap_fraction": overlap_fraction(fill_spans, tag_miss_spans),
        "samples": sample_stats,
        "events_dropped": other.get("events_dropped", {}),
        "spans_truncated": other.get("spans_truncated", 0),
    }


def describe_summary(summary: dict) -> str:
    """Human-readable rendering of :func:`summarize_trace`."""
    head = f"{summary.get('scheme')}/{summary.get('workload')}"
    if summary.get("service_spans") and not summary.get("scheme"):
        head = "service campaign trace"
    lines = [
        f"timeline: {head} -- "
        f"{summary['events']} trace events, "
        f"{summary['samples'].get('count', 0)} samples"
    ]
    if summary.get("runtime_cycles"):
        lines.append(
            f"  runtime {summary['runtime_cycles']} cycles, "
            f"ipc {summary.get('ipc', 0.0):.3f}"
        )
    copies = summary["copies"]
    fl = copies["fill_latency"]
    if fl.get("count"):
        lines.append(
            f"  page fills: {copies['fills']} "
            f"(latency p50={fl['p50']} p95={fl['p95']} p99={fl['p99']} "
            f"max={fl['max']} cycles)"
        )
    wl = copies["writeback_latency"]
    if wl.get("count"):
        lines.append(
            f"  writebacks: {copies['writebacks']} "
            f"(latency p50={wl['p50']} p95={wl['p95']})"
        )
    frac = summary.get("overlap_fraction")
    if frac is not None:
        lines.append(
            f"  overlap fraction: {frac:.3f} "
            f"(fill time overlapped with execution; blocking designs ~0)"
        )
    service = summary.get("service_spans") or {}
    if service:
        trace_ids = summary.get("trace_ids") or []
        components = summary.get("service_components") or {}
        lines.append(
            f"  service spans ({len(trace_ids)} trace id(s); "
            + ", ".join(f"{k}:{v}" for k, v in sorted(components.items()))
            + "):"
        )
        order = ["campaign", "enqueue", "claim", "batch-run", "ingest"]
        ranked = sorted(
            service.items(),
            key=lambda kv: (order.index(kv[0]) if kv[0] in order else 99,
                            kv[0]),
        )
        for name, pct in ranked:
            if not pct.get("count"):
                continue
            lines.append(
                f"    {name}: {pct['count']} x p50={pct['p50'] / 1e3:.1f}ms "
                f"p95={pct['p95'] / 1e3:.1f}ms max={pct['max'] / 1e3:.1f}ms"
            )
    stalls = summary.get("os_stalls") or {}
    if stalls:
        lines.append("  top OS stall sources:")
        ranked = sorted(
            stalls.items(), key=lambda kv: -kv[1]["total_cycles"]
        )
        for name, agg in ranked[:5]:
            lines.append(
                f"    {name}: {agg['count']} x mean {agg['mean']:.0f} "
                f"cycles = {agg['total_cycles']} total"
            )
    breakdown = summary.get("stall_breakdown")
    if breakdown:
        parts = ", ".join(
            f"{k}={v:.3f}" for k, v in sorted(breakdown.items())
        )
        lines.append(f"  core stall breakdown: {parts}")
    peaks = {
        k: v for k, v in summary["samples"].items() if k != "count"
    }
    if peaks:
        parts = ", ".join(f"{k}={v}" for k, v in sorted(peaks.items()))
        lines.append(f"  sampled extremes: {parts}")
    dropped = summary.get("events_dropped") or {}
    if any(dropped.values()):
        lines.append(f"  WARNING: events dropped past cap: {dropped}")
    if summary.get("spans_truncated"):
        lines.append(
            f"  note: {summary['spans_truncated']} span(s) still open at "
            f"end of run (truncated)"
        )
    return "\n".join(lines)
