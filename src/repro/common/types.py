"""Core address arithmetic and access/traffic type definitions.

The simulated machine uses byte addresses throughout.  The OS-managed DRAM
cache schemes in the paper operate at the 4 KB page granularity, DRAM
channels transfer 64-byte bursts (one *sub-block*), and the SRAM hierarchy
uses 64-byte cache lines.  All time is in integer CPU cycles.
"""

from __future__ import annotations

import enum
from typing import Optional

PAGE_SIZE = 4096
CACHE_LINE_SIZE = 64
SUB_BLOCK_SIZE = 64
SUB_BLOCKS_PER_PAGE = PAGE_SIZE // SUB_BLOCK_SIZE

# Translated addresses with this bit set live in the DRAM cache (HBM)
# address space; without it they are physical DDR addresses.
DC_SPACE_BIT = 1 << 45

_PAGE_SHIFT = PAGE_SIZE.bit_length() - 1
_LINE_SHIFT = CACHE_LINE_SIZE.bit_length() - 1
_SUB_SHIFT = SUB_BLOCK_SIZE.bit_length() - 1


def vpn_of(addr: int) -> int:
    """Virtual (or physical) page number of a byte address."""
    return addr >> _PAGE_SHIFT


def page_offset(addr: int) -> int:
    """Byte offset within the 4 KB page."""
    return addr & (PAGE_SIZE - 1)


def line_of(addr: int) -> int:
    """Cache-line number of a byte address."""
    return addr >> _LINE_SHIFT


def sub_block_of(addr: int) -> int:
    """Sub-block index (0..63) of the address within its page."""
    return (addr & (PAGE_SIZE - 1)) >> _SUB_SHIFT


class AccessType(enum.IntEnum):
    """Kind of memory access issued by a core."""

    LOAD = 0
    STORE = 1


class TrafficClass(enum.IntEnum):
    """Why a DRAM burst was issued; used for bandwidth breakdowns (Fig. 10).

    DEMAND   -- read/write of application data at a DC controller
    METADATA -- DC tag/valid/dirty/LRU traffic (HW-based schemes only)
    FILL     -- page/line fills: reads from off-package, writes to DC
    WRITEBACK-- dirty evictions: reads from DC, writes to off-package
    PTW      -- page-table-walk memory traffic
    """

    DEMAND = 0
    METADATA = 1
    FILL = 2
    WRITEBACK = 3
    PTW = 4


class MemAccess:
    """One memory access travelling through the hierarchy.

    ``addr`` is the virtual address as issued by the core; schemes record
    translation results in ``paddr``/``cache_addr`` as the access moves
    through the TLB and DRAM cache layers.

    One instance is allocated per memory op, so this is a ``__slots__``
    class and ``is_write`` is resolved once at construction instead of
    being a property consulted at every hierarchy level.  ``meta`` stays
    ``None`` unless a caller supplies one (nothing on the demand path
    reads it, so the per-op empty dict would be pure allocation churn).
    """

    __slots__ = (
        "addr", "access_type", "core_id", "issue_time", "size",
        "paddr", "cache_addr", "meta", "is_write",
    )

    def __init__(
        self,
        addr: int,
        access_type: AccessType,
        core_id: int,
        issue_time: int,
        size: int = CACHE_LINE_SIZE,
        paddr: Optional[int] = None,
        cache_addr: Optional[int] = None,
        meta: Optional[dict] = None,
    ):
        self.addr = addr
        self.access_type = access_type
        self.core_id = core_id
        self.issue_time = issue_time
        self.size = size
        self.paddr = paddr
        self.cache_addr = cache_addr
        self.meta = meta
        self.is_write = access_type == AccessType.STORE

    @property
    def vpn(self) -> int:
        return vpn_of(self.addr)

    @property
    def sub_block(self) -> int:
        return sub_block_of(self.addr)

    def __repr__(self) -> str:
        return (
            f"MemAccess(addr={self.addr:#x}, {self.access_type.name}, "
            f"core={self.core_id}, t={self.issue_time})"
        )
