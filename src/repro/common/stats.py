"""Statistics primitives used throughout the simulator.

Every component owns a :class:`StatGroup` so the harness can pull a flat
dictionary of metrics after a run.  The types here cover everything the
paper's evaluation reports: counters (miss counts), running means (tag
management latency, DC access time), histograms (latency distributions),
and bandwidth meters split by :class:`~repro.common.types.TrafficClass`
(the Fig. 10 breakdown).

Components on the per-access hot path do not pay for these objects per
event: they accumulate plain int attributes and register a sync hook via
:meth:`StatGroup.set_sync` that flushes the totals into the group the
moment anyone *reads* it (``get``/``as_dict``/``names``/``in``).  The
flush is idempotent (it overwrites with totals rather than adding), so
repeated snapshots are safe.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Optional

from repro.common.types import TrafficClass


class Counter:
    """A monotonically increasing event counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class RunningMean:
    """Streaming mean/min/max without storing samples."""

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def add(self, sample: float) -> None:
        self.count += 1
        self.total += sample
        if self.min is None or sample < self.min:
            self.min = sample
        if self.max is None or sample > self.max:
            self.max = sample

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        self.count = 0
        self.total = 0
        self.min = None
        self.max = None

    def __repr__(self) -> str:
        return f"RunningMean({self.name}: n={self.count}, mean={self.mean:.2f})"


class Histogram:
    """A bucketed histogram with power-of-two or linear buckets."""

    __slots__ = ("name", "bucket_width", "buckets", "count", "total")

    def __init__(self, name: str, bucket_width: int = 0):
        """``bucket_width`` of 0 selects power-of-two bucketing."""
        self.name = name
        self.bucket_width = bucket_width
        self.buckets: Dict[int, int] = defaultdict(int)
        self.count = 0
        self.total = 0

    def _bucket(self, sample: int) -> int:
        if self.bucket_width:
            return (sample // self.bucket_width) * self.bucket_width
        if sample <= 0:
            return 0
        return 1 << (sample.bit_length() - 1)

    def add(self, sample: int) -> None:
        # _bucket() inlined: this runs once per DC access.
        width = self.bucket_width
        if width:
            bucket = (sample // width) * width
        elif sample <= 0:
            bucket = 0
        else:
            bucket = 1 << (sample.bit_length() - 1)
        self.buckets[bucket] += 1
        self.count += 1
        self.total += sample

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def items(self):
        return sorted(self.buckets.items())

    def percentile(self, p: float) -> int:
        """Approximate percentile (lower bucket bound); p in [0, 100]."""
        if not self.count:
            return 0
        target = self.count * p / 100.0
        seen = 0
        last = 0
        for bucket, n in self.items():
            seen += n
            last = bucket
            if seen >= target:
                return bucket
        return last


class BandwidthMeter:
    """Bytes transferred per traffic class; converts to GB/s on demand."""

    __slots__ = ("name", "bytes_by_class")

    def __init__(self, name: str):
        self.name = name
        self.bytes_by_class: Dict[TrafficClass, int] = defaultdict(int)

    def record(self, traffic_class: TrafficClass, num_bytes: int) -> None:
        self.bytes_by_class[traffic_class] += num_bytes

    @property
    def total_bytes(self) -> int:
        return sum(self.bytes_by_class.values())

    def gbps(self, elapsed_cycles: int, cycles_per_second: float) -> float:
        """Aggregate bandwidth in GB/s over ``elapsed_cycles``."""
        if elapsed_cycles <= 0:
            return 0.0
        seconds = elapsed_cycles / cycles_per_second
        return self.total_bytes / seconds / 1e9

    def class_gbps(
        self, traffic_class: TrafficClass, elapsed_cycles: int, cycles_per_second: float
    ) -> float:
        if elapsed_cycles <= 0:
            return 0.0
        seconds = elapsed_cycles / cycles_per_second
        return self.bytes_by_class[traffic_class] / seconds / 1e9

    def breakdown(self) -> Dict[str, float]:
        """Fraction of bytes per traffic class (sums to 1 when non-empty)."""
        total = self.total_bytes
        if not total:
            return {}
        return {tc.name: b / total for tc, b in self.bytes_by_class.items()}


class StatGroup:
    """A named collection of statistics owned by one component.

    A component that counts on its hot path with plain int attributes
    registers a flush hook via :meth:`set_sync`; the hook runs before
    any read of the group, so external observers always see totals.
    """

    __slots__ = ("name", "_stats", "_sync")

    def __init__(self, name: str):
        self.name = name
        self._stats: Dict[str, object] = {}
        self._sync: Optional[callable] = None

    def set_sync(self, hook) -> None:
        """Install ``hook()`` to flush owner-side counters before reads."""
        self._sync = hook

    def sync(self) -> None:
        """Flush owner-side counters now (idempotent by contract).

        Snapshots and crash bundles call this explicitly so the state
        they capture carries exact totals, not the stale StatGroup view.
        """
        if self._sync is not None:
            self._sync()

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def mean(self, name: str) -> RunningMean:
        return self._get_or_create(name, RunningMean)

    def histogram(self, name: str, bucket_width: int = 0) -> Histogram:
        if name not in self._stats:
            self._stats[name] = Histogram(name, bucket_width)
        stat = self._stats[name]
        if not isinstance(stat, Histogram):
            raise TypeError(f"stat {name!r} already exists with type {type(stat)}")
        return stat

    def bandwidth(self, name: str) -> BandwidthMeter:
        return self._get_or_create(name, BandwidthMeter)

    def _get_or_create(self, name: str, cls):
        if name not in self._stats:
            self._stats[name] = cls(name)
        stat = self._stats[name]
        if not isinstance(stat, cls):
            raise TypeError(f"stat {name!r} already exists with type {type(stat)}")
        return stat

    def __contains__(self, name: str) -> bool:
        if self._sync is not None:
            self._sync()
        return name in self._stats

    def names(self) -> Iterable[str]:
        if self._sync is not None:
            self._sync()
        return self._stats.keys()

    def get(self, name: str):
        if self._sync is not None:
            self._sync()
        return self._stats[name]

    def as_dict(self) -> Dict[str, object]:
        """Flatten to ``{stat_name: scalar}`` for reporting."""
        if self._sync is not None:
            self._sync()
        out: Dict[str, object] = {}
        for name, stat in self._stats.items():
            if isinstance(stat, Counter):
                out[name] = stat.value
            elif isinstance(stat, RunningMean):
                out[f"{name}.mean"] = stat.mean
                out[f"{name}.count"] = stat.count
                out[f"{name}.max"] = stat.max
            elif isinstance(stat, Histogram):
                out[f"{name}.mean"] = stat.mean
                out[f"{name}.count"] = stat.count
                out[f"{name}.p50"] = stat.percentile(50)
                out[f"{name}.p95"] = stat.percentile(95)
                out[f"{name}.p99"] = stat.percentile(99)
            elif isinstance(stat, BandwidthMeter):
                out[f"{name}.total_bytes"] = stat.total_bytes
                for tc, b in stat.bytes_by_class.items():
                    out[f"{name}.{tc.name}"] = b
        return out
