"""Fixed-width bit vectors used for PCSHR sub-block state (R/B/W vectors).

Each NOMAD PCSHR traces page-copy progress at the sub-block granularity
with three 64-bit vectors (Section III-D2 of the paper):

* R (read-issued)  -- a read transfer has been issued for the sub-block,
* B (in-buffer)    -- the sub-block's data sit in the page copy buffer,
* W (partial-write)-- the sub-block has been written to its destination.

``BitVector`` implements exactly the operations the back-end hardware
needs: set/test single bits, population count, find-first-zero (used by
the sequential fetch scheduler), and full/empty tests.
"""

from __future__ import annotations


class BitVector:
    """A fixed-width vector of bits backed by a Python int."""

    __slots__ = ("width", "_bits", "_full_mask")

    def __init__(self, width: int = 64, bits: int = 0):
        if width <= 0:
            raise ValueError(f"width must be positive, got {width}")
        self.width = width
        self._full_mask = (1 << width) - 1
        if bits & ~self._full_mask:
            raise ValueError(f"initial bits 0x{bits:x} exceed width {width}")
        self._bits = bits

    def _check(self, index: int) -> None:
        if not 0 <= index < self.width:
            raise IndexError(f"bit index {index} out of range [0, {self.width})")

    def set(self, index: int) -> None:
        self._check(index)
        self._bits |= 1 << index

    def clear(self, index: int) -> None:
        self._check(index)
        self._bits &= ~(1 << index)

    def test(self, index: int) -> bool:
        self._check(index)
        return bool(self._bits & (1 << index))

    def __getitem__(self, index: int) -> bool:
        return self.test(index)

    def __setitem__(self, index: int, value: bool) -> None:
        if value:
            self.set(index)
        else:
            self.clear(index)

    def set_all(self) -> None:
        self._bits = self._full_mask

    def clear_all(self) -> None:
        self._bits = 0

    def count(self) -> int:
        """Number of set bits (population count)."""
        return bin(self._bits).count("1")

    @property
    def all_set(self) -> bool:
        return self._bits == self._full_mask

    @property
    def any_set(self) -> bool:
        return self._bits != 0

    def first_zero(self, start: int = 0) -> int:
        """Index of the first clear bit at or after ``start``, or -1.

        The NOMAD back-end fetches sub-blocks sequentially by default
        (unless a prioritized sub-block index preempts), which is exactly a
        find-first-zero scan of the R vector.
        """
        if start == self.width:
            return -1
        if start < 0 or start > self.width:
            raise IndexError(f"start {start} out of range [0, {self.width}]")
        inverted = ~self._bits & self._full_mask
        inverted >>= start
        if inverted == 0:
            return -1
        # Least significant set bit of the inverted vector.
        return start + (inverted & -inverted).bit_length() - 1

    def to_int(self) -> int:
        return self._bits

    def copy(self) -> "BitVector":
        return BitVector(self.width, self._bits)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, BitVector):
            return self.width == other.width and self._bits == other._bits
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.width, self._bits))

    def __repr__(self) -> str:
        return f"BitVector(width={self.width}, bits=0x{self._bits:x})"

    def __iter__(self):
        bits = self._bits
        for _ in range(self.width):
            yield bool(bits & 1)
            bits >>= 1
