"""Shared primitives: address/access types, bit vectors, and statistics."""

from repro.common.bitvector import BitVector
from repro.common.stats import (
    BandwidthMeter,
    Counter,
    Histogram,
    RunningMean,
    StatGroup,
)
from repro.common.types import (
    AccessType,
    CACHE_LINE_SIZE,
    MemAccess,
    PAGE_SIZE,
    SUB_BLOCK_SIZE,
    SUB_BLOCKS_PER_PAGE,
    TrafficClass,
    line_of,
    page_offset,
    sub_block_of,
    vpn_of,
)

__all__ = [
    "AccessType",
    "BandwidthMeter",
    "BitVector",
    "CACHE_LINE_SIZE",
    "Counter",
    "Histogram",
    "MemAccess",
    "PAGE_SIZE",
    "RunningMean",
    "StatGroup",
    "SUB_BLOCK_SIZE",
    "SUB_BLOCKS_PER_PAGE",
    "TrafficClass",
    "line_of",
    "page_offset",
    "sub_block_of",
    "vpn_of",
]
