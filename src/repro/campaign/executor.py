"""Campaign execution: expand a grid, fan out, merge deterministically.

``run_campaign`` is the one entry point every grid in the repository
goes through -- ``run_matrix``, ``repro sweep``, ``repro compare`` and
the figure experiments all submit here.  It

1. expands the :class:`GridSpec` (or accepts an explicit config list),
2. serves what it can from the in-process memo cache and the persistent
   :class:`ResultStore`,
3. runs the remainder serially (``jobs <= 1``) or over a fault-tolerant
   process pool (``jobs > 1``), with per-campaign stall timeout and
   bounded retry of crashed/hung workers,
4. merges results back in grid order and reports a
   :class:`CampaignSummary` (completed/cached/failed + cache counters)
   instead of aborting the whole grid on one bad run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.campaign import pool as _pool
from repro.campaign.grid import GridSpec
from repro.harness import runner
from repro.harness.runner import RunConfig
from repro.system.machine import MachineResult

# Record statuses.
COMPLETED = "completed"  # freshly simulated this campaign
CACHED = "cached"  # served from the memo cache or the disk store
FAILED = "failed"  # simulation raised, or worker crashed out of retries
TIMEOUT = "timeout"  # hung out of retries


class CampaignError(RuntimeError):
    """Raised when a caller needs every run and some failed."""


@dataclass
class RunRecord:
    """One grid point's fate."""

    index: int
    config: RunConfig
    status: str
    result: Optional[MachineResult] = None
    source: str = ""  # "memo" | "store" | "simulated"
    error: str = ""
    attempts: int = 0

    def to_dict(self) -> dict:
        return {
            "config": self.config.to_dict(),
            "status": self.status,
            "source": self.source,
            "error": self.error,
            "attempts": self.attempts,
            "result": self.result.to_dict() if self.result else None,
        }


@dataclass
class CampaignSummary:
    """What the campaign did, for humans and for ``--json``."""

    total: int = 0
    completed: int = 0
    cached: int = 0
    failed: int = 0
    elapsed_s: float = 0.0
    memo: Dict[str, int] = field(default_factory=dict)
    store: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "total": self.total,
            "completed": self.completed,
            "cached": self.cached,
            "failed": self.failed,
            "elapsed_s": self.elapsed_s,
            "memo": dict(self.memo),
            "store": dict(self.store),
        }

    def describe(self) -> str:
        parts = [
            f"{self.total} runs: {self.completed} simulated, "
            f"{self.cached} cached, {self.failed} failed "
            f"in {self.elapsed_s:.2f}s"
        ]
        if self.memo:
            parts.append(
                f"memo cache: {self.memo.get('hits', 0)} hits / "
                f"{self.memo.get('misses', 0)} misses "
                f"({self.memo.get('size', 0)}/{self.memo.get('maxsize', 0)} entries)"
            )
        if self.store:
            parts.append(
                f"result store: {self.store.get('hits', 0)} hits / "
                f"{self.store.get('misses', 0)} misses / "
                f"{self.store.get('writes', 0)} writes at {self.store.get('root', '')}"
            )
        return "\n".join(parts)


class CampaignResult:
    """Ordered records plus the summary."""

    def __init__(self, records: List[RunRecord], summary: CampaignSummary):
        self.records = records
        self.summary = summary

    @property
    def ok(self) -> bool:
        return all(r.status in (COMPLETED, CACHED) for r in self.records)

    def failures(self) -> List[RunRecord]:
        return [r for r in self.records if r.status not in (COMPLETED, CACHED)]

    def results(self) -> List[Optional[MachineResult]]:
        return [r.result for r in self.records]

    def as_matrix(self) -> Dict[Tuple[str, str], MachineResult]:
        """``{(scheme, workload): result}``; raises on failures/collisions."""
        bad = self.failures()
        if bad:
            detail = "; ".join(
                f"{r.config.scheme}/{r.config.workload}: {r.status} ({r.error})"
                for r in bad[:5]
            )
            raise CampaignError(f"{len(bad)} campaign run(s) failed: {detail}")
        out: Dict[Tuple[str, str], MachineResult] = {}
        for rec in self.records:
            key = (rec.config.scheme, rec.config.workload)
            if key in out:
                raise CampaignError(
                    f"grid has multiple runs per {key}; use .records instead "
                    f"of .as_matrix()"
                )
            out[key] = rec.result
        return out

    def to_dict(self) -> dict:
        return {
            "runs": [r.to_dict() for r in self.records],
            "summary": self.summary.to_dict(),
        }


def _simulate_payload(payload: dict) -> dict:
    """Pool worker: dict in, dict out (keeps transport JSON-clean)."""
    cfg = RunConfig.from_dict(payload)
    return runner.run_workload(cfg).to_dict()


def run_campaign(
    grid: Union[GridSpec, Iterable[RunConfig]],
    jobs: int = 1,
    store=None,
    timeout: Optional[float] = None,
    retries: int = 1,
) -> CampaignResult:
    """Execute every run of *grid*; never raises for individual runs.

    ``store=None`` uses the globally installed result store (if any);
    pass a :class:`ResultStore` to use -- and install for the duration --
    a specific one.
    """
    t0 = time.monotonic()
    configs = grid.expand() if isinstance(grid, GridSpec) else list(grid)
    records: List[Optional[RunRecord]] = [None] * len(configs)

    effective_store = store if store is not None else runner.get_result_store()
    prev_store = runner.set_result_store(effective_store)
    try:
        pending: List[int] = []
        for i, cfg in enumerate(configs):
            result, source = runner.cached_result(cfg)
            if result is not None:
                records[i] = RunRecord(i, cfg, CACHED, result, source=source)
            else:
                pending.append(i)

        if jobs <= 1 or len(pending) <= 1:
            for i in pending:
                cfg = configs[i]
                try:
                    result = runner.run_workload(cfg)
                    records[i] = RunRecord(
                        i, cfg, COMPLETED, result, source="simulated", attempts=1
                    )
                except Exception as exc:
                    records[i] = RunRecord(
                        i, cfg, FAILED,
                        error=f"{type(exc).__name__}: {exc}", attempts=1,
                    )
        elif pending:
            payloads = [configs[i].to_dict() for i in pending]
            outcomes = _pool.map_with_retries(
                _simulate_payload, payloads,
                jobs=jobs, timeout=timeout, retries=retries,
            )
            for outcome, i in zip(outcomes, pending):
                cfg = configs[i]
                if outcome.ok:
                    result = MachineResult.from_dict(outcome.value)
                    runner.prime(cfg, result)
                    records[i] = RunRecord(
                        i, cfg, COMPLETED, result,
                        source="simulated", attempts=outcome.attempts,
                    )
                else:
                    status = TIMEOUT if outcome.status == _pool.TIMEOUT else FAILED
                    records[i] = RunRecord(
                        i, cfg, status,
                        error=outcome.error, attempts=outcome.attempts,
                    )
    finally:
        runner.set_result_store(prev_store)

    done = [r for r in records if r is not None]
    summary = CampaignSummary(
        total=len(done),
        completed=sum(r.status == COMPLETED for r in done),
        cached=sum(r.status == CACHED for r in done),
        failed=sum(r.status in (FAILED, TIMEOUT) for r in done),
        elapsed_s=time.monotonic() - t0,
        memo=runner.cache_stats(),
        store=effective_store.stats() if effective_store is not None else {},
    )
    return CampaignResult(done, summary)


def speedup_matrix(
    schemes: Sequence[str],
    workloads: Sequence[str],
    base: Optional[RunConfig] = None,
    baseline: str = "baseline",
    jobs: int = 1,
    store=None,
) -> Dict[Tuple[str, str], Tuple[MachineResult, float]]:
    """The shared scheme-comparison helper.

    Runs ``[baseline] + schemes`` on every workload through the campaign
    layer and returns ``{(scheme, workload): (result, ipc_rel)}`` where
    ``ipc_rel`` is IPC relative to *baseline* on the same workload.
    Both ``repro compare`` and the Fig. 9 experiment build their
    baseline-relative columns from this instead of hand-rolled loops.
    """
    ordered = list(dict.fromkeys([baseline, *schemes]))
    matrix = runner.run_matrix(ordered, workloads, base, jobs=jobs, store=store)
    out: Dict[Tuple[str, str], Tuple[MachineResult, float]] = {}
    for wl in workloads:
        ref = matrix[(baseline, wl)]
        for scheme in ordered:
            result = matrix[(scheme, wl)]
            out[(scheme, wl)] = (result, result.speedup_over(ref))
    return out
