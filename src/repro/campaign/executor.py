"""Campaign execution: expand a grid, fan out, merge deterministically.

``run_campaign`` is the one entry point every grid in the repository
goes through -- ``run_matrix``, ``repro sweep``, ``repro compare`` and
the figure experiments all submit here.  It

1. expands the :class:`GridSpec` (or accepts an explicit config list),
2. skips configs the :class:`ResultStore` has quarantined, then serves
   what it can from the in-process memo cache and the store,
3. runs the remainder serially (``jobs <= 1``) or over a fault-tolerant
   process pool (``jobs > 1``), with per-campaign stall timeout and
   bounded retry of crashed/hung workers,
4. merges results back in grid order and reports a
   :class:`CampaignSummary` (completed/cached/failed/quarantined +
   cache counters) instead of aborting the whole grid on one bad run.

Failure taxonomy (``RunRecord.failure_kind``): ``timeout`` (the stall
watchdog killed a hung worker), ``crash`` (the run raised or the worker
process died), ``invariant`` (a guarded run tripped a checker or the
forward-progress watchdog).  A failure observed identically on two
attempts is deterministic: the config is marked ``quarantined``, written
to the store's quarantine (with its diagnostic bundle path), and never
retried past the second attempt -- by this campaign or any later one
sharing the store.

``guard=`` opts the whole campaign into paranoid mode (a
:class:`~repro.guard.GuardConfig` shipped to every run).  Guarded runs
bypass the memo cache and the result store in both directions.
"""

from __future__ import annotations

import time
import traceback as _traceback
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.campaign import pool as _pool
from repro.campaign.grid import GridSpec
from repro.harness import runner
from repro.harness.runner import RunConfig
from repro.system.machine import MachineResult

# Record statuses.
COMPLETED = "completed"  # freshly simulated this campaign
CACHED = "cached"  # served from the memo cache or the disk store
FAILED = "failed"  # simulation raised, or worker crashed out of retries
TIMEOUT = "timeout"  # hung out of retries
QUARANTINED = "quarantined"  # failed deterministically; pinned in the store


class CampaignError(RuntimeError):
    """Raised when a caller needs every run and some failed."""


@dataclass
class RunRecord:
    """One grid point's fate."""

    index: int
    config: RunConfig
    status: str
    result: Optional[MachineResult] = None
    source: str = ""  # "memo" | "store" | "simulated"
    error: str = ""
    attempts: int = 0
    failure_kind: str = ""  # "" | "timeout" | "crash" | "invariant"
    bundle_path: str = ""  # diagnostic bundle of a guarded failure
    traceback: str = ""  # formatted traceback (post-mortems without reruns)
    telemetry: Optional[dict] = None  # trace summary of an observed run

    def to_dict(self) -> dict:
        return {
            "config": self.config.to_dict(),
            "status": self.status,
            "source": self.source,
            "error": self.error,
            "attempts": self.attempts,
            "failure_kind": self.failure_kind,
            "bundle_path": self.bundle_path,
            "traceback": self.traceback,
            "result": self.result.to_dict() if self.result else None,
            "telemetry": self.telemetry,
        }


@dataclass
class CampaignSummary:
    """What the campaign did, for humans and for ``--json``."""

    total: int = 0
    completed: int = 0
    cached: int = 0
    failed: int = 0
    quarantined: int = 0
    elapsed_s: float = 0.0
    memo: Dict[str, int] = field(default_factory=dict)
    store: Dict[str, object] = field(default_factory=dict)
    # Machine-snapshot and trace-cache counters: the in-process view
    # plus, for pool campaigns, the summed per-batch worker deltas.
    snapshot: Dict[str, int] = field(default_factory=dict)
    trace: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "total": self.total,
            "completed": self.completed,
            "cached": self.cached,
            "failed": self.failed,
            "quarantined": self.quarantined,
            "elapsed_s": self.elapsed_s,
            "memo": dict(self.memo),
            "store": dict(self.store),
            "snapshot": dict(self.snapshot),
            "trace": dict(self.trace),
        }

    def describe(self) -> str:
        head = (
            f"{self.total} runs: {self.completed} simulated, "
            f"{self.cached} cached, {self.failed} failed"
        )
        if self.quarantined:
            head += f", {self.quarantined} quarantined"
        parts = [head + f" in {self.elapsed_s:.2f}s"]
        if self.memo:
            parts.append(
                f"memo cache: {self.memo.get('hits', 0)} hits / "
                f"{self.memo.get('misses', 0)} misses "
                f"({self.memo.get('size', 0)}/{self.memo.get('maxsize', 0)} entries)"
            )
        if self.snapshot:
            parts.append(
                f"snapshot cache: {self.snapshot.get('hits', 0)} forks / "
                f"{self.snapshot.get('misses', 0)} misses "
                f"({self.snapshot.get('stores', 0)} images stored)"
            )
        if self.trace:
            line = (
                f"trace cache: {self.trace.get('hits', 0)} hits / "
                f"{self.trace.get('misses', 0)} misses"
            )
            if self.trace.get("disk_hits", 0) or self.trace.get("disk_dir"):
                line += f" / {self.trace.get('disk_hits', 0)} disk hits"
            parts.append(line)
        if self.store:
            parts.append(
                f"result store: {self.store.get('hits', 0)} hits / "
                f"{self.store.get('misses', 0)} misses / "
                f"{self.store.get('writes', 0)} writes at {self.store.get('root', '')}"
            )
        return "\n".join(parts)


class CampaignResult:
    """Ordered records plus the summary."""

    def __init__(self, records: List[RunRecord], summary: CampaignSummary):
        self.records = records
        self.summary = summary

    @property
    def ok(self) -> bool:
        return all(r.status in (COMPLETED, CACHED) for r in self.records)

    def failures(self) -> List[RunRecord]:
        return [r for r in self.records if r.status not in (COMPLETED, CACHED)]

    def results(self) -> List[Optional[MachineResult]]:
        return [r.result for r in self.records]

    def as_matrix(self) -> Dict[Tuple[str, str], MachineResult]:
        """``{(scheme, workload): result}``; raises on failures/collisions."""
        bad = self.failures()
        if bad:
            detail = "; ".join(
                f"{r.config.scheme}/{r.config.workload}: {r.status} ({r.error})"
                for r in bad[:5]
            )
            raise CampaignError(f"{len(bad)} campaign run(s) failed: {detail}")
        out: Dict[Tuple[str, str], MachineResult] = {}
        for rec in self.records:
            key = (rec.config.scheme, rec.config.workload)
            if key in out:
                raise CampaignError(
                    f"grid has multiple runs per {key}; use .records instead "
                    f"of .as_matrix()"
                )
            out[key] = rec.result
        return out

    def to_dict(self) -> dict:
        return {
            "runs": [r.to_dict() for r in self.records],
            "summary": self.summary.to_dict(),
        }


# ---------------------------------------------------------------------------
# Failure classification helpers
# ---------------------------------------------------------------------------

def _failure_info(exc: BaseException) -> Dict[str, str]:
    """Flatten an exception into the transportable failure taxonomy."""
    return {
        "failure_kind": getattr(exc, "failure_kind", "crash"),
        "error": f"{type(exc).__name__}: {exc}",
        "checker": str(getattr(exc, "checker", "") or ""),
        "bundle_path": str(getattr(exc, "bundle_path", "") or ""),
        "traceback": "".join(
            _traceback.format_exception(type(exc), exc, exc.__traceback__)
        ),
    }


def _same_failure(a: Dict[str, str], b: Dict[str, str]) -> bool:
    """Two attempts failed "the same way": kind, checker, and exception
    type all match (messages may carry run-varying detail)."""
    return (
        a.get("failure_kind") == b.get("failure_kind")
        and a.get("checker") == b.get("checker")
        and a.get("error", "").split(":", 1)[0]
        == b.get("error", "").split(":", 1)[0]
    )


def _quarantine(store, cfg: RunConfig, info: Dict[str, str]) -> None:
    if store is not None and hasattr(store, "put_failure"):
        store.put_failure(cfg, info)


def _failed_record(index: int, cfg: RunConfig, status: str,
                   info: Dict[str, str], attempts: int,
                   source: str = "") -> RunRecord:
    return RunRecord(
        index, cfg, status,
        source=source,
        error=info.get("error", ""),
        attempts=attempts,
        failure_kind=info.get("failure_kind", ""),
        bundle_path=info.get("bundle_path", ""),
        traceback=info.get("traceback", ""),
    )


# ---------------------------------------------------------------------------
# Pool worker
# ---------------------------------------------------------------------------

# Shared with repro.service runners; see harness.runner.
_cache_counts = runner.cache_counts
_cache_delta = runner.cache_delta
_merge_counts = runner.merge_cache_counts


def _simulate_payload(payload: dict) -> dict:
    """Pool worker: dict in, dict out (keeps transport JSON-clean).

    A ``__guard__`` key (a serialized GuardConfig) arms paranoid mode;
    guard failures come back as a structured ``__failure__`` value
    rather than an exception, so the pool does not burn its crash-retry
    budget on deterministic invariant violations.  A ``__telemetry__``
    key (a serialized TelemetryConfig) arms observability; the trace
    summary rides back under the same out-of-band key, keeping
    ``MachineResult`` itself untouched.

    A ``__batch__`` key carries a list of config payloads that share a
    machine-snapshot key: running them sequentially in one worker means
    the first run builds+snapshots and the rest fork from this process's
    snapshot cache.  Per-item exceptions come back as ``__failure__``
    entries so one bad config cannot poison its batch siblings, and the
    worker reports its amortization-cache counter deltas alongside.
    An ``__amortize__`` key (e.g. ``{"trace_dir": ...}``) points this
    worker at the shared on-disk trace cache; it is idempotent, so every
    payload of a campaign carries it.
    """
    payload = dict(payload)
    amortize = payload.pop("__amortize__", None)
    if amortize and amortize.get("trace_dir"):
        from repro.workloads.synthetic import configure_trace_cache

        configure_trace_cache(disk_dir=amortize["trace_dir"])
    batch = payload.pop("__batch__", None)
    if batch is not None:
        before = _cache_counts()
        results = []
        for item in batch:
            try:
                results.append(_simulate_one(dict(item)))
            except Exception as exc:
                results.append({"__failure__": _failure_info(exc)})
        return {
            "__batch__": results,
            "__cache_stats__": _cache_delta(before, _cache_counts()),
        }
    return _simulate_one(payload)


def _simulate_one(payload: dict) -> dict:
    guard_dict = payload.pop("__guard__", None)
    tel_dict = payload.pop("__telemetry__", None)
    cfg = RunConfig.from_dict(payload)

    tel_obj = None
    if tel_dict is not None:
        from repro.telemetry import Telemetry, TelemetryConfig

        tel_obj = Telemetry(TelemetryConfig.from_dict(tel_dict))

    def _out(result) -> dict:
        out = result.to_dict()
        if tel_obj is not None:
            out["__telemetry__"] = tel_obj.summary
        return out

    if guard_dict is None:
        return _out(runner.run_workload(cfg, telemetry=tel_obj))

    from repro.guard import GuardConfig

    guard_cfg = GuardConfig.from_dict(guard_dict)
    try:
        return _out(runner.run_workload(cfg, guard=guard_cfg, telemetry=tel_obj))
    except Exception as exc:
        return {"__failure__": _failure_info(exc)}


# ---------------------------------------------------------------------------
# Serial guarded execution (attempt + deterministic-failure confirmation)
# ---------------------------------------------------------------------------

def _fresh_telemetry(tel_cfg):
    """One Telemetry per run attempt (or None when telemetry is off)."""
    if tel_cfg is None:
        return None
    from repro.telemetry import Telemetry

    return Telemetry(tel_cfg)

def _run_guarded_serial(index: int, cfg: RunConfig, guard_cfg,
                        store, tel_cfg=None) -> RunRecord:
    # A fresh Telemetry per attempt: a failed attempt's half-built trace
    # must not leak into the retry's.
    tel_obj = _fresh_telemetry(tel_cfg)
    try:
        result = runner.run_workload(cfg, guard=guard_cfg, telemetry=tel_obj)
        return RunRecord(
            index, cfg, COMPLETED, result, source="simulated", attempts=1,
            telemetry=tel_obj.summary if tel_obj is not None else None,
        )
    except Exception as exc:
        first = _failure_info(exc)
    # One confirmation attempt decides deterministic vs. transient; a
    # deterministic failure is quarantined, never retried further.
    tel_obj = _fresh_telemetry(tel_cfg)
    try:
        result = runner.run_workload(cfg, guard=guard_cfg, telemetry=tel_obj)
        return RunRecord(
            index, cfg, COMPLETED, result, source="simulated", attempts=2,
            error=f"transient failure on first attempt: {first['error']}",
            telemetry=tel_obj.summary if tel_obj is not None else None,
        )
    except Exception as exc:
        second = _failure_info(exc)
    if _same_failure(first, second):
        _quarantine(store, cfg, second)
        return _failed_record(index, cfg, QUARANTINED, second, attempts=2)
    return _failed_record(index, cfg, FAILED, second, attempts=2)


def _record_pool_failure(index: int, cfg: RunConfig, outcome, store,
                         extra_attempts: int = 0) -> RunRecord:
    attempts = outcome.attempts + extra_attempts
    info = {
        "failure_kind": "timeout" if outcome.status == _pool.TIMEOUT else "crash",
        "error": outcome.error,
        "checker": "",
        "bundle_path": "",
        "traceback": outcome.traceback,
    }
    if outcome.status == _pool.TIMEOUT:
        return _failed_record(index, cfg, TIMEOUT, info, attempts)
    if outcome.status == _pool.CRASHED and attempts >= 2:
        # Crashed on every attempt: deterministic, quarantine it.
        _quarantine(store, cfg, info)
        return _failed_record(index, cfg, QUARANTINED, info, attempts)
    return _failed_record(index, cfg, FAILED, info, attempts)


def _plan_batches(pending: List[int], configs: Sequence[RunConfig],
                  jobs: int, batching: bool) -> List[List[int]]:
    """Partition pending grid indices into worker tasks.

    Runs sharing a machine-snapshot key are grouped (the first run of a
    group builds+snapshots in its worker, the rest fork), but each group
    is chunked so a sweep with few distinct keys still spreads across
    all ``jobs`` workers.  Ineligible configs stay singleton tasks.
    Groups are submitted in grid order of their first member, and
    records are merged by index, so batching never perturbs output
    order.
    """
    if not batching:
        return [[i] for i in pending]
    from repro.snapshot import snapshot_eligible, snapshot_key

    by_key: Dict[str, List[int]] = {}
    singles: List[int] = []
    for i in pending:
        cfg = configs[i]
        if snapshot_eligible(cfg):
            by_key.setdefault(snapshot_key(cfg), []).append(i)
        else:
            singles.append(i)
    # ceil(pending/jobs): with this chunk bound even a single-key sweep
    # produces >= jobs tasks.
    max_chunk = max(2, -(-len(pending) // max(1, jobs)))
    groups: List[List[int]] = []
    for members in by_key.values():
        for off in range(0, len(members), max_chunk):
            groups.append(members[off:off + max_chunk])
    groups.extend([i] for i in singles)
    groups.sort(key=lambda g: g[0])
    return groups


# ---------------------------------------------------------------------------
# Shared campaign building blocks (pool executor + repro.service)
# ---------------------------------------------------------------------------

def prescan(
    configs: Sequence[RunConfig],
    records: List[Optional[RunRecord]],
    store,
    skip_caches: bool = False,
) -> List[int]:
    """Resolve every config the caches already answer; return the rest.

    Fills ``records`` in place with QUARANTINED records for configs the
    store has pinned and CACHED records for memo/store hits (unless
    ``skip_caches`` -- guarded/observed campaigns always simulate).
    The returned indices are the still-pending work, in grid order.
    This is the resume primitive: a distributed campaign re-running
    after a broker restart prescans against the same store and only
    re-enqueues what is missing.
    """
    # cached_result() consults the module-installed store; install the
    # one we were handed so standalone callers (the distributed
    # coordinator) see store hits, not just run_campaign's own flow.
    prev_store = runner.set_result_store(store)
    try:
        pending: List[int] = []
        for i, cfg in enumerate(configs):
            if store is not None and hasattr(store, "get_failure"):
                known = store.get_failure(cfg)
                if known:
                    records[i] = _failed_record(
                        i, cfg, QUARANTINED, known, attempts=0, source="store"
                    )
                    continue
            if not skip_caches:
                result, source = runner.cached_result(cfg)
                if result is not None:
                    records[i] = RunRecord(
                        i, cfg, CACHED, result, source=source
                    )
                    continue
            pending.append(i)
        return pending
    finally:
        runner.set_result_store(prev_store)


def summarize_records(
    records: List[RunRecord],
    elapsed_s: float,
    store,
    extra_caches: Optional[Dict[str, Dict[str, int]]] = None,
) -> CampaignSummary:
    """Fold finished records plus cache counters into a summary.

    ``extra_caches`` carries out-of-process counter deltas (pool-worker
    batches, service runners) to merge with this process's own.
    """
    caches = runner.cache_stats()
    snapshot_counts = dict(caches["snapshot"])
    trace_counts = dict(caches["trace"])
    _merge_counts(
        {"snapshot": snapshot_counts, "trace": trace_counts}, extra_caches
    )
    return CampaignSummary(
        total=len(records),
        completed=sum(r.status == COMPLETED for r in records),
        cached=sum(r.status == CACHED for r in records),
        failed=sum(r.status in (FAILED, TIMEOUT) for r in records),
        quarantined=sum(r.status == QUARANTINED for r in records),
        elapsed_s=elapsed_s,
        memo=caches["memo"],
        snapshot=snapshot_counts,
        trace=trace_counts,
        store=store.stats() if store is not None else {},
    )


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------

def _as_campaign_telemetry(telemetry):
    """Normalize ``telemetry=`` to a TelemetryConfig (or None).

    ``True`` selects the campaign default categories -- everything but
    the per-burst ``dram`` spans, which are too hot for a whole sweep.
    """
    if telemetry is None or telemetry is False:
        return None
    from repro.telemetry import DEFAULT_CAMPAIGN_CATEGORIES, TelemetryConfig

    if isinstance(telemetry, TelemetryConfig):
        return telemetry
    if isinstance(telemetry, dict):
        return TelemetryConfig.from_dict(telemetry)
    if telemetry is True:
        return TelemetryConfig(categories=DEFAULT_CAMPAIGN_CATEGORIES)
    raise TypeError(
        f"campaign telemetry must be None, bool, dict, or TelemetryConfig, "
        f"not {type(telemetry).__name__}"
    )


def _as_progress(progress):
    """Normalize ``progress=`` to an ``on_event(kind, info)`` callable."""
    if progress is None or progress is False:
        return None
    if progress is True:
        import sys

        def _print(kind: str, info: dict) -> None:
            print(
                f"campaign: {info['completed']}/{info['total']} done, "
                f"{info['outstanding']} running"
                + (" (heartbeat)" if kind == "heartbeat" else ""),
                file=sys.stderr,
            )

        return _print
    return progress


def run_campaign(
    grid: Union[GridSpec, Iterable[RunConfig]],
    jobs: int = 1,
    store=None,
    timeout: Optional[float] = None,
    retries: int = 1,
    guard=None,
    telemetry=None,
    progress=None,
    trace_dir: Optional[str] = None,
) -> CampaignResult:
    """Execute every run of *grid*; never raises for individual runs.

    ``store=None`` uses the globally installed result store (if any);
    pass a :class:`ResultStore` to use -- and install for the duration --
    a specific one.  ``guard`` (``True`` or a ``GuardConfig``) runs the
    whole campaign in paranoid mode.

    ``telemetry`` (``True`` or a ``TelemetryConfig``) observes every
    simulated run; each record carries the trace summary in
    ``RunRecord.telemetry``.  Telemetry runs always simulate (a cached
    result has no trace), but their results still prime the caches when
    unguarded.  ``progress`` (``True`` for a stderr printer, or a
    callable) reports live ``done``/``heartbeat`` events while a pool
    campaign drains.  ``trace_dir`` points pool workers at a shared
    on-disk trace cache (defaults to ``<store>/traces`` when a store
    with a root is installed; service runners pass the broker's).
    """
    t0 = time.monotonic()
    configs = grid.expand() if isinstance(grid, GridSpec) else list(grid)
    records: List[Optional[RunRecord]] = [None] * len(configs)

    guard_cfg = None
    if guard is not None and guard is not False:
        from repro.guard import Guard, GuardConfig

        if isinstance(guard, GuardConfig):
            guard_cfg = guard
        elif isinstance(guard, Guard):
            guard_cfg = guard.config
        else:
            guard_cfg = GuardConfig()

    tel_cfg = _as_campaign_telemetry(telemetry)
    on_event = _as_progress(progress)

    effective_store = store if store is not None else runner.get_result_store()
    prev_store = runner.set_result_store(effective_store)
    # Worker-reported amortization-cache counter deltas (pool batches).
    pool_caches: Dict[str, Dict[str, int]] = {}
    try:
        pending = prescan(
            configs, records, effective_store,
            skip_caches=guard_cfg is not None or tel_cfg is not None,
        )

        if jobs <= 1 or len(pending) <= 1:
            for serial_done, i in enumerate(pending):
                cfg = configs[i]
                if guard_cfg is not None:
                    records[i] = _run_guarded_serial(
                        i, cfg, guard_cfg, effective_store, tel_cfg
                    )
                else:
                    tel_obj = _fresh_telemetry(tel_cfg)
                    try:
                        result = runner.run_workload(cfg, telemetry=tel_obj)
                        records[i] = RunRecord(
                            i, cfg, COMPLETED, result,
                            source="simulated", attempts=1,
                            telemetry=(
                                tel_obj.summary if tel_obj is not None else None
                            ),
                        )
                    except Exception as exc:
                        records[i] = _failed_record(
                            i, cfg, FAILED, _failure_info(exc), attempts=1
                        )
                if on_event is not None:
                    on_event("done", {
                        "completed": serial_done + 1,
                        "outstanding": len(pending) - serial_done - 1,
                        "total": len(pending),
                    })
        elif pending:
            guard_dict = guard_cfg.to_dict() if guard_cfg is not None else None
            tel_dict = tel_cfg.to_dict() if tel_cfg is not None else None

            # Shared on-disk trace cache: piggyback on the persistent
            # store's directory so workers stop regenerating identical
            # traces (and later campaigns reuse them too).
            amortize_dict = None
            effective_trace_dir = trace_dir
            if effective_trace_dir is None:
                store_root = getattr(effective_store, "root", None)
                if store_root:
                    import os as _os

                    effective_trace_dir = _os.path.join(
                        str(store_root), "traces"
                    )
            if guard_cfg is None and tel_cfg is None and effective_trace_dir:
                amortize_dict = {"trace_dir": effective_trace_dir}

            def _payload(i: int) -> dict:
                payload = configs[i].to_dict()
                if guard_dict is not None:
                    payload["__guard__"] = guard_dict
                if tel_dict is not None:
                    payload["__telemetry__"] = tel_dict
                return payload

            # Group runs that share a machine-snapshot key into batches
            # so they land on the same worker and fork its snapshot
            # instead of rebuilding.  Only plain campaigns batch:
            # guarded/observed runs keep per-run payloads (their
            # failure confirmation pass needs task granularity).
            groups = _plan_batches(
                pending, configs, jobs,
                batching=guard_cfg is None and tel_cfg is None,
            )

            def _group_payload(group: List[int]) -> dict:
                if len(group) == 1:
                    payload = _payload(group[0])
                else:
                    payload = {"__batch__": [_payload(i) for i in group]}
                if amortize_dict is not None:
                    payload["__amortize__"] = amortize_dict
                return payload

            # The stall watchdog sees one completion per *task*; a batch
            # is one task doing len(batch) runs, so scale its budget.
            max_batch = max(len(g) for g in groups)
            pool_timeout = timeout * max_batch if timeout is not None else None
            heartbeat = 2.0 if on_event is not None else None
            outcomes = _pool.map_with_retries(
                _simulate_payload, [_group_payload(g) for g in groups],
                jobs=jobs, timeout=pool_timeout, retries=retries,
                heartbeat=heartbeat, on_event=on_event,
            )
            confirm: List[Tuple[int, Dict[str, str], int]] = []
            for outcome, group in zip(outcomes, groups):
                if len(group) > 1:
                    if not outcome.ok:
                        for i in group:
                            records[i] = _record_pool_failure(
                                i, configs[i], outcome, effective_store
                            )
                        continue
                    value = outcome.value
                    _merge_counts(
                        pool_caches, value.get("__cache_stats__")
                    )
                    for i, item in zip(group, value["__batch__"]):
                        cfg = configs[i]
                        if isinstance(item, dict) and "__failure__" in item:
                            records[i] = _failed_record(
                                i, cfg, FAILED, item["__failure__"],
                                attempts=outcome.attempts,
                            )
                            continue
                        tel_summary = item.pop("__telemetry__", None)
                        result = MachineResult.from_dict(item)
                        runner.prime(cfg, result)
                        records[i] = RunRecord(
                            i, cfg, COMPLETED, result,
                            source="simulated", attempts=outcome.attempts,
                            telemetry=tel_summary,
                        )
                    continue
                i = group[0]
                cfg = configs[i]
                if not outcome.ok:
                    records[i] = _record_pool_failure(
                        i, cfg, outcome, effective_store
                    )
                    continue
                value = outcome.value
                if isinstance(value, dict) and "__failure__" in value:
                    confirm.append((i, value["__failure__"], outcome.attempts))
                    continue
                tel_summary = value.pop("__telemetry__", None)
                result = MachineResult.from_dict(value)
                if guard_cfg is None:
                    runner.prime(cfg, result)
                records[i] = RunRecord(
                    i, cfg, COMPLETED, result,
                    source="simulated", attempts=outcome.attempts,
                    telemetry=tel_summary,
                )
            if confirm:
                # Guard failures get exactly one confirmation attempt
                # (retries=0): reproduce -> quarantine, else transient.
                outcomes2 = _pool.map_with_retries(
                    _simulate_payload, [_payload(i) for i, _, _ in confirm],
                    jobs=jobs, timeout=timeout, retries=0,
                    heartbeat=heartbeat, on_event=on_event,
                )
                for (i, first, attempts1), outcome2 in zip(confirm, outcomes2):
                    cfg = configs[i]
                    attempts = attempts1 + outcome2.attempts
                    if not outcome2.ok:
                        records[i] = _record_pool_failure(
                            i, cfg, outcome2, effective_store,
                            extra_attempts=attempts1,
                        )
                        continue
                    value2 = outcome2.value
                    if isinstance(value2, dict) and "__failure__" in value2:
                        second = value2["__failure__"]
                        if _same_failure(first, second):
                            _quarantine(effective_store, cfg, second)
                            records[i] = _failed_record(
                                i, cfg, QUARANTINED, second, attempts
                            )
                        else:
                            records[i] = _failed_record(
                                i, cfg, FAILED, second, attempts
                            )
                        continue
                    tel_summary2 = value2.pop("__telemetry__", None)
                    result = MachineResult.from_dict(value2)
                    records[i] = RunRecord(
                        i, cfg, COMPLETED, result,
                        source="simulated", attempts=attempts,
                        error=f"transient failure on first attempt: "
                              f"{first.get('error', '')}",
                        telemetry=tel_summary2,
                    )
    finally:
        runner.set_result_store(prev_store)

    done = [r for r in records if r is not None]
    summary = summarize_records(
        done, time.monotonic() - t0, effective_store, pool_caches
    )
    return CampaignResult(done, summary)


def speedup_matrix(
    schemes: Sequence[str],
    workloads: Sequence[str],
    base: Optional[RunConfig] = None,
    baseline: str = "baseline",
    jobs: int = 1,
    store=None,
) -> Dict[Tuple[str, str], Tuple[MachineResult, float]]:
    """The shared scheme-comparison helper.

    Runs ``[baseline] + schemes`` on every workload through the campaign
    layer and returns ``{(scheme, workload): (result, ipc_rel)}`` where
    ``ipc_rel`` is IPC relative to *baseline* on the same workload.
    Both ``repro compare`` and the Fig. 9 experiment build their
    baseline-relative columns from this instead of hand-rolled loops.
    """
    ordered = list(dict.fromkeys([baseline, *schemes]))
    matrix = runner.run_matrix(ordered, workloads, base, jobs=jobs, store=store)
    out: Dict[Tuple[str, str], Tuple[MachineResult, float]] = {}
    for wl in workloads:
        ref = matrix[(baseline, wl)]
        for scheme in ordered:
            result = matrix[(scheme, wl)]
            out[(scheme, wl)] = (result, result.speedup_over(ref))
    return out
