"""Persistent, content-addressed result store.

Each :class:`MachineResult` is cached on disk under a SHA-256 key of the
canonical JSON of its serialized :class:`RunConfig` plus a simulator
version stamp, so

* the same run requested from any process or any later session is a
  cache hit,
* any change to the run's parameters -- including nested scheme-config
  knobs -- changes the key, and
* bumping the simulator version (``repro.__version__`` by default)
  invalidates everything at once without deleting files.

Entries carry the full config alongside the result; ``get`` verifies it
against the requested config so hash collisions or corrupted payloads
degrade to a miss, never to a wrong result.  Writes are atomic
(temp file + ``os.replace``), so concurrent campaign workers and
readers can share one store directory.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Optional, Union

from repro.harness.runner import RunConfig
from repro.system.machine import MachineResult


def default_store_dir() -> Path:
    """``$REPRO_STORE`` if set, else ``~/.cache/repro-nomad``."""
    env = os.environ.get("REPRO_STORE")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-nomad"


def _sim_version() -> str:
    import repro

    return repro.__version__


class ResultStore:
    """Disk cache of ``RunConfig -> MachineResult`` shared across processes."""

    def __init__(self, root: Union[str, Path], version: Optional[str] = None):
        self.root = Path(root)
        self.version = version if version is not None else _sim_version()
        self.hits = 0
        self.misses = 0
        self.writes = 0

    # -- keys --------------------------------------------------------------

    def key(self, cfg: RunConfig) -> str:
        canonical = json.dumps(
            {"config": cfg.to_dict(), "version": self.version},
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(canonical.encode()).hexdigest()

    def path_for(self, cfg: RunConfig) -> Path:
        key = self.key(cfg)
        return self.root / key[:2] / f"{key}.json"

    # -- access ------------------------------------------------------------

    def get(self, cfg: RunConfig) -> Optional[MachineResult]:
        path = self.path_for(cfg)
        try:
            payload = json.loads(path.read_text())
            if payload.get("config") != cfg.to_dict():
                raise ValueError("stored config does not match request")
            result = MachineResult.from_dict(payload["result"])
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, cfg: RunConfig, result: MachineResult) -> Path:
        path = self.path_for(cfg)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": self.version,
            "config": cfg.to_dict(),
            "result": result.to_dict(),
        }
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.writes += 1
        return path

    # -- quarantine --------------------------------------------------------
    #
    # Deterministic failures (an invariant violation that reproduces, a
    # worker that crashes twice on the same config) are recorded here so
    # later campaigns skip the config instead of burning retry budget on
    # it.  Records live under ``root/quarantine/`` and are keyed exactly
    # like results, so a version bump clears the quarantine too.

    def failure_path_for(self, cfg: RunConfig) -> Path:
        return self.root / "quarantine" / f"{self.key(cfg)}.json"

    def put_failure(self, cfg: RunConfig, info: Dict[str, object]) -> Path:
        """Quarantine *cfg*; ``info`` describes the deterministic failure
        (``failure_kind``, ``error``, ``bundle_path``, ``traceback``)."""
        path = self.failure_path_for(cfg)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": self.version,
            "config": cfg.to_dict(),
            "failure": dict(info),
        }
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def get_failure(self, cfg: RunConfig) -> Optional[Dict[str, object]]:
        """The quarantine record for *cfg*, or None."""
        path = self.failure_path_for(cfg)
        try:
            payload = json.loads(path.read_text())
            if payload.get("config") != cfg.to_dict():
                raise ValueError("stored config does not match request")
            failure = payload["failure"]
            if not isinstance(failure, dict):
                raise TypeError("failure record is not a dict")
        except (OSError, ValueError, KeyError, TypeError):
            return None
        return failure

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        # Quarantine records are not results; keep them out of the count.
        return sum(
            1 for p in self.root.glob("*/*.json")
            if p.parent.name != "quarantine"
        )

    def stats(self) -> Dict[str, object]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "entries": len(self),
            "root": str(self.root),
            "version": self.version,
        }
