"""Persistent, content-addressed result store.

Each :class:`MachineResult` is cached on disk under a SHA-256 key of the
canonical JSON of its serialized :class:`RunConfig` plus a simulator
version stamp, so

* the same run requested from any process or any later session is a
  cache hit,
* any change to the run's parameters -- including nested scheme-config
  knobs -- changes the key, and
* bumping the simulator version (``repro.__version__`` by default)
  invalidates everything at once without deleting files.

Entries carry the full config alongside the result; ``get`` verifies it
against the requested config so hash collisions or corrupted payloads
degrade to a miss, never to a wrong result.  All writes -- results and
quarantine records alike -- go through one atomic path (temp file +
``fsync`` + ``os.replace`` + parent-directory ``fsync``), so concurrent
campaign workers, service runners, and readers can share one store
directory and a killed writer can never leave a truncated JSON behind,
even across power loss.  Every payload also carries an ``integrity``
sha256 over its canonical content, so ``repro scrub`` can tell a
bit-flipped record from a healthy one without re-running anything.

The actual syscalls go through a tiny swappable filesystem shim
(:func:`install_fs`), which is how the service chaos layer injects
ENOSPC, torn writes, and bit flips into exactly these paths
(:class:`repro.service.chaos.FaultyFS`) without monkeypatching.

An optional :class:`repro.service.index.ResultIndex` can be attached
with :meth:`attach_index`; every ``put``/``put_failure`` then writes
through to the SQLite index so the store is queryable
(``repro results``) without directory walks.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple, Union

from repro.harness.runner import RunConfig
from repro.system.machine import MachineResult


class _RealFS:
    """The filesystem calls :func:`atomic_write_json` depends on.

    A single seam for the chaos layer: swap in a faulty implementation
    with :func:`install_fs` and every store/journal/manifest write in
    the process goes through it.  ``path`` on :meth:`write` is the
    *destination* path (the tmp file is anonymous), so fault plans can
    target "store records" vs "service metadata" precisely.
    """

    def write(self, fh, data: bytes, path: Optional[Path] = None) -> int:
        return fh.write(data)

    def fsync(self, fileno: int) -> None:
        os.fsync(fileno)

    def replace(self, src, dst) -> None:
        os.replace(src, dst)

    def fsync_dir(self, path: Path) -> None:
        # Directory fsync persists the rename itself (the file's data
        # being durable is useless if the directory entry is lost on
        # power failure).  Best-effort: some filesystems/platforms
        # refuse O_RDONLY fsync on directories.
        try:
            fd = os.open(path, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)


_FS = _RealFS()


def install_fs(fs) -> object:
    """Swap the filesystem shim; returns the previous one.

    Used by :mod:`repro.service.chaos` to inject ENOSPC / torn-write /
    bit-flip faults into real write paths.  Callers must restore the
    previous shim (``faulty_fs`` does this in a context manager).
    """
    global _FS
    prev = _FS
    _FS = fs
    return prev


def atomic_write_json(path: Path, payload: dict) -> Path:
    """Durably replace *path* with the JSON of *payload*.

    The bytes are written to a sibling temp file, fsynced, then renamed
    over the target, and finally the parent directory is fsynced so the
    rename itself survives power loss -- readers see either the old
    entry or the complete new one, never a torn write, even if the
    writer is SIGKILLed mid-call (same discipline as the PR 5
    trace-cache ``.npz`` writes).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    data = json.dumps(payload).encode()
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            _FS.write(fh, data, path=path)
            fh.flush()
            _FS.fsync(fh.fileno())
        _FS.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    _FS.fsync_dir(path.parent)
    return path


def content_key(config: dict, version: str) -> str:
    """sha256 of the canonical ``{config, version}`` JSON.

    The one key function for the whole store: ``ResultStore.key``
    delegates here, and ``repro scrub`` recomputes it from each file's
    own payload to verify the file sits at its content address."""
    canonical = json.dumps(
        {"config": config, "version": version},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode()).hexdigest()


def payload_integrity(payload: dict) -> str:
    """Checksum over a store payload's meaningful content.

    Covers ``config``, ``version``, and whichever of ``result`` /
    ``failure`` is present -- everything except the ``integrity`` field
    itself -- so a single flipped bit anywhere in the record is
    detectable even when the file still parses as JSON."""
    body = {
        k: payload.get(k)
        for k in ("config", "version", "result", "failure")
        if k in payload
    }
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def default_store_dir() -> Path:
    """``$REPRO_STORE`` if set, else ``~/.cache/repro-nomad``."""
    env = os.environ.get("REPRO_STORE")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-nomad"


def _sim_version() -> str:
    import repro

    return repro.__version__


class ResultStore:
    """Disk cache of ``RunConfig -> MachineResult`` shared across processes."""

    def __init__(self, root: Union[str, Path], version: Optional[str] = None):
        self.root = Path(root)
        self.version = version if version is not None else _sim_version()
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self._index = None

    def attach_index(self, index) -> None:
        """Write-through every ``put``/``put_failure`` to *index* (a
        :class:`repro.service.index.ResultIndex` or duck-type)."""
        self._index = index

    # -- keys --------------------------------------------------------------

    def key(self, cfg: RunConfig) -> str:
        return content_key(cfg.to_dict(), self.version)

    def path_for(self, cfg: RunConfig) -> Path:
        key = self.key(cfg)
        return self.root / key[:2] / f"{key}.json"

    # -- access ------------------------------------------------------------

    def get(self, cfg: RunConfig) -> Optional[MachineResult]:
        path = self.path_for(cfg)
        try:
            payload = json.loads(path.read_text())
            if payload.get("config") != cfg.to_dict():
                raise ValueError("stored config does not match request")
            # Records written since the integrity stamp was introduced
            # verify end-to-end: a bit flip anywhere in the payload --
            # including the result values, which the config comparison
            # cannot see -- degrades to a miss, never a wrong result.
            integrity = payload.get("integrity")
            if (integrity is not None
                    and integrity != payload_integrity(payload)):
                raise ValueError("integrity checksum mismatch")
            result = MachineResult.from_dict(payload["result"])
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, cfg: RunConfig, result: MachineResult) -> Path:
        path = self.path_for(cfg)
        payload = {
            "version": self.version,
            "config": cfg.to_dict(),
            "result": result.to_dict(),
        }
        payload["integrity"] = payload_integrity(payload)
        atomic_write_json(path, payload)
        self.writes += 1
        if self._index is not None:
            self._index.ingest_result(
                self.key(cfg), cfg.to_dict(), result.to_dict(),
                version=self.version,
            )
        return path

    # -- quarantine --------------------------------------------------------
    #
    # Deterministic failures (an invariant violation that reproduces, a
    # worker that crashes twice on the same config) are recorded here so
    # later campaigns skip the config instead of burning retry budget on
    # it.  Records live under ``root/quarantine/`` and are keyed exactly
    # like results, so a version bump clears the quarantine too.

    def failure_path_for(self, cfg: RunConfig) -> Path:
        return self.root / "quarantine" / f"{self.key(cfg)}.json"

    def put_failure(self, cfg: RunConfig, info: Dict[str, object]) -> Path:
        """Quarantine *cfg*; ``info`` describes the deterministic failure
        (``failure_kind``, ``error``, ``bundle_path``, ``traceback``).

        Atomic + durable like :meth:`put`: a runner killed mid-write
        cannot leave a truncated record that poisons later
        ``get_failure`` calls (those degrade to a miss regardless)."""
        path = self.failure_path_for(cfg)
        payload = {
            "version": self.version,
            "config": cfg.to_dict(),
            "failure": dict(info),
        }
        payload["integrity"] = payload_integrity(payload)
        atomic_write_json(path, payload)
        if self._index is not None:
            self._index.ingest_failure(
                self.key(cfg), cfg.to_dict(), dict(info),
                version=self.version,
            )
        return path

    def get_failure(self, cfg: RunConfig) -> Optional[Dict[str, object]]:
        """The quarantine record for *cfg*, or None."""
        path = self.failure_path_for(cfg)
        try:
            payload = json.loads(path.read_text())
            if payload.get("config") != cfg.to_dict():
                raise ValueError("stored config does not match request")
            integrity = payload.get("integrity")
            if (integrity is not None
                    and integrity != payload_integrity(payload)):
                raise ValueError("integrity checksum mismatch")
            failure = payload["failure"]
            if not isinstance(failure, dict):
                raise TypeError("failure record is not a dict")
        except (OSError, ValueError, KeyError, TypeError):
            return None
        return failure

    # -- introspection -----------------------------------------------------

    def iter_entries(self) -> Iterator[Tuple[str, dict]]:
        """Yield ``(key, payload)`` for every readable result entry.

        Corrupted/partial files are skipped (they read as misses
        everywhere else too).  Quarantine records are excluded; use
        :meth:`iter_failures`.
        """
        if not self.root.exists():
            return
        for path in sorted(self.root.glob("*/*.json")):
            if len(path.parent.name) != 2:
                # Only the 2-hex shard dirs hold result records; skip
                # quarantine/, corrupt/ (scrub's damage bin), service/.
                continue
            try:
                payload = json.loads(path.read_text())
            except (OSError, ValueError):
                continue
            if isinstance(payload, dict) and "result" in payload:
                yield path.stem, payload

    def iter_failures(self) -> Iterator[Tuple[str, dict]]:
        """Yield ``(key, payload)`` for every readable quarantine record."""
        qdir = self.root / "quarantine"
        if not qdir.exists():
            return
        for path in sorted(qdir.glob("*.json")):
            try:
                payload = json.loads(path.read_text())
            except (OSError, ValueError):
                continue
            if isinstance(payload, dict) and "failure" in payload:
                yield path.stem, payload

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        # Quarantine/corrupt records are not results; count only the
        # 2-hex shard dirs.
        return sum(
            1 for p in self.root.glob("*/*.json")
            if len(p.parent.name) == 2
        )

    def stats(self) -> Dict[str, object]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "entries": len(self),
            "root": str(self.root),
            "version": self.version,
        }
