"""Fault-tolerant process-pool fan-out.

:func:`map_with_retries` is the campaign's robustness layer, independent
of simulation details so it can be tested with injected crashing/hanging
workers.  Guarantees:

* a worker that **crashes** (the process dies) poisons only its own
  task: the broken pool is torn down, a fresh one is created, and the
  affected tasks are resubmitted up to ``retries`` extra times;
* a worker that **hangs** trips the stall watchdog: if no task completes
  for ``timeout`` seconds the outstanding worker processes are killed
  and their tasks retried (then marked ``"timeout"`` once the retry
  budget is spent);
* a task that raises an ordinary **exception** is deterministic, so it
  is recorded as ``"error"`` immediately and not retried;
* the returned outcomes are in submission order regardless of
  completion order, keeping campaign merges deterministic.
"""

from __future__ import annotations

import concurrent.futures as cf
import random as _random
import time as _time
import traceback as _traceback
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence

from repro.obs.log import get_logger as _get_logger

_LOG = _get_logger("pool")

OK = "ok"
ERROR = "error"  # the task itself raised -- deterministic, no retry
CRASHED = "crashed"  # the worker process died
TIMEOUT = "timeout"  # stall watchdog fired


@dataclass(frozen=True)
class Backoff:
    """Exponential backoff with jitter, shared by every retry loop.

    ``delay(attempt)`` for attempt 1, 2, 3, ... grows as
    ``base * factor**(attempt-1)`` capped at ``cap``, then randomized
    into ``[raw * (1 - jitter), raw]`` so a fleet of retriers does not
    resynchronize into thundering herds.  Used between pool resubmission
    rounds and for runner->broker reconnects (:mod:`repro.service`).
    """

    base: float = 0.05
    factor: float = 2.0
    cap: float = 30.0
    jitter: float = 0.5  # fraction of the raw delay that is randomized

    def delay(self, attempt: int, rng: Callable[[], float] = _random.random) -> float:
        raw = min(self.cap, self.base * self.factor ** max(0, attempt - 1))
        return raw * (1.0 - self.jitter * (1.0 - rng()))

    def sleep(self, attempt: int,
              sleep: Callable[[float], None] = _time.sleep) -> float:
        d = self.delay(attempt)
        sleep(d)
        return d


#: Policy applied between crash/hang resubmission rounds.  Small base:
#: a pool retry already paid a pool teardown, the backoff only has to
#: de-correlate, not throttle.
DEFAULT_POOL_BACKOFF = Backoff(base=0.05, cap=2.0)


def _format_tb(exc: BaseException) -> str:
    """Full formatted traceback; for pool exceptions this includes the
    worker-side ``_RemoteTraceback`` chained via ``__cause__``."""
    return "".join(
        _traceback.format_exception(type(exc), exc, exc.__traceback__)
    )


@dataclass
class TaskOutcome:
    """What happened to one payload after all attempts."""

    index: int
    status: str = TIMEOUT
    value: Any = None
    error: str = ""
    attempts: int = 0
    traceback: str = ""

    @property
    def ok(self) -> bool:
        return self.status == OK


def _kill_pool(pool: cf.ProcessPoolExecutor) -> None:
    """Tear a pool down even if workers are wedged."""
    procs = getattr(pool, "_processes", None) or {}
    for proc in list(procs.values()):
        try:
            proc.kill()
        except Exception:
            pass
    pool.shutdown(wait=False, cancel_futures=True)


def map_with_retries(
    fn: Callable[[Any], Any],
    payloads: Sequence[Any],
    jobs: int = 2,
    timeout: Optional[float] = None,
    retries: int = 1,
    heartbeat: Optional[float] = None,
    on_event: Optional[Callable[[str, dict], None]] = None,
    backoff: Optional[Backoff] = DEFAULT_POOL_BACKOFF,
) -> List[TaskOutcome]:
    """Apply *fn* to every payload across worker processes.

    ``timeout`` is a stall watchdog: the time with *no* task completion
    after which outstanding workers are presumed hung.  ``retries`` is
    the number of *extra* attempts granted to crashed/hung tasks;
    resubmission rounds are spaced by ``backoff`` (exponential with
    jitter; ``None`` restores immediate resubmit).

    ``heartbeat`` (seconds) slices the waits so ``on_event`` can report
    live progress: ``on_event("done", info)`` after each batch of
    completions, ``on_event("heartbeat", info)`` when a slice elapses
    with nothing finished, with ``info = {completed, outstanding,
    total}``.  The watchdog still measures time since the *last
    completion*, so a heartbeat never masks a hang.
    """
    n = len(payloads)
    outcomes = [TaskOutcome(index=i) for i in range(n)]
    attempts = [0] * n
    pending = list(range(n))

    def _notify(kind: str, outstanding: int) -> None:
        if on_event is not None:
            done_count = sum(
                1 for o in outcomes if o.status in (OK, ERROR)
            )
            on_event(kind, {
                "completed": done_count,
                "outstanding": outstanding,
                "total": n,
            })

    while pending:
        pool = cf.ProcessPoolExecutor(max_workers=max(1, min(jobs, len(pending))))
        futures = {}
        for i in pending:
            attempts[i] += 1
            futures[pool.submit(fn, payloads[i])] = i
        retry: List[int] = []
        broken = False
        not_done = set(futures)
        last_completion = _time.monotonic()
        while not_done:
            wait_t = timeout
            if timeout is not None:
                # Budget remaining before the watchdog may fire.
                wait_t = timeout - (_time.monotonic() - last_completion)
            if heartbeat is not None:
                wait_t = heartbeat if wait_t is None else min(heartbeat, wait_t)
            if wait_t is not None and wait_t < 0:
                wait_t = 0
            done, not_done = cf.wait(not_done, timeout=wait_t)
            if not done:
                stalled = (
                    timeout is not None
                    and _time.monotonic() - last_completion >= timeout
                )
                if not stalled:
                    _notify("heartbeat", len(not_done))
                    continue
                # Watchdog: nothing finished within `timeout` seconds.
                _LOG.warning(
                    "pool.watchdog", timeout_s=timeout,
                    outstanding=len(not_done),
                )
                for fut in not_done:
                    i = futures[fut]
                    outcomes[i] = TaskOutcome(
                        index=i,
                        status=TIMEOUT,
                        error=f"no completion within {timeout}s; worker killed",
                        attempts=attempts[i],
                    )
                    retry.append(i)
                broken = True
                break
            last_completion = _time.monotonic()
            for fut in done:
                i = futures[fut]
                try:
                    outcomes[i] = TaskOutcome(
                        index=i, status=OK, value=fut.result(), attempts=attempts[i]
                    )
                except cf.CancelledError:
                    retry.append(i)  # never ran; resubmit without penalty
                    attempts[i] -= 1
                except BrokenProcessPool as exc:
                    outcomes[i] = TaskOutcome(
                        index=i,
                        status=CRASHED,
                        error=str(exc) or "worker process died",
                        attempts=attempts[i],
                        traceback=_format_tb(exc),
                    )
                    retry.append(i)
                    broken = True
                except BaseException as exc:  # the task itself raised
                    outcomes[i] = TaskOutcome(
                        index=i,
                        status=ERROR,
                        error=f"{type(exc).__name__}: {exc}",
                        attempts=attempts[i],
                        traceback=_format_tb(exc),
                    )
            _notify("done", len(not_done))
        if broken:
            _kill_pool(pool)
        else:
            pool.shutdown(wait=True, cancel_futures=True)
        # Resubmit crashed/hung tasks that still have attempts left,
        # after a jittered exponential pause (a crashed worker often
        # means a transiently sick host; hammering it back-to-back just
        # burns the retry budget).
        pending = [i for i in retry if attempts[i] <= retries]
        if pending:
            _LOG.info(
                "pool.retry", tasks=len(pending),
                attempts=max(attempts[i] for i in pending),
                crashed=sum(1 for i in pending
                            if outcomes[i].status == CRASHED),
            )
        if pending and backoff is not None:
            backoff.sleep(max(attempts[i] for i in pending))
    return outcomes
