"""Parallel, fault-tolerant experiment orchestration.

The campaign layer turns the paper's "one simulation campaign feeds
every figure" workflow into infrastructure:

* :class:`GridSpec` -- declarative scheme x workload x parameter grids
  that expand to :class:`RunConfig` lists in a deterministic order;
* :class:`ResultStore` -- a content-addressed on-disk cache of
  :class:`MachineResult`, shared across processes and sessions;
* :func:`run_campaign` -- serial or ``ProcessPoolExecutor`` execution
  with stall-watchdog timeouts, bounded retry of crashed/hung workers,
  and a completed/cached/failed summary instead of all-or-nothing;
* :func:`map_with_retries` -- the generic robustness layer underneath.

``python -m repro sweep`` is the CLI front door; ``run_matrix`` and the
figure experiments submit their grids here too.
"""

from repro.campaign.executor import (
    CampaignError,
    CampaignResult,
    CampaignSummary,
    RunRecord,
    prescan,
    run_campaign,
    speedup_matrix,
    summarize_records,
)
from repro.campaign.grid import GridSpec
from repro.campaign.pool import Backoff, TaskOutcome, map_with_retries
from repro.campaign.store import (
    ResultStore,
    atomic_write_json,
    default_store_dir,
)

__all__ = [
    "Backoff",
    "CampaignError",
    "CampaignResult",
    "CampaignSummary",
    "GridSpec",
    "ResultStore",
    "RunRecord",
    "TaskOutcome",
    "atomic_write_json",
    "default_store_dir",
    "map_with_retries",
    "prescan",
    "run_campaign",
    "speedup_matrix",
    "summarize_records",
]
