"""Declarative sweep grids.

A :class:`GridSpec` names the schemes, the workloads, and any number of
parameter *axes* (``num_pcshrs``, ``topology``, ``dc_megabytes``, ...)
and expands to the concrete :class:`RunConfig` list in a deterministic
order: workload-major, then scheme, then axes in declaration order --
the same order the old serial loops produced, so campaign results merge
back into figure rows byte-for-byte identically.

Axes route themselves: a name that is a ``RunConfig`` field overrides
the run directly; a name that is a ``NomadConfig``/``TDCConfig``/
``TiDConfig`` field is applied to the scheme(s) that consume that config
and ignored for the rest (the resulting duplicate configs are deduped),
so ``schemes=("baseline", "nomad"), axes={"num_pcshrs": (8, 32)}``
yields one baseline run and two NOMAD runs per workload.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, fields
from typing import Dict, List, Mapping, Sequence, Tuple, Union

from repro.config.schemes import NomadConfig, TDCConfig, TiDConfig
from repro.harness.runner import RunConfig

# Axis routing tables: axis name -> where the override lands.
_RUN_FIELDS = frozenset(
    f.name for f in fields(RunConfig)
    if f.name not in ("scheme", "workload", "nomad_cfg", "tdc_cfg", "tid_cfg")
)
# Which schemes consume which nested config (see builder.make_scheme).
_SCHEME_CFG: Dict[str, Tuple[str, type]] = {
    "nomad": ("nomad_cfg", NomadConfig),
    "tdc": ("tdc_cfg", TDCConfig),
    "tid": ("tid_cfg", TiDConfig),
}
_CFG_FIELDS: Dict[type, frozenset] = {
    cls: frozenset(f.name for f in fields(cls))
    for cls in (NomadConfig, TDCConfig, TiDConfig)
}

AxesLike = Union[Mapping[str, Sequence], Sequence[Tuple[str, Sequence]]]


def _known_axis(name: str) -> bool:
    return name in _RUN_FIELDS or any(name in fs for fs in _CFG_FIELDS.values())


@dataclass(frozen=True)
class GridSpec:
    """A scheme x workload x parameter grid, ready to expand."""

    schemes: Tuple[str, ...]
    workloads: Tuple[str, ...]
    base: RunConfig = field(
        default_factory=lambda: RunConfig(scheme="baseline", workload="cact")
    )
    axes: Tuple[Tuple[str, Tuple], ...] = ()

    def __post_init__(self):
        object.__setattr__(self, "schemes", tuple(self.schemes))
        object.__setattr__(self, "workloads", tuple(self.workloads))
        axes = self.axes
        if isinstance(axes, Mapping):
            axes = tuple(axes.items())
        axes = tuple((name, tuple(values)) for name, values in axes)
        for name, values in axes:
            if not _known_axis(name):
                raise ValueError(
                    f"unknown sweep axis {name!r}: not a RunConfig or "
                    f"scheme-config field"
                )
            if not values:
                raise ValueError(f"sweep axis {name!r} has no values")
        object.__setattr__(self, "axes", axes)
        if not self.schemes:
            raise ValueError("GridSpec needs at least one scheme")
        if not self.workloads:
            raise ValueError("GridSpec needs at least one workload")

    # -- expansion ---------------------------------------------------------

    def _apply_axes(self, cfg: RunConfig, combo: Tuple) -> RunConfig:
        run_overrides: Dict[str, object] = {}
        cfg_overrides: Dict[str, object] = {}
        for (name, _values), value in zip(self.axes, combo):
            if name in _RUN_FIELDS:
                run_overrides[name] = value
            else:
                cfg_overrides[name] = value
        if run_overrides:
            cfg = cfg.with_(**run_overrides)
        if cfg_overrides:
            slot = _SCHEME_CFG.get(cfg.scheme)
            if slot is not None:
                attr, cls = slot
                applicable = {
                    k: v for k, v in cfg_overrides.items() if k in _CFG_FIELDS[cls]
                }
                if applicable:
                    nested = getattr(cfg, attr) or cls()
                    nested = nested.from_dict({**nested.to_dict(), **applicable})
                    cfg = cfg.with_(**{attr: nested})
        return cfg

    def expand(self) -> List[RunConfig]:
        """The concrete runs, deterministic order, duplicates removed."""
        value_lists = [values for _name, values in self.axes]
        out: List[RunConfig] = []
        seen = set()
        for wl in self.workloads:
            for scheme in self.schemes:
                for combo in itertools.product(*value_lists):
                    cfg = self.base.with_(scheme=scheme, workload=wl)
                    cfg = self._apply_axes(cfg, combo)
                    if cfg not in seen:
                        seen.add(cfg)
                        out.append(cfg)
        return out

    def __len__(self) -> int:
        return len(self.expand())
