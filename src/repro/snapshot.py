"""Machine snapshot/fork support for amortized sweeps.

The unit of real work in this repository is the *campaign*: a figure
reproduction runs the same (workload, scheme shape) dozens of times with
only ROI-side knobs varying (seed, trace length).  Every one of those
runs used to pay the full machine build and prewarm fast-forward again.
gem5's checkpoint-and-restore methodology -- simulate the common prefix
once, fork the divergent suffixes -- maps directly onto this simulator
because the build+prewarm boundary is *quiescent*: prewarm is functional
(no events), so a just-built machine has an empty event queue and can be
pickled without capturing any scheduled closure.

Two facts make the snapshot reusable across a whole sweep axis:

* ``warm_plan(spec, share)`` depends only on the workload's footprint /
  page-selection shape, **not** on the seed, so post-prewarm machine
  state is seed-independent;
* traces are attached as unconsumed iterators and materialized per
  (spec, seed, core) on demand, so neither ``seed`` nor ``num_mem_ops``
  is baked into the snapshot -- :func:`snapshot_key` therefore excludes
  both, and one snapshot serves every seed and every ROI length.

:class:`SnapshotCache` is the bounded in-process blob store the runner
and every campaign pool worker keep; ``repro.harness.runner`` owns the
policy of when to consult and when to prime it.
"""

from __future__ import annotations

import json
from collections import OrderedDict
from typing import Dict, Optional

# Bump whenever the pickled machine layout changes incompatibly (new
# component state, changed __reduce__ forms, ...).  Machine.restore
# refuses blobs stamped with any other version.
SNAPSHOT_VERSION = 1

# RunConfig fields that only affect the ROI (the run itself), not the
# built+prewarmed machine state.  Everything else is build-affecting and
# goes into the snapshot key.
ROI_FIELDS = ("seed", "num_mem_ops")


class SnapshotError(RuntimeError):
    """A snapshot could not be taken or restored."""


def snapshot_key(cfg) -> str:
    """The build-affecting prefix of ``RunConfig.to_dict()`` as a stable
    string key.

    Two configs with equal keys build bit-identical machines up to the
    prewarm boundary, so either can fork the other's snapshot.
    """
    d = cfg.to_dict()
    for name in ROI_FIELDS:
        d.pop(name, None)
    return json.dumps(d, sort_keys=True)


# Schemes whose build is cheaper than a snapshot round-trip: baseline
# has no DRAM cache to warm, and ideal's "infinite" PCSHR file is 64 K
# objects that unpickle slower than they construct.
_FORK_UNPROFITABLE = frozenset({"baseline", "ideal"})


def snapshot_eligible(cfg) -> bool:
    """Whether forking can pay off for *cfg*.

    Unwarmed machines and the :data:`_FORK_UNPROFITABLE` schemes build
    in less time than the pickle round-trip would save.
    """
    return cfg.prewarm and cfg.scheme not in _FORK_UNPROFITABLE


class SnapshotCache:
    """Bounded LRU of ``snapshot_key -> snapshot blob`` with counters.

    ``maxsize=0`` disables the cache (get/put become no-ops), which is
    how the bench harness measures the pre-snapshot baseline path.
    Blobs are a couple of MB each, so the default bound is small.
    """

    def __init__(self, maxsize: int = 8):
        self.maxsize = maxsize
        self._data: "OrderedDict[str, bytes]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.stores = 0

    def get(self, key: str) -> Optional[bytes]:
        if self.maxsize <= 0:
            return None
        blob = self._data.get(key)
        if blob is None:
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return blob

    def put(self, key: str, blob: bytes) -> None:
        if self.maxsize <= 0:
            return
        self._data[key] = blob
        self._data.move_to_end(key)
        self.stores += 1
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._data.clear()
        self.hits = self.misses = self.evictions = self.stores = 0

    def __len__(self) -> int:
        return len(self._data)

    def stats(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "size": len(self._data),
            "maxsize": self.maxsize,
            "bytes": sum(len(b) for b in self._data.values()),
        }
