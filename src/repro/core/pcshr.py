"""Page copy status/information holding registers (paper Fig. 6).

A PCSHR is the page-granularity analogue of an MSHR: it traces one
outstanding page copy (cache fill or writeback) at sub-block granularity
with three 64-bit vectors:

* **R** (read-issued)   -- the sub-block's read transfer has been issued,
* **B** (in-buffer)     -- the sub-block's data sit in the page copy
  buffer (fills: arrived from off-package memory; writebacks: read out
  of the DRAM cache),
* **W** (partial-write) -- the sub-block has been written to its
  destination (fills: the DRAM cache; writebacks: off-package memory).

A priority bit (P) plus prioritized sub-block index (PI) implement
critical-data-first scheduling: the sub-block that caused the DC tag
miss is fetched before the sequential remainder.  Sub-entries hold
accesses that hit the PCSHR (data misses) and are woken when their
sub-block reaches the buffer.

The event-driven backend computes each sub-block's transfer times when
the copy launches; the bit vectors are *derived* state, synchronized on
demand via :meth:`sync` -- the hardware semantics at every observation
point without per-bit simulation events.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.common.bitvector import BitVector
from repro.common.types import SUB_BLOCKS_PER_PAGE


class CommandType(enum.IntEnum):
    """The T bit of the interface register / PCSHR."""

    CACHE_FILL = 0
    WRITEBACK = 1


@dataclass
class SubEntry:
    """A pending data-miss access parked in the PCSHR."""

    valid: bool
    sub_index: int
    access_id: int


class PCSHR:
    """One page-copy register; state is owned by the back-end."""

    def __init__(self, index: int, num_sub_entries: int = 4):
        self.index = index
        self.num_sub_entries = num_sub_entries
        self.valid = False
        self.cmd_type = CommandType.CACHE_FILL
        self.pfn = 0
        self.cfn = 0
        self.priority = False
        self.priority_index = 0
        self.r_vector = BitVector(SUB_BLOCKS_PER_PAGE)
        self.b_vector = BitVector(SUB_BLOCKS_PER_PAGE)
        self.w_vector = BitVector(SUB_BLOCKS_PER_PAGE)
        self.sub_entries: List[SubEntry] = []
        self.sub_entry_overflows = 0
        # Transfer schedule, filled in at launch.
        self.launched = False
        self.alloc_time = 0
        self.launch_time: Optional[int] = None
        self.arrival_times: Optional[List[int]] = None  # into the buffer
        self.write_times: Optional[List[int]] = None  # out of the buffer
        self.free_at: Optional[int] = None
        # Written-by-CPU sub-blocks (write data misses merged in-buffer).
        self.cpu_written = BitVector(SUB_BLOCKS_PER_PAGE)
        # Reads that arrived before the copy launched (area-optimized
        # designs can hold a PCSHR waiting for a page copy buffer).
        self.pending_reads: List[tuple] = []
        # Callbacks fired when the copy fully completes (ablation paths).
        self.complete_waiters: List[Callable[[], None]] = []

    # -- lifecycle ---------------------------------------------------------

    def allocate(
        self, cmd_type: CommandType, pfn: int, cfn: int,
        priority_index: Optional[int], now: int,
    ) -> None:
        self.valid = True
        self.cmd_type = cmd_type
        self.pfn = pfn
        self.cfn = cfn
        self.priority = priority_index is not None
        self.priority_index = priority_index if priority_index is not None else 0
        self.r_vector.clear_all()
        self.b_vector.clear_all()
        self.w_vector.clear_all()
        self.cpu_written.clear_all()
        self.sub_entries = []
        self.launched = False
        self.alloc_time = now
        self.launch_time = None
        self.arrival_times = None
        self.write_times = None
        self.free_at = None
        self.pending_reads = []
        self.complete_waiters = []

    def launch(self, now: int, arrival_times: List[int]) -> None:
        """All read transfers issued; record the buffer-arrival schedule."""
        if len(arrival_times) != SUB_BLOCKS_PER_PAGE:
            raise ValueError("need one arrival time per sub-block")
        self.launched = True
        self.launch_time = now
        self.arrival_times = arrival_times
        self.r_vector.set_all()

    def release(self) -> None:
        self.valid = False

    # -- queries -------------------------------------------------------------

    def sub_block_in_buffer(self, sub: int, now: int) -> bool:
        """Is the sub-block's data in the page copy buffer at ``now``?"""
        if self.cpu_written.test(sub):
            return True
        if not self.launched or self.arrival_times is None:
            return False
        return self.arrival_times[sub] <= now

    def buffer_ready_time(self, sub: int) -> Optional[int]:
        """When the sub-block will be in the buffer (None if unknown)."""
        if not self.launched or self.arrival_times is None:
            return None
        return self.arrival_times[sub]

    def record_cpu_write(self, sub: int) -> None:
        """A write data miss merged its data straight into the buffer."""
        self.cpu_written.set(sub)

    def add_sub_entry(self, sub: int, access_id: int) -> SubEntry:
        """Park a pending access; counts overflows past the HW capacity."""
        live = sum(1 for e in self.sub_entries if e.valid)
        if live >= self.num_sub_entries:
            self.sub_entry_overflows += 1
        entry = SubEntry(True, sub, access_id)
        self.sub_entries.append(entry)
        return entry

    def sync(self, now: int) -> None:
        """Bring the derived B/W bit vectors up to date with ``now``.

        Accumulates each vector's new bits in a local int and ORs once
        (128 BitVector.set calls per sync otherwise).
        """
        if self.arrival_times is not None:
            bits = 0
            for i, t in enumerate(self.arrival_times):
                if t <= now:
                    bits |= 1 << i
            self.b_vector._bits |= bits
        self.b_vector._bits |= self.cpu_written._bits
        if self.write_times is not None:
            bits = 0
            for i, t in enumerate(self.write_times):
                if t <= now:
                    bits |= 1 << i
            self.w_vector._bits |= bits
        for entry in self.sub_entries:
            if entry.valid and self.sub_block_in_buffer(entry.sub_index, now):
                entry.valid = False

    def transfer_order(self, critical_data_first: bool) -> List[int]:
        """Sub-block fetch order: PI first, then sequential (Fig. 6)."""
        order = list(range(SUB_BLOCKS_PER_PAGE))
        if critical_data_first and self.priority:
            pi = self.priority_index
            order.remove(pi)
            order.insert(0, pi)
        return order

    def __repr__(self) -> str:
        state = "idle"
        if self.valid:
            state = "waiting" if not self.launched else "active"
        return (
            f"PCSHR({self.index}, {state}, cmd={self.cmd_type.name}, "
            f"pfn={self.pfn}, cfn={self.cfn})"
        )
